// Ablation — compression effort vs ratio vs end-to-end benefit.
//
// The paper's compressed-XML baseline pays CPU for a smaller wire image.
// This bench sweeps the LZSS hash-chain depth over two payload classes:
// tag-heavy SOAP XML (highly redundant) and raw star-field pixels (noisy),
// reporting ratio, compression throughput, and total transfer+CPU time.
#include <cstdio>

#include "apps/image/ppm.h"
#include "apps/image/synth.h"
#include "bench_util.h"
#include "common/clock.h"
#include "compress/lzss.h"
#include "soap/codec.h"

namespace sbq::bench {
namespace {

void sweep(const std::string& label, const Bytes& payload) {
  banner("Ablation: LZSS effort (max_chain) — " + label,
         "total = compress CPU (calibrated) + transfer + decompress CPU");

  net::LinkModel lan{net::lan_100mbps()};
  net::LinkModel adsl{net::adsl_1mbps()};

  TablePrinter table({"max_chain", "lz_bytes", "ratio", "comp_MB_s",
                      "lan_total_us", "adsl_total_us"},
                     14);

  for (const int chain : {1, 8, 64, 512}) {
    const lz::CompressOptions options{.max_chain = chain};
    const int reps = 5;
    double comp_us = 0;
    double decomp_us = 0;
    Bytes packed;
    for (int i = 0; i < reps; ++i) {
      Stopwatch sw;
      packed = lz::compress(BytesView{payload}, options);
      comp_us += sw.elapsed_us();
      Stopwatch sw2;
      (void)lz::decompress(BytesView{packed});
      decomp_us += sw2.elapsed_us();
    }
    comp_us /= reps;
    decomp_us /= reps;

    const double cpu_total = (comp_us + decomp_us) * cpu_scale();
    const double lan_total =
        cpu_total + static_cast<double>(lan.transfer_time_us(packed.size(), 0));
    const double adsl_total =
        cpu_total + static_cast<double>(adsl.transfer_time_us(packed.size(), 0));

    table.row({std::to_string(chain), TablePrinter::bytes(packed.size()),
               TablePrinter::num(static_cast<double>(payload.size()) / packed.size(), 2),
               TablePrinter::num(payload.size() / comp_us, 1),
               TablePrinter::num(lan_total, 0), TablePrinter::num(adsl_total, 0)});
  }
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq;
  using namespace sbq::bench;

  const pbio::Value v = make_int_array(102400);
  const std::string xml = soap::value_to_xml(v, *int_array_format(), "params",
                                             soap::XmlStyle{.typed = true});
  sweep("typed SOAP XML, 100 KB int array", to_bytes(xml));

  const image::Image frame = image::synth_star_field(
      {.width = 320, .height = 240, .star_count = 90, .seed = 11});
  sweep("raw PPM star field (noisy pixels)", image::write_ppm(frame));

  std::printf(
      "\nFinding: for tag-heavy XML the ratio saturates at the shallowest\n"
      "chain — greedy matching already captures the tag redundancy, so extra\n"
      "effort only costs CPU. Pixel data is the opposite: ratio keeps rising\n"
      "with effort but at a 10-30x throughput cost, a loss on the fast link —\n"
      "supporting the paper's choice to adapt image *resolution* instead of\n"
      "compressing frames.\n");
  return 0;
}
