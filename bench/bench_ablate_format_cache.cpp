// Ablation — the PBIO format server's registration/caching handshake.
//
// The paper notes the first message of a new format pays a registration
// round trip whose cost "is negligible when small formats are used, and it
// becomes significant only for very deeply nested structures. Subsequent
// exchanges ... are compared against cached formats."
//
// This bench quantifies that: per nesting depth, the serialized format
// description size, the simulated cost of the format-server round trip on
// both links, and the hit/miss behavior of a receiver cache across
// repeated messages.
#include <cstdio>

#include "bench_util.h"
#include "pbio/registry.h"

namespace sbq::bench {
namespace {}
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;
  using namespace sbq;

  banner("Ablation: format server registration cost vs nesting depth",
         "first-message handshake cost (description bytes + simulated round "
         "trip),\nthen cache hits forever after");

  net::LinkModel lan{net::lan_100mbps()};
  net::LinkModel adsl{net::adsl_1mbps()};

  TablePrinter table({"depth", "fields", "descr_bytes", "lan_rt_us", "adsl_rt_us",
                      "amortized_over"},
                     15);

  for (int depth : {1, 2, 4, 6, 8, 10, 12}) {
    const pbio::FormatPtr format = nested_struct_format(depth);
    const Bytes description = pbio::serialize_format(*format);

    // Handshake: request (format id, ~16 bytes) out, description back.
    const std::uint64_t lan_rt =
        lan.transfer_time_us(16, 0) + lan.transfer_time_us(description.size(), 0);
    const std::uint64_t adsl_rt =
        adsl.transfer_time_us(16, 0) + adsl.transfer_time_us(description.size(), 0);

    // How many steady-state messages does one handshake cost? (ADSL,
    // message = one record of this format.)
    const pbio::Value v = make_nested_struct(depth);
    const Bytes message = pbio::encode_value_message(v, *format);
    const std::uint64_t message_us = adsl.transfer_time_us(message.size(), 0);
    const double amortized = static_cast<double>(adsl_rt) /
                             static_cast<double>(message_us);

    table.row({std::to_string(depth), std::to_string(format->total_field_count()),
               TablePrinter::bytes(description.size()), std::to_string(lan_rt),
               std::to_string(adsl_rt),
               TablePrinter::num(amortized, 2) + " msgs"});
  }

  // Cache behavior across a message stream: exactly one miss per format.
  auto server = std::make_shared<pbio::FormatServer>();
  pbio::FormatCache sender(server);
  pbio::FormatCache receiver(server);
  std::vector<pbio::FormatId> ids;
  for (int depth : {1, 4, 8}) {
    ids.push_back(sender.announce(nested_struct_format(depth)));
  }
  for (int round = 0; round < 100; ++round) {
    for (const pbio::FormatId id : ids) (void)receiver.resolve(id);
  }
  std::printf(
      "\ncache behavior: %zu formats, 300 messages -> %zu server fetches, %zu "
      "local hits\n",
      ids.size(), receiver.miss_count(), receiver.hit_count());
  std::printf(
      "\nShape check: description size and handshake cost grow with depth, but\n"
      "one handshake amortizes over a handful of messages even at depth 12 —\n"
      "the paper's \"significant only for very deeply nested structures\".\n");
  return 0;
}
