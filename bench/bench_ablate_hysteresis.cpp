// Ablation — history-based anti-oscillation in quality selection.
//
// The paper observes that naive RTT-driven selection oscillates: a large
// message inflates RTT, the policy shrinks the message, RTT recovers, the
// policy grows it again. "A simple history-based mechanism of RTT
// estimation is used to prevent this."
//
// This bench replays the feedback loop — the chosen message type itself
// determines the next RTT sample — for switch thresholds 1 (no hysteresis)
// through 5, and counts type switches and time spent at each quality.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "qos/policy.h"
#include "qos/rtt.h"

namespace sbq::bench {
namespace {

constexpr const char* kPolicy =
    "attribute rtt_us\n"
    "0 100000 - full\n"
    "100000 inf - half\n";

/// Simulated feedback: sending "full" takes ~110 ms (just over the
/// boundary), "half" ~60 ms — the classic oscillation trap. Mild noise.
double rtt_for(const std::string& type, Rng& rng) {
  const double base = type == "full" ? 110000.0 : 60000.0;
  return base * rng.uniform(0.95, 1.05);
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;
  using namespace sbq;

  banner("Ablation: history-based hysteresis vs oscillation",
         "feedback loop where the chosen type drives the next RTT sample;\n"
         "oscillation trap: full => RTT over boundary, half => RTT under");

  TablePrinter table({"threshold", "switches", "pct_full", "pct_half",
                      "mean_rtt_ms"},
                     14);

  const int kRounds = 400;
  for (int threshold : {1, 2, 3, 4, 5}) {
    qos::SelectionPolicy policy(qos::QualityFile::parse(kPolicy), threshold);
    qos::EwmaEstimator estimator;  // the paper's smoothing is part of the loop
    Rng rng(99);
    std::map<std::string, int> counts;
    double rtt_total = 0;

    std::string current = "full";
    for (int i = 0; i < kRounds; ++i) {
      const double sample = rtt_for(current, rng);
      estimator.update(sample);
      rtt_total += sample;
      current = policy.select(estimator.value_us());
      ++counts[current];
    }
    table.row({std::to_string(threshold),
               std::to_string(policy.switch_count()),
               TablePrinter::num(100.0 * counts["full"] / kRounds, 1),
               TablePrinter::num(100.0 * counts["half"] / kRounds, 1),
               TablePrinter::num(rtt_total / kRounds / 1000.0, 1)});
  }

  std::printf(
      "\nShape check: threshold 1 flips types constantly; each added unit of\n"
      "history cuts the switch count further (~4x from 1 to 5) while the\n"
      "achieved RTT stays comparable — the paper's history-based damping.\n");
  return 0;
}
