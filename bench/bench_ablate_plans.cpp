// Ablation — compiled decode plans vs interpretive decoding.
//
// The original PBIO generated conversion code at runtime (DILL) so that
// steady-state decoding never consulted format metadata; this repo's
// DecodePlan is the portable analogue (see pbio/plan.h). This bench
// measures what that buys: decode throughput for the interpretive decoder
// (per-field name lookups and branching) vs compiled plans, for flat
// arrays, nested structs, and the receiver-makes-right byte-swap case.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "pbio/decode.h"
#include "pbio/encode.h"
#include "pbio/plan.h"

namespace sbq::bench {
namespace {

using namespace sbq::pbio;

struct Row {
  double interpretive_us;
  double planned_us;
  std::size_t ops;
  std::size_t block_bytes;
};

Row measure(const FormatPtr& format, const Value& value, ByteOrder order,
            int iterations) {
  ByteBuffer payload_buf;
  encode_value(value, *format, payload_buf, order);
  const BytesView payload = payload_buf.view();

  Row row{};
  {
    Stopwatch sw;
    for (int i = 0; i < iterations; ++i) {
      Arena arena(1 << 20);
      (void)decode_payload(payload, order, *format, *format, arena);
    }
    row.interpretive_us = sw.elapsed_us() / iterations;
  }
  const PlanPtr plan = DecodePlan::compile(format, format, order);
  row.ops = plan->op_count();
  row.block_bytes = plan->block_copy_bytes();
  {
    Stopwatch sw;
    for (int i = 0; i < iterations; ++i) {
      Arena arena(1 << 20);
      (void)plan->execute(payload, arena);
    }
    row.planned_us = sw.elapsed_us() / iterations;
  }
  return row;
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq;
  using namespace sbq::bench;
  using namespace sbq::pbio;

  banner("Ablation: compiled decode plans vs interpretive decoding",
         "native-path decode cost per message (µs, this host, no calibration);\n"
         "plans = the portable analogue of PBIO's dynamic code generation");

  TablePrinter table({"workload", "order", "interp_us", "planned_us", "speedup",
                      "plan_ops"},
                     13);

  const ByteOrder host = host_byte_order();
  const ByteOrder foreign =
      host == ByteOrder::kLittle ? ByteOrder::kBig : ByteOrder::kLittle;

  struct Workload {
    std::string name;
    FormatPtr format;
    Value value;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"array 100KB", int_array_format(), make_int_array(102400)});
  workloads.push_back(
      {"struct d8", nested_struct_format(8), make_nested_struct(8)});
  workloads.push_back(
      {"struct d10", nested_struct_format(10), make_nested_struct(10)});

  for (const auto& w : workloads) {
    for (const auto& [label, order] :
         std::vector<std::pair<std::string, ByteOrder>>{{"host", host},
                                                        {"foreign", foreign}}) {
      const Row row = measure(w.format, w.value, order, 40);
      table.row({w.name, label, TablePrinter::num(row.interpretive_us),
                 TablePrinter::num(row.planned_us),
                 TablePrinter::num(row.interpretive_us / row.planned_us, 2) + "x",
                 std::to_string(row.ops)});
    }
  }

  std::printf(
      "\nFinding: hoisting field matching and conversion decisions out of the\n"
      "per-message path buys ~25-40%% at host byte order; with a foreign-order\n"
      "sender both decoders are dominated by per-scalar byte swapping, which\n"
      "is exactly the work real code generation (DILL) also could not avoid.\n");
  return 0;
}
