// Figure 4 — Sun RPC vs SOAP-bin: overall time (marshal + transmit +
// unmarshal) for (a) integer arrays and (b) nested structs over a 100 Mbps
// link.
//
// Expected shape (paper): SOAP-bin is close to Sun RPC for arrays; Sun RPC
// wins on nested structs (up to ~5.4x in the paper's worst case), the gap
// being due mostly to SOAP-bin's HTTP transport and per-message overheads.
#include <cstdio>

#include "bench_util.h"
#include "common/clock.h"
#include "net/link.h"
#include "rpc/sunrpc.h"
#include "rpc/xdr.h"

namespace sbq::bench {
namespace {

using pbio::Arity;
using pbio::FieldDesc;
using pbio::FormatDesc;
using pbio::TypeKind;
using pbio::Value;

// XDR encoding of a Value driven by its PBIO format — Sun RPC's canonical
// representation of the same workload.
void xdr_encode_value(const Value& v, const FormatDesc& format, rpc::XdrEncoder& enc) {
  for (const FieldDesc& f : format.fields) {
    const Value& field = v.field(f.name);
    if (f.arity != Arity::kScalar) {
      enc.put_array_header(static_cast<std::uint32_t>(field.array_size()));
      for (const Value& e : field.elements()) {
        if (f.kind == TypeKind::kStruct) {
          xdr_encode_value(e, *f.struct_format, enc);
        } else if (f.kind == TypeKind::kFloat64) {
          enc.put_f64(e.as_f64());
        } else {
          enc.put_i32(static_cast<std::int32_t>(e.as_i64()));
        }
      }
      continue;
    }
    switch (f.kind) {
      case TypeKind::kStruct: xdr_encode_value(field, *f.struct_format, enc); break;
      case TypeKind::kString: enc.put_string(field.as_string()); break;
      case TypeKind::kFloat64: enc.put_f64(field.as_f64()); break;
      case TypeKind::kFloat32: enc.put_f32(static_cast<float>(field.as_f64())); break;
      default: enc.put_i32(static_cast<std::int32_t>(field.as_i64()));
    }
  }
}

Value xdr_decode_value(const FormatDesc& format, rpc::XdrDecoder& dec) {
  Value record = Value::empty_record();
  for (const FieldDesc& f : format.fields) {
    if (f.arity != Arity::kScalar) {
      const std::uint32_t n = dec.get_array_header();
      Value array = Value::empty_array();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (f.kind == TypeKind::kStruct) {
          array.push_back(xdr_decode_value(*f.struct_format, dec));
        } else if (f.kind == TypeKind::kFloat64) {
          array.push_back(Value{dec.get_f64()});
        } else {
          array.push_back(Value{static_cast<std::int64_t>(dec.get_i32())});
        }
      }
      record.set_field(f.name, std::move(array));
      continue;
    }
    switch (f.kind) {
      case TypeKind::kStruct:
        record.set_field(f.name, xdr_decode_value(*f.struct_format, dec));
        break;
      case TypeKind::kString:
        record.set_field(f.name, Value{dec.get_string()});
        break;
      case TypeKind::kFloat64:
        record.set_field(f.name, Value{dec.get_f64()});
        break;
      case TypeKind::kFloat32:
        record.set_field(f.name, Value{static_cast<double>(dec.get_f32())});
        break;
      default:
        record.set_field(f.name, Value{static_cast<std::int64_t>(dec.get_i32())});
    }
  }
  return record;
}

/// Sun RPC echo round trip; returns total µs (CPU measured, transfer
/// simulated). Sun RPC frames records directly over TCP — lower fixed
/// per-message cost than SOAP-bin's HTTP POST.
std::uint64_t sunrpc_round_trip(const Value& v, const pbio::FormatPtr& format,
                                const net::LinkModel& link, std::uint64_t now_us) {
  rpc::RpcServer server(0x20000099, 1);
  server.register_procedure(1, [&](BytesView args) {
    // Server: decode + re-encode (echo), both real CPU.
    rpc::XdrDecoder dec(args);
    const Value decoded = xdr_decode_value(*format, dec);
    rpc::XdrEncoder enc;
    xdr_encode_value(decoded, *format, enc);
    return enc.take();
  });

  Stopwatch cpu;
  rpc::XdrEncoder args;
  xdr_encode_value(v, *format, args);
  const Bytes request = args.take();

  // RPC call header ≈ 40 bytes + 4-byte record mark.
  const std::size_t request_wire = request.size() + 44;
  double total_us = static_cast<double>(link.transfer_time_us(request_wire, now_us));

  // Build the actual call message so handle_call measures real server work.
  rpc::XdrEncoder call;
  call.put_u32(1);           // xid
  call.put_u32(0);           // CALL
  call.put_u32(2);           // rpcvers
  call.put_u32(0x20000099);  // prog
  call.put_u32(1);           // vers
  call.put_u32(1);           // proc
  call.put_u32(0); call.put_u32(0);  // cred AUTH_NONE
  call.put_u32(0); call.put_u32(0);  // verf AUTH_NONE
  call.put_opaque_fixed(BytesView{request});
  const Bytes reply = server.handle_call(BytesView{call.buffer().bytes()});

  total_us += static_cast<double>(link.transfer_time_us(reply.size() + 4, now_us));

  // Client decodes results (skip the 6-word reply header + verf).
  rpc::XdrDecoder dec(BytesView{reply});
  for (int i = 0; i < 3; ++i) dec.get_u32();
  dec.get_u32(); dec.get_u32();  // verf
  dec.get_u32();                 // accept_stat
  (void)xdr_decode_value(*format, dec);

  // CPU-era calibration, matching what SimHarness applies to SOAP-bin.
  total_us += cpu.elapsed_us() * cpu_scale();
  return static_cast<std::uint64_t>(total_us);
}

std::uint64_t soapbin_round_trip(SimHarness& harness, const Value& v) {
  return harness.timed_call("echo", v);
}

void run_arrays() {
  banner("Figure 4(a): Sun RPC vs SOAP-bin — integer arrays",
         "overall marshal+transmit+unmarshal time over a 100 Mbps link, µs");
  TablePrinter table({"array_bytes", "sunrpc_us", "soapbin_us", "ratio"});

  net::LinkModel rpc_link([&] {
    net::LinkConfig c = net::lan_100mbps();
    c.per_message_us = 20;  // raw TCP framing, no HTTP
    return c;
  }());

  for (std::size_t bytes : {1024u, 10240u, 102400u, 1048576u}) {
    const Value v = make_int_array(bytes);
    SimHarness harness = make_echo_harness("echo", int_array_format(),
                                           core::WireFormat::kBinary,
                                           net::lan_100mbps());
    // Soup transacted over connection-per-request HTTP: charge a TCP
    // handshake (2 one-way latencies) per call. Sun RPC keeps its
    // connection open.
    harness.transport->set_per_call_setup_us(2 * net::lan_100mbps().latency_us);
    harness.timed_call("echo", v);  // warm format caches (paper discards cold runs)

    std::uint64_t rpc_total = 0;
    std::uint64_t bin_total = 0;
    const int iterations = 5;
    for (int i = 0; i < iterations; ++i) {
      rpc_total += sunrpc_round_trip(v, int_array_format(), rpc_link, 0);
      bin_total += soapbin_round_trip(harness, v);
    }
    const double rpc_us = static_cast<double>(rpc_total) / iterations;
    const double bin_us = static_cast<double>(bin_total) / iterations;
    table.row({TablePrinter::bytes(bytes), TablePrinter::num(rpc_us),
               TablePrinter::num(bin_us), TablePrinter::num(bin_us / rpc_us, 2)});
  }
}

void run_structs() {
  banner("Figure 4(b): Sun RPC vs SOAP-bin — nested structs",
         "binary tree of structs, depth as shown; same metric as (a)");
  TablePrinter table({"depth", "leaves", "sunrpc_us", "soapbin_us", "ratio"});

  net::LinkModel rpc_link([&] {
    net::LinkConfig c = net::lan_100mbps();
    c.per_message_us = 20;
    return c;
  }());

  for (int depth : {2, 4, 6, 8, 10}) {
    const pbio::FormatPtr format = nested_struct_format(depth);
    const Value v = make_nested_struct(depth);
    SimHarness harness = make_echo_harness("echo", format,
                                           core::WireFormat::kBinary,
                                           net::lan_100mbps());
    harness.transport->set_per_call_setup_us(2 * net::lan_100mbps().latency_us);
    harness.timed_call("echo", v);

    std::uint64_t rpc_total = 0;
    std::uint64_t bin_total = 0;
    const int iterations = 5;
    for (int i = 0; i < iterations; ++i) {
      rpc_total += sunrpc_round_trip(v, format, rpc_link, 0);
      bin_total += soapbin_round_trip(harness, v);
    }
    const double rpc_us = static_cast<double>(rpc_total) / iterations;
    const double bin_us = static_cast<double>(bin_total) / iterations;
    table.row({std::to_string(depth), std::to_string(1 << depth),
               TablePrinter::num(rpc_us), TablePrinter::num(bin_us),
               TablePrinter::num(bin_us / rpc_us, 2)});
  }
  std::printf(
      "\nShape check: SOAP-bin ~ Sun RPC for arrays; Sun RPC ahead on nested\n"
      "structs (paper: up to ~5.4x worst case, dominated by HTTP overheads).\n");
}

}  // namespace
}  // namespace sbq::bench

int main() {
  sbq::bench::run_arrays();
  sbq::bench::run_structs();
  return 0;
}
