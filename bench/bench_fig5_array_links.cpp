// Figure 5 — SOAP-bin vs compressed XML vs direct XML send, for integer
// arrays over (a) the 100 Mbps LAN and (b) the ADSL link.
//
// The scenario is §IV-B.f: the application's data is available as XML, so
// SOAP-bin must convert XML→PBIO before sending and PBIO→XML after
// receiving (compatibility-mode conversions). Series:
//   xml_direct : send the XML document as-is
//   xml_lz     : compress XML with Lempel-Ziv, send, decompress
//   soapbin    : convert XML→PBIO, send binary, convert PBIO→XML
//
// Expected shape (paper): on the fast link direct XML can beat SOAP-bin
// (conversion costs dominate); on ADSL SOAP-bin clearly wins over direct
// XML (it is ~4x smaller), and compressed XML is fastest of all. The §I
// headline — ~15x transmission-time improvement at 1 MB — is printed at
// the end (pure transfer, binary vs XML).
#include <cstdio>

#include "bench_util.h"
#include "common/clock.h"
#include "compress/lzss.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq::bench {
namespace {

using pbio::Value;

struct SeriesPoint {
  double xml_direct_us;
  double xml_lz_us;
  double soapbin_us;
  std::size_t xml_bytes;
  std::size_t bin_bytes;
};

SeriesPoint measure(const Value& v, const pbio::FormatPtr& format,
                    const net::LinkModel& link, int iterations) {
  // The "application data" is an XML document.
  const std::string xml = soap::value_to_xml(v, *format, "params");

  SeriesPoint p{};
  p.xml_bytes = xml.size();

  for (int i = 0; i < iterations; ++i) {
    // Direct XML: no CPU beyond what the link carries.
    p.xml_direct_us += static_cast<double>(link.transfer_time_us(xml.size(), 0));

    // Compressed XML: compress, send, decompress. CPU times carry the
    // 2004-hardware calibration (cpu_scale, bench_util.h).
    {
      Stopwatch sw;
      const Bytes lz = lz::compress_string(xml);
      double t = sw.elapsed_us() * cpu_scale();
      t += static_cast<double>(link.transfer_time_us(lz.size(), 0));
      Stopwatch sw2;
      (void)lz::decompress_string(BytesView{lz});
      t += sw2.elapsed_us() * cpu_scale();
      p.xml_lz_us += t;
    }

    // SOAP-bin: XML→PBIO, send binary, PBIO→XML.
    {
      Stopwatch sw;
      const auto dom = xml::parse_document(xml);
      const Value decoded = soap::value_from_xml(*dom, *format);
      const Bytes bin = pbio::encode_value_message(decoded, *format);
      double t = sw.elapsed_us() * cpu_scale();
      p.bin_bytes = bin.size();
      t += static_cast<double>(link.transfer_time_us(bin.size(), 0));
      Stopwatch sw2;
      const Value back = pbio::decode_value_message(BytesView{bin}, *format);
      (void)soap::value_to_xml(back, *format, "params");
      t += sw2.elapsed_us() * cpu_scale();
      p.soapbin_us += t;
    }
  }
  p.xml_direct_us /= iterations;
  p.xml_lz_us /= iterations;
  p.soapbin_us /= iterations;
  return p;
}

void run_link(const std::string& label, net::LinkConfig config) {
  banner("Figure 5 (" + label + "): arrays — SOAP-bin vs compression vs direct XML",
         "total time µs = conversion CPU (real) + transfer (simulated)");
  TablePrinter table(
      {"array_bytes", "xml_direct", "xml_lz", "soapbin", "xml_sz", "bin_sz"}, 13);
  net::LinkModel link(config);
  for (std::size_t bytes : {1024u, 10240u, 102400u, 1048576u}) {
    const SeriesPoint p = measure(make_int_array(bytes), int_array_format(), link,
                                  bytes > 100000 ? 3 : 8);
    table.row({TablePrinter::bytes(bytes), TablePrinter::num(p.xml_direct_us),
               TablePrinter::num(p.xml_lz_us), TablePrinter::num(p.soapbin_us),
               TablePrinter::bytes(p.xml_bytes), TablePrinter::bytes(p.bin_bytes)});
  }
}

void headline_15x() {
  // §I: "message transmission times are improved by a factor of about 15
  // for 1MByte message sizes" — pure transfer time, binary vs XML, on the
  // slow link where transmission dominates.
  const Value v = make_int_array(1048576);
  // The baseline is what standard SOAP actually puts on the wire: typed,
  // Section-5-annotated XML.
  const std::string xml = soap::value_to_xml(v, *int_array_format(), "params",
                                             soap::XmlStyle{.typed = true});
  const Bytes bin = pbio::encode_value_message(v, *int_array_format());
  net::LinkModel link(net::adsl_1mbps());
  const double xml_us = static_cast<double>(link.transfer_time_us(xml.size(), 0));
  const double bin_us = static_cast<double>(link.transfer_time_us(bin.size(), 0));
  std::printf(
      "\nHeadline (§I): 1MB parameter transmission, ADSL: XML %.0f ms vs "
      "SOAP-bin %.0f ms -> %.1fx improvement (paper: ~15x; the exact factor\n"
      "tracks the XML/PBIO size ratio of the workload).\n",
      xml_us / 1000.0, bin_us / 1000.0, xml_us / bin_us);
}

}  // namespace
}  // namespace sbq::bench

int main() {
  sbq::bench::run_link("a: 100Mbps LAN", sbq::net::lan_100mbps());
  sbq::bench::run_link("b: ADSL ~1Mbps", sbq::net::adsl_1mbps());
  sbq::bench::headline_15x();
  return 0;
}
