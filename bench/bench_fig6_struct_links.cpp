// Figure 6 — SOAP-bin vs compressed XML vs direct XML send, for nested
// structs over (a) the 100 Mbps LAN and (b) the ADSL link.
//
// Same methodology as Figure 5 (bench_fig5_array_links.cpp), with the
// business-data workload: a binary tree of structs whose XML document size
// grows exponentially with depth. Expected shape (paper): the conversion
// penalty is "more pronounced" for structs on the fast link; on ADSL the
// binary encoding wins over direct XML; compression is fastest.
#include <cstdio>

#include "bench_util.h"
#include "common/clock.h"
#include "compress/lzss.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq::bench {
namespace {

using pbio::Value;

void run_link(const std::string& label, net::LinkConfig config) {
  banner("Figure 6 (" + label + "): nested structs — SOAP-bin vs compression vs XML",
         "total time µs = conversion CPU (real) + transfer (simulated)");
  TablePrinter table(
      {"depth", "xml_direct", "xml_lz", "soapbin", "xml_sz", "bin_sz"}, 13);
  net::LinkModel link(config);

  for (int depth : {2, 4, 6, 8, 10}) {
    const pbio::FormatPtr format = nested_struct_format(depth);
    const Value v = make_nested_struct(depth);
    const std::string xml = soap::value_to_xml(v, *format, "params");

    const int iterations = depth >= 9 ? 3 : 8;
    double xml_direct_us = 0;
    double xml_lz_us = 0;
    double soapbin_us = 0;
    std::size_t bin_bytes = 0;

    for (int i = 0; i < iterations; ++i) {
      xml_direct_us += static_cast<double>(link.transfer_time_us(xml.size(), 0));
      // CPU times carry the 2004-hardware calibration (cpu_scale).
      {
        Stopwatch sw;
        const Bytes lz = lz::compress_string(xml);
        double t = sw.elapsed_us() * cpu_scale();
        t += static_cast<double>(link.transfer_time_us(lz.size(), 0));
        Stopwatch sw2;
        (void)lz::decompress_string(BytesView{lz});
        xml_lz_us += t + sw2.elapsed_us() * cpu_scale();
      }
      {
        Stopwatch sw;
        const auto dom = xml::parse_document(xml);
        const Value decoded = soap::value_from_xml(*dom, *format);
        const Bytes bin = pbio::encode_value_message(decoded, *format);
        double t = sw.elapsed_us() * cpu_scale();
        bin_bytes = bin.size();
        t += static_cast<double>(link.transfer_time_us(bin.size(), 0));
        Stopwatch sw2;
        const Value back = pbio::decode_value_message(BytesView{bin}, *format);
        (void)soap::value_to_xml(back, *format, "params");
        soapbin_us += t + sw2.elapsed_us() * cpu_scale();
      }
    }
    table.row({std::to_string(depth), TablePrinter::num(xml_direct_us / iterations),
               TablePrinter::num(xml_lz_us / iterations),
               TablePrinter::num(soapbin_us / iterations),
               TablePrinter::bytes(xml.size()), TablePrinter::bytes(bin_bytes)});
  }
}

}  // namespace
}  // namespace sbq::bench

int main() {
  sbq::bench::run_link("a: 100Mbps LAN", sbq::net::lan_100mbps());
  sbq::bench::run_link("b: ADSL ~1Mbps", sbq::net::adsl_1mbps());
  std::printf(
      "\nShape check: on the LAN, XML->PBIO conversion costs more than just\n"
      "sending XML (worse for structs than arrays); on ADSL conversion pays\n"
      "off; compressed XML is the fastest series everywhere.\n");
  return 0;
}
