// Figure 7 — the three SOAP-bin modes of operation, over 100 Mbps and ADSL
// links, for (a) arrays and (b) nested structs.
//
//   high-perf : both applications speak binary; zero XML conversions
//   interop   : the client application holds XML; the client stub converts
//               XML→binary before sending and binary→XML after receiving
//               (one-sided, just-in-time conversion)
//   compat    : both applications hold XML; conversions happen at BOTH ends
//
// The wire is PBIO in all three modes; only the conversion work differs.
// Expected shape (paper): on the fast link the modes separate increasingly
// with size (high-perf < interop < compat); over ADSL the link swamps the
// conversion costs and the three curves collapse together.
#include <cstdio>

#include "bench_util.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq::bench {
namespace {

using pbio::Value;

/// Builds the echo harness in the right configuration per mode and runs
/// one warm call, returning total µs.
double run_mode(const std::string& mode, const pbio::FormatPtr& format,
                const Value& v, net::LinkConfig link, int iterations) {
  SimHarness harness = [&] {
    if (mode != "compat") {
      return make_echo_harness("echo", format, core::WireFormat::kBinary, link);
    }
    // Compatibility mode: the server application is XML-native too.
    SimHarness h;
    h.format_server = std::make_shared<pbio::FormatServer>();
    h.clock = std::make_shared<net::SimClock>();
    h.runtime = std::make_unique<core::ServiceRuntime>(h.format_server, h.clock);
    h.runtime->register_xml_operation(
        "echo", format, format,
        [](const std::string& params_xml) { return params_xml; });
    h.transport = std::make_unique<core::SimLinkTransport>(
        *h.runtime, net::LinkModel(link), h.clock);
    h.transport->set_cpu_scale(cpu_scale());
    wsdl::ServiceDesc svc;
    svc.name = "Bench";
    svc.operations.push_back(wsdl::OperationDesc{"echo", format, format});
    h.client = std::make_unique<core::ClientStub>(
        *h.transport, core::WireFormat::kBinary, svc, h.format_server, h.clock);
    return h;
  }();

  const std::string xml = soap::value_to_xml(v, *format, "params");

  // Warm up format caches (cold-start registration excluded, as in the paper).
  if (mode == "high-perf") {
    harness.timed_call("echo", v);
  } else {
    harness.client->call_xml("echo", xml);
  }

  double total = 0;
  for (int i = 0; i < iterations; ++i) {
    if (mode == "high-perf") {
      total += static_cast<double>(harness.timed_call("echo", v));
    } else {
      // interop & compat drive the XML-native client entry point.
      const core::EndpointStats before = harness.client->stats();
      const std::uint64_t start = harness.clock->now_us();
      (void)harness.client->call_xml("echo", xml);
      const core::EndpointStats& after = harness.client->stats();
      const double cpu = (after.marshal_us - before.marshal_us) +
                         (after.unmarshal_us - before.unmarshal_us) +
                         (after.convert_us - before.convert_us);
      total += static_cast<double>(harness.clock->now_us() - start) +
               cpu * cpu_scale();
    }
  }
  return total / iterations;
}

void run_workload(const std::string& figure, const std::string& label,
                  const std::vector<std::pair<std::string, Value>>& workloads,
                  const std::vector<pbio::FormatPtr>& formats) {
  for (const auto& [link_name, link] :
       std::vector<std::pair<std::string, net::LinkConfig>>{
           {"100Mbps", net::lan_100mbps()}, {"ADSL", net::adsl_1mbps()}}) {
    banner("Figure 7 (" + figure + ", " + link_name + "): modes of operation — " + label,
           "total time µs per call: high-performance vs interoperability vs "
           "compatibility");
    TablePrinter table({"workload", "high_perf", "interop", "compat"}, 15);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto& [key, v] = workloads[i];
      const int iterations = 4;
      const double hp = run_mode("high-perf", formats[i], v, link, iterations);
      const double io = run_mode("interop", formats[i], v, link, iterations);
      const double co = run_mode("compat", formats[i], v, link, iterations);
      table.row({key, TablePrinter::num(hp), TablePrinter::num(io),
                 TablePrinter::num(co)});
    }
  }
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;
  {
    std::vector<std::pair<std::string, sbq::pbio::Value>> workloads;
    std::vector<sbq::pbio::FormatPtr> formats;
    for (std::size_t bytes : {10240u, 102400u, 1048576u}) {
      workloads.emplace_back(TablePrinter::bytes(bytes), make_int_array(bytes));
      formats.push_back(int_array_format());
    }
    run_workload("a", "integer arrays", workloads, formats);
  }
  {
    std::vector<std::pair<std::string, sbq::pbio::Value>> workloads;
    std::vector<sbq::pbio::FormatPtr> formats;
    for (int depth : {4, 7, 10}) {
      workloads.emplace_back("depth " + std::to_string(depth),
                             make_nested_struct(depth));
      formats.push_back(nested_struct_format(depth));
    }
    run_workload("b", "nested structs", workloads, formats);
  }
  std::printf(
      "\nShape check: modes separate with size on the fast link (high-perf\n"
      "fastest), converge over ADSL where the link dominates.\n");
  return 0;
}
