// Figure 8 — response times for the imaging application under varying
// network conditions, with three policies:
//   fixed_full : always send the 640x480 PPM frame (~0.92 MB)
//   fixed_half : always send the 320x240 reduction (~0.23 MB)
//   adaptive   : SOAP-binQ quality file switches between the two on the
//                client-reported RTT estimate
//
// Cross-traffic (iperf-style UDP) is injected in steps over a 100 Mbps
// link, exactly the perturbation the paper applies. Expected shape: the
// adaptive curve tracks fixed_full in quiet phases and drops toward
// fixed_half under congestion, so its mean lies between the two and its
// jitter is far below fixed_full's.
#include <cstdio>

#include "apps/image/codec.h"
#include "apps/image/ops.h"
#include "apps/image/synth.h"
#include "bench_util.h"
#include "qos/manager.h"

namespace sbq::bench {
namespace {

using pbio::Value;

constexpr int kRequests = 36;

// Congestion timeline (simulated seconds): quiet, heavy, quiet, heavier,
// quiet. Requests are paced 1 s apart — longer than the worst congested
// response — so the three policy runs stay aligned on the same timeline.
net::CrossTrafficSchedule traffic() {
  net::CrossTrafficSchedule s;
  s.add_phase(5'000'000, 12'000'000, 0.85);
  s.add_phase(20'000'000, 28'000'000, 0.92);
  return s;
}

constexpr const char* kAdaptivePolicy =
    "attribute rtt_us\n"
    "0 150000 - image\n"       // full 640x480 while RTT < 150 ms
    "150000 inf - half_image\n";

constexpr const char* kAlwaysFull = "attribute rtt_us\n0 inf - image\n";
constexpr const char* kAlwaysHalf = "attribute rtt_us\n0 inf - half_image\n";

struct RunResult {
  std::vector<double> response_ms;
  std::vector<std::string> types;
};

RunResult run_policy(const char* policy_text) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime(format_server, clock);

  // The image server: serves the edge-detected telescope frame. The frame
  // and its transform are deterministic, so precompute once — the paper's
  // measurement isolates communication behavior, and a per-request
  // recomputation would only add a constant.
  const image::Image frame = image::edge_detect(image::synth_star_field());
  const Value full_value = image::image_to_value(frame, *image::image_format());
  runtime.register_operation("getImage", image::image_request_format(),
                             image::image_format(),
                             [&](const Value&) { return full_value; });

  auto quality = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse(policy_text), /*switch_threshold=*/2);
  quality->register_message_type("image", image::image_format());
  quality->register_message_type("half_image", image::half_image_format(),
                                 image::resize_quality_handler);
  runtime.set_quality_manager(quality);

  net::LinkModel link(net::lan_100mbps());
  link.set_cross_traffic(traffic());
  core::SimLinkTransport transport(runtime, link, clock);
  transport.set_charge_server_cpu(false);  // isolate communication behavior

  wsdl::ServiceDesc svc;
  svc.name = "ImageService";
  svc.operations.push_back(wsdl::OperationDesc{
      "getImage", image::image_request_format(), image::image_format()});
  core::ClientStub client(transport, core::WireFormat::kBinary, svc, format_server,
                          clock);

  const Value request = Value::record(
      {{"filename", "m31_field_042.ppm"}, {"transform", "edge_detect"}});

  RunResult result;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t wall = static_cast<std::uint64_t>(i) * 1'000'000;
    if (clock->now_us() < wall) clock->set_us(wall);
    const std::uint64_t start = clock->now_us();
    (void)client.call("getImage", request);
    result.response_ms.push_back(
        static_cast<double>(clock->now_us() - start) / 1000.0);
    result.types.push_back(client.last_response_type());
  }
  return result;
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;

  banner("Figure 8: imaging application response times",
         "640x480 PPM frames over 100 Mbps with stepped UDP cross-traffic;\n"
         "response time per request (ms), three policies");

  const RunResult full = run_policy(kAlwaysFull);
  const RunResult half = run_policy(kAlwaysHalf);
  const RunResult adaptive = run_policy(kAdaptivePolicy);

  TablePrinter table({"req", "t_sim_s", "fixed_full", "fixed_half", "adaptive",
                      "adaptive_type"},
                     14);
  for (int i = 0; i < kRequests; ++i) {
    table.row({std::to_string(i), TablePrinter::num(i * 1.0, 1),
               TablePrinter::num(full.response_ms[static_cast<std::size_t>(i)]),
               TablePrinter::num(half.response_ms[static_cast<std::size_t>(i)]),
               TablePrinter::num(adaptive.response_ms[static_cast<std::size_t>(i)]),
               adaptive.types[static_cast<std::size_t>(i)]});
  }

  const Summary sf = summarize(full.response_ms);
  const Summary sh = summarize(half.response_ms);
  const Summary sa = summarize(adaptive.response_ms);
  std::printf("\nsummary (ms):        mean    stddev  min     max\n");
  std::printf("  fixed_full        %-8.1f%-8.1f%-8.1f%-8.1f\n", sf.mean, sf.stddev,
              sf.min, sf.max);
  std::printf("  fixed_half        %-8.1f%-8.1f%-8.1f%-8.1f\n", sh.mean, sh.stddev,
              sh.min, sh.max);
  std::printf("  adaptive          %-8.1f%-8.1f%-8.1f%-8.1f\n", sa.mean, sa.stddev,
              sa.min, sa.max);
  std::printf(
      "\nShape check: adaptive mean sits between the fixed policies and its\n"
      "jitter (stddev, max) is well below fixed_full's — the paper's\n"
      "\"performance lies between large and small image files\".\n");
  return 0;
}
