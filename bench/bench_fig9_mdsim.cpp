// Figure 9 — response times for the molecular dynamics application over an
// ADSL link with UDP cross-traffic, three policies:
//   fixed_4  : four ~4 KB timesteps per response, regardless of conditions
//   fixed_1  : one timestep per response
//   adaptive : SOAP-binQ selects 1-4 timesteps per response based on the
//              client-reported RTT
//
// Expected shape (paper): adaptive response times stay inside a band — the
// policy "guarantees that the response time never exceeds" its upper bound
// while "not allowing the network to be under-utilized" — with variance far
// below fixed_4's under congestion.
#include <cstdio>

#include "apps/md/bond.h"
#include "bench_util.h"
#include "qos/manager.h"

namespace sbq::bench {
namespace {

using pbio::Value;

constexpr int kRequests = 40;

net::CrossTrafficSchedule traffic() {
  net::CrossTrafficSchedule s;
  s.add_phase(20'000'000, 50'000'000, 0.70);
  s.add_phase(80'000'000, 110'000'000, 0.88);
  return s;
}

// One timestep ≈ 4 KB ≈ 47 ms over clean ADSL; four ≈ 145 ms. Boundaries
// carve the RTT range so congestion sheds timesteps progressively.
constexpr const char* kAdaptivePolicy =
    "attribute rtt_us\n"
    "0      220000 - bond_batch_4\n"
    "220000 320000 - bond_batch_3\n"
    "320000 450000 - bond_batch_2\n"
    "450000 inf    - bond_batch_1\n";

constexpr const char* kAlways4 = "attribute rtt_us\n0 inf - bond_batch_4\n";
constexpr const char* kAlways1 = "attribute rtt_us\n0 inf - bond_batch_1\n";

struct RunResult {
  std::vector<double> response_ms;
  std::vector<std::string> types;
  int timesteps_delivered = 0;
};

RunResult run_policy(const char* policy_text) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime(format_server, clock);

  auto sim = std::make_shared<md::BondSimulation>();
  runtime.register_operation(
      "getBonds", md::bond_request_format(), md::batch_format(4),
      [sim](const Value&) {
        return md::batch_to_value(sim->steps(4), *md::batch_format(4));
      });

  auto quality = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse(policy_text), /*switch_threshold=*/2);
  for (int n = 1; n <= 4; ++n) {
    quality->register_message_type("bond_batch_" + std::to_string(n),
                                   md::batch_format(n), md::trim_batch_handler);
  }
  runtime.set_quality_manager(quality);

  net::LinkModel link(net::adsl_1mbps());
  link.set_cross_traffic(traffic());
  core::SimLinkTransport transport(runtime, link, clock);
  transport.set_charge_server_cpu(false);

  wsdl::ServiceDesc svc;
  svc.name = "BondService";
  svc.operations.push_back(wsdl::OperationDesc{
      "getBonds", md::bond_request_format(), md::batch_format(4)});
  core::ClientStub client(transport, core::WireFormat::kBinary, svc, format_server,
                          clock);

  RunResult result;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t wall = static_cast<std::uint64_t>(i) * 3'000'000;
    if (clock->now_us() < wall) clock->set_us(wall);
    const Value request =
        Value::record({{"from_index", sim->current_index()}, {"max_steps", 4}});
    const std::uint64_t start = clock->now_us();
    const Value batch = client.call("getBonds", request);
    result.response_ms.push_back(
        static_cast<double>(clock->now_us() - start) / 1000.0);
    result.types.push_back(client.last_response_type());
    result.timesteps_delivered += static_cast<int>(batch.field("count").as_i64());
  }
  return result;
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;

  banner("Figure 9: molecular dynamics application response times",
         "~4 KB bond-graph timesteps over ADSL with UDP cross-traffic;\n"
         "response time per request (ms), three policies");

  const RunResult four = run_policy(kAlways4);
  const RunResult one = run_policy(kAlways1);
  const RunResult adaptive = run_policy(kAdaptivePolicy);

  TablePrinter table(
      {"req", "t_sim_s", "fixed_4", "fixed_1", "adaptive", "adaptive_type"}, 14);
  for (int i = 0; i < kRequests; ++i) {
    const auto u = static_cast<std::size_t>(i);
    table.row({std::to_string(i), TablePrinter::num(i * 3.0, 0),
               TablePrinter::num(four.response_ms[u]),
               TablePrinter::num(one.response_ms[u]),
               TablePrinter::num(adaptive.response_ms[u]), adaptive.types[u]});
  }

  const Summary s4 = summarize(four.response_ms);
  const Summary s1 = summarize(one.response_ms);
  const Summary sa = summarize(adaptive.response_ms);
  std::printf("\nsummary (ms):   mean    stddev  min     max     timesteps\n");
  std::printf("  fixed_4      %-8.1f%-8.1f%-8.1f%-8.1f%d\n", s4.mean, s4.stddev,
              s4.min, s4.max, four.timesteps_delivered);
  std::printf("  fixed_1      %-8.1f%-8.1f%-8.1f%-8.1f%d\n", s1.mean, s1.stddev,
              s1.min, s1.max, one.timesteps_delivered);
  std::printf("  adaptive     %-8.1f%-8.1f%-8.1f%-8.1f%d\n", sa.mean, sa.stddev,
              sa.min, sa.max, adaptive.timesteps_delivered);
  std::printf(
      "\nShape check: adaptive keeps response times inside a band (mean between\n"
      "the fixed policies, stddev below fixed_4) while delivering more\n"
      "timesteps than fixed_1 — bounded latency without under-utilization.\n");
  return 0;
}
