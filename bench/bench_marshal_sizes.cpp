// Figure 5 companion ("Fig. ??" in the paper text) — marshalling /
// unmarshalling costs and resulting sizes for: native↔PBIO conversion, XML
// compression, and XML↔PBIO conversion, for arrays and nested structs.
//
// Expected shape (paper): XML parameters ≈4-5x the PBIO message for arrays
// and up to ~9x for deeply nested structs; compressed XML lands near (or
// below) PBIO size; PBIO encode/decode time is small next to transmission.
#include <cstdio>

#include "bench_util.h"
#include "common/clock.h"
#include "compress/lzss.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq::bench {
namespace {

using pbio::Value;

struct CostRow {
  std::size_t pbio_bytes = 0;
  std::size_t xml_bytes = 0;
  std::size_t lz_bytes = 0;
  double pbio_encode_us = 0;
  double pbio_decode_us = 0;
  double xml_encode_us = 0;
  double xml_parse_us = 0;
  double compress_us = 0;
  double decompress_us = 0;
};

CostRow measure(const Value& v, const pbio::FormatPtr& format, int iterations) {
  CostRow row;
  Bytes pbio_wire;
  std::string xml_wire;
  Bytes lz_wire;
  for (int i = 0; i < iterations; ++i) {
    {
      Stopwatch sw;
      pbio_wire = pbio::encode_value_message(v, *format);
      row.pbio_encode_us += sw.elapsed_us();
    }
    {
      Stopwatch sw;
      (void)pbio::decode_value_message(BytesView{pbio_wire}, *format);
      row.pbio_decode_us += sw.elapsed_us();
    }
    {
      Stopwatch sw;
      xml_wire = soap::value_to_xml(v, *format, "params");
      row.xml_encode_us += sw.elapsed_us();
    }
    {
      Stopwatch sw;
      const auto dom = xml::parse_document(xml_wire);
      (void)soap::value_from_xml(*dom, *format);
      row.xml_parse_us += sw.elapsed_us();
    }
    {
      Stopwatch sw;
      lz_wire = lz::compress_string(xml_wire);
      row.compress_us += sw.elapsed_us();
    }
    {
      Stopwatch sw;
      (void)lz::decompress_string(BytesView{lz_wire});
      row.decompress_us += sw.elapsed_us();
    }
  }
  row.pbio_bytes = pbio_wire.size();
  row.xml_bytes = xml_wire.size();
  row.lz_bytes = lz_wire.size();
  const double n = iterations;
  row.pbio_encode_us /= n;
  row.pbio_decode_us /= n;
  row.xml_encode_us /= n;
  row.xml_parse_us /= n;
  row.compress_us /= n;
  row.decompress_us /= n;
  return row;
}

void print_rows(const std::string& label, const std::vector<std::string>& keys,
                const std::vector<CostRow>& rows) {
  banner("Marshalling costs and sizes — " + label,
         "per-message sizes and average CPU times (µs) on this host");
  TablePrinter table({"workload", "pbio_sz", "xml_sz", "lz_sz", "xml/pbio",
                      "pbio_enc", "pbio_dec", "xml_enc", "xml_parse", "lz_c",
                      "lz_d"},
                     11);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CostRow& r = rows[i];
    table.row({keys[i], TablePrinter::bytes(r.pbio_bytes),
               TablePrinter::bytes(r.xml_bytes), TablePrinter::bytes(r.lz_bytes),
               TablePrinter::num(static_cast<double>(r.xml_bytes) /
                                     static_cast<double>(r.pbio_bytes),
                                 2),
               TablePrinter::num(r.pbio_encode_us), TablePrinter::num(r.pbio_decode_us),
               TablePrinter::num(r.xml_encode_us), TablePrinter::num(r.xml_parse_us),
               TablePrinter::num(r.compress_us), TablePrinter::num(r.decompress_us)});
  }
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;

  {
    std::vector<std::string> keys;
    std::vector<CostRow> rows;
    for (std::size_t bytes : {1024u, 10240u, 102400u, 1048576u}) {
      keys.push_back(TablePrinter::bytes(bytes));
      rows.push_back(measure(make_int_array(bytes), int_array_format(),
                             bytes > 100000 ? 3 : 10));
    }
    print_rows("integer arrays", keys, rows);
  }
  {
    std::vector<std::string> keys;
    std::vector<CostRow> rows;
    for (int depth : {2, 4, 6, 8, 10}) {
      keys.push_back("depth " + std::to_string(depth));
      rows.push_back(measure(make_nested_struct(depth), nested_struct_format(depth),
                             depth >= 9 ? 3 : 10));
    }
    print_rows("nested structs", keys, rows);
  }
  std::printf(
      "\nShape check: xml/pbio ratio ~4-5x for arrays, larger for deep structs\n"
      "(paper: up to ~9x); compressed XML is near or below PBIO size.\n");
  return 0;
}
