// Microbenchmarks (google-benchmark) — raw codec throughput underlying every
// figure: PBIO encode/decode (dynamic and native paths), XML encode/parse,
// XDR, LZSS, and the XML↔binary conversion handlers.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compress/lzss.h"
#include "pbio/decode.h"
#include "pbio/encode.h"
#include "pbio/value_codec.h"
#include "rpc/xdr.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq::bench {
namespace {

void BM_PbioEncodeArray(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const pbio::Value v = make_int_array(bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbio::encode_value_message(v, *int_array_format()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PbioEncodeArray)->Arg(1024)->Arg(102400)->Arg(1048576);

void BM_PbioDecodeArray(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const pbio::Value v = make_int_array(bytes);
  const Bytes wire = pbio::encode_value_message(v, *int_array_format());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pbio::decode_value_message(BytesView{wire}, *int_array_format()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_PbioDecodeArray)->Arg(1024)->Arg(102400)->Arg(1048576);

void BM_PbioNativeEncodeArray(benchmark::State& state) {
  // The native path: a C struct with a VarArray<int32> — PBIO's zero-
  // transformation fast path.
  struct Native {
    pbio::VarArray<std::int32_t> values;
  };
  const auto count = static_cast<std::size_t>(state.range(0)) / 4;
  std::vector<std::int32_t> data(count);
  for (std::size_t i = 0; i < count; ++i) data[i] = static_cast<std::int32_t>(i);
  const Native native{{static_cast<std::uint32_t>(count), data.data()}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbio::encode_message(&native, *int_array_format()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PbioNativeEncodeArray)->Arg(1024)->Arg(102400)->Arg(1048576);

void BM_PbioNativeDecodeArray(benchmark::State& state) {
  struct Native {
    pbio::VarArray<std::int32_t> values;
  };
  const auto count = static_cast<std::size_t>(state.range(0)) / 4;
  std::vector<std::int32_t> data(count, 7);
  const Native native{{static_cast<std::uint32_t>(count), data.data()}};
  const Bytes wire = pbio::encode_message(&native, *int_array_format());
  for (auto _ : state) {
    Arena arena;
    benchmark::DoNotOptimize(pbio::decode_message(BytesView{wire}, *int_array_format(),
                                                  *int_array_format(), arena));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_PbioNativeDecodeArray)->Arg(1024)->Arg(102400)->Arg(1048576);

void BM_XmlEncodeArray(benchmark::State& state) {
  const pbio::Value v = make_int_array(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(soap::value_to_xml(v, *int_array_format(), "params"));
  }
}
BENCHMARK(BM_XmlEncodeArray)->Arg(1024)->Arg(102400);

void BM_XmlParseArray(benchmark::State& state) {
  const pbio::Value v = make_int_array(static_cast<std::size_t>(state.range(0)));
  const std::string xml = soap::value_to_xml(v, *int_array_format(), "params");
  for (auto _ : state) {
    const auto dom = xml::parse_document(xml);
    benchmark::DoNotOptimize(soap::value_from_xml(*dom, *int_array_format()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParseArray)->Arg(1024)->Arg(102400);

void BM_PbioEncodeStruct(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const pbio::Value v = make_nested_struct(depth);
  const pbio::FormatPtr f = nested_struct_format(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbio::encode_value_message(v, *f));
  }
}
BENCHMARK(BM_PbioEncodeStruct)->Arg(4)->Arg(8)->Arg(10);

void BM_XmlEncodeStruct(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const pbio::Value v = make_nested_struct(depth);
  const pbio::FormatPtr f = nested_struct_format(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(soap::value_to_xml(v, *f, "params"));
  }
}
BENCHMARK(BM_XmlEncodeStruct)->Arg(4)->Arg(8)->Arg(10);

void BM_XdrEncodeArray(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0)) / 4;
  for (auto _ : state) {
    rpc::XdrEncoder enc;
    enc.put_array_header(static_cast<std::uint32_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
      enc.put_i32(static_cast<std::int32_t>(i));
    }
    benchmark::DoNotOptimize(enc.take());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XdrEncodeArray)->Arg(1024)->Arg(102400)->Arg(1048576);

void BM_LzssCompressXml(benchmark::State& state) {
  const pbio::Value v = make_int_array(static_cast<std::size_t>(state.range(0)));
  const std::string xml = soap::value_to_xml(v, *int_array_format(), "params");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz::compress_string(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_LzssCompressXml)->Arg(1024)->Arg(102400);

void BM_LzssDecompressXml(benchmark::State& state) {
  const pbio::Value v = make_int_array(static_cast<std::size_t>(state.range(0)));
  const std::string xml = soap::value_to_xml(v, *int_array_format(), "params");
  const Bytes packed = lz::compress_string(xml);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz::decompress(BytesView{packed}));
  }
}
BENCHMARK(BM_LzssDecompressXml)->Arg(1024)->Arg(102400);

void BM_ConversionHandlerXmlToBin(benchmark::State& state) {
  const pbio::Value v = make_int_array(static_cast<std::size_t>(state.range(0)));
  const std::string xml = soap::value_to_xml(v, *int_array_format(), "params");
  for (auto _ : state) {
    const auto dom = xml::parse_document(xml);
    const pbio::Value decoded = soap::value_from_xml(*dom, *int_array_format());
    benchmark::DoNotOptimize(
        pbio::encode_value_message(decoded, *int_array_format()));
  }
}
BENCHMARK(BM_ConversionHandlerXmlToBin)->Arg(1024)->Arg(102400);

}  // namespace
}  // namespace sbq::bench

BENCHMARK_MAIN();
