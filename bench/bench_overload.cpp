// Overload behavior of the HTTP server across both serving fronts.
//
// Two experiments, A/B'd across FrontMode::kThreaded and FrontMode::kEvent
// (selectable with --front=threaded|event|both):
//
//   1. Overload grid — goodput and p99 latency at 1x / 4x / 16x of serving
//      capacity, with load shedding on (tight accepted-connection queue,
//      arrivals past it answered 503 + Retry-After) versus off (an
//      effectively unbounded queue that happily soaks up latency nobody
//      asked for). Expected shape: at 1x the configurations match. Past
//      saturation the shedding server holds p99 near the service time while
//      the non-shedding server's tail grows with the queue. The event front
//      must track the threaded front's p99 closely (the ladder is the same;
//      only the connection plumbing changed).
//
//   2. Connection capacity — N keep-alive clients connect, make one request
//      each, and then HOLD their connections open. The threaded front parks
//      one worker per connection, so with 2 workers only ~2 clients are ever
//      served while the rest wait; the event front keeps connections as
//      state, not threads, so all N are served through the same 2 workers.
//      This is the refactor's headline number: served-while-held, event vs
//      threaded, at equal worker count.
//
// One JSON object per line on stdout, machine-consumable; the comparator
// lives in scripts/check_bench_overload.py and the checked-in trajectory in
// BENCH_overload.json.
//   {"bench":"overload","front":"event","multiplier":4,...}
//   {"bench":"overload_capacity","front":"threaded","clients":64,...}
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "http/client.h"
#include "http/message.h"
#include "http/server.h"
#include "net/tcp.h"
#include "qos/load.h"

namespace sbq::bench {
namespace {

constexpr std::size_t kWorkers = 2;
constexpr std::size_t kRuntimes = 2;  // event-front accept shards
constexpr int kServiceUs = 2000;      // per-request CPU stand-in
constexpr int kRunMs = 400;           // measurement window per configuration
constexpr std::size_t kBodyBytes = 2048;
constexpr std::size_t kHeldClients = 64;  // capacity experiment population

const char* front_name(http::FrontMode front) {
  return front == http::FrontMode::kEvent ? "event" : "threaded";
}

struct ConfigResult {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t sheds = 0;        // 503s observed client-side
  std::uint64_t errors = 0;       // resets/refusals under pressure
  std::vector<double> latency_ms;  // successful calls only
  double wall_s = 0.0;
  http::ServerStats server;
  double smoothed_load = 0.0;
  std::uint64_t queue_high_water = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

ConfigResult run_config(http::FrontMode front, std::size_t load_multiplier,
                        bool shedding) {
  http::ServerOptions options;
  options.front = front;
  options.workers = kWorkers;
  options.runtimes = kRuntimes;
  // "Shedding off" is approximated by a queue deep enough that nothing is
  // ever refused within the measurement window.
  options.queue_depth = shedding ? 2 : 100'000;
  options.max_connections = 200'000;
  options.shed_retry_after_s = 1;
  http::Server server(0,
                      [](const http::Request&) {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(kServiceUs));
                        http::Response resp;
                        resp.set_body(std::string(kBodyBytes, 'b'));
                        return resp;
                      },
                      options);

  // The qos::LoadMonitor rides along, fed from the server's load signal the
  // same way a ServiceRuntime would feed it. The event front contributes
  // its extra fields (runtimes, connections, pending events) for free.
  qos::LoadMonitor monitor;
  monitor.set_source([&server] {
    const http::ServerLoad l = server.load();
    qos::LoadSample s;
    s.queue_depth = l.queue_depth;
    s.queue_capacity = l.queue_capacity;
    s.in_flight = l.in_flight;
    s.workers = l.workers;
    s.runtimes = l.runtimes;
    s.connections = l.connections;
    s.pending_events = l.pending_events;
    return s;
  });

  const std::size_t clients = kWorkers * load_multiplier;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> attempts{0}, successes{0}, sheds{0}, errors{0};
  std::mutex latency_mu;
  std::vector<double> latency_ms;

  auto client_loop = [&] {
    std::vector<double> local_ms;
    while (!stop.load()) {
      const Stopwatch request_timer;
      ++attempts;
      try {
        // One connection per request: each arrival faces admission control,
        // which is the behavior under measurement.
        auto stream = net::TcpStream::connect("127.0.0.1", server.port());
        http::Client conn(*stream);
        http::Request req;
        req.method = "POST";
        req.set_body("work");
        req.headers.set("Connection", "close");
        const http::Response resp = conn.round_trip(req);
        if (resp.status == 200) {
          local_ms.push_back(request_timer.elapsed_us() / 1000.0);
          ++successes;
        } else if (resp.status == 503) {
          ++sheds;
        } else {
          ++errors;
        }
      } catch (const Error&) {
        ++errors;  // shed close can race the response read
      }
    }
    std::lock_guard lock(latency_mu);
    latency_ms.insert(latency_ms.end(), local_ms.begin(), local_ms.end());
  };

  const Stopwatch run_timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) threads.emplace_back(client_loop);

  // Sample the load signal on the side, as the runtime's per-request poll
  // would, while the measurement window elapses.
  const std::uint64_t window_ns = std::uint64_t{kRunMs} * 1'000'000;
  while (run_timer.elapsed_ns() < window_ns) {
    monitor.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const double wall_s =
      static_cast<double>(run_timer.elapsed_ns()) / 1'000'000'000.0;

  ConfigResult r;
  r.attempts = attempts.load();
  r.successes = successes.load();
  r.sheds = sheds.load();
  r.errors = errors.load();
  r.latency_ms = std::move(latency_ms);
  r.wall_s = wall_s;
  r.server = server.stats();
  r.smoothed_load = monitor.load();
  r.queue_high_water = monitor.queue_high_water();
  server.shutdown(/*drain_deadline_us=*/500'000);
  return r;
}

void print_config_row(http::FrontMode front, std::size_t multiplier,
                      bool shedding, ConfigResult& r) {
  const double goodput =
      r.wall_s > 0.0 ? static_cast<double>(r.successes) / r.wall_s : 0.0;
  const double p50 = percentile(r.latency_ms, 0.50);
  const double p99 = percentile(r.latency_ms, 0.99);
  std::printf(
      "{\"bench\":\"overload\",\"front\":\"%s\",\"multiplier\":%zu,"
      "\"shedding\":%s,"
      "\"workers\":%zu,\"attempts\":%llu,\"successes\":%llu,"
      "\"client_sheds\":%llu,\"errors\":%llu,"
      "\"goodput_rps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"server_accepted\":%llu,\"server_shed\":%llu,"
      "\"peak_in_flight\":%llu,\"queue_high_water\":%llu,"
      "\"smoothed_load\":%.3f}\n",
      front_name(front), multiplier, shedding ? "true" : "false",
      kWorkers, static_cast<unsigned long long>(r.attempts),
      static_cast<unsigned long long>(r.successes),
      static_cast<unsigned long long>(r.sheds),
      static_cast<unsigned long long>(r.errors), goodput, p50, p99,
      static_cast<unsigned long long>(r.server.accepted),
      static_cast<unsigned long long>(r.server.shed),
      static_cast<unsigned long long>(r.server.peak_in_flight),
      static_cast<unsigned long long>(r.queue_high_water), r.smoothed_load);
  std::fflush(stdout);
}

struct CapacityResult {
  std::uint64_t served = 0;   // got a 200 while every connection is held open
  std::uint64_t sheds = 0;    // 503 at admission
  std::uint64_t errors = 0;   // timed out waiting, reset, refused
  http::ServerStats server;
  double window_s = 0.0;
};

/// The capacity experiment: kHeldClients keep-alive clients connect, make
/// one request each, and hold their connections open until told to let go.
/// Every connection a front can answer while all of them stay open counts
/// as a concurrently-sustained connection.
CapacityResult run_capacity(http::FrontMode front) {
  http::ServerOptions options;
  options.front = front;
  options.workers = kWorkers;
  options.runtimes = kRuntimes;
  // A queue deep enough for the whole population: the experiment measures
  // worker-parking, not admission control, so nobody is refused up front.
  options.queue_depth = kHeldClients;
  options.max_connections = kHeldClients * 4;
  // Idle deadline longer than the window: held connections must not be
  // reclaimed mid-experiment (that would free a parked worker and flatter
  // the threaded front).
  options.idle_timeout_us = 10'000'000;
  options.shed_retry_after_s = 1;
  http::Server server(0,
                      [](const http::Request&) {
                        http::Response resp;
                        resp.set_body("held");
                        return resp;
                      },
                      options);

  std::atomic<std::uint64_t> served{0}, sheds{0}, errors{0};
  std::atomic<std::size_t> settled{0};  // clients whose fate is decided
  std::atomic<bool> release{false};

  auto client_loop = [&] {
    std::unique_ptr<net::TcpStream> stream;
    try {
      stream = net::TcpStream::connect("127.0.0.1", server.port());
      // A blocked client (its worker is parked by another held connection)
      // must resolve within the window, as an error, not a hang.
      stream->set_read_timeout_us(1'500'000);
      http::Client conn(*stream);
      http::Request req;
      req.method = "GET";
      req.target = "/held";
      const http::Response resp = conn.round_trip(req);
      if (resp.status == 200) {
        ++served;
      } else if (resp.status == 503) {
        ++sheds;
      } else {
        ++errors;
      }
    } catch (const Error&) {
      ++errors;
    }
    ++settled;
    // Hold the connection open — served or not — so the population's
    // concurrent-connection pressure stays constant until the release.
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };

  const Stopwatch window_timer;
  std::vector<std::thread> threads;
  threads.reserve(kHeldClients);
  for (std::size_t i = 0; i < kHeldClients; ++i) {
    threads.emplace_back(client_loop);
  }
  // Wait for every client to be served, shed, or timed out (2s backstop).
  while (settled.load() < kHeldClients &&
         window_timer.elapsed_ns() < 2'000'000'000ull) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  CapacityResult r;
  r.served = served.load();
  r.sheds = sheds.load();
  r.errors = errors.load();
  r.server = server.stats();
  r.window_s = static_cast<double>(window_timer.elapsed_ns()) / 1'000'000'000.0;
  release.store(true);
  for (auto& t : threads) t.join();
  server.shutdown(/*drain_deadline_us=*/100'000);
  return r;
}

void print_capacity_row(http::FrontMode front, const CapacityResult& r) {
  std::printf(
      "{\"bench\":\"overload_capacity\",\"front\":\"%s\",\"clients\":%zu,"
      "\"workers\":%zu,\"served\":%llu,\"client_sheds\":%llu,"
      "\"errors\":%llu,\"server_accepted\":%llu,\"peak_connections\":%llu,"
      "\"window_s\":%.3f}\n",
      front_name(front), kHeldClients, kWorkers,
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.sheds),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.server.accepted),
      static_cast<unsigned long long>(r.server.peak_connections), r.window_s);
  std::fflush(stdout);
}

}  // namespace
}  // namespace sbq::bench

int main(int argc, char** argv) {
  using sbq::bench::CapacityResult;
  using sbq::bench::ConfigResult;
  using sbq::bench::print_capacity_row;
  using sbq::bench::print_config_row;
  using sbq::bench::run_capacity;
  using sbq::bench::run_config;

  std::vector<sbq::http::FrontMode> fronts = {sbq::http::FrontMode::kThreaded,
                                              sbq::http::FrontMode::kEvent};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--front=threaded") == 0) {
      fronts = {sbq::http::FrontMode::kThreaded};
    } else if (std::strcmp(argv[i], "--front=event") == 0) {
      fronts = {sbq::http::FrontMode::kEvent};
    } else if (std::strcmp(argv[i], "--front=both") == 0) {
      fronts = {sbq::http::FrontMode::kThreaded,
                sbq::http::FrontMode::kEvent};
    } else {
      std::fprintf(stderr,
                   "usage: %s [--front=threaded|event|both]\n", argv[0]);
      return 2;
    }
  }

  for (const auto front : fronts) {
    for (const std::size_t multiplier : {1u, 4u, 16u}) {
      for (const bool shedding : {true, false}) {
        ConfigResult r = run_config(front, multiplier, shedding);
        print_config_row(front, multiplier, shedding, r);
      }
    }
    const CapacityResult cap = run_capacity(front);
    print_capacity_row(front, cap);
  }
  return 0;
}
