// Overload behavior of the bounded-pool HTTP server: goodput and p99
// latency at 1x / 4x / 16x of serving capacity, with load shedding on
// (tight accepted-connection queue, arrivals past it answered 503 +
// Retry-After) versus off (an effectively unbounded queue that happily
// soaks up latency nobody asked for).
//
// Expected shape: at 1x the two configurations match. Past saturation the
// shedding server holds p99 near the service time — excess arrivals are
// refused in microseconds instead of queueing — while the non-shedding
// server's tail grows with the queue. Goodput stays pinned at capacity for
// both (the pool is the bottleneck either way); what shedding buys is the
// tail, which is the paper's continuous-quality argument applied to
// admission instead of message content.
//
// One JSON object per line on stdout, machine-consumable:
//   {"bench":"overload","multiplier":4,"shedding":true,...}
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "http/client.h"
#include "http/message.h"
#include "http/server.h"
#include "net/tcp.h"
#include "qos/load.h"

namespace sbq::bench {
namespace {

constexpr std::size_t kWorkers = 2;
constexpr int kServiceUs = 2000;     // per-request CPU stand-in
constexpr int kRunMs = 400;          // measurement window per configuration
constexpr std::size_t kBodyBytes = 2048;

struct ConfigResult {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t sheds = 0;        // 503s observed client-side
  std::uint64_t errors = 0;       // resets/refusals under pressure
  std::vector<double> latency_ms;  // successful calls only
  double wall_s = 0.0;
  http::ServerStats server;
  double smoothed_load = 0.0;
  std::uint64_t queue_high_water = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

ConfigResult run_config(std::size_t load_multiplier, bool shedding) {
  http::ServerOptions options;
  options.workers = kWorkers;
  // "Shedding off" is approximated by a queue deep enough that nothing is
  // ever refused within the measurement window.
  options.queue_depth = shedding ? 2 : 100'000;
  options.max_connections = 200'000;
  options.shed_retry_after_s = 1;
  http::Server server(0,
                      [](const http::Request&) {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(kServiceUs));
                        http::Response resp;
                        resp.set_body(std::string(kBodyBytes, 'b'));
                        return resp;
                      },
                      options);

  // The qos::LoadMonitor rides along, fed from the server's load signal the
  // same way a ServiceRuntime would feed it.
  qos::LoadMonitor monitor;
  monitor.set_source([&server] {
    const http::ServerLoad l = server.load();
    qos::LoadSample s;
    s.queue_depth = l.queue_depth;
    s.queue_capacity = l.queue_capacity;
    s.in_flight = l.in_flight;
    s.workers = l.workers;
    return s;
  });

  const std::size_t clients = kWorkers * load_multiplier;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> attempts{0}, successes{0}, sheds{0}, errors{0};
  std::mutex latency_mu;
  std::vector<double> latency_ms;

  auto client_loop = [&] {
    std::vector<double> local_ms;
    while (!stop.load()) {
      const Stopwatch request_timer;
      ++attempts;
      try {
        // One connection per request: each arrival faces admission control,
        // which is the behavior under measurement.
        auto stream = net::TcpStream::connect("127.0.0.1", server.port());
        http::Client conn(*stream);
        http::Request req;
        req.method = "POST";
        req.set_body("work");
        req.headers.set("Connection", "close");
        const http::Response resp = conn.round_trip(req);
        if (resp.status == 200) {
          local_ms.push_back(request_timer.elapsed_us() / 1000.0);
          ++successes;
        } else if (resp.status == 503) {
          ++sheds;
        } else {
          ++errors;
        }
      } catch (const Error&) {
        ++errors;  // shed close can race the response read
      }
    }
    std::lock_guard lock(latency_mu);
    latency_ms.insert(latency_ms.end(), local_ms.begin(), local_ms.end());
  };

  const Stopwatch run_timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) threads.emplace_back(client_loop);

  // Sample the load signal on the side, as the runtime's per-request poll
  // would, while the measurement window elapses.
  const std::uint64_t window_ns = std::uint64_t{kRunMs} * 1'000'000;
  while (run_timer.elapsed_ns() < window_ns) {
    monitor.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const double wall_s =
      static_cast<double>(run_timer.elapsed_ns()) / 1'000'000'000.0;

  ConfigResult r;
  r.attempts = attempts.load();
  r.successes = successes.load();
  r.sheds = sheds.load();
  r.errors = errors.load();
  r.latency_ms = std::move(latency_ms);
  r.wall_s = wall_s;
  r.server = server.stats();
  r.smoothed_load = monitor.load();
  r.queue_high_water = monitor.queue_high_water();
  server.shutdown(/*drain_deadline_us=*/500'000);
  return r;
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using sbq::bench::ConfigResult;
  using sbq::bench::percentile;
  using sbq::bench::run_config;

  for (const std::size_t multiplier : {1u, 4u, 16u}) {
    for (const bool shedding : {true, false}) {
      ConfigResult r = run_config(multiplier, shedding);
      const double goodput =
          r.wall_s > 0.0 ? static_cast<double>(r.successes) / r.wall_s : 0.0;
      const double p50 = percentile(r.latency_ms, 0.50);
      const double p99 = percentile(r.latency_ms, 0.99);
      std::printf(
          "{\"bench\":\"overload\",\"multiplier\":%zu,\"shedding\":%s,"
          "\"workers\":%zu,\"attempts\":%llu,\"successes\":%llu,"
          "\"client_sheds\":%llu,\"errors\":%llu,"
          "\"goodput_rps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
          "\"server_accepted\":%llu,\"server_shed\":%llu,"
          "\"peak_in_flight\":%llu,\"queue_high_water\":%llu,"
          "\"smoothed_load\":%.3f}\n",
          multiplier, shedding ? "true" : "false",
          static_cast<std::size_t>(sbq::bench::kWorkers),
          static_cast<unsigned long long>(r.attempts),
          static_cast<unsigned long long>(r.successes),
          static_cast<unsigned long long>(r.sheds),
          static_cast<unsigned long long>(r.errors), goodput, p50, p99,
          static_cast<unsigned long long>(r.server.accepted),
          static_cast<unsigned long long>(r.server.shed),
          static_cast<unsigned long long>(r.server.peak_in_flight),
          static_cast<unsigned long long>(r.queue_high_water), r.smoothed_load);
      std::fflush(stdout);
    }
  }
  return 0;
}
