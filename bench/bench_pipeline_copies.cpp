// Zero-copy pipeline ablation — copies per round trip on the Fig. 8
// imaging workload.
//
// The same getImage exchange (640x480 edge-detected PPM frame, ~0.9 MB
// response) runs twice per link model: once with the flat pipeline (each
// endpoint splices the PBIO message into a contiguous HTTP body) and once
// with the BufferChain pipeline (the payload rides as borrowed segments
// from the encoded Value to the stream write). Both produce byte-identical
// wire traffic — verified below — so the link cost is the same; what the
// chain removes is at least one full-message memcpy per endpoint per round
// trip, visible in EndpointStats::bytes_copied.
#include <cstdio>

#include "apps/image/codec.h"
#include "apps/image/ops.h"
#include "apps/image/synth.h"
#include "bench_util.h"

namespace sbq::bench {
namespace {

using pbio::Value;

constexpr int kRequests = 8;

struct ModeResult {
  core::EndpointStats client;
  core::EndpointStats server;
  std::uint64_t wire_bytes_per_rt = 0;   // request + response
  double response_ms = 0.0;              // mean simulated response time
  Value last_result;                     // for cross-mode equality
  Bytes first_request_wire;              // exact request bytes (deterministic)
};

/// Captures each request's serialized wire image on its way to the link.
struct CaptureTransport final : core::Transport {
  explicit CaptureTransport(core::Transport& inner) : inner(inner) {}
  http::Response round_trip(const http::Request& request) override {
    if (first_wire.empty()) first_wire = request.serialize();
    return inner.round_trip(request);
  }
  core::Transport& inner;
  Bytes first_wire;
};

ModeResult run_mode(const net::LinkConfig& link_config, bool zero_copy) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime(format_server, clock);
  runtime.set_zero_copy(zero_copy);

  const image::Image frame = image::edge_detect(image::synth_star_field());
  const Value full_value = image::image_to_value(frame, *image::image_format());
  runtime.register_operation("getImage", image::image_request_format(),
                             image::image_format(),
                             [&](const Value&) { return full_value; });

  net::LinkModel link{link_config};
  core::SimLinkTransport transport(runtime, link, clock);
  transport.set_charge_server_cpu(false);  // isolate communication behavior
  CaptureTransport capture(transport);

  wsdl::ServiceDesc svc;
  svc.name = "ImageService";
  svc.operations.push_back(wsdl::OperationDesc{
      "getImage", image::image_request_format(), image::image_format()});
  core::ClientStub client(capture, core::WireFormat::kBinary, svc, format_server,
                          clock);
  client.set_client_id("copies-bench");  // identical headers across modes
  client.set_zero_copy(zero_copy);

  const Value request = Value::record(
      {{"filename", "m31_field_042.ppm"}, {"transform", "edge_detect"}});

  ModeResult result;
  double total_ms = 0.0;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t start = clock->now_us();
    result.last_result = client.call("getImage", request);
    total_ms += static_cast<double>(clock->now_us() - start) / 1000.0;
  }
  result.client = client.stats();
  result.server = runtime.stats();
  result.wire_bytes_per_rt =
      (result.client.bytes_sent + result.client.bytes_received) / kRequests;
  result.response_ms = total_ms / kRequests;
  result.first_request_wire = std::move(capture.first_wire);
  return result;
}

std::uint64_t copied_per_rt(const ModeResult& r) {
  return (r.client.bytes_copied + r.server.bytes_copied) / kRequests;
}

void report_link(const char* link_name, const net::LinkConfig& config,
                 std::uint64_t payload_bytes) {
  const ModeResult flat = run_mode(config, /*zero_copy=*/false);
  const ModeResult chain = run_mode(config, /*zero_copy=*/true);

  std::printf("\n%s\n", link_name);
  TablePrinter table({"pipeline", "copied_B/rt", "segs/rt", "marshal_us",
                      "envelope_us", "wire_B/rt", "resp_ms"},
                     14);
  auto row = [&](const char* name, const ModeResult& r) {
    table.row({name, std::to_string(copied_per_rt(r)),
               std::to_string((r.client.segments_written +
                               r.server.segments_written) /
                              kRequests),
               TablePrinter::num((r.client.marshal_us + r.server.marshal_us) /
                                 kRequests),
               TablePrinter::num((r.client.envelope_us + r.server.envelope_us) /
                                 kRequests),
               std::to_string(r.wire_bytes_per_rt),
               TablePrinter::num(r.response_ms)});
  };
  row("flat", flat);
  row("chain", chain);

  // --- verification: the chain changes where bytes live, not the wire ----
  bool ok = true;
  if (!(flat.last_result == chain.last_result)) {
    std::printf("  FAIL: decoded results differ between modes\n");
    ok = false;
  }
  if (flat.first_request_wire != chain.first_request_wire) {
    std::printf("  FAIL: request wire bytes differ between modes\n");
    ok = false;
  }
  if (flat.wire_bytes_per_rt != chain.wire_bytes_per_rt) {
    std::printf("  FAIL: wire sizes differ between modes\n");
    ok = false;
  }
  const std::uint64_t saved = copied_per_rt(flat) - copied_per_rt(chain);
  if (copied_per_rt(flat) < copied_per_rt(chain) || saved < payload_bytes) {
    std::printf("  FAIL: chain did not remove a full-message copy per RT\n");
    ok = false;
  }
  if (ok) {
    std::printf(
        "  verified: identical wire bytes and decoded values; chain removes\n"
        "  %llu B of memcpy per round trip (>= the %llu B response payload —\n"
        "  at least one whole-message copy eliminated).\n",
        static_cast<unsigned long long>(saved),
        static_cast<unsigned long long>(payload_bytes));
  }
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;

  banner("Zero-copy pipeline: copies per round trip",
         "Fig. 8 imaging exchange, flat vs BufferChain pipeline; bytes_copied\n"
         "counts every whole-buffer splice/flatten at both endpoints");

  const sbq::image::Image frame =
      sbq::image::edge_detect(sbq::image::synth_star_field());
  const std::uint64_t payload = frame.byte_size();
  std::printf("response payload: %llu B of pixels per frame\n",
              static_cast<unsigned long long>(payload));

  report_link("100 Mbps LAN", sbq::net::lan_100mbps(), payload);
  report_link("1 Mbps ADSL", sbq::net::adsl_1mbps(), payload);

  std::printf(
      "\nReading: flat mode splices the PBIO message into the HTTP body at\n"
      "each endpoint (~2 payload copies per RT); the chain threads borrowed\n"
      "segments through envelope -> HTTP -> stream, so copied_B/rt collapses\n"
      "to header-sized scratch reads while wire bytes and timing are\n"
      "unchanged.\n");
  return 0;
}
