// §IV-C.4 — remote visualization: a display client asks the service portal
// for molecule bond data rendered as SVG; the portal sits in front of an
// ECho event source (the bond server) and applies client-supplied filter
// parameters before responding.
//
// Paper's measurement: "a response time of about 2400µs for a data size of
// 16Kbytes" over a 100 Mbps link — "low enough for visualization purposes".
// Expected shape here: response times in the low milliseconds for ~16 KB
// SVG payloads; changing the filter (render size / format) works per
// request.
#include <cstdio>

#include "apps/echo/echo.h"
#include "apps/md/bond.h"
#include "apps/svg/svg.h"
#include "bench_util.h"

namespace sbq::bench {
namespace {

using pbio::Value;

pbio::FormatPtr view_request_format() {
  static const pbio::FormatPtr f = pbio::FormatBuilder("view_request")
                                       .add_string("output_format")
                                       .add_scalar("size", pbio::TypeKind::kInt32)
                                       .build();
  return f;
}

pbio::FormatPtr view_response_format() {
  static const pbio::FormatPtr f = pbio::FormatBuilder("view_response")
                                       .add_scalar("timestep", pbio::TypeKind::kInt32)
                                       .add_string("document")
                                       .build();
  return f;
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;
  using namespace sbq;

  banner("Remote visualization (paper §IV-C.4)",
         "ECho bond source -> service portal -> SVG display client over "
         "100 Mbps;\npaper reports ~2400 µs for ~16 KB responses");

  // The ECho side: a bond server publishing timesteps into a channel; the
  // portal caches the latest event.
  echo::EventDomain domain;
  auto bond_channel = domain.create_channel("bonds", md::timestep_format());
  md::BondSimulation sim;
  md::Timestep latest;
  bond_channel->subscribe([&](const echo::Event& e) {
    latest = md::timestep_from_value(e.value);
    return true;
  });

  // The portal: a SOAP-bin service whose handler runs the client-requested
  // filter (render to SVG at the requested size) over the cached event.
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime(format_server, clock);
  runtime.register_operation(
      "getView", view_request_format(), view_response_format(),
      [&](const Value& params) {
        svg::RenderOptions options;
        options.width = static_cast<int>(params.field("size").as_i64());
        options.height = options.width;
        if (params.field("output_format").as_string() != "svg") {
          throw RpcError("unsupported output format");
        }
        return Value::record(
            {{"timestep", latest.index},
             {"document", svg::render_molecule(latest, sim.config().box_size,
                                               options)}});
      });

  core::SimLinkTransport transport(runtime, net::LinkModel(net::lan_100mbps()),
                                   clock);
  wsdl::ServiceDesc svc;
  svc.name = "VizPortal";
  svc.operations.push_back(wsdl::OperationDesc{"getView", view_request_format(),
                                               view_response_format()});
  core::ClientStub client(transport, core::WireFormat::kBinary, svc, format_server,
                          clock);

  TablePrinter table({"frame", "render_px", "svg_bytes", "response_us"}, 14);
  double total_us = 0;
  std::size_t total_bytes = 0;
  const int frames = 12;
  for (int i = 0; i < frames; ++i) {
    // New simulation data arrives through the event channel.
    bond_channel->submit({md::timestep_format(), md::timestep_to_value(sim.step())});

    // The client can change the filter per request (paper: "the client can
    // dynamically change the filter code and the output format desired").
    const int size = (i % 3 == 0) ? 640 : 480;
    const std::uint64_t start = clock->now_us();
    const Value view = client.call(
        "getView", Value::record({{"output_format", "svg"}, {"size", size}}));
    const double us = static_cast<double>(clock->now_us() - start);
    const std::size_t bytes = view.field("document").as_string().size();
    table.row({std::to_string(view.field("timestep").as_i64()),
               std::to_string(size), TablePrinter::bytes(bytes),
               TablePrinter::num(us, 0)});
    if (i > 0) {  // skip the cold-start frame, like the paper
      total_us += us;
      total_bytes += bytes;
    }
  }
  std::printf("\nmean: %.0f µs per response, mean SVG size %s (paper: ~2400 µs "
              "at ~16KB)\n",
              total_us / (frames - 1),
              TablePrinter::bytes(total_bytes / (frames - 1)).c_str());
  return 0;
}
