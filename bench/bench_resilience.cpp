// Client-side resilience under replica failure and brownout.
//
// Two experiments, both on a simulated clock (virtual time, no threads), so
// every number is exactly reproducible run-to-run:
//
//   1. Kill — three echo replicas; replica 0 (the preferred one) is dead
//      from t=2s to t=5s of a 10s window with a call every 10ms. The
//      baseline is a plain ClientStub pinned to replica 0 with the same
//      retry budget: it loses every call for which the retry schedule fits
//      inside the outage. The resilient mode fronts the same replicas with
//      a ResilientStub: the breaker trips, calls fail over, health probes
//      watch the corpse, and the probe that succeeds at t=5s routes traffic
//      back. Acceptance: resilient success >= 99% with bounded p99 while
//      the baseline demonstrably bleeds (<= 90%).
//
//   2. Brownout — replica 0 stays up but serves every exchange 300ms slow
//      from t=2s to t=5s (its peers carry a 2ms handicap, so selection
//      genuinely prefers the replica that browns out). Three modes:
//      baseline (pinned stub: eats the stall, p99 ~ 300ms), resilient
//      (EWMA re-routes after the first slow responses), and resilient_hedge
//      (idempotent calls are hedged at p95 x 2 of the replica's own latency
//      profile — the straggler is cut off at the hedge boundary and the
//      next-best replica answers). Acceptance: hedging keeps p99 well under
//      half the baseline's.
//
// One JSON object per line on stdout; the comparator lives in
// scripts/check_bench_resilience.py and the checked-in trajectory in
// BENCH_resilience.json.
//   {"bench":"resilience_kill","mode":"resilient",...}
//   {"bench":"resilience_brownout","mode":"resilient_hedge",...}
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/stats.h"
#include "core/client.h"
#include "core/resilience.h"
#include "core/service.h"
#include "core/transports.h"
#include "net/link.h"
#include "net/sim_clock.h"
#include "pbio/registry.h"
#include "pbio/value.h"
#include "pbio/value_codec.h"
#include "wsdl/wsdl.h"

namespace sbq::bench {
namespace {

using core::CallOptions;
using core::ClientStub;
using core::EndpointConfig;
using core::EndpointSet;
using core::ResilienceOptions;
using core::ResilientStub;
using core::ServiceRuntime;
using core::SimLinkTransport;
using core::Transport;
using core::WireFormat;
using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

constexpr std::uint64_t kWindowUs = 10'000'000;  // 10s measurement window
constexpr std::uint64_t kTickUs = 10'000;        // one call every 10ms
constexpr std::uint64_t kFaultStartUs = 2'000'000;
constexpr std::uint64_t kFaultEndUs = 5'000'000;
constexpr std::uint64_t kStallUs = 300'000;      // brownout service stall
constexpr std::uint64_t kHandicapUs = 2'000;     // peers' extra latency
constexpr std::uint64_t kDeadlineUs = 500'000;   // per-attempt deadline

FormatPtr req_format() {
  return FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build();
}

FormatPtr resp_format() {
  return FormatBuilder("resp").add_scalar("n", TypeKind::kInt32).build();
}

wsdl::ServiceDesc echo_service() {
  wsdl::ServiceDesc svc;
  svc.name = "Echo";
  wsdl::OperationDesc op;
  op.name = "echo";
  op.input = req_format();
  op.output = resp_format();
  op.idempotent = true;
  svc.operations.push_back(std::move(op));
  return svc;
}

/// Scripted failure decorator over a replica's transport. Within the down
/// window every round trip costs a connect attempt and fails; within the
/// brownout window every round trip stalls kStallUs (bounded by the armed
/// per-attempt deadline, which then surfaces as a timeout — exactly what a
/// hedge boundary looks like). A constant handicap models a farther replica.
class FlakyTransport final : public Transport {
 public:
  FlakyTransport(std::unique_ptr<Transport> inner,
                 std::shared_ptr<net::SimClock> clock)
      : inner_(std::move(inner)), clock_(std::move(clock)) {}

  void set_down_window(std::uint64_t start_us, std::uint64_t end_us) {
    down_start_us_ = start_us;
    down_end_us_ = end_us;
  }
  void set_brownout_window(std::uint64_t start_us, std::uint64_t end_us) {
    brown_start_us_ = start_us;
    brown_end_us_ = end_us;
  }
  void set_handicap_us(std::uint64_t us) { handicap_us_ = us; }

  http::Response round_trip(const http::Request& request) override {
    const std::uint64_t now = clock_->now_us();
    if (now >= down_start_us_ && now < down_end_us_) {
      clock_->advance_us(200);  // the failed connect is not free
      throw TransportError("replica down");
    }
    if (now >= brown_start_us_ && now < brown_end_us_) {
      if (timeout_us_ > 0 && kStallUs >= timeout_us_) {
        clock_->advance_us(timeout_us_);
        throw TimeoutError("brownout stall past the attempt deadline");
      }
      clock_->advance_us(kStallUs);
    }
    if (handicap_us_ > 0) clock_->advance_us(handicap_us_);
    return inner_->round_trip(request);
  }

  void set_attempt_timeout_us(std::uint64_t timeout_us) override {
    timeout_us_ = timeout_us;
    inner_->set_attempt_timeout_us(timeout_us);
  }
  void reconnect() override { inner_->reconnect(); }

 private:
  std::unique_ptr<Transport> inner_;
  std::shared_ptr<net::SimClock> clock_;
  std::uint64_t down_start_us_ = 0, down_end_us_ = 0;
  std::uint64_t brown_start_us_ = 0, brown_end_us_ = 0;
  std::uint64_t handicap_us_ = 0;
  std::uint64_t timeout_us_ = 0;
};

enum class Fault { kKill, kBrownout };

/// Three simulated echo replicas on one virtual clock. Replica 0 carries
/// the scripted fault; replicas 1 and 2 carry the handicap that makes
/// replica 0 the honest selection favorite.
struct Replicas {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  std::vector<std::unique_ptr<ServiceRuntime>> runtimes;
  Fault fault;

  explicit Replicas(Fault f) : fault(f) {
    for (int i = 0; i < 3; ++i) {
      auto runtime = std::make_unique<ServiceRuntime>(format_server, clock);
      runtime->register_operation(
          "echo", req_format(), resp_format(), [](const Value& params) {
            return Value::record({{"n", params.field("n").as_i64()}});
          });
      runtimes.push_back(std::move(runtime));
    }
  }

  std::unique_ptr<Transport> transport(std::size_t i) {
    auto link = std::make_unique<SimLinkTransport>(
        *runtimes[i], net::LinkModel(net::adsl_1mbps()), clock);
    link->set_charge_server_cpu(false);
    auto flaky = std::make_unique<FlakyTransport>(std::move(link), clock);
    if (i == 0) {
      if (fault == Fault::kKill) {
        flaky->set_down_window(kFaultStartUs, kFaultEndUs);
      } else {
        flaky->set_brownout_window(kFaultStartUs, kFaultEndUs);
      }
    } else {
      flaky->set_handicap_us(kHandicapUs);
    }
    return flaky;
  }

  std::vector<EndpointConfig> configs() {
    std::vector<EndpointConfig> out;
    for (std::size_t i = 0; i < 3; ++i) {
      out.push_back(
          {"replica-" + std::to_string(i), [this, i] { return transport(i); }});
    }
    return out;
  }
};

struct RunResult {
  std::uint64_t calls = 0;
  std::uint64_t successes = 0;
  std::vector<double> latency_ms;
  EndpointStats stats;
};

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

CallOptions call_options() {
  CallOptions opts;
  opts.deadline_us = kDeadlineUs;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_us = 10'000;
  opts.retry.backoff_multiplier = 2.0;
  opts.retry.jitter = 0.1;
  return opts;
}

/// Paces one call per tick over the window against `invoke`, measuring each
/// call's virtual-time latency.
template <typename Invoke>
RunResult drive(net::SimClock& clock, Invoke&& invoke) {
  RunResult r;
  const std::uint64_t t0 = clock.now_us();
  for (std::uint64_t tick = t0; tick < t0 + kWindowUs; tick += kTickUs) {
    if (clock.now_us() < tick) clock.advance_us(tick - clock.now_us());
    const std::uint64_t start = clock.now_us();
    ++r.calls;
    try {
      invoke(static_cast<std::int64_t>(r.calls));
      ++r.successes;
      r.latency_ms.push_back(
          static_cast<double>(clock.now_us() - start) / 1000.0);
    } catch (const Error&) {
      // A lost call: latency is not recorded (there is nothing to time).
    }
  }
  return r;
}

RunResult run_baseline(Fault fault) {
  Replicas env(fault);
  auto transport = env.transport(0);  // pinned to the faulty replica
  ClientStub stub(*transport, WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock);
  const CallOptions opts = call_options();
  RunResult r = drive(*env.clock, [&](std::int64_t n) {
    stub.call("echo", Value::record({{"n", n}}), opts);
  });
  r.stats = stub.stats();
  return r;
}

RunResult run_resilient(Fault fault, bool hedge) {
  Replicas env(fault);
  ResilienceOptions options;
  options.breaker.consecutive_failure_threshold = 2;
  options.breaker.cooldown_us = 500'000;
  options.hedge_enabled = hedge;
  options.hedge_min_samples = 8;
  options.hedge_percentile = 0.95;
  options.hedge_factor = 2.0;
  options.hedge_min_delay_us = 1'000;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);
  const CallOptions opts = call_options();
  RunResult r = drive(*env.clock, [&](std::int64_t n) {
    stub.call("echo", Value::record({{"n", n}}), opts);
  });
  r.stats = stub.stats();
  return r;
}

// A call is "slow" when it ran well past the healthy round trip (~36ms
// with the peer handicap) — i.e. it visibly ate brownout stall. With calls
// costing tens of milliseconds only a handful of browned calls fit in the
// window, too few for p99 to register; this counter (and max_ms) keeps the
// tail observable anyway.
constexpr double kSlowMs = 150.0;

void print_row(const char* bench, const char* mode, RunResult& r) {
  const double rate = r.calls > 0 ? static_cast<double>(r.successes) /
                                        static_cast<double>(r.calls)
                                  : 0.0;
  const auto slow_calls = static_cast<std::uint64_t>(
      std::count_if(r.latency_ms.begin(), r.latency_ms.end(),
                    [](double ms) { return ms >= kSlowMs; }));
  const double max_ms =
      r.latency_ms.empty()
          ? 0.0
          : *std::max_element(r.latency_ms.begin(), r.latency_ms.end());
  std::printf(
      "{\"bench\":\"%s\",\"mode\":\"%s\",\"calls\":%llu,"
      "\"successes\":%llu,\"success_rate\":%.4f,"
      "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,"
      "\"slow_calls\":%llu,"
      "\"failovers\":%llu,\"breaker_trips\":%llu,\"breaker_closes\":%llu,"
      "\"probes\":%llu,\"probe_failures\":%llu,"
      "\"hedges\":%llu,\"hedge_wins\":%llu}\n",
      bench, mode, static_cast<unsigned long long>(r.calls),
      static_cast<unsigned long long>(r.successes), rate,
      percentile(r.latency_ms, 0.50), percentile(r.latency_ms, 0.99), max_ms,
      static_cast<unsigned long long>(slow_calls),
      static_cast<unsigned long long>(r.stats.failovers),
      static_cast<unsigned long long>(r.stats.breaker_trips),
      static_cast<unsigned long long>(r.stats.breaker_closes),
      static_cast<unsigned long long>(r.stats.probes),
      static_cast<unsigned long long>(r.stats.probe_failures),
      static_cast<unsigned long long>(r.stats.hedges),
      static_cast<unsigned long long>(r.stats.hedge_wins));
  std::fflush(stdout);
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using sbq::bench::Fault;
  using sbq::bench::print_row;
  using sbq::bench::run_baseline;
  using sbq::bench::run_resilient;
  using sbq::bench::RunResult;

  RunResult kill_baseline = run_baseline(Fault::kKill);
  print_row("resilience_kill", "baseline", kill_baseline);
  RunResult kill_resilient = run_resilient(Fault::kKill, /*hedge=*/false);
  print_row("resilience_kill", "resilient", kill_resilient);

  RunResult brown_baseline = run_baseline(Fault::kBrownout);
  print_row("resilience_brownout", "baseline", brown_baseline);
  RunResult brown_resilient = run_resilient(Fault::kBrownout, /*hedge=*/false);
  print_row("resilience_brownout", "resilient", brown_resilient);
  RunResult brown_hedge = run_resilient(Fault::kBrownout, /*hedge=*/true);
  print_row("resilience_brownout", "resilient_hedge", brown_hedge);
  return 0;
}
