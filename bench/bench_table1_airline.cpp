// Table I — event rates for the airline operational information system.
//
// The OIS distributes catering excerpts to end users over the ADSL link.
// Paper's table:
//                         Size        Event rate (events/sec)
//   SOAP                  3898 bytes  10.15
//   SOAP-bin               860 bytes  13.76
//   Native PBIO            860 bytes  14.06
//   SOAP (compressed XML)  1264 bytes 13.17
//
// Expected shape: the ordering (native PBIO > SOAP-bin > compressed > plain
// SOAP) and the roughly 4.5x XML/PBIO size ratio. Absolute rates depend on
// the testbed.
#include <cstdio>

#include "apps/airline/ois.h"
#include "bench_util.h"
#include "pbio/value_codec.h"

namespace sbq::bench {
namespace {

using pbio::Value;

constexpr int kEvents = 25;

struct Row {
  std::string name;
  std::size_t size = 0;
  double events_per_sec = 0;
};

Row run_stack(const std::string& name, core::WireFormat wire,
              const Value& request, const airline::OperationalStore& store) {
  SimHarness h;
  h.format_server = std::make_shared<pbio::FormatServer>();
  h.clock = std::make_shared<net::SimClock>();
  h.runtime = std::make_unique<core::ServiceRuntime>(h.format_server, h.clock);
  h.runtime->register_operation(
      "getCatering", airline::catering_request_format(),
      airline::catering_excerpt_format(), [&store](const Value& params) {
        const airline::Flight* flight =
            store.flight(params.field("flight").as_string());
        if (flight == nullptr) throw RpcError("unknown flight");
        return airline::excerpt_to_value(airline::catering_excerpt(*flight));
      });
  h.transport = std::make_unique<core::SimLinkTransport>(
      *h.runtime, net::LinkModel(net::adsl_1mbps()), h.clock);

  wsdl::ServiceDesc svc;
  svc.name = "CateringService";
  svc.operations.push_back(wsdl::OperationDesc{"getCatering",
                                               airline::catering_request_format(),
                                               airline::catering_excerpt_format()});
  h.client = std::make_unique<core::ClientStub>(*h.transport, wire, svc,
                                                h.format_server, h.clock);

  h.timed_call("getCatering", request);  // warm formats
  const std::uint64_t sent_before = h.runtime->stats().bytes_sent;
  std::uint64_t total_us = 0;
  for (int i = 0; i < kEvents; ++i) {
    total_us += h.timed_call("getCatering", request);
  }
  Row row;
  row.name = name;
  // Response body size (what Table I reports per event).
  row.size = static_cast<std::size_t>(
      (h.runtime->stats().bytes_sent - sent_before) / kEvents);
  row.events_per_sec = 1e6 * kEvents / static_cast<double>(total_us);
  return row;
}

/// "Native PBIO": the OIS core path — PBIO messages straight over the link,
/// no HTTP, no SOAP envelope (how Delta's system consumed the feed).
Row run_native(const Value& excerpt, const net::LinkModel& link) {
  const Bytes request_wire =
      pbio::encode_value_message(Value::record({{"flight", "DL1000"}}),
                                 *airline::catering_request_format());
  Row row;
  row.name = "Native PBIO";
  std::uint64_t total_us = 0;
  Bytes wire;
  for (int i = 0; i < kEvents; ++i) {
    Stopwatch cpu;
    wire = pbio::encode_value_message(excerpt, *airline::catering_excerpt_format());
    const Value decoded = pbio::decode_value_message(
        BytesView{wire}, *airline::catering_excerpt_format());
    (void)decoded;
    total_us += static_cast<std::uint64_t>(cpu.elapsed_us());
    total_us += link.transfer_time_us(request_wire.size(), 0);
    total_us += link.transfer_time_us(wire.size(), 0);
  }
  row.size = wire.size();
  row.events_per_sec = 1e6 * kEvents / static_cast<double>(total_us);
  return row;
}

}  // namespace
}  // namespace sbq::bench

int main() {
  using namespace sbq::bench;
  using sbq::pbio::Value;

  banner("Table I: event rates for the airline application",
         "catering excerpts over ADSL; per-event response size and rate");

  sbq::airline::OperationalStore store(2004);
  store.populate(/*flights=*/4, /*passengers=*/34);
  const std::string flight = store.flight_numbers()[0];
  const Value request = Value::record({{"flight", flight}});
  const Value excerpt = sbq::airline::excerpt_to_value(
      sbq::airline::catering_excerpt(*store.flight(flight)));

  std::vector<Row> rows;
  rows.push_back(run_stack("SOAP", sbq::core::WireFormat::kXml, request, store));
  rows.push_back(run_stack("SOAP-bin", sbq::core::WireFormat::kBinary, request, store));
  rows.push_back(run_native(excerpt, sbq::net::LinkModel(sbq::net::adsl_1mbps())));
  rows.push_back(run_stack("SOAP (compressed XML)", sbq::core::WireFormat::kCompressedXml,
                           request, store));

  TablePrinter table({"variant", "size", "events_per_sec"}, 24);
  for (const Row& row : rows) {
    table.row({row.name, TablePrinter::bytes(row.size),
               TablePrinter::num(row.events_per_sec, 2)});
  }
  std::printf(
      "\nShape check vs paper (3898B/10.15, 860B/13.76, 860B/14.06, 1264B/13.17):\n"
      "ordering native PBIO > SOAP-bin > compressed XML > plain SOAP, with\n"
      "XML several times the binary size.\n");
  return 0;
}
