#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sbq::bench {

double cpu_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("SBQ_CPU_SCALE")) {
      const double v = std::atof(env);
      if (v > 0) return v;
    }
    return 8.0;
  }();
  return scale;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int column_width)
    : headers_(std::move(headers)), width_(column_width) {
  for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
  std::printf("\n");
  rule();
}

void TablePrinter::rule() const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    for (int c = 0; c < width_ - 2; ++c) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
  std::printf("\n");
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::bytes(std::size_t n) {
  char buf[64];
  if (n >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2fMB", static_cast<double>(n) / (1024.0 * 1024.0));
  } else if (n >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKB", static_cast<double>(n) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%zuB", n);
  }
  return buf;
}

void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

pbio::FormatPtr int_array_format() {
  static const pbio::FormatPtr format =
      pbio::FormatBuilder("int_array")
          .add_var_array("values", pbio::TypeKind::kInt32)
          .build();
  return format;
}

pbio::Value make_int_array(std::size_t payload_bytes) {
  pbio::Value values = pbio::Value::empty_array();
  const std::size_t count = payload_bytes / 4;
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(static_cast<std::int64_t>(1000000 + i * 7));
  }
  return pbio::Value::record({{"values", std::move(values)}});
}

pbio::FormatPtr nested_struct_format(int depth) {
  pbio::FormatPtr format = pbio::FormatBuilder("leaf")
                               .add_scalar("account", pbio::TypeKind::kInt32)
                               .add_scalar("balance", pbio::TypeKind::kFloat64)
                               .add_string("holder")
                               .build();
  for (int level = 0; level < depth; ++level) {
    format = pbio::FormatBuilder("level" + std::to_string(level))
                 .add_scalar("id", pbio::TypeKind::kInt32)
                 .add_struct("left", format)
                 .add_struct("right", format)
                 .build();
  }
  return format;
}

namespace {
pbio::Value nested_struct_value(int depth) {
  if (depth == 0) {
    return pbio::Value::record(
        {{"account", 123456}, {"balance", 1023.75}, {"holder", "J. Doe"}});
  }
  pbio::Value child = nested_struct_value(depth - 1);
  return pbio::Value::record({{"id", depth}, {"left", child}, {"right", child}});
}
}  // namespace

pbio::Value make_nested_struct(int depth) {
  return nested_struct_value(depth);
}

std::uint64_t SimHarness::timed_call(const std::string& operation,
                                     const pbio::Value& params) {
  const core::EndpointStats before = client->stats();
  const std::uint64_t start = clock->now_us();
  client->call(operation, params);
  const core::EndpointStats& after = client->stats();
  const double client_cpu_us =
      (after.marshal_us - before.marshal_us) +
      (after.unmarshal_us - before.unmarshal_us) +
      (after.convert_us - before.convert_us) +
      (after.compress_us - before.compress_us);
  return clock->now_us() - start +
         static_cast<std::uint64_t>(client_cpu_us * cpu_scale());
}

SimHarness make_echo_harness(const std::string& operation,
                             pbio::FormatPtr echo_format, core::WireFormat wire,
                             net::LinkConfig link) {
  SimHarness h;
  h.format_server = std::make_shared<pbio::FormatServer>();
  h.clock = std::make_shared<net::SimClock>();
  h.runtime = std::make_unique<core::ServiceRuntime>(h.format_server, h.clock);
  h.runtime->register_operation(operation, echo_format, echo_format,
                                [](const pbio::Value& v) { return v; });
  h.transport = std::make_unique<core::SimLinkTransport>(
      *h.runtime, net::LinkModel(link), h.clock);
  h.transport->set_cpu_scale(cpu_scale());

  wsdl::ServiceDesc svc;
  svc.name = "Bench";
  svc.operations.push_back(wsdl::OperationDesc{operation, echo_format, echo_format});
  h.client = std::make_unique<core::ClientStub>(*h.transport, wire, svc,
                                                h.format_server, h.clock);
  return h;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.min = samples[0];
  s.max = samples[0];
  double total = 0;
  for (double v : samples) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = total / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return s;
}

}  // namespace sbq::bench
