// Shared support for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper: it
// builds the paper's workload, runs it through the real stack (real CPU
// costs) over the deterministic link models (simulated transfer costs), and
// prints the same rows/series the paper reports. See DESIGN.md §2 for the
// experiment-to-binary map and EXPERIMENTS.md for measured-vs-paper notes.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "net/link.h"
#include "pbio/format.h"
#include "pbio/value.h"
#include "wsdl/wsdl.h"

namespace sbq::bench {

// ---------------------------------------------------------------- calibration

/// CPU-era calibration factor applied to measured CPU times before they are
/// combined with simulated transfer times. The paper's testbed was a
/// 2.2 GHz Pentium IV; this host processes the same workloads roughly an
/// order of magnitude faster, which would silently move every
/// CPU-vs-transfer crossover (e.g. Figure 5's "conversion costs more than
/// sending raw XML on the fast link"). Default 8.0; override with the
/// SBQ_CPU_SCALE environment variable (set 1 for uncalibrated host times).
double cpu_scale();

// ---------------------------------------------------------------- printing

/// Fixed-width table printer (plain text, one row per line).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int column_width = 14);

  void row(const std::vector<std::string>& cells);
  void rule() const;

  static std::string num(double v, int precision = 1);
  static std::string bytes(std::size_t n);

 private:
  std::vector<std::string> headers_;
  int width_;
};

/// Prints a section banner for one experiment.
void banner(const std::string& title, const std::string& subtitle);

// ---------------------------------------------------------------- workloads

/// Format `int_array{values:i32[]}` — the paper's scientific-data workload.
pbio::FormatPtr int_array_format();

/// A record of int_array_format with `payload_bytes / 4` elements.
pbio::Value make_int_array(std::size_t payload_bytes);

/// The paper's business-data workload: a binary tree of structs of `depth`
/// levels (document size grows exponentially with depth, matching "its
/// document size increases exponentially").
pbio::FormatPtr nested_struct_format(int depth);
pbio::Value make_nested_struct(int depth);

// ---------------------------------------------------------------- harness

/// One client/server pair over a simulated link, ready to call.
struct SimHarness {
  std::shared_ptr<pbio::FormatServer> format_server;
  std::shared_ptr<net::SimClock> clock;
  std::unique_ptr<core::ServiceRuntime> runtime;
  std::unique_ptr<core::SimLinkTransport> transport;
  std::unique_ptr<core::ClientStub> client;

  /// Runs one call and returns the total time it took in µs: simulated
  /// transfer + server CPU (charged to the sim clock by the transport) +
  /// client-side codec CPU (measured for real and added here).
  std::uint64_t timed_call(const std::string& operation, const pbio::Value& params);
};

/// Builds a harness serving `operation` as an echo (request value returned
/// verbatim). `echo_format` is both input and output type.
SimHarness make_echo_harness(const std::string& operation,
                             pbio::FormatPtr echo_format, core::WireFormat wire,
                             net::LinkConfig link);

/// Mean and population standard deviation (jitter metric for Fig. 8/9).
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};
Summary summarize(const std::vector<double>& samples);

}  // namespace sbq::bench
