file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_compression.dir/bench_ablate_compression.cpp.o"
  "CMakeFiles/bench_ablate_compression.dir/bench_ablate_compression.cpp.o.d"
  "bench_ablate_compression"
  "bench_ablate_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
