# Empty dependencies file for bench_ablate_compression.
# This may be replaced when dependencies are built.
