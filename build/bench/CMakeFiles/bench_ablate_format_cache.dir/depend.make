# Empty dependencies file for bench_ablate_format_cache.
# This may be replaced when dependencies are built.
