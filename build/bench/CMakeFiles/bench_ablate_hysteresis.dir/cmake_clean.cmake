file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_hysteresis.dir/bench_ablate_hysteresis.cpp.o"
  "CMakeFiles/bench_ablate_hysteresis.dir/bench_ablate_hysteresis.cpp.o.d"
  "bench_ablate_hysteresis"
  "bench_ablate_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
