# Empty compiler generated dependencies file for bench_ablate_hysteresis.
# This may be replaced when dependencies are built.
