file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_plans.dir/bench_ablate_plans.cpp.o"
  "CMakeFiles/bench_ablate_plans.dir/bench_ablate_plans.cpp.o.d"
  "bench_ablate_plans"
  "bench_ablate_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
