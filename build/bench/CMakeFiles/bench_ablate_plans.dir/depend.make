# Empty dependencies file for bench_ablate_plans.
# This may be replaced when dependencies are built.
