file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sunrpc.dir/bench_fig4_sunrpc.cpp.o"
  "CMakeFiles/bench_fig4_sunrpc.dir/bench_fig4_sunrpc.cpp.o.d"
  "bench_fig4_sunrpc"
  "bench_fig4_sunrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sunrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
