# Empty dependencies file for bench_fig4_sunrpc.
# This may be replaced when dependencies are built.
