# Empty dependencies file for bench_fig6_struct_links.
# This may be replaced when dependencies are built.
