file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_modes.dir/bench_fig7_modes.cpp.o"
  "CMakeFiles/bench_fig7_modes.dir/bench_fig7_modes.cpp.o.d"
  "bench_fig7_modes"
  "bench_fig7_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
