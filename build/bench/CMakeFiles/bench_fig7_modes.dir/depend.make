# Empty dependencies file for bench_fig7_modes.
# This may be replaced when dependencies are built.
