file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_imaging.dir/bench_fig8_imaging.cpp.o"
  "CMakeFiles/bench_fig8_imaging.dir/bench_fig8_imaging.cpp.o.d"
  "bench_fig8_imaging"
  "bench_fig8_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
