file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mdsim.dir/bench_fig9_mdsim.cpp.o"
  "CMakeFiles/bench_fig9_mdsim.dir/bench_fig9_mdsim.cpp.o.d"
  "bench_fig9_mdsim"
  "bench_fig9_mdsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mdsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
