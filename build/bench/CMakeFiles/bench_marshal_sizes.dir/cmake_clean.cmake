file(REMOVE_RECURSE
  "CMakeFiles/bench_marshal_sizes.dir/bench_marshal_sizes.cpp.o"
  "CMakeFiles/bench_marshal_sizes.dir/bench_marshal_sizes.cpp.o.d"
  "bench_marshal_sizes"
  "bench_marshal_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_marshal_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
