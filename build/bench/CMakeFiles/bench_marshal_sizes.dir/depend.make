# Empty dependencies file for bench_marshal_sizes.
# This may be replaced when dependencies are built.
