file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_viz.dir/bench_remote_viz.cpp.o"
  "CMakeFiles/bench_remote_viz.dir/bench_remote_viz.cpp.o.d"
  "bench_remote_viz"
  "bench_remote_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
