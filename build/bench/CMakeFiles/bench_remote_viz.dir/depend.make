# Empty dependencies file for bench_remote_viz.
# This may be replaced when dependencies are built.
