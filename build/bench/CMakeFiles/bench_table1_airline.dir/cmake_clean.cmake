file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_airline.dir/bench_table1_airline.cpp.o"
  "CMakeFiles/bench_table1_airline.dir/bench_table1_airline.cpp.o.d"
  "bench_table1_airline"
  "bench_table1_airline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_airline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
