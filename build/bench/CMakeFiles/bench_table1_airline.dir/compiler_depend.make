# Empty compiler generated dependencies file for bench_table1_airline.
# This may be replaced when dependencies are built.
