file(REMOVE_RECURSE
  "CMakeFiles/sbq_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/sbq_bench_util.dir/bench_util.cpp.o.d"
  "libsbq_bench_util.a"
  "libsbq_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
