file(REMOVE_RECURSE
  "libsbq_bench_util.a"
)
