# Empty compiler generated dependencies file for sbq_bench_util.
# This may be replaced when dependencies are built.
