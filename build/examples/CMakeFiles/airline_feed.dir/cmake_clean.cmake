file(REMOVE_RECURSE
  "CMakeFiles/airline_feed.dir/airline_feed.cpp.o"
  "CMakeFiles/airline_feed.dir/airline_feed.cpp.o.d"
  "airline_feed"
  "airline_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airline_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
