# Empty compiler generated dependencies file for airline_feed.
# This may be replaced when dependencies are built.
