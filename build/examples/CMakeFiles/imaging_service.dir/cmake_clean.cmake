file(REMOVE_RECURSE
  "CMakeFiles/imaging_service.dir/imaging_service.cpp.o"
  "CMakeFiles/imaging_service.dir/imaging_service.cpp.o.d"
  "imaging_service"
  "imaging_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
