# Empty compiler generated dependencies file for imaging_service.
# This may be replaced when dependencies are built.
