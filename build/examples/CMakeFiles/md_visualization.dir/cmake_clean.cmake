file(REMOVE_RECURSE
  "CMakeFiles/md_visualization.dir/md_visualization.cpp.o"
  "CMakeFiles/md_visualization.dir/md_visualization.cpp.o.d"
  "md_visualization"
  "md_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
