# Empty dependencies file for md_visualization.
# This may be replaced when dependencies are built.
