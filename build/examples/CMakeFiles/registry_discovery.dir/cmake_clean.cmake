file(REMOVE_RECURSE
  "CMakeFiles/registry_discovery.dir/registry_discovery.cpp.o"
  "CMakeFiles/registry_discovery.dir/registry_discovery.cpp.o.d"
  "registry_discovery"
  "registry_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registry_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
