# Empty dependencies file for registry_discovery.
# This may be replaced when dependencies are built.
