# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("compress")
subdirs("pbio")
subdirs("net")
subdirs("http")
subdirs("rpc")
subdirs("soap")
subdirs("wsdl")
subdirs("qos")
subdirs("core")
subdirs("apps")
