file(REMOVE_RECURSE
  "CMakeFiles/sbq_airline.dir/ois.cpp.o"
  "CMakeFiles/sbq_airline.dir/ois.cpp.o.d"
  "libsbq_airline.a"
  "libsbq_airline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_airline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
