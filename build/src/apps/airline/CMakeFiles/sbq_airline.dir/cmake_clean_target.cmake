file(REMOVE_RECURSE
  "libsbq_airline.a"
)
