# Empty dependencies file for sbq_airline.
# This may be replaced when dependencies are built.
