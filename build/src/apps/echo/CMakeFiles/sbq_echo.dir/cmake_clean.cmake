file(REMOVE_RECURSE
  "CMakeFiles/sbq_echo.dir/echo.cpp.o"
  "CMakeFiles/sbq_echo.dir/echo.cpp.o.d"
  "CMakeFiles/sbq_echo.dir/remote.cpp.o"
  "CMakeFiles/sbq_echo.dir/remote.cpp.o.d"
  "libsbq_echo.a"
  "libsbq_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
