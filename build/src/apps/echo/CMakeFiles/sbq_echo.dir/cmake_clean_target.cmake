file(REMOVE_RECURSE
  "libsbq_echo.a"
)
