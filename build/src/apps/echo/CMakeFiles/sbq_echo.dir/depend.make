# Empty dependencies file for sbq_echo.
# This may be replaced when dependencies are built.
