
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/image/codec.cpp" "src/apps/image/CMakeFiles/sbq_image.dir/codec.cpp.o" "gcc" "src/apps/image/CMakeFiles/sbq_image.dir/codec.cpp.o.d"
  "/root/repo/src/apps/image/ops.cpp" "src/apps/image/CMakeFiles/sbq_image.dir/ops.cpp.o" "gcc" "src/apps/image/CMakeFiles/sbq_image.dir/ops.cpp.o.d"
  "/root/repo/src/apps/image/ppm.cpp" "src/apps/image/CMakeFiles/sbq_image.dir/ppm.cpp.o" "gcc" "src/apps/image/CMakeFiles/sbq_image.dir/ppm.cpp.o.d"
  "/root/repo/src/apps/image/synth.cpp" "src/apps/image/CMakeFiles/sbq_image.dir/synth.cpp.o" "gcc" "src/apps/image/CMakeFiles/sbq_image.dir/synth.cpp.o.d"
  "/root/repo/src/apps/image/transforms.cpp" "src/apps/image/CMakeFiles/sbq_image.dir/transforms.cpp.o" "gcc" "src/apps/image/CMakeFiles/sbq_image.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/sbq_pbio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
