file(REMOVE_RECURSE
  "CMakeFiles/sbq_image.dir/codec.cpp.o"
  "CMakeFiles/sbq_image.dir/codec.cpp.o.d"
  "CMakeFiles/sbq_image.dir/ops.cpp.o"
  "CMakeFiles/sbq_image.dir/ops.cpp.o.d"
  "CMakeFiles/sbq_image.dir/ppm.cpp.o"
  "CMakeFiles/sbq_image.dir/ppm.cpp.o.d"
  "CMakeFiles/sbq_image.dir/synth.cpp.o"
  "CMakeFiles/sbq_image.dir/synth.cpp.o.d"
  "CMakeFiles/sbq_image.dir/transforms.cpp.o"
  "CMakeFiles/sbq_image.dir/transforms.cpp.o.d"
  "libsbq_image.a"
  "libsbq_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
