file(REMOVE_RECURSE
  "libsbq_image.a"
)
