# Empty dependencies file for sbq_image.
# This may be replaced when dependencies are built.
