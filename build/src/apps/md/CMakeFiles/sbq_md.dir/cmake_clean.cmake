file(REMOVE_RECURSE
  "CMakeFiles/sbq_md.dir/analysis.cpp.o"
  "CMakeFiles/sbq_md.dir/analysis.cpp.o.d"
  "CMakeFiles/sbq_md.dir/bond.cpp.o"
  "CMakeFiles/sbq_md.dir/bond.cpp.o.d"
  "libsbq_md.a"
  "libsbq_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
