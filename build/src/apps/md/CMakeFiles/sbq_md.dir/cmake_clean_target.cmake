file(REMOVE_RECURSE
  "libsbq_md.a"
)
