# Empty compiler generated dependencies file for sbq_md.
# This may be replaced when dependencies are built.
