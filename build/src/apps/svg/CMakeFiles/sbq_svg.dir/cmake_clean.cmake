file(REMOVE_RECURSE
  "CMakeFiles/sbq_svg.dir/svg.cpp.o"
  "CMakeFiles/sbq_svg.dir/svg.cpp.o.d"
  "libsbq_svg.a"
  "libsbq_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
