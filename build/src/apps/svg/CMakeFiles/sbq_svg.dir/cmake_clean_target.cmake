file(REMOVE_RECURSE
  "libsbq_svg.a"
)
