# Empty dependencies file for sbq_svg.
# This may be replaced when dependencies are built.
