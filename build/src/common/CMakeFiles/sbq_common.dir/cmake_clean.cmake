file(REMOVE_RECURSE
  "CMakeFiles/sbq_common.dir/base64.cpp.o"
  "CMakeFiles/sbq_common.dir/base64.cpp.o.d"
  "CMakeFiles/sbq_common.dir/bytes.cpp.o"
  "CMakeFiles/sbq_common.dir/bytes.cpp.o.d"
  "CMakeFiles/sbq_common.dir/hexdump.cpp.o"
  "CMakeFiles/sbq_common.dir/hexdump.cpp.o.d"
  "CMakeFiles/sbq_common.dir/rng.cpp.o"
  "CMakeFiles/sbq_common.dir/rng.cpp.o.d"
  "CMakeFiles/sbq_common.dir/strings.cpp.o"
  "CMakeFiles/sbq_common.dir/strings.cpp.o.d"
  "libsbq_common.a"
  "libsbq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
