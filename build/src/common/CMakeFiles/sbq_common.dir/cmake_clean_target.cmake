file(REMOVE_RECURSE
  "libsbq_common.a"
)
