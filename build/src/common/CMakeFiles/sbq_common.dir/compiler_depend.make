# Empty compiler generated dependencies file for sbq_common.
# This may be replaced when dependencies are built.
