file(REMOVE_RECURSE
  "CMakeFiles/sbq_compress.dir/lzss.cpp.o"
  "CMakeFiles/sbq_compress.dir/lzss.cpp.o.d"
  "libsbq_compress.a"
  "libsbq_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
