file(REMOVE_RECURSE
  "libsbq_compress.a"
)
