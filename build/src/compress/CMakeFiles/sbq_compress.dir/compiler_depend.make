# Empty compiler generated dependencies file for sbq_compress.
# This may be replaced when dependencies are built.
