file(REMOVE_RECURSE
  "CMakeFiles/sbq_core.dir/client.cpp.o"
  "CMakeFiles/sbq_core.dir/client.cpp.o.d"
  "CMakeFiles/sbq_core.dir/message.cpp.o"
  "CMakeFiles/sbq_core.dir/message.cpp.o.d"
  "CMakeFiles/sbq_core.dir/quality_compiler.cpp.o"
  "CMakeFiles/sbq_core.dir/quality_compiler.cpp.o.d"
  "CMakeFiles/sbq_core.dir/registry_host.cpp.o"
  "CMakeFiles/sbq_core.dir/registry_host.cpp.o.d"
  "CMakeFiles/sbq_core.dir/service.cpp.o"
  "CMakeFiles/sbq_core.dir/service.cpp.o.d"
  "CMakeFiles/sbq_core.dir/transports.cpp.o"
  "CMakeFiles/sbq_core.dir/transports.cpp.o.d"
  "libsbq_core.a"
  "libsbq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
