file(REMOVE_RECURSE
  "libsbq_core.a"
)
