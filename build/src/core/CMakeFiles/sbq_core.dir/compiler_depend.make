# Empty compiler generated dependencies file for sbq_core.
# This may be replaced when dependencies are built.
