file(REMOVE_RECURSE
  "CMakeFiles/sbq_http.dir/client.cpp.o"
  "CMakeFiles/sbq_http.dir/client.cpp.o.d"
  "CMakeFiles/sbq_http.dir/message.cpp.o"
  "CMakeFiles/sbq_http.dir/message.cpp.o.d"
  "CMakeFiles/sbq_http.dir/parser.cpp.o"
  "CMakeFiles/sbq_http.dir/parser.cpp.o.d"
  "CMakeFiles/sbq_http.dir/server.cpp.o"
  "CMakeFiles/sbq_http.dir/server.cpp.o.d"
  "libsbq_http.a"
  "libsbq_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
