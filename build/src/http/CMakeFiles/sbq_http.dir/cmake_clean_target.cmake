file(REMOVE_RECURSE
  "libsbq_http.a"
)
