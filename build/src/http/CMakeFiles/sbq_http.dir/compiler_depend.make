# Empty compiler generated dependencies file for sbq_http.
# This may be replaced when dependencies are built.
