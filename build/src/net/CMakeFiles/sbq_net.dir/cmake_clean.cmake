file(REMOVE_RECURSE
  "CMakeFiles/sbq_net.dir/link.cpp.o"
  "CMakeFiles/sbq_net.dir/link.cpp.o.d"
  "CMakeFiles/sbq_net.dir/pipe.cpp.o"
  "CMakeFiles/sbq_net.dir/pipe.cpp.o.d"
  "CMakeFiles/sbq_net.dir/tcp.cpp.o"
  "CMakeFiles/sbq_net.dir/tcp.cpp.o.d"
  "libsbq_net.a"
  "libsbq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
