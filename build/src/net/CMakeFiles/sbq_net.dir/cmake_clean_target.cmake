file(REMOVE_RECURSE
  "libsbq_net.a"
)
