# Empty compiler generated dependencies file for sbq_net.
# This may be replaced when dependencies are built.
