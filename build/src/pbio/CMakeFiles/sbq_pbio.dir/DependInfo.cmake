
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbio/decode.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/decode.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/decode.cpp.o.d"
  "/root/repo/src/pbio/detail.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/detail.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/detail.cpp.o.d"
  "/root/repo/src/pbio/encode.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/encode.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/encode.cpp.o.d"
  "/root/repo/src/pbio/format.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/format.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/format.cpp.o.d"
  "/root/repo/src/pbio/plan.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/plan.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/plan.cpp.o.d"
  "/root/repo/src/pbio/registry.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/registry.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/registry.cpp.o.d"
  "/root/repo/src/pbio/value.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/value.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/value.cpp.o.d"
  "/root/repo/src/pbio/value_codec.cpp" "src/pbio/CMakeFiles/sbq_pbio.dir/value_codec.cpp.o" "gcc" "src/pbio/CMakeFiles/sbq_pbio.dir/value_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
