file(REMOVE_RECURSE
  "CMakeFiles/sbq_pbio.dir/decode.cpp.o"
  "CMakeFiles/sbq_pbio.dir/decode.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/detail.cpp.o"
  "CMakeFiles/sbq_pbio.dir/detail.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/encode.cpp.o"
  "CMakeFiles/sbq_pbio.dir/encode.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/format.cpp.o"
  "CMakeFiles/sbq_pbio.dir/format.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/plan.cpp.o"
  "CMakeFiles/sbq_pbio.dir/plan.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/registry.cpp.o"
  "CMakeFiles/sbq_pbio.dir/registry.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/value.cpp.o"
  "CMakeFiles/sbq_pbio.dir/value.cpp.o.d"
  "CMakeFiles/sbq_pbio.dir/value_codec.cpp.o"
  "CMakeFiles/sbq_pbio.dir/value_codec.cpp.o.d"
  "libsbq_pbio.a"
  "libsbq_pbio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_pbio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
