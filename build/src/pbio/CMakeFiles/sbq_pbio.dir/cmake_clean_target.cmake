file(REMOVE_RECURSE
  "libsbq_pbio.a"
)
