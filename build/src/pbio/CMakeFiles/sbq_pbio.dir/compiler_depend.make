# Empty compiler generated dependencies file for sbq_pbio.
# This may be replaced when dependencies are built.
