
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qos/handler_repository.cpp" "src/qos/CMakeFiles/sbq_qos.dir/handler_repository.cpp.o" "gcc" "src/qos/CMakeFiles/sbq_qos.dir/handler_repository.cpp.o.d"
  "/root/repo/src/qos/manager.cpp" "src/qos/CMakeFiles/sbq_qos.dir/manager.cpp.o" "gcc" "src/qos/CMakeFiles/sbq_qos.dir/manager.cpp.o.d"
  "/root/repo/src/qos/monitors.cpp" "src/qos/CMakeFiles/sbq_qos.dir/monitors.cpp.o" "gcc" "src/qos/CMakeFiles/sbq_qos.dir/monitors.cpp.o.d"
  "/root/repo/src/qos/policy.cpp" "src/qos/CMakeFiles/sbq_qos.dir/policy.cpp.o" "gcc" "src/qos/CMakeFiles/sbq_qos.dir/policy.cpp.o.d"
  "/root/repo/src/qos/quality_file.cpp" "src/qos/CMakeFiles/sbq_qos.dir/quality_file.cpp.o" "gcc" "src/qos/CMakeFiles/sbq_qos.dir/quality_file.cpp.o.d"
  "/root/repo/src/qos/rtt.cpp" "src/qos/CMakeFiles/sbq_qos.dir/rtt.cpp.o" "gcc" "src/qos/CMakeFiles/sbq_qos.dir/rtt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/sbq_pbio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
