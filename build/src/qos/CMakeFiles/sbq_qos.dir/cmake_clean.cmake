file(REMOVE_RECURSE
  "CMakeFiles/sbq_qos.dir/handler_repository.cpp.o"
  "CMakeFiles/sbq_qos.dir/handler_repository.cpp.o.d"
  "CMakeFiles/sbq_qos.dir/manager.cpp.o"
  "CMakeFiles/sbq_qos.dir/manager.cpp.o.d"
  "CMakeFiles/sbq_qos.dir/monitors.cpp.o"
  "CMakeFiles/sbq_qos.dir/monitors.cpp.o.d"
  "CMakeFiles/sbq_qos.dir/policy.cpp.o"
  "CMakeFiles/sbq_qos.dir/policy.cpp.o.d"
  "CMakeFiles/sbq_qos.dir/quality_file.cpp.o"
  "CMakeFiles/sbq_qos.dir/quality_file.cpp.o.d"
  "CMakeFiles/sbq_qos.dir/rtt.cpp.o"
  "CMakeFiles/sbq_qos.dir/rtt.cpp.o.d"
  "libsbq_qos.a"
  "libsbq_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
