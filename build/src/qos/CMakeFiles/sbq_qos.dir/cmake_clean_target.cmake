file(REMOVE_RECURSE
  "libsbq_qos.a"
)
