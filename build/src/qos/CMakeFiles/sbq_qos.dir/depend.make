# Empty dependencies file for sbq_qos.
# This may be replaced when dependencies are built.
