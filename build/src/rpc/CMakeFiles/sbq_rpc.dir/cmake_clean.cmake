file(REMOVE_RECURSE
  "CMakeFiles/sbq_rpc.dir/sunrpc.cpp.o"
  "CMakeFiles/sbq_rpc.dir/sunrpc.cpp.o.d"
  "CMakeFiles/sbq_rpc.dir/xdr.cpp.o"
  "CMakeFiles/sbq_rpc.dir/xdr.cpp.o.d"
  "libsbq_rpc.a"
  "libsbq_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
