file(REMOVE_RECURSE
  "libsbq_rpc.a"
)
