# Empty compiler generated dependencies file for sbq_rpc.
# This may be replaced when dependencies are built.
