file(REMOVE_RECURSE
  "CMakeFiles/sbq_soap.dir/codec.cpp.o"
  "CMakeFiles/sbq_soap.dir/codec.cpp.o.d"
  "CMakeFiles/sbq_soap.dir/envelope.cpp.o"
  "CMakeFiles/sbq_soap.dir/envelope.cpp.o.d"
  "libsbq_soap.a"
  "libsbq_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
