file(REMOVE_RECURSE
  "libsbq_soap.a"
)
