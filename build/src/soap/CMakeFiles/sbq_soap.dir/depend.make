# Empty dependencies file for sbq_soap.
# This may be replaced when dependencies are built.
