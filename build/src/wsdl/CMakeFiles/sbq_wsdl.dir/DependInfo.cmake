
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsdl/repository.cpp" "src/wsdl/CMakeFiles/sbq_wsdl.dir/repository.cpp.o" "gcc" "src/wsdl/CMakeFiles/sbq_wsdl.dir/repository.cpp.o.d"
  "/root/repo/src/wsdl/stubgen.cpp" "src/wsdl/CMakeFiles/sbq_wsdl.dir/stubgen.cpp.o" "gcc" "src/wsdl/CMakeFiles/sbq_wsdl.dir/stubgen.cpp.o.d"
  "/root/repo/src/wsdl/wsdl.cpp" "src/wsdl/CMakeFiles/sbq_wsdl.dir/wsdl.cpp.o" "gcc" "src/wsdl/CMakeFiles/sbq_wsdl.dir/wsdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sbq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/sbq_pbio.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/sbq_qos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
