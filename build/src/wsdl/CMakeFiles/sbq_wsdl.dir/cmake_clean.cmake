file(REMOVE_RECURSE
  "CMakeFiles/sbq_wsdl.dir/repository.cpp.o"
  "CMakeFiles/sbq_wsdl.dir/repository.cpp.o.d"
  "CMakeFiles/sbq_wsdl.dir/stubgen.cpp.o"
  "CMakeFiles/sbq_wsdl.dir/stubgen.cpp.o.d"
  "CMakeFiles/sbq_wsdl.dir/wsdl.cpp.o"
  "CMakeFiles/sbq_wsdl.dir/wsdl.cpp.o.d"
  "libsbq_wsdl.a"
  "libsbq_wsdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
