file(REMOVE_RECURSE
  "libsbq_wsdl.a"
)
