# Empty dependencies file for sbq_wsdl.
# This may be replaced when dependencies are built.
