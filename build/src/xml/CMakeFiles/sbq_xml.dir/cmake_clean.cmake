file(REMOVE_RECURSE
  "CMakeFiles/sbq_xml.dir/dom.cpp.o"
  "CMakeFiles/sbq_xml.dir/dom.cpp.o.d"
  "CMakeFiles/sbq_xml.dir/escape.cpp.o"
  "CMakeFiles/sbq_xml.dir/escape.cpp.o.d"
  "CMakeFiles/sbq_xml.dir/sax.cpp.o"
  "CMakeFiles/sbq_xml.dir/sax.cpp.o.d"
  "CMakeFiles/sbq_xml.dir/writer.cpp.o"
  "CMakeFiles/sbq_xml.dir/writer.cpp.o.d"
  "libsbq_xml.a"
  "libsbq_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbq_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
