file(REMOVE_RECURSE
  "libsbq_xml.a"
)
