# Empty dependencies file for sbq_xml.
# This may be replaced when dependencies are built.
