
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/sbq_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/sbq_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sbq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/sbq_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/sbq_pbio.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sbq_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sbq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sbq_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sbq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
