file(REMOVE_RECURSE
  "CMakeFiles/test_generated_stubs.dir/generated/ImagingService_stubs.cpp.o"
  "CMakeFiles/test_generated_stubs.dir/generated/ImagingService_stubs.cpp.o.d"
  "CMakeFiles/test_generated_stubs.dir/test_generated_stubs.cpp.o"
  "CMakeFiles/test_generated_stubs.dir/test_generated_stubs.cpp.o.d"
  "generated/ImagingService_stubs.cpp"
  "generated/ImagingService_stubs.h"
  "test_generated_stubs"
  "test_generated_stubs.pdb"
  "test_generated_stubs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generated_stubs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
