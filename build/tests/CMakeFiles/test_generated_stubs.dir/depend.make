# Empty dependencies file for test_generated_stubs.
# This may be replaced when dependencies are built.
