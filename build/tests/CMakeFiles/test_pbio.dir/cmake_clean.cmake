file(REMOVE_RECURSE
  "CMakeFiles/test_pbio.dir/test_pbio.cpp.o"
  "CMakeFiles/test_pbio.dir/test_pbio.cpp.o.d"
  "test_pbio"
  "test_pbio.pdb"
  "test_pbio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
