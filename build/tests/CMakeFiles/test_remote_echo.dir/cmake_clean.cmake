file(REMOVE_RECURSE
  "CMakeFiles/test_remote_echo.dir/test_remote_echo.cpp.o"
  "CMakeFiles/test_remote_echo.dir/test_remote_echo.cpp.o.d"
  "test_remote_echo"
  "test_remote_echo.pdb"
  "test_remote_echo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
