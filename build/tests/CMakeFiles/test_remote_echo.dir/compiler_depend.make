# Empty compiler generated dependencies file for test_remote_echo.
# This may be replaced when dependencies are built.
