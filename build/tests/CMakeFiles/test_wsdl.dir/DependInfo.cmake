
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_wsdl.cpp" "tests/CMakeFiles/test_wsdl.dir/test_wsdl.cpp.o" "gcc" "tests/CMakeFiles/test_wsdl.dir/test_wsdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsdl/CMakeFiles/sbq_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sbq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/sbq_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/pbio/CMakeFiles/sbq_pbio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sbq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
