file(REMOVE_RECURSE
  "CMakeFiles/test_wsdl.dir/test_wsdl.cpp.o"
  "CMakeFiles/test_wsdl.dir/test_wsdl.cpp.o.d"
  "test_wsdl"
  "test_wsdl.pdb"
  "test_wsdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
