# Empty dependencies file for test_wsdl.
# This may be replaced when dependencies are built.
