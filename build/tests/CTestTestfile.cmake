# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_pbio[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_soap[1]_include.cmake")
include("/root/repo/build/tests/test_wsdl[1]_include.cmake")
include("/root/repo/build/tests/test_qos[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_remote_echo[1]_include.cmake")
include("/root/repo/build/tests/test_generated_stubs[1]_include.cmake")
include("/root/repo/build/tests/test_integration2[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
