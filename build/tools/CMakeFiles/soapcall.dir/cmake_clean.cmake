file(REMOVE_RECURSE
  "CMakeFiles/soapcall.dir/soapcall.cpp.o"
  "CMakeFiles/soapcall.dir/soapcall.cpp.o.d"
  "soapcall"
  "soapcall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soapcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
