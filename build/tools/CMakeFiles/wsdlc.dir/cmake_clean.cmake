file(REMOVE_RECURSE
  "CMakeFiles/wsdlc.dir/wsdlc.cpp.o"
  "CMakeFiles/wsdlc.dir/wsdlc.cpp.o.d"
  "wsdlc"
  "wsdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
