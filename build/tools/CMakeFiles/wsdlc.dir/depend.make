# Empty dependencies file for wsdlc.
# This may be replaced when dependencies are built.
