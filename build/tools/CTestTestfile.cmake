# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(wsdlc_usage "/root/repo/build/tools/wsdlc")
set_tests_properties(wsdlc_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wsdlc_missing_file "/root/repo/build/tools/wsdlc" "/nonexistent.wsdl")
set_tests_properties(wsdlc_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(soapcall_usage "/root/repo/build/tools/soapcall")
set_tests_properties(soapcall_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wsdlc_generates "/root/repo/build/tools/wsdlc" "/root/repo/tests/data/imaging.wsdl" "/root/repo/build/tools")
set_tests_properties(wsdlc_generates PROPERTIES  PASS_REGULAR_EXPRESSION "operations: 1" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
