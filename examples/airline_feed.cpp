// Airline operational information system — the paper's commercial
// application (§IV-C.3, Table I).
//
// Flight and passenger data is continuously updated in a memory-resident
// store; business rules derive catering excerpts; caterers pull them over
// SOAP. The example streams updates, then serves the same excerpt through
// all three wire formats to show the size/throughput trade Table I reports.
//
// Run: ./airline_feed
#include <cstdio>

#include "apps/airline/ois.h"
#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "net/link.h"
#include "wsdl/wsdl.h"

int main() {
  using namespace sbq;
  using pbio::Value;

  // --- the operational store + event stream -------------------------------
  airline::OperationalStore store(2026);
  store.populate(/*flights=*/3, /*passengers=*/34);
  std::printf("operational store: flights");
  for (const auto& number : store.flight_numbers()) std::printf(" %s", number.c_str());
  std::printf("\n\nincoming events:\n");
  for (int i = 0; i < 8; ++i) {
    std::printf("  %s\n", store.apply_random_event().c_str());
  }

  // --- the OIS server -------------------------------------------------------
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime(format_server, clock);
  runtime.register_operation(
      "getCatering", airline::catering_request_format(),
      airline::catering_excerpt_format(), [&](const Value& params) {
        const airline::Flight* flight =
            store.flight(params.field("flight").as_string());
        if (flight == nullptr) throw RpcError("unknown flight");
        // Business rules run per request: preferences override cabin meals.
        return airline::excerpt_to_value(airline::catering_excerpt(*flight));
      });

  core::SimLinkTransport transport(runtime, net::LinkModel(net::adsl_1mbps()),
                                   clock);
  transport.set_charge_server_cpu(false);

  wsdl::ServiceDesc service;
  service.name = "CateringService";
  service.operations.push_back(
      wsdl::OperationDesc{"getCatering", airline::catering_request_format(),
                          airline::catering_excerpt_format()});

  // --- the caterer's client, in each wire format ---------------------------
  const std::string flight = store.flight_numbers()[0];
  std::printf("\ncatering excerpt for %s over ADSL:\n", flight.c_str());
  std::printf("%-24s%-12s%-14s%s\n", "wire format", "resp bytes", "round trip",
              "meals");

  for (const auto& [label, wire] :
       std::vector<std::pair<std::string, core::WireFormat>>{
           {"SOAP (XML)", core::WireFormat::kXml},
           {"SOAP-bin (PBIO)", core::WireFormat::kBinary},
           {"SOAP (compressed XML)", core::WireFormat::kCompressedXml}}) {
    core::ClientStub client(transport, wire, service, format_server, clock);
    const Value request = Value::record({{"flight", flight}});
    client.call("getCatering", request);  // warm the format caches
    const std::uint64_t received_before = client.stats().bytes_received;
    const std::uint64_t start = clock->now_us();
    const Value excerpt_value = client.call("getCatering", request);
    const double ms = static_cast<double>(clock->now_us() - start) / 1000.0;

    const airline::CateringExcerpt excerpt =
        airline::excerpt_from_value(excerpt_value);
    std::printf("%-24s%-12llu%-14s%zu (e.g. seat %s -> %s)\n", label.c_str(),
                static_cast<unsigned long long>(client.stats().bytes_received -
                                                received_before),
                (std::to_string(ms) + " ms").substr(0, 8).c_str(),
                excerpt.meals.size(), excerpt.meals[0].seat.c_str(),
                excerpt.meals[0].code.c_str());
  }

  std::printf(
      "\nBinary transport cuts the excerpt to a fraction of its XML size —\n"
      "exactly the Table I trade; run bench_table1_airline for event rates.\n");
  return 0;
}
