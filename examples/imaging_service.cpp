// Imaging service — the paper's Skyserver-like application with SOAP-binQ
// continuous quality management (§IV-C.1).
//
// A telescope image server hands out 640x480 PPM frames with a server-side
// transform (edge detection). A quality file tells the server to drop to
// 320x240 when the client-reported RTT crosses the policy boundary; the
// client keeps estimating RTT from echoed timestamps and the exponential
// average. Cross-traffic is injected on a simulated 100 Mbps link so the
// adaptation is visible in seconds, deterministically.
//
// Run: ./imaging_service
#include <cstdio>

#include "apps/image/codec.h"
#include "apps/image/ops.h"
#include "apps/image/synth.h"
#include "apps/image/transforms.h"
#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "qos/manager.h"
#include "wsdl/wsdl.h"

int main() {
  using namespace sbq;
  using pbio::Value;

  // --- server side -----------------------------------------------------
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime(format_server, clock);

  // The archive: one deterministic star field per "filename". Transforms
  // are resolved by name through the registry ("edge", "scale:2", ...).
  auto transforms = std::make_shared<image::TransformRegistry>();
  runtime.register_operation(
      "getImage", image::image_request_format(), image::image_format(),
      [transforms](const Value& params) {
        image::StarFieldConfig config;
        // Derive the frame from the filename so different files differ.
        for (const char c : params.field("filename").as_string()) {
          config.seed = config.seed * 31 + static_cast<unsigned char>(c);
        }
        const image::Image frame = transforms->apply(
            params.field("transform").as_string(), image::synth_star_field(config));
        return image::image_to_value(frame, *image::image_format());
      });

  // The quality file: full frames while RTT < 150 ms, half resolution above.
  auto quality = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse("attribute rtt_us\n"
                              "0 150000 - image\n"
                              "150000 inf - half_image\n"),
      /*switch_threshold=*/2);
  quality->register_message_type("image", image::image_format());
  quality->register_message_type("half_image", image::half_image_format(),
                                 image::resize_quality_handler);
  runtime.set_quality_manager(quality);

  // --- the link: 100 Mbps with a congestion episode ---------------------
  net::LinkModel link(net::lan_100mbps());
  net::CrossTrafficSchedule traffic;
  traffic.add_phase(4'000'000, 11'000'000, 0.9);  // seconds 4-11: iperf blast
  link.set_cross_traffic(traffic);
  core::SimLinkTransport transport(runtime, link, clock);
  transport.set_charge_server_cpu(false);

  // --- client side -------------------------------------------------------
  wsdl::ServiceDesc service;
  service.name = "ImageService";
  service.operations.push_back(wsdl::OperationDesc{
      "getImage", image::image_request_format(), image::image_format()});
  core::ClientStub client(transport, core::WireFormat::kBinary, service,
                          format_server, clock);

  std::printf("req  t(s)   response  type        resolution  rtt_est(ms)\n");
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t wall = static_cast<std::uint64_t>(i) * 1'000'000;
    if (clock->now_us() < wall) clock->set_us(wall);

    const std::uint64_t start = clock->now_us();
    const Value result = client.call(
        "getImage", Value::record({{"filename", "m31_frame_" + std::to_string(i)},
                                   {"transform", "edge"}}));
    const image::Image frame = image::image_from_value(result);
    std::printf("%-4d %-6.1f %6.1f ms  %-11s %dx%-9d %.1f\n", i,
                static_cast<double>(start) / 1e6,
                static_cast<double>(clock->now_us() - start) / 1000.0,
                client.last_response_type().c_str(), frame.width(), frame.height(),
                client.rtt_estimate_us() / 1000.0);
  }

  std::printf(
      "\nThe server switched to 320x240 during the congestion episode and\n"
      "recovered to 640x480 afterwards — %llu quality switches total.\n",
      static_cast<unsigned long long>(quality->policy().switch_count()));
  return 0;
}
