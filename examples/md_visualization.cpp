// Remote visualization — the paper's §IV-C.4 architecture end to end:
//
//   bond server --ECho event channel--> service portal --SOAP-bin--> client
//
// The molecular dynamics bond server publishes timestep events into an
// ECho channel. The service portal advertises itself via WSDL, caches the
// latest event, and serves `getView` requests: the client names the output
// format ("svg") and a render size — the portal's filter code turns the raw
// bond graph into an SVG document of exactly that size. The client writes
// the frames to ./md_frames/.
//
// Run: ./md_visualization
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "apps/echo/echo.h"
#include "apps/md/analysis.h"
#include "apps/md/bond.h"
#include "apps/svg/svg.h"
#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "wsdl/wsdl.h"

int main() {
  using namespace sbq;
  using pbio::Value;

  // --- the ECho side: bond server publishing into a channel --------------
  echo::EventDomain domain;
  auto bonds = domain.create_channel("bonds", md::timestep_format());
  md::BondSimulation simulation;

  // The portal subscribes as a sink and caches the latest timestep.
  md::Timestep latest;
  bonds->subscribe([&](const echo::Event& event) {
    latest = md::timestep_from_value(event.value);
    return true;
  });

  // A derived channel demonstrates ECho filter code: it transforms each
  // full bond graph into a compact statistics record (server-side data
  // reduction — ship ~70 bytes instead of ~4 KB when a dashboard only
  // needs the summary).
  int stats_events = 0;
  auto stats_channel = bonds->derive(
      "bonds.stats", md::graph_stats_format(), [](const echo::Event& event) {
        const md::Timestep ts = md::timestep_from_value(event.value);
        return std::optional<echo::Event>{
            echo::Event{md::graph_stats_format(),
                        md::stats_to_value(md::analyze(ts))}};
      });
  stats_channel->subscribe([&](const echo::Event& event) {
    ++stats_events;
    std::printf(
        "  stats: %lld bonds, %lld clusters (largest %lld), mean length %.2f\n",
        static_cast<long long>(event.value.field("bond_count").as_i64()),
        static_cast<long long>(event.value.field("cluster_count").as_i64()),
        static_cast<long long>(event.value.field("largest_cluster").as_i64()),
        event.value.field("mean_bond_length").as_f64());
    return true;
  });

  // --- the portal: a SOAP-bin service -------------------------------------
  const pbio::FormatPtr view_request =
      pbio::FormatBuilder("view_request")
          .add_string("output_format")
          .add_scalar("size", pbio::TypeKind::kInt32)
          .build();
  const pbio::FormatPtr view_response =
      pbio::FormatBuilder("view_response")
          .add_scalar("timestep", pbio::TypeKind::kInt32)
          .add_string("document")
          .build();

  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  core::ServiceRuntime runtime(format_server, clock);
  runtime.register_operation(
      "getView", view_request, view_response, [&](const Value& params) {
        if (params.field("output_format").as_string() != "svg") {
          throw RpcError("portal only renders svg");
        }
        svg::RenderOptions options;
        options.width = static_cast<int>(params.field("size").as_i64());
        options.height = options.width;
        return Value::record(
            {{"timestep", latest.index},
             {"document",
              svg::render_molecule(latest, simulation.config().box_size, options)}});
      });

  // The portal advertises its service as WSDL (step 1 in the paper's
  // architecture figure) — any WSDL-aware client can discover the types.
  wsdl::ServiceDesc service;
  service.name = "VizPortal";
  service.target_namespace = "urn:viz";
  service.location = "http://localhost:0/viz";
  service.operations.push_back(
      wsdl::OperationDesc{"getView", view_request, view_response});
  const std::string advertised = wsdl::generate_wsdl(service);
  std::printf("portal advertises %zu bytes of WSDL; operations:\n",
              advertised.size());
  for (const auto& op : wsdl::parse_wsdl(advertised).operations) {
    std::printf("  %s(%s) -> %s\n", op.name.c_str(), op.input->canonical().c_str(),
                op.output->canonical().c_str());
  }

  // --- the display client --------------------------------------------------
  core::LoopbackTransport transport(runtime);
  core::ClientStub client(transport, core::WireFormat::kBinary, service,
                          format_server, clock);

  std::filesystem::create_directories("md_frames");
  for (int frame = 0; frame < 6; ++frame) {
    // Simulation advances; new data flows through the event channel.
    bonds->submit({md::timestep_format(), md::timestep_to_value(simulation.step())});

    // The client changes the requested render size dynamically.
    const int size = frame % 2 == 0 ? 480 : 640;
    const Value view = client.call(
        "getView", Value::record({{"output_format", "svg"}, {"size", size}}));

    const std::string path =
        "md_frames/frame_" + std::to_string(view.field("timestep").as_i64()) + ".svg";
    std::ofstream(path) << view.field("document").as_string();
    std::printf("frame %lld: %4d px, %5zu bytes -> %s\n",
                static_cast<long long>(view.field("timestep").as_i64()), size,
                view.field("document").as_string().size(), path.c_str());
  }

  std::printf("\n%llu events published, %d summarized by the stats filter.\n",
              static_cast<unsigned long long>(bonds->events_submitted()),
              stats_events);
  return 0;
}
