// Quickstart — the smallest end-to-end SOAP-bin service.
//
// Demonstrates the whole pipeline on one page:
//   1. describe a service in WSDL,
//   2. compile it (parse_wsdl → PBIO formats),
//   3. host an operation in a ServiceRuntime behind a real HTTP server,
//   4. call it through a ClientStub over TCP, in both standard-SOAP (XML)
//      and SOAP-bin (binary) wire formats,
//   5. inspect the sizes/costs that make the binary path worthwhile.
//
// Run: ./quickstart
#include <cstdio>

#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/server.h"
#include "net/tcp.h"
#include "wsdl/wsdl.h"

namespace {

constexpr const char* kWsdl = R"(<?xml version="1.0"?>
<definitions name="Thermometer" targetNamespace="urn:thermo"
             xmlns:tns="urn:thermo" xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <types>
    <xsd:schema>
      <xsd:complexType name="reading_request">
        <xsd:sequence>
          <xsd:element name="station" type="xsd:string"/>
          <xsd:element name="samples" type="xsd:int"/>
        </xsd:sequence>
      </xsd:complexType>
      <xsd:complexType name="reading">
        <xsd:sequence>
          <xsd:element name="station" type="xsd:string"/>
          <xsd:element name="celsius" type="xsd:double" minOccurs="0" maxOccurs="unbounded"/>
        </xsd:sequence>
      </xsd:complexType>
    </xsd:schema>
  </types>
  <message name="getReadingInput"><part name="params" type="tns:reading_request"/></message>
  <message name="getReadingOutput"><part name="result" type="tns:reading"/></message>
  <portType name="ThermoPort">
    <operation name="getReading">
      <input message="tns:getReadingInput"/>
      <output message="tns:getReadingOutput"/>
    </operation>
  </portType>
</definitions>)";

}  // namespace

int main() {
  using namespace sbq;
  using pbio::Value;

  // 1-2. Compile the WSDL. The compiler turns every complexType into a
  // PBIO format; these describe both the XML and the binary encodings.
  const wsdl::ServiceDesc service = wsdl::parse_wsdl(kWsdl);
  const wsdl::OperationDesc& op = service.required_operation("getReading");
  std::printf("compiled service '%s': %s -> %s\n", service.name.c_str(),
              op.input->canonical().c_str(), op.output->canonical().c_str());

  // 3. Host the operation. The format server is the PBIO registration
  // point both endpoints share.
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  core::ServiceRuntime runtime(format_server, clock);
  runtime.register_operation(
      "getReading", op.input, op.output, [](const Value& params) {
        const std::int64_t n = params.field("samples").as_i64();
        Value celsius = Value::empty_array();
        for (std::int64_t i = 0; i < n; ++i) {
          celsius.push_back(18.5 + 0.25 * static_cast<double>(i % 8));
        }
        return Value::record({{"station", params.field("station").as_string()},
                              {"celsius", std::move(celsius)}});
      });
  http::Server server(0, [&](const http::Request& r) { return runtime.handle(r); });
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // 4. Call it — once as standard SOAP, once as SOAP-bin.
  const Value request = Value::record({{"station", "tower-7"}, {"samples", 48}});
  for (const auto wire : {core::WireFormat::kXml, core::WireFormat::kBinary}) {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    core::HttpTransport transport(*stream);
    core::ClientStub client(transport, wire, service, format_server, clock);

    const Value reading = client.call("getReading", request);
    std::printf(
        "\n%-9s: %zu samples from '%s', first=%.2f C\n"
        "           request %llu B, response %llu B, marshal %.0f us, "
        "unmarshal %.0f us, RTT %.0f us\n",
        wire == core::WireFormat::kXml ? "SOAP" : "SOAP-bin",
        reading.field("celsius").array_size(),
        reading.field("station").as_string().c_str(),
        reading.field("celsius").at(0).as_f64(),
        static_cast<unsigned long long>(client.stats().bytes_sent),
        static_cast<unsigned long long>(client.stats().bytes_received),
        client.stats().marshal_us, client.stats().unmarshal_us,
        client.last_rtt_us());
  }

  server.shutdown();
  std::printf("\ndone: same WSDL, same handler, two wire formats.\n");
  return 0;
}
