// Service discovery — the paper's UDDI-style deployment (§III-B.b):
// "the designer providing a quality file along with the WSDL file, through
// UDDI or a similar WSDL repository. This would let the user directly
// access the service, without knowledge of the actual message types used
// in data transmission."
//
// Three parties, all over real HTTP:
//   1. the REGISTRY hosts a ServiceRepository as a SOAP-bin service,
//   2. the PROVIDER publishes its WSDL + quality file and runs the service,
//   3. the CONSUMER knows only the registry port: it discovers the service,
//      compiles the WSDL, instantiates the quality policy, and calls.
//
// Run: ./registry_discovery
#include <cstdio>

#include "core/quality_compiler.h"
#include "core/registry_host.h"
#include "core/transports.h"
#include "http/server.h"
#include "net/tcp.h"
#include "qos/manager.h"

namespace {

constexpr const char* kSensorWsdl = R"(<definitions name="SensorGrid">
  <types><schema>
    <complexType name="grid_request"><sequence>
      <element name="region" type="string"/>
      <element name="max_points" type="int"/>
    </sequence></complexType>
    <complexType name="grid_data"><sequence>
      <element name="region" type="string"/>
      <element name="points" type="double" minOccurs="0" maxOccurs="unbounded"/>
    </sequence></complexType>
    <complexType name="grid_data_coarse"><sequence>
      <element name="region" type="string"/>
      <element name="points" type="double" minOccurs="0" maxOccurs="unbounded"/>
    </sequence></complexType>
  </schema></types>
  <message name="sampleIn"><part name="p" type="grid_request"/></message>
  <message name="sampleOut"><part name="p" type="grid_data"/></message>
  <portType name="GridPort">
    <operation name="sample">
      <input message="sampleIn"/><output message="sampleOut"/>
    </operation>
  </portType>
</definitions>)";

constexpr const char* kSensorQuality =
    "attribute rtt_us\n"
    "0 50000 - grid_data\n"
    "50000 inf - grid_data_coarse\n";

}  // namespace

int main() {
  using namespace sbq;
  using pbio::Value;

  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();

  // ---- party 1: the registry ---------------------------------------------
  core::ServiceRuntime registry_runtime(format_server, clock);
  auto repository = std::make_shared<wsdl::ServiceRepository>();
  core::host_repository(registry_runtime, repository);
  http::Server registry_http(
      0, [&](const http::Request& r) { return registry_runtime.handle(r); });
  std::printf("registry listening on 127.0.0.1:%u\n", registry_http.port());

  // ---- party 2: the provider ---------------------------------------------
  const wsdl::ServiceDesc sensor_service = wsdl::parse_wsdl(kSensorWsdl);
  core::ServiceRuntime sensor_runtime(format_server, clock);
  const auto& op = sensor_service.required_operation("sample");
  sensor_runtime.register_operation("sample", op.input, op.output,
                                    [](const Value& params) {
                                      Value points = Value::empty_array();
                                      const auto n = params.field("max_points").as_i64();
                                      for (std::int64_t i = 0; i < n; ++i) {
                                        points.push_back(0.1 * static_cast<double>(i));
                                      }
                                      return Value::record(
                                          {{"region", params.field("region").as_string()},
                                           {"points", std::move(points)}});
                                    });
  // The provider wires its quality policy from the same file it publishes.
  auto provider_quality = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse(kSensorQuality), 2);
  provider_quality->register_message_type("grid_data",
                                          sensor_service.type("grid_data"));
  provider_quality->register_message_type(
      "grid_data_coarse", sensor_service.type("grid_data_coarse"),
      [](const Value& full, const pbio::FormatDesc& target, const qos::AttributeMap&) {
        // Coarse = every 4th point.
        Value out = pbio::project_value(full, target);
        Value sampled = Value::empty_array();
        const auto& points = full.field("points").elements();
        for (std::size_t i = 0; i < points.size(); i += 4) sampled.push_back(points[i]);
        out.set_field("points", std::move(sampled));
        return out;
      });
  sensor_runtime.set_quality_manager(provider_quality);
  http::Server sensor_http(
      0, [&](const http::Request& r) { return sensor_runtime.handle(r); });
  std::printf("sensor grid listening on 127.0.0.1:%u\n", sensor_http.port());

  {  // publish through the registry's SOAP interface
    auto stream = net::TcpStream::connect("127.0.0.1", registry_http.port());
    core::HttpTransport transport(*stream);
    core::ClientStub registry_client(transport, core::WireFormat::kBinary,
                                     wsdl::registry_service_desc(), format_server,
                                     clock);
    core::publish_service(registry_client, "SensorGrid", kSensorWsdl,
                          kSensorQuality);
    std::printf("provider published 'SensorGrid' (WSDL %zu B + quality file)\n",
                std::string(kSensorWsdl).size());
  }

  // ---- party 3: the consumer ---------------------------------------------
  auto registry_stream = net::TcpStream::connect("127.0.0.1", registry_http.port());
  core::HttpTransport registry_transport(*registry_stream);
  core::ClientStub registry_client(registry_transport, core::WireFormat::kBinary,
                                   wsdl::registry_service_desc(), format_server,
                                   clock);

  std::printf("\nconsumer: services in registry:");
  for (const auto& name : core::list_services(registry_client)) {
    std::printf(" %s", name.c_str());
  }
  const wsdl::Discovery discovered =
      core::discover_service(registry_client, "SensorGrid");
  std::printf("\nconsumer: discovered %zu operation(s); quality attribute '%s'\n",
              discovered.service.operations.size(),
              discovered.quality->attribute().c_str());

  // The consumer builds its stub AND its quality manager from discovery —
  // the quality compiler wires every message type named in the quality file
  // to the WSDL types; the consumer never saw grid_data_coarse in source.
  core::QualityCompileOptions consumer_options;
  consumer_options.switch_threshold = 2;
  auto consumer_quality = core::compile_quality(*discovered.quality,
                                                discovered.service,
                                                consumer_options);

  auto sensor_stream = net::TcpStream::connect("127.0.0.1", sensor_http.port());
  core::HttpTransport sensor_transport(*sensor_stream);
  core::ClientStub sensor_client(sensor_transport, core::WireFormat::kBinary,
                                 discovered.service, format_server, clock);
  sensor_client.set_quality_manager(consumer_quality);

  const Value data = sensor_client.call(
      "sample", Value::record({{"region", "N31.2-W97.4"}, {"max_points", 12}}));
  std::printf("consumer: got %zu points for %s (response type '%s')\n",
              data.field("points").array_size(),
              data.field("region").as_string().c_str(),
              sensor_client.last_response_type().c_str());

  registry_http.shutdown();
  sensor_http.shutdown();
  std::printf("\nconsumer bootstrapped everything from one registry lookup.\n");
  return 0;
}
