#!/usr/bin/env python3
"""Checks an sbqlint summary report (sbqlint --summary, see BENCH_lint.json).

Usage: check_bench_lint.py BENCH_lint.json

The summary is the process-quality trajectory: which rules ran, how much
of the program the call graph covered, how many suppressions are in
force, and that the sweep was clean. The floors are deliberately loose —
they catch a silently-neutered analyzer (a parse regression that drops
most functions, a rule that stopped registering), not normal growth.
"""
import json
import sys

# The full rule set, in registration order. A missing rule means the
# analyzer was built without it; extra rules are fine (future PRs).
REQUIRED_RULES = [
    "layering",
    "no-raw-throw",
    "no-swallow",
    "cast-confinement",
    "clock-discipline",
    "sleep-discipline",
    "event-loop-blocking",
    "lock-discipline",
    "hot-path-allocation",
    "guarded-field",
    "thread-affinity",
    "bad-pragma",
]

# Coverage floors, well under the current sweep (186 files, ~1030
# functions, ~1980 edges) but far above what a broken parser produces.
MIN_FILES = 120
MIN_FUNCTIONS = 700
MIN_CALL_EDGES = 1400

# The data-race pass only checks what is annotated: a collapse in bound
# annotations (or in resolved thread roots) silently disables it the same
# way a dropped rule would.
MIN_ANNOTATED_FIELDS = 30
MIN_AFFINITY_ROOTS = 3

# Suppressions need justifications and review; a sudden pile of pragmas
# is a smell even when the sweep is "clean".
MAX_PRAGMAS = 20


def fail(msg):
    print(f"check_bench_lint: FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip())
        sys.exit(2)
    with open(sys.argv[1]) as fh:
        summary = json.load(fh)

    if summary.get("findings", -1) != 0:
        fail(f"sweep is not clean: {summary.get('findings')} finding(s)")

    rules = summary.get("rules_run", [])
    for rule in REQUIRED_RULES:
        if rule not in rules:
            fail(f"rule '{rule}' did not run")

    if summary.get("files_scanned", 0) < MIN_FILES:
        fail(f"only {summary.get('files_scanned')} files scanned "
             f"(floor {MIN_FILES}) — tree walk broken?")
    if summary.get("functions", 0) < MIN_FUNCTIONS:
        fail(f"only {summary.get('functions')} functions parsed "
             f"(floor {MIN_FUNCTIONS}) — definition parser regressed?")
    if summary.get("call_edges", 0) < MIN_CALL_EDGES:
        fail(f"only {summary.get('call_edges')} call edges resolved "
             f"(floor {MIN_CALL_EDGES}) — call resolution regressed?")

    if summary.get("annotated_fields", 0) < MIN_ANNOTATED_FIELDS:
        fail(f"only {summary.get('annotated_fields')} guarded/affine fields "
             f"annotated (floor {MIN_ANNOTATED_FIELDS}) — annotation "
             f"binding regressed?")
    if summary.get("affinity_roots", 0) < MIN_AFFINITY_ROOTS:
        fail(f"only {summary.get('affinity_roots')} thread roots resolved "
             f"(floor {MIN_AFFINITY_ROOTS}) — root entry points renamed?")

    if summary.get("pragmas_in_force", 0) > MAX_PRAGMAS:
        fail(f"{summary.get('pragmas_in_force')} suppression pragmas in "
             f"force (cap {MAX_PRAGMAS}) — review before re-baselining")

    print(f"check_bench_lint: OK: {summary['files_scanned']} files, "
          f"{summary['functions']} functions, {summary['call_edges']} edges, "
          f"{summary.get('annotated_fields', 0)} annotated fields, "
          f"{summary.get('affinity_roots', 0)} thread roots, "
          f"{len(rules)} rules, {summary.get('pragmas_in_force', 0)} pragmas "
          f"in force, 0 findings")


if __name__ == "__main__":
    main()
