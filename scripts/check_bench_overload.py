#!/usr/bin/env python3
"""Checks a bench_overload JSON-lines report (see bench/bench_overload.cpp).

Usage: check_bench_overload.py BENCH_overload.json

The report must contain both fronts (bench_overload --front=both). Three
families of checks, all with generous noise bands because this runs on
shared CI machines:

  1. Ladder sanity, per front: past saturation the shedding configuration
     actually sheds, and its p99 stays far below the non-shedding queue's
     tail at 16x.
  2. Capacity A/B: with every client holding its connection open, the event
     front serves at least 4x the connections the threaded front does at
     equal worker count (the refactor's headline claim).
  3. Latency A/B: event-front p99 tracks the threaded (PR-3 baseline) p99
     within 20% plus an absolute allowance for scheduler jitter on tiny
     sample counts.
"""
import json
import sys

# Noise bands. The relative band is the acceptance criterion (20%); the
# absolute allowance covers p99-of-a-few-hundred-samples jitter on busy CI
# machines, where a single 10ms scheduler stall moves the percentile.
P99_RELATIVE_BAND = 1.20
P99_ABSOLUTE_SLACK_MS = 10.0
CAPACITY_FACTOR = 4.0


def load_rows(path):
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def fail(msg):
    print(f"check_bench_overload: FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip())
        sys.exit(2)
    rows = load_rows(sys.argv[1])

    grid = {}  # (front, multiplier, shedding) -> row
    capacity = {}  # front -> row
    for row in rows:
        if row.get("bench") == "overload":
            grid[(row["front"], row["multiplier"], row["shedding"])] = row
        elif row.get("bench") == "overload_capacity":
            capacity[row["front"]] = row

    for front in ("threaded", "event"):
        for mult in (1, 4, 16):
            for shed in (True, False):
                if (front, mult, shed) not in grid:
                    fail(f"missing grid row front={front} multiplier={mult} "
                         f"shedding={shed} (run with --front=both)")
        if front not in capacity:
            fail(f"missing capacity row for front={front}")

    # 1. Ladder sanity per front.
    for front in ("threaded", "event"):
        for mult in (4, 16):
            row = grid[(front, mult, True)]
            if row["server_shed"] == 0:
                fail(f"{front} front shed nothing at {mult}x capacity")
        shed16 = grid[(front, 16, True)]["p99_ms"]
        queue16 = grid[(front, 16, False)]["p99_ms"]
        if not shed16 < 0.5 * queue16:
            fail(f"{front} front: shedding p99 at 16x ({shed16:.1f}ms) is "
                 f"not well below the unbounded queue's ({queue16:.1f}ms)")

    # 2. Capacity A/B.
    threaded_served = capacity["threaded"]["served"]
    event_served = capacity["event"]["served"]
    need = CAPACITY_FACTOR * max(1, threaded_served)
    if event_served < need:
        fail(f"event front served {event_served} held connections; needs "
             f">= {need:.0f} ({CAPACITY_FACTOR}x threaded's "
             f"{threaded_served}) at equal workers")

    # 3. Latency A/B with noise bands.
    for mult in (1, 4, 16):
        for shed in (True, False):
            threaded_p99 = grid[("threaded", mult, shed)]["p99_ms"]
            event_p99 = grid[("event", mult, shed)]["p99_ms"]
            limit = threaded_p99 * P99_RELATIVE_BAND + P99_ABSOLUTE_SLACK_MS
            if event_p99 > limit:
                fail(f"event p99 {event_p99:.2f}ms exceeds band "
                     f"{limit:.2f}ms (threaded {threaded_p99:.2f}ms, "
                     f"multiplier={mult}, shedding={shed})")

    print(f"check_bench_overload: OK — event served {event_served}/"
          f"{capacity['event']['clients']} held connections vs threaded "
          f"{threaded_served} ({event_served / max(1, threaded_served):.0f}x)"
          f"; p99 within bands across the grid")


if __name__ == "__main__":
    main()
