#!/usr/bin/env python3
"""Checks a bench_resilience JSON-lines report (see bench/bench_resilience.cpp).

Usage: check_bench_resilience.py BENCH_resilience.json

The bench runs on a simulated clock, so the numbers are deterministic — the
bands below are still kept loose so that an intentional re-tuning of link or
breaker parameters doesn't need a lockstep comparator edit. Three claims:

  1. Kill — a plain stub pinned to the dying replica demonstrably bleeds
     calls, while the resilient stub rides through the outage at >= 99%
     success with a bounded tail, and the breaker story is observable:
     trip(s), failover, probes against the corpse, and the probe-driven
     close when the replica returns.
  2. Brownout — the scripted 300ms stall actually bites the baseline
     (max latency and slow-call count), and EWMA re-routing means the
     resilient stub eats at most a few slow calls.
  3. Hedging — hedges fire and win, and they bound even the first browned
     call: the hedged tail stays under half the baseline's max.
"""
import json
import sys

KILL_BASELINE_MAX_RATE = 0.95    # the kill must visibly bleed the baseline
KILL_RESILIENT_MIN_RATE = 0.99   # acceptance criterion
KILL_MARGIN_CALLS = 50           # resilient must save a real number of calls
KILL_RESILIENT_P99_MS = 100.0    # failover keeps the tail bounded
BROWNOUT_MIN_MAX_MS = 250.0      # the stall must actually show up
BROWNOUT_MIN_SLOW = 5            # ... on more than a stray call
RESILIENT_MAX_SLOW = 3           # EWMA re-routing eats at most a few stalls
HEDGE_MAX_SLOW = 2               # hedging cuts off (almost) every straggler
HEDGE_TAIL_FACTOR = 0.5          # hedged max <= half the baseline's max


def load_rows(path):
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def fail(msg):
    print(f"check_bench_resilience: FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip())
        sys.exit(2)
    rows = load_rows(sys.argv[1])

    report = {}  # (bench, mode) -> row
    for row in rows:
        if row.get("bench", "").startswith("resilience_"):
            report[(row["bench"], row["mode"])] = row

    expected = [("resilience_kill", "baseline"),
                ("resilience_kill", "resilient"),
                ("resilience_brownout", "baseline"),
                ("resilience_brownout", "resilient"),
                ("resilience_brownout", "resilient_hedge")]
    for key in expected:
        if key not in report:
            fail(f"missing row bench={key[0]} mode={key[1]}")

    # 1. Kill.
    base = report[("resilience_kill", "baseline")]
    res = report[("resilience_kill", "resilient")]
    if base["success_rate"] > KILL_BASELINE_MAX_RATE:
        fail(f"kill baseline succeeded {base['success_rate']:.3f}; the outage "
             f"is not biting (need <= {KILL_BASELINE_MAX_RATE})")
    if res["success_rate"] < KILL_RESILIENT_MIN_RATE:
        fail(f"kill resilient success {res['success_rate']:.3f} below the "
             f"{KILL_RESILIENT_MIN_RATE} acceptance bar")
    if res["successes"] < base["successes"] + KILL_MARGIN_CALLS:
        fail(f"kill resilient saved only "
             f"{res['successes'] - base['successes']} calls over the "
             f"baseline (need >= {KILL_MARGIN_CALLS})")
    if res["p99_ms"] > KILL_RESILIENT_P99_MS:
        fail(f"kill resilient p99 {res['p99_ms']:.1f}ms is not bounded "
             f"(need <= {KILL_RESILIENT_P99_MS}ms)")
    for counter in ("failovers", "breaker_trips", "probes", "breaker_closes"):
        if res[counter] < 1:
            fail(f"kill resilient shows no {counter}; the breaker/probe "
                 f"story is not observable")

    # 2. Brownout.
    base = report[("resilience_brownout", "baseline")]
    res = report[("resilience_brownout", "resilient")]
    hedge = report[("resilience_brownout", "resilient_hedge")]
    if base["max_ms"] < BROWNOUT_MIN_MAX_MS:
        fail(f"brownout baseline max {base['max_ms']:.1f}ms; the stall is "
             f"not biting (need >= {BROWNOUT_MIN_MAX_MS}ms)")
    if base["slow_calls"] < BROWNOUT_MIN_SLOW:
        fail(f"brownout baseline ate only {base['slow_calls']} slow calls "
             f"(need >= {BROWNOUT_MIN_SLOW})")
    if res["slow_calls"] > RESILIENT_MAX_SLOW:
        fail(f"brownout resilient ate {res['slow_calls']} slow calls; EWMA "
             f"re-routing should cap it at {RESILIENT_MAX_SLOW}")
    if res["slow_calls"] >= base["slow_calls"]:
        fail(f"brownout resilient ({res['slow_calls']} slow calls) is no "
             f"better than the baseline ({base['slow_calls']})")

    # 3. Hedging.
    if hedge["hedges"] < 1 or hedge["hedge_wins"] < 1:
        fail(f"hedge mode fired {hedge['hedges']} hedges / "
             f"{hedge['hedge_wins']} wins; need at least one of each")
    if hedge["slow_calls"] > HEDGE_MAX_SLOW:
        fail(f"hedge mode still ate {hedge['slow_calls']} slow calls "
             f"(need <= {HEDGE_MAX_SLOW})")
    limit = HEDGE_TAIL_FACTOR * base["max_ms"]
    if hedge["max_ms"] > limit:
        fail(f"hedged max {hedge['max_ms']:.1f}ms exceeds {limit:.1f}ms "
             f"({HEDGE_TAIL_FACTOR} x baseline max {base['max_ms']:.1f}ms)")

    kill_res = report[("resilience_kill", "resilient")]
    print(f"check_bench_resilience: OK — kill survived at "
          f"{kill_res['success_rate']:.1%} (baseline "
          f"{report[('resilience_kill', 'baseline')]['success_rate']:.1%}) "
          f"with {kill_res['breaker_trips']} trips / {kill_res['probes']} "
          f"probes / {kill_res['breaker_closes']} closes; hedging cut the "
          f"brownout tail to {hedge['max_ms']:.0f}ms from "
          f"{base['max_ms']:.0f}ms")


if __name__ == "__main__":
    main()
