#!/usr/bin/env bash
# Regenerates every paper table/figure and the test log.
#
#   scripts/reproduce.sh [build-dir]
#
# Produces test_output.txt and bench_output.txt in the repository root.
# Set SBQ_CPU_SCALE=1 for uncalibrated host CPU times (default 8 ≈ 2004
# hardware; see bench/bench_util.h).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -G Ninja "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" 2>&1 | tee "$repo_root/test_output.txt"

: > "$repo_root/bench_output.txt"
for bench in "$build_dir"/bench/bench_*; do
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  echo "##### $(basename "$bench")" | tee -a "$repo_root/bench_output.txt"
  "$bench" 2>&1 | tee -a "$repo_root/bench_output.txt"
done

echo "done: test_output.txt, bench_output.txt"
