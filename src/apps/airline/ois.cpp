#include "apps/airline/ois.h"

#include "common/error.h"
#include "common/rng.h"

namespace sbq::airline {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

namespace {

const char* kOrigins[] = {"ATL", "JFK", "LAX", "ORD", "DFW", "CDG", "LHR", "NRT"};
const char* kFirstNames[] = {"Avery", "Blake", "Casey", "Devon", "Emery",
                             "Finley", "Gray", "Harper", "Indra", "Jules"};
const char* kLastNames[] = {"Adams", "Baker", "Chen", "Diaz", "Evans",
                            "Fowler", "Garcia", "Hale", "Ishii", "Jones"};
const char* kSpecialMeals[] = {"VGML", "KSML", "HNML", "GFML", "DBML", "LSML"};

std::string seat_label(int row, int column) {
  return std::to_string(row) + static_cast<char>('A' + column);
}

}  // namespace

std::string meal_code_for(const Passenger& passenger) {
  if (!passenger.meal_preference.empty()) return passenger.meal_preference;
  switch (passenger.cabin) {
    case CabinClass::kFirst: return "STD-F";
    case CabinClass::kBusiness: return "STD-J";
    case CabinClass::kEconomy: return "STD-Y";
  }
  throw CodecError("bad cabin class");
}

CateringExcerpt catering_excerpt(const Flight& flight) {
  CateringExcerpt excerpt;
  excerpt.flight = flight.number;
  excerpt.origin = flight.origin;
  excerpt.destination = flight.destination;
  excerpt.departure_minute = flight.departure_minute;
  excerpt.meals.reserve(flight.passengers.size());
  for (const Passenger& p : flight.passengers) {
    excerpt.meals.push_back(MealOrder{p.seat, meal_code_for(p)});
  }
  return excerpt;
}

OperationalStore::OperationalStore(std::uint64_t seed) : seed_(seed) {}

void OperationalStore::populate(int flight_count, int passengers_per_flight) {
  Rng rng(seed_);
  flights_.clear();
  for (int f = 0; f < flight_count; ++f) {
    Flight flight;
    flight.number = "DL" + std::to_string(1000 + f);
    flight.origin = kOrigins[rng.next_below(std::size(kOrigins))];
    do {
      flight.destination = kOrigins[rng.next_below(std::size(kOrigins))];
    } while (flight.destination == flight.origin);
    flight.departure_minute = static_cast<std::int32_t>(rng.next_below(24 * 60));
    for (int p = 0; p < passengers_per_flight; ++p) {
      Passenger pax;
      pax.id = f * 1000 + p;
      pax.name = std::string(kFirstNames[rng.next_below(std::size(kFirstNames))]) +
                 " " + kLastNames[rng.next_below(std::size(kLastNames))];
      pax.seat = seat_label(1 + p / 6, p % 6);
      const double r = rng.next_double();
      pax.cabin = r < 0.05   ? CabinClass::kFirst
                  : r < 0.20 ? CabinClass::kBusiness
                             : CabinClass::kEconomy;
      if (rng.chance(0.18)) {
        pax.meal_preference = kSpecialMeals[rng.next_below(std::size(kSpecialMeals))];
      }
      flight.passengers.push_back(std::move(pax));
    }
    flights_.emplace(flight.number, std::move(flight));
  }
}

std::string OperationalStore::apply_random_event() {
  if (flights_.empty()) throw CodecError("store is empty; call populate() first");
  Rng rng(seed_ + 7919 * (events_applied_ + 1));
  auto it = flights_.begin();
  std::advance(it, static_cast<long>(rng.next_below(flights_.size())));
  Flight& flight = it->second;
  ++events_applied_;

  const double kind = rng.next_double();
  if (kind < 0.4 && !flight.passengers.empty()) {
    // Meal preference change.
    Passenger& pax =
        flight.passengers[rng.next_below(flight.passengers.size())];
    pax.meal_preference = kSpecialMeals[rng.next_below(std::size(kSpecialMeals))];
    return "meal-change " + flight.number + " seat " + pax.seat;
  }
  if (kind < 0.7 && flight.passengers.size() > 4) {
    // Cancellation.
    const std::size_t victim = rng.next_below(flight.passengers.size());
    const std::string seat = flight.passengers[victim].seat;
    flight.passengers.erase(flight.passengers.begin() + static_cast<long>(victim));
    return "cancel " + flight.number + " seat " + seat;
  }
  // New booking.
  Passenger pax;
  pax.id = static_cast<std::int32_t>(10'000'000 + events_applied_);
  pax.name = std::string(kFirstNames[rng.next_below(std::size(kFirstNames))]) + " " +
             kLastNames[rng.next_below(std::size(kLastNames))];
  pax.seat = seat_label(30 + static_cast<int>(events_applied_ % 10),
                        static_cast<int>(rng.next_below(6)));
  pax.cabin = CabinClass::kEconomy;
  flight.passengers.push_back(pax);
  return "book " + flight.number + " seat " + flight.passengers.back().seat;
}

const Flight* OperationalStore::flight(const std::string& number) const {
  const auto it = flights_.find(number);
  return it == flights_.end() ? nullptr : &it->second;
}

std::vector<std::string> OperationalStore::flight_numbers() const {
  std::vector<std::string> out;
  out.reserve(flights_.size());
  for (const auto& [number, flight] : flights_) out.push_back(number);
  return out;
}

FormatPtr meal_order_format() {
  static const FormatPtr format = FormatBuilder("meal_order")
                                      .add_string("seat")
                                      .add_string("code")
                                      .build();
  return format;
}

FormatPtr catering_excerpt_format() {
  static const FormatPtr format =
      FormatBuilder("catering_excerpt")
          .add_string("flight")
          .add_string("origin")
          .add_string("destination")
          .add_scalar("departure_minute", TypeKind::kInt32)
          .add_struct_var_array("meals", meal_order_format())
          .build();
  return format;
}

FormatPtr catering_request_format() {
  static const FormatPtr format =
      FormatBuilder("catering_request").add_string("flight").build();
  return format;
}

Value excerpt_to_value(const CateringExcerpt& excerpt) {
  Value meals = Value::empty_array();
  for (const MealOrder& m : excerpt.meals) {
    meals.push_back(Value::record({{"seat", m.seat}, {"code", m.code}}));
  }
  return Value::record({{"flight", excerpt.flight},
                        {"origin", excerpt.origin},
                        {"destination", excerpt.destination},
                        {"departure_minute", excerpt.departure_minute},
                        {"meals", std::move(meals)}});
}

CateringExcerpt excerpt_from_value(const Value& value) {
  CateringExcerpt excerpt;
  excerpt.flight = value.field("flight").as_string();
  excerpt.origin = value.field("origin").as_string();
  excerpt.destination = value.field("destination").as_string();
  excerpt.departure_minute =
      static_cast<std::int32_t>(value.field("departure_minute").as_i64());
  for (const Value& m : value.field("meals").elements()) {
    excerpt.meals.push_back(
        MealOrder{m.field("seat").as_string(), m.field("code").as_string()});
  }
  return excerpt;
}

}  // namespace sbq::airline
