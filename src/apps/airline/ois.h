// Operational information system (OIS) substrate — the paper's commercial
// application (Table I).
//
// "Flight and passenger information is collected and distributed, and
// excerpts of such information are shared with relevant parties, such as
// flight caterers. The client requests specific detail about the meals to
// be served, and the server responds with such detail."
//
// This module provides: an in-memory flight/passenger data set fed by a
// deterministic event generator, the business rule that derives meal orders
// from passenger class and preferences, and the catering-excerpt message
// type whose XML encoding is ≈4.5× its PBIO encoding (3898 B vs 860 B in
// the paper).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pbio/format.h"
#include "pbio/value.h"

namespace sbq::airline {

enum class CabinClass : std::int32_t { kEconomy = 0, kBusiness = 1, kFirst = 2 };

struct Passenger {
  std::int32_t id = 0;
  std::string name;
  std::string seat;
  CabinClass cabin = CabinClass::kEconomy;
  std::string meal_preference;  // "" = no special request
};

struct Flight {
  std::string number;       // e.g. "DL1042"
  std::string origin;       // IATA
  std::string destination;  // IATA
  std::int32_t departure_minute = 0;  // minutes since midnight
  std::vector<Passenger> passengers;
};

/// One meal order derived by the business rules.
struct MealOrder {
  std::string seat;
  std::string code;  // catering code, e.g. "VGML", "STD-J"
};

/// The catering excerpt shared with the caterer.
struct CateringExcerpt {
  std::string flight;
  std::string origin;
  std::string destination;
  std::int32_t departure_minute = 0;
  std::vector<MealOrder> meals;
};

/// In-memory operational data set with a deterministic update stream.
class OperationalStore {
 public:
  explicit OperationalStore(std::uint64_t seed = 42);

  /// Generates `flight_count` flights with `passengers_per_flight` each.
  void populate(int flight_count, int passengers_per_flight);

  /// Applies one random update event (booking, cancellation, meal change);
  /// returns a short description of what changed.
  std::string apply_random_event();

  [[nodiscard]] const Flight* flight(const std::string& number) const;
  [[nodiscard]] std::vector<std::string> flight_numbers() const;
  [[nodiscard]] std::size_t event_count() const { return events_applied_; }

 private:
  std::map<std::string, Flight> flights_;
  std::uint64_t seed_;
  std::size_t events_applied_ = 0;
};

/// Business rule: meal code per passenger (preference wins; otherwise the
/// cabin's standard service).
std::string meal_code_for(const Passenger& passenger);

/// Derives the caterer's excerpt for one flight.
CateringExcerpt catering_excerpt(const Flight& flight);

// --- PBIO formats / Value bridging ------------------------------------------

/// `meal_order{seat:string,code:string}`
pbio::FormatPtr meal_order_format();
/// `catering_excerpt{flight,origin,destination:string,departure_minute:i32,
///                   meals:meal_order[]}`
pbio::FormatPtr catering_excerpt_format();
/// Request format `catering_request{flight:string}`.
pbio::FormatPtr catering_request_format();

pbio::Value excerpt_to_value(const CateringExcerpt& excerpt);
CateringExcerpt excerpt_from_value(const pbio::Value& value);

}  // namespace sbq::airline
