#include "apps/echo/echo.h"

#include "common/error.h"

namespace sbq::echo {

std::size_t EventChannel::subscribe(SinkFn sink) {
  if (!sink) throw RpcError("null sink");
  const std::size_t token = next_token_++;
  sinks_.emplace(token, std::move(sink));
  return token;
}

void EventChannel::unsubscribe(std::size_t token) {
  sinks_.erase(token);
}

void EventChannel::submit(const Event& event) {
  if (event.format && format_ &&
      event.format->format_id() != format_->format_id()) {
    throw CodecError("event format '" + event.format->name +
                     "' does not match channel '" + name_ + "' format '" +
                     format_->name + "'");
  }
  ++submitted_;

  // Deliver to sinks; a sink returning false unsubscribes itself.
  for (auto it = sinks_.begin(); it != sinks_.end();) {
    if (it->second(event)) {
      ++it;
    } else {
      it = sinks_.erase(it);
    }
  }

  // Feed derived channels through their filters.
  for (const Derived& d : derived_) {
    if (auto transformed = d.filter(event)) {
      d.channel->submit(*transformed);
    }
  }
}

std::shared_ptr<EventChannel> EventChannel::derive(std::string name,
                                                   pbio::FormatPtr format,
                                                   FilterFn filter) {
  if (!filter) throw RpcError("null filter");
  auto child = std::make_shared<EventChannel>(std::move(name), std::move(format));
  derived_.push_back(Derived{child, std::move(filter)});
  return child;
}

std::size_t EventChannel::sink_count() const {
  return sinks_.size();
}

std::shared_ptr<EventChannel> EventDomain::create_channel(const std::string& name,
                                                          pbio::FormatPtr format) {
  if (channels_.contains(name)) {
    throw RpcError("channel '" + name + "' already exists");
  }
  auto channel = std::make_shared<EventChannel>(name, std::move(format));
  channels_.emplace(name, channel);
  return channel;
}

std::shared_ptr<EventChannel> EventDomain::find(const std::string& name) const {
  const auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : it->second;
}

}  // namespace sbq::echo
