// ECho-style publish/subscribe event channels.
//
// The remote-visualization experiment (§IV-C.4) wires a bond server to a
// service portal through "an 'ECho' event source"; ECho is the group's
// publish/subscribe middleware for large-data events. This reimplementation
// provides its architectural essentials:
//   * named event channels carrying typed (PBIO-format) events,
//   * sources that submit events, sinks that receive them synchronously,
//   * derived channels: a channel whose events are a parent's events passed
//     through a subscriber-supplied filter/transform function (ECho's
//     client-initiated service specialization).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pbio/format.h"
#include "pbio/value.h"

namespace sbq::echo {

/// An event: a Value with its format.
struct Event {
  pbio::FormatPtr format;
  pbio::Value value;
};

/// Receives events; returning false unsubscribes.
using SinkFn = std::function<bool(const Event&)>;

/// Transforms a parent-channel event for a derived channel. Returning an
/// empty optional drops the event (pure filtering).
using FilterFn = std::function<std::optional<Event>(const Event&)>;

class EventChannel {
 public:
  explicit EventChannel(std::string name, pbio::FormatPtr format)
      : name_(std::move(name)), format_(std::move(format)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const pbio::FormatPtr& format() const { return format_; }

  /// Subscribes a sink; returns a token usable with unsubscribe().
  std::size_t subscribe(SinkFn sink);
  void unsubscribe(std::size_t token);

  /// Delivers an event to all sinks (synchronously, in subscription order),
  /// then to derived channels through their filters.
  void submit(const Event& event);

  /// Creates a child channel fed by `filter`.
  std::shared_ptr<EventChannel> derive(std::string name, pbio::FormatPtr format,
                                       FilterFn filter);

  [[nodiscard]] std::size_t sink_count() const;
  [[nodiscard]] std::uint64_t events_submitted() const { return submitted_; }

 private:
  struct Derived {
    std::shared_ptr<EventChannel> channel;
    FilterFn filter;
  };

  std::string name_;
  pbio::FormatPtr format_;
  std::map<std::size_t, SinkFn> sinks_;
  std::vector<Derived> derived_;
  std::size_t next_token_ = 1;
  std::uint64_t submitted_ = 0;
};

/// Channel registry, keyed by name (the "EChannel namespace").
class EventDomain {
 public:
  std::shared_ptr<EventChannel> create_channel(const std::string& name,
                                               pbio::FormatPtr format);
  [[nodiscard]] std::shared_ptr<EventChannel> find(const std::string& name) const;

 private:
  std::map<std::string, std::shared_ptr<EventChannel>> channels_;
};

}  // namespace sbq::echo
