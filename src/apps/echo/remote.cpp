#include "apps/echo/remote.h"

#include "common/error.h"
#include "pbio/encode.h"
#include "pbio/value_codec.h"

namespace sbq::echo {

using pbio::Value;

pbio::FormatPtr bridge_event_format() {
  static const pbio::FormatPtr format = pbio::FormatBuilder("bridge_event")
                                            .add_string("channel")
                                            .add_var_array("message",
                                                           pbio::TypeKind::kChar)
                                            .build();
  return format;
}

pbio::FormatPtr bridge_ack_format() {
  static const pbio::FormatPtr format =
      pbio::FormatBuilder("bridge_ack")
          .add_scalar("delivered", pbio::TypeKind::kInt32)
          .build();
  return format;
}

wsdl::ServiceDesc bridge_service_desc() {
  wsdl::ServiceDesc svc;
  svc.name = "EventBridge";
  svc.target_namespace = "urn:sbq:echo";
  svc.operations.push_back(wsdl::OperationDesc{"submit_event", bridge_event_format(),
                                               bridge_ack_format()});
  return svc;
}

void host_event_bridge(core::ServiceRuntime& runtime,
                       std::shared_ptr<EventDomain> domain) {
  if (!domain) throw RpcError("host_event_bridge: null domain");
  core::ServiceRuntime* runtime_ptr = &runtime;
  runtime.register_operation(
      "submit_event", bridge_event_format(), bridge_ack_format(),
      [domain, runtime_ptr](const Value& params) {
        const std::string& channel_name = params.field("channel").as_string();
        auto channel = domain->find(channel_name);
        if (!channel) {
          throw RpcError("bridge: no channel named '" + channel_name + "'");
        }

        // The payload is a full PBIO message; resolve its format through
        // the shared format server (cached after the first event).
        const std::string& message = params.field("message").as_string();
        ByteReader reader(message.data(), message.size());
        const pbio::WireHeader header = pbio::read_header(reader);
        const pbio::FormatPtr format =
            runtime_ptr->format_cache().resolve(header.format_id);
        Value payload = pbio::decode_value_payload(
            reader.read_view(header.payload_length), header.sender_order, *format);

        channel->submit(Event{format, std::move(payload)});
        return Value::record(
            {{"delivered", static_cast<std::int64_t>(channel->sink_count())}});
      });
}

int submit_remote(core::ClientStub& bridge_client, const std::string& channel,
                  const Event& event) {
  if (!event.format) throw RpcError("submit_remote: event without format");
  // First-send registration of the inner event format (cached after that).
  bridge_client.format_cache().announce(event.format);
  const Bytes message = pbio::encode_value_message(event.value, *event.format);
  const Value ack = bridge_client.call(
      "submit_event",
      Value::record({{"channel", channel},
                     {"message", to_string(BytesView{message})}}));
  return static_cast<int>(ack.field("delivered").as_i64());
}

std::size_t forward_channel(EventChannel& local, core::ClientStub& bridge_client,
                            std::string remote_channel) {
  return local.subscribe(
      [&bridge_client, remote_channel = std::move(remote_channel)](const Event& e) {
        submit_remote(bridge_client, remote_channel, e);
        return true;
      });
}

}  // namespace sbq::echo
