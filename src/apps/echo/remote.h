// Remote event channels: ECho events over SOAP-bin.
//
// The paper's remote-visualization setup runs the bond server and the
// service portal as separate processes connected by ECho. This module
// provides that distribution layer: a bridge service that accepts events
// over SOAP-bin and republishes them into a local EventDomain, plus a
// client-side forwarder that ships every event of a local channel to a
// remote bridge. Event payloads travel as PBIO messages, so the bridge
// resolves unknown formats through the shared format server exactly like
// any other SOAP-bin endpoint.
#pragma once

#include <memory>
#include <string>

#include "apps/echo/echo.h"
#include "core/client.h"
#include "core/service.h"

namespace sbq::echo {

/// `bridge_event{channel:string,message:char[]}` — message holds a complete
/// PBIO message (header + payload).
pbio::FormatPtr bridge_event_format();

/// `bridge_ack{delivered:i32}` — sinks reached on the remote side.
pbio::FormatPtr bridge_ack_format();

/// Interface description of a bridge endpoint (operation "submit_event").
wsdl::ServiceDesc bridge_service_desc();

/// Registers the bridge's "submit_event" operation on `runtime`. Incoming
/// events are decoded (resolving formats via the runtime's format cache)
/// and submitted into the named channel of `domain`. Unknown channel names
/// produce an RpcError back to the sender.
void host_event_bridge(core::ServiceRuntime& runtime,
                       std::shared_ptr<EventDomain> domain);

/// Sends one event to a remote bridge; returns the remote sink count.
int submit_remote(core::ClientStub& bridge_client, const std::string& channel,
                  const Event& event);

/// Subscribes a forwarder to `local`: every submitted event is shipped to
/// the remote bridge under `remote_channel`. Returns the subscription
/// token (unsubscribe on `local` to stop forwarding).
std::size_t forward_channel(EventChannel& local, core::ClientStub& bridge_client,
                            std::string remote_channel);

}  // namespace sbq::echo
