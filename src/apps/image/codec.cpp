#include "apps/image/codec.h"

#include <algorithm>

#include "apps/image/ops.h"
#include "common/error.h"

namespace sbq::image {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

namespace {
FormatPtr make_image_format(const std::string& name) {
  return FormatBuilder(name)
      .add_scalar("width", TypeKind::kInt32)
      .add_scalar("height", TypeKind::kInt32)
      .add_var_array("pixels", TypeKind::kChar)
      .build();
}
}  // namespace

FormatPtr image_format() {
  static const FormatPtr format = make_image_format("image");
  return format;
}

FormatPtr half_image_format() {
  static const FormatPtr format = make_image_format("half_image");
  return format;
}

FormatPtr image_request_format() {
  static const FormatPtr format = FormatBuilder("image_request")
                                      .add_string("filename")
                                      .add_string("transform")
                                      .build();
  return format;
}

Value image_to_value(const Image& image, const pbio::FormatDesc& format) {
  if (format.field("pixels") == nullptr) {
    throw CodecError("format '" + format.name + "' is not an image format");
  }
  return Value::record(
      {{"width", image.width()},
       {"height", image.height()},
       {"pixels", Value{to_string(BytesView{image.bytes()})}}});
}

Image image_from_value(const Value& value) {
  const auto width = static_cast<int>(value.field("width").as_i64());
  const auto height = static_cast<int>(value.field("height").as_i64());
  const std::string& pixels = value.field("pixels").as_string();
  Image image(width, height);
  if (pixels.size() != image.byte_size()) {
    throw CodecError("pixel buffer size " + std::to_string(pixels.size()) +
                     " does not match " + std::to_string(width) + "x" +
                     std::to_string(height));
  }
  std::copy(pixels.begin(), pixels.end(), image.bytes().begin());
  return image;
}

Value resize_quality_handler(const Value& full, const pbio::FormatDesc& target,
                             const qos::AttributeMap& /*attributes*/) {
  const Image image = image_from_value(full);
  const Image reduced = downscale(image, 2);
  return image_to_value(reduced, target);
}

Value crop_quality_handler(const Value& full, const pbio::FormatDesc& target,
                           const qos::AttributeMap& attributes) {
  const Image image = image_from_value(full);

  auto attr = [&](const char* name, double fallback) {
    const auto it = attributes.find(name);
    return it == attributes.end() ? fallback : it->second;
  };
  // Default region: the centered quarter of the frame.
  int x = static_cast<int>(attr("roi_x", image.width() / 4.0));
  int y = static_cast<int>(attr("roi_y", image.height() / 4.0));
  int w = static_cast<int>(attr("roi_w", image.width() / 2.0));
  int h = static_cast<int>(attr("roi_h", image.height() / 2.0));

  // Clamp to the frame so stale attribute values cannot fault the server.
  x = std::clamp(x, 0, image.width() - 1);
  y = std::clamp(y, 0, image.height() - 1);
  w = std::clamp(w, 1, image.width() - x);
  h = std::clamp(h, 1, image.height() - y);

  return image_to_value(crop(image, x, y, w, h), target);
}

}  // namespace sbq::image
