// PBIO formats and Value bridging for images — what the WSDL compiler
// produces for the imaging service's message types, including the reduced
// "half resolution" type its quality file selects under congestion.
#pragma once

#include "apps/image/ppm.h"
#include "pbio/format.h"
#include "pbio/value.h"
#include "qos/manager.h"

namespace sbq::image {

/// Format `image{width:i32,height:i32,pixels:char[]}` — the full 640×480 type.
pbio::FormatPtr image_format();

/// Same structure under the name the quality file selects for reduced
/// resolution. A distinct format (distinct name → distinct id) so receiver
/// and benches can tell which type was transmitted.
pbio::FormatPtr half_image_format();

/// Request format `image_request{filename:string,transform:string}`.
pbio::FormatPtr image_request_format();

/// Image → record of `format` (any of the two image formats).
pbio::Value image_to_value(const Image& image, const pbio::FormatDesc& format);

/// Record → Image.
Image image_from_value(const pbio::Value& value);

/// Quality handler that resizes the full image down by 2 when converting to
/// `half_image_format()` (the paper's 640×480 → 320×240 reduction).
pbio::Value resize_quality_handler(const pbio::Value& full,
                                   const pbio::FormatDesc& target,
                                   const qos::AttributeMap& attributes);

/// Quality handler that crops to a region of interest — the paper's image
/// filter "that crops images provided by clients to focus on areas of
/// current interest". The region comes from the live quality attributes
/// `roi_x`, `roi_y`, `roi_w`, `roi_h` (pixels, clamped to the frame);
/// absent attributes default to the centered quarter of the frame. This is
/// the per-invocation parameterization the paper's subcontract-style
/// mechanisms lacked.
pbio::Value crop_quality_handler(const pbio::Value& full,
                                 const pbio::FormatDesc& target,
                                 const qos::AttributeMap& attributes);

}  // namespace sbq::image
