#include "apps/image/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.h"

namespace sbq::image {

namespace {
double luma(Rgb p) {
  return 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
}

std::uint8_t clamp8(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}
}  // namespace

Image grayscale(const Image& input) {
  Image out(input.width(), input.height());
  for (int y = 0; y < input.height(); ++y) {
    for (int x = 0; x < input.width(); ++x) {
      const std::uint8_t g = clamp8(luma(input.at(x, y)));
      out.set(x, y, Rgb{g, g, g});
    }
  }
  return out;
}

Image edge_detect(const Image& input) {
  Image out(input.width(), input.height());
  const int w = input.width();
  const int h = input.height();
  auto l = [&](int x, int y) {
    // Clamp-to-edge sampling keeps the borders defined.
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return luma(input.at(x, y));
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double gx = -l(x - 1, y - 1) - 2 * l(x - 1, y) - l(x - 1, y + 1) +
                        l(x + 1, y - 1) + 2 * l(x + 1, y) + l(x + 1, y + 1);
      const double gy = -l(x - 1, y - 1) - 2 * l(x, y - 1) - l(x + 1, y - 1) +
                        l(x - 1, y + 1) + 2 * l(x, y + 1) + l(x + 1, y + 1);
      const std::uint8_t m = clamp8(std::sqrt(gx * gx + gy * gy));
      out.set(x, y, Rgb{m, m, m});
    }
  }
  return out;
}

Image downscale(const Image& input, int factor) {
  if (factor < 1) throw ParseError("downscale factor must be >= 1");
  if (factor == 1) return input;
  const int nw = (input.width() + factor - 1) / factor;
  const int nh = (input.height() + factor - 1) / factor;
  Image out(nw, nh);
  for (int y = 0; y < nh; ++y) {
    for (int x = 0; x < nw; ++x) {
      double r = 0;
      double g = 0;
      double b = 0;
      int n = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          const int sx = x * factor + dx;
          const int sy = y * factor + dy;
          if (sx >= input.width() || sy >= input.height()) continue;
          const Rgb p = input.at(sx, sy);
          r += p.r;
          g += p.g;
          b += p.b;
          ++n;
        }
      }
      out.set(x, y, Rgb{clamp8(r / n), clamp8(g / n), clamp8(b / n)});
    }
  }
  return out;
}

Image resize(const Image& input, int new_width, int new_height) {
  Image out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    for (int x = 0; x < new_width; ++x) {
      const int sx = static_cast<int>(static_cast<long long>(x) * input.width() /
                                      new_width);
      const int sy = static_cast<int>(static_cast<long long>(y) * input.height() /
                                      new_height);
      out.set(x, y, input.at(sx, sy));
    }
  }
  return out;
}

Image crop(const Image& input, int x, int y, int w, int h) {
  if (x < 0 || y < 0 || w <= 0 || h <= 0 || x + w > input.width() ||
      y + h > input.height()) {
    throw ParseError("crop rectangle out of bounds");
  }
  Image out(w, h);
  for (int oy = 0; oy < h; ++oy) {
    for (int ox = 0; ox < w; ++ox) {
      out.set(ox, oy, input.at(x + ox, y + oy));
    }
  }
  return out;
}

double mean_abs_diff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw ParseError("mean_abs_diff: size mismatch");
  }
  if (a.byte_size() == 0) return 0.0;
  double total = 0;
  for (std::size_t i = 0; i < a.bytes().size(); ++i) {
    total += std::abs(int(a.bytes()[i]) - int(b.bytes()[i]));
  }
  return total / static_cast<double>(a.bytes().size());
}

}  // namespace sbq::image
