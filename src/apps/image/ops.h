// Image transformations — the operations the paper's imaging service
// applies server-side ("scaling, edge detection, etc.") and the resizing
// quality handler SOAP-binQ uses to halve resolution under congestion.
#pragma once

#include "apps/image/ppm.h"

namespace sbq::image {

/// Luma grayscale (Rec. 601 weights), returned as RGB with equal channels.
Image grayscale(const Image& input);

/// Sobel edge detection on the luma channel; output is a grayscale edge map.
Image edge_detect(const Image& input);

/// Box-filter downscale by an integer factor (>= 1). Width/height round up
/// so no pixels are dropped (e.g. 641 wide / 2 → 321).
Image downscale(const Image& input, int factor);

/// Nearest-neighbour resize to an arbitrary size.
Image resize(const Image& input, int new_width, int new_height);

/// Crop to the rectangle [x, x+w) × [y, y+h); must lie inside the image.
Image crop(const Image& input, int x, int y, int w, int h);

/// Mean absolute per-channel difference (test/diagnostic metric).
double mean_abs_diff(const Image& a, const Image& b);

}  // namespace sbq::image
