#include "apps/image/ppm.h"

#include "common/error.h"

namespace sbq::image {

Image::Image(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw ParseError("image dimensions must be positive");
  data_.resize(byte_size(), 0);
}

Rgb Image::at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw ParseError("pixel out of range");
  }
  const std::size_t i = (static_cast<std::size_t>(y) * width_ + x) * 3;
  return Rgb{data_[i], data_[i + 1], data_[i + 2]};
}

void Image::set(int x, int y, Rgb value) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw ParseError("pixel out of range");
  }
  const std::size_t i = (static_cast<std::size_t>(y) * width_ + x) * 3;
  data_[i] = value.r;
  data_[i + 1] = value.g;
  data_[i + 2] = value.b;
}

Bytes write_ppm(const Image& image) {
  const std::string header = "P6\n" + std::to_string(image.width()) + " " +
                             std::to_string(image.height()) + "\n255\n";
  Bytes out = to_bytes(header);
  out.insert(out.end(), image.bytes().begin(), image.bytes().end());
  return out;
}

namespace {

/// Reads the next header token, skipping whitespace and '#' comments.
std::string next_token(BytesView data, std::size_t& pos) {
  auto is_ws = [](std::uint8_t c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  for (;;) {
    while (pos < data.size() && is_ws(data[pos])) ++pos;
    if (pos < data.size() && data[pos] == '#') {
      while (pos < data.size() && data[pos] != '\n') ++pos;
      continue;
    }
    break;
  }
  std::string token;
  while (pos < data.size() && !is_ws(data[pos])) {
    token += static_cast<char>(data[pos++]);
  }
  if (token.empty()) throw ParseError("truncated PPM header");
  return token;
}

int parse_dim(const std::string& token) {
  try {
    const int v = std::stoi(token);
    if (v <= 0 || v > 1 << 20) throw ParseError("PPM dimension out of range");
    return v;
  } catch (const std::exception&) {
    throw ParseError("bad PPM header token: '" + token + "'");
  }
}

}  // namespace

Image read_ppm(BytesView ppm) {
  std::size_t pos = 0;
  if (next_token(ppm, pos) != "P6") throw ParseError("not a P6 PPM");
  const int width = parse_dim(next_token(ppm, pos));
  const int height = parse_dim(next_token(ppm, pos));
  const int maxval = parse_dim(next_token(ppm, pos));
  if (maxval != 255) throw ParseError("only maxval 255 PPM is supported");
  // Exactly one whitespace byte separates header and raster.
  if (pos >= ppm.size()) throw ParseError("truncated PPM");
  ++pos;

  Image image(width, height);
  if (ppm.size() - pos < image.byte_size()) throw ParseError("PPM raster truncated");
  std::copy(ppm.begin() + static_cast<long>(pos),
            ppm.begin() + static_cast<long>(pos + image.byte_size()),
            image.bytes().begin());
  return image;
}

}  // namespace sbq::image
