// RGB images and the PPM (P6) container.
//
// The paper's imaging application serves "raw sensor data represented in
// ppm format" — 640×480, 3 bytes per pixel, ≈0.9 MB — because telescope
// pipelines must not lose information to lossy compression. This module is
// that substrate: an owning RGB8 image plus binary PPM read/write.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace sbq::image {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
};

/// Owning RGB8 raster, row-major.
class Image {
 public:
  Image() = default;
  Image(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] std::size_t byte_size() const { return pixel_count() * 3; }

  [[nodiscard]] Rgb at(int x, int y) const;
  void set(int x, int y, Rgb value);

  /// Raw interleaved RGB bytes (size = byte_size()).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return data_; }
  [[nodiscard]] std::vector<std::uint8_t>& bytes() { return data_; }

  bool operator==(const Image& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Serializes as binary PPM (P6, maxval 255).
Bytes write_ppm(const Image& image);

/// Parses binary PPM (P6); throws ParseError on malformed input. Comments
/// and arbitrary header whitespace are handled.
Image read_ppm(BytesView ppm);

}  // namespace sbq::image
