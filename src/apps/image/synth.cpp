#include "apps/image/synth.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sbq::image {

Image synth_star_field(const StarFieldConfig& config) {
  Image img(config.width, config.height);
  Rng rng(config.seed);

  // Faint vertical background gradient + per-pixel noise.
  for (int y = 0; y < config.height; ++y) {
    const double base = 8.0 + 6.0 * y / config.height;
    for (int x = 0; x < config.width; ++x) {
      const double n = rng.normal(base, config.noise_stddev);
      const auto v = static_cast<std::uint8_t>(std::clamp(n, 0.0, 40.0));
      img.set(x, y, Rgb{v, v, static_cast<std::uint8_t>(std::min(255, v + 2))});
    }
  }

  // Stars: Gaussian blobs with random position, radius, brightness, tint.
  for (int s = 0; s < config.star_count; ++s) {
    const int cx = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(config.width)));
    const int cy = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(config.height)));
    const double sigma = rng.uniform(0.6, 2.4);
    const double brightness = rng.uniform(60.0, config.max_brightness);
    const double warm = rng.uniform(0.85, 1.0);  // slight color temperature

    const int radius = static_cast<int>(std::ceil(sigma * 3));
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        const int x = cx + dx;
        const int y = cy + dy;
        if (x < 0 || x >= config.width || y < 0 || y >= config.height) continue;
        const double d2 = double(dx) * dx + double(dy) * dy;
        const double add = brightness * std::exp(-d2 / (2 * sigma * sigma));
        Rgb p = img.at(x, y);
        p.r = static_cast<std::uint8_t>(std::min(255.0, p.r + add * warm));
        p.g = static_cast<std::uint8_t>(std::min(255.0, p.g + add * warm));
        p.b = static_cast<std::uint8_t>(std::min(255.0, p.b + add));
        img.set(x, y, p);
      }
    }
  }
  return img;
}

}  // namespace sbq::image
