// Synthetic telescope frames.
//
// Stands in for the Skyserver image archive (DESIGN.md §3): a deterministic
// star field — dark sky with sensor noise, Gaussian star profiles of
// varying brightness, and a faint background gradient. The content only
// needs to be image-shaped; the experiments depend on size and structure,
// not astronomy.
#pragma once

#include <cstdint>

#include "apps/image/ppm.h"

namespace sbq::image {

struct StarFieldConfig {
  int width = 640;
  int height = 480;
  int star_count = 180;
  double max_brightness = 255.0;
  double noise_stddev = 4.0;
  std::uint64_t seed = 2004;
};

/// Renders a star field; identical config produces identical pixels.
Image synth_star_field(const StarFieldConfig& config = {});

}  // namespace sbq::image
