#include "apps/image/transforms.h"

#include "apps/image/ops.h"
#include "common/error.h"
#include "common/strings.h"

namespace sbq::image {

namespace {

int arg_int(const std::vector<std::string>& args, std::size_t index,
            const char* what) {
  if (index >= args.size()) {
    throw ParseError(std::string("transform missing argument: ") + what);
  }
  return static_cast<int>(parse_i64(args[index]));
}

void expect_args(const std::vector<std::string>& args, std::size_t n,
                 const char* name) {
  if (args.size() != n) {
    throw ParseError(std::string("transform '") + name + "' expects " +
                     std::to_string(n) + " argument(s), got " +
                     std::to_string(args.size()));
  }
}

}  // namespace

TransformRegistry::TransformRegistry() {
  register_factory("none", [](const std::vector<std::string>& args) {
    expect_args(args, 0, "none");
    return [](const Image& in) { return in; };
  });
  register_factory("gray", [](const std::vector<std::string>& args) {
    expect_args(args, 0, "gray");
    return [](const Image& in) { return grayscale(in); };
  });
  register_factory("edge", [](const std::vector<std::string>& args) {
    expect_args(args, 0, "edge");
    return [](const Image& in) { return edge_detect(in); };
  });
  register_factory("scale", [](const std::vector<std::string>& args) {
    expect_args(args, 1, "scale");
    const int factor = arg_int(args, 0, "factor");
    return [factor](const Image& in) { return downscale(in, factor); };
  });
  register_factory("resize", [](const std::vector<std::string>& args) {
    expect_args(args, 2, "resize");
    const int w = arg_int(args, 0, "width");
    const int h = arg_int(args, 1, "height");
    return [w, h](const Image& in) { return resize(in, w, h); };
  });
  register_factory("crop", [](const std::vector<std::string>& args) {
    expect_args(args, 4, "crop");
    const int x = arg_int(args, 0, "x");
    const int y = arg_int(args, 1, "y");
    const int w = arg_int(args, 2, "w");
    const int h = arg_int(args, 3, "h");
    return [x, y, w, h](const Image& in) { return crop(in, x, y, w, h); };
  });
}

void TransformRegistry::register_factory(std::string name, TransformFactory factory) {
  if (!factory) throw ParseError("null transform factory for '" + name + "'");
  factories_[std::move(name)] = std::move(factory);
}

Transform TransformRegistry::compile(std::string_view spec) const {
  const auto parts = split(spec, ':');
  const std::string_view name = parts.empty() ? spec : parts[0];
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw ParseError("unknown transform '" + std::string(name) + "'");
  }
  std::vector<std::string> args;
  for (std::size_t i = 1; i < parts.size(); ++i) args.emplace_back(parts[i]);
  return it->second(args);
}

Image TransformRegistry::apply(std::string_view spec, const Image& input) const {
  return compile(spec)(input);
}

bool TransformRegistry::contains(std::string_view name) const {
  return factories_.contains(name);
}

std::vector<std::string> TransformRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace sbq::image
