// Named image transforms — the dispatch table behind the imaging service.
//
// The paper's image server takes "a specific image, along with a
// transformation that must be applied to it ... routines like scaling, edge
// detection, etc.". Clients name the transform in the request; the server
// resolves it here. Specs are textual so they can travel inside requests:
//
//   "none"          identity
//   "gray"          luma grayscale
//   "edge"          Sobel edge detection
//   "scale:N"       box-filter downscale by integer N
//   "resize:W:H"    nearest-neighbour resize
//   "crop:X:Y:W:H"  crop rectangle
//
// Custom transforms can be registered under new names.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "apps/image/ppm.h"

namespace sbq::image {

using Transform = std::function<Image(const Image&)>;
using TransformFactory =
    std::function<Transform(const std::vector<std::string>& args)>;

class TransformRegistry {
 public:
  /// Pre-loaded with the built-ins listed in the header comment.
  TransformRegistry();

  /// Registers (or replaces) a factory under `name`.
  void register_factory(std::string name, TransformFactory factory);

  /// Builds a transform from a spec string ("edge", "scale:2", ...).
  /// Throws ParseError for unknown names or malformed arguments.
  [[nodiscard]] Transform compile(std::string_view spec) const;

  /// Convenience: compile + apply in one step.
  [[nodiscard]] Image apply(std::string_view spec, const Image& input) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, TransformFactory, std::less<>> factories_;
};

}  // namespace sbq::image
