#include "apps/md/analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace sbq::md {

namespace {

void validate_ids(const Timestep& step) {
  const auto n = static_cast<std::int32_t>(step.atoms.size());
  for (std::size_t i = 0; i < step.atoms.size(); ++i) {
    if (step.atoms[i].id != static_cast<std::int32_t>(i)) {
      throw CodecError("analysis expects dense 0..n-1 atom ids");
    }
  }
  for (const Bond& b : step.bonds) {
    if (b.a < 0 || b.a >= n || b.b < 0 || b.b >= n) {
      throw CodecError("bond references atom id outside 0..n-1");
    }
  }
}

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<int> degrees(const Timestep& step) {
  validate_ids(step);
  std::vector<int> out(step.atoms.size(), 0);
  for (const Bond& b : step.bonds) {
    ++out[static_cast<std::size_t>(b.a)];
    ++out[static_cast<std::size_t>(b.b)];
  }
  return out;
}

std::vector<int> components(const Timestep& step) {
  validate_ids(step);
  DisjointSets sets(step.atoms.size());
  for (const Bond& b : step.bonds) sets.unite(b.a, b.b);

  std::vector<int> labels(step.atoms.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < step.atoms.size(); ++i) {
    const int root = sets.find(static_cast<int>(i));
    if (labels[static_cast<std::size_t>(root)] == -1) {
      labels[static_cast<std::size_t>(root)] = next++;
    }
    labels[i] = labels[static_cast<std::size_t>(root)];
  }
  return labels;
}

GraphStats analyze(const Timestep& step) {
  GraphStats stats;
  stats.atom_count = static_cast<int>(step.atoms.size());
  stats.bond_count = static_cast<int>(step.bonds.size());
  if (step.atoms.empty()) return stats;

  const std::vector<int> deg = degrees(step);
  stats.max_degree = *std::max_element(deg.begin(), deg.end());
  stats.mean_degree =
      2.0 * stats.bond_count / static_cast<double>(stats.atom_count);

  double total_length = 0.0;
  for (const Bond& b : step.bonds) {
    const Atom& a1 = step.atoms[static_cast<std::size_t>(b.a)];
    const Atom& a2 = step.atoms[static_cast<std::size_t>(b.b)];
    const double dx = a1.x - a2.x;
    const double dy = a1.y - a2.y;
    const double dz = a1.z - a2.z;
    total_length += std::sqrt(dx * dx + dy * dy + dz * dz);
  }
  stats.mean_bond_length =
      step.bonds.empty() ? 0.0 : total_length / static_cast<double>(step.bonds.size());

  const std::vector<int> labels = components(step);
  stats.cluster_count = 1 + *std::max_element(labels.begin(), labels.end());
  std::vector<int> sizes(static_cast<std::size_t>(stats.cluster_count), 0);
  for (const int label : labels) ++sizes[static_cast<std::size_t>(label)];
  stats.largest_cluster = *std::max_element(sizes.begin(), sizes.end());
  return stats;
}

pbio::FormatPtr graph_stats_format() {
  static const pbio::FormatPtr format =
      pbio::FormatBuilder("graph_stats")
          .add_scalar("atom_count", pbio::TypeKind::kInt32)
          .add_scalar("bond_count", pbio::TypeKind::kInt32)
          .add_scalar("mean_degree", pbio::TypeKind::kFloat64)
          .add_scalar("max_degree", pbio::TypeKind::kInt32)
          .add_scalar("mean_bond_length", pbio::TypeKind::kFloat64)
          .add_scalar("cluster_count", pbio::TypeKind::kInt32)
          .add_scalar("largest_cluster", pbio::TypeKind::kInt32)
          .build();
  return format;
}

pbio::Value stats_to_value(const GraphStats& stats) {
  return pbio::Value::record({{"atom_count", stats.atom_count},
                              {"bond_count", stats.bond_count},
                              {"mean_degree", stats.mean_degree},
                              {"max_degree", stats.max_degree},
                              {"mean_bond_length", stats.mean_bond_length},
                              {"cluster_count", stats.cluster_count},
                              {"largest_cluster", stats.largest_cluster}});
}

GraphStats stats_from_value(const pbio::Value& value) {
  GraphStats stats;
  stats.atom_count = static_cast<int>(value.field("atom_count").as_i64());
  stats.bond_count = static_cast<int>(value.field("bond_count").as_i64());
  stats.mean_degree = value.field("mean_degree").as_f64();
  stats.max_degree = static_cast<int>(value.field("max_degree").as_i64());
  stats.mean_bond_length = value.field("mean_bond_length").as_f64();
  stats.cluster_count = static_cast<int>(value.field("cluster_count").as_i64());
  stats.largest_cluster = static_cast<int>(value.field("largest_cluster").as_i64());
  return stats;
}

}  // namespace sbq::md
