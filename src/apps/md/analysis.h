// Bond-graph analysis — the processing the paper's remote client performs
// on timesteps it receives ("sent to a remote client for processing/
// display"). Also the natural payload for ECho filter code: derive compact
// statistics server-side instead of shipping whole graphs.
#pragma once

#include <vector>

#include "apps/md/bond.h"

namespace sbq::md {

/// Summary statistics of one timestep's bond graph.
struct GraphStats {
  int atom_count = 0;
  int bond_count = 0;
  double mean_degree = 0.0;        // average bonds per atom
  int max_degree = 0;
  double mean_bond_length = 0.0;   // Euclidean, ignoring periodic wrap
  int cluster_count = 0;           // connected components (isolated atoms count)
  int largest_cluster = 0;         // atoms in the biggest component
};

/// Computes statistics for a timestep. Atom ids must be 0..n-1 (as produced
/// by BondSimulation); throws CodecError otherwise.
GraphStats analyze(const Timestep& step);

/// Per-atom degrees indexed by atom id.
std::vector<int> degrees(const Timestep& step);

/// Connected-component labels indexed by atom id (labels are 0-based and
/// dense).
std::vector<int> components(const Timestep& step);

/// PBIO format `graph_stats{...}` matching GraphStats, for shipping the
/// summary instead of the graph.
pbio::FormatPtr graph_stats_format();
pbio::Value stats_to_value(const GraphStats& stats);
GraphStats stats_from_value(const pbio::Value& value);

}  // namespace sbq::md
