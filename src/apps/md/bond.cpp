#include "apps/md/bond.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "pbio/value_codec.h"

namespace sbq::md {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

BondSimulation::BondSimulation(SimulationConfig config) : config_(config) {
  if (config_.atom_count <= 0) throw CodecError("atom_count must be positive");
  Rng rng(config_.seed);
  atoms_.resize(static_cast<std::size_t>(config_.atom_count));
  vx_.resize(atoms_.size());
  vy_.resize(atoms_.size());
  vz_.resize(atoms_.size());
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    atoms_[i].id = static_cast<std::int32_t>(i);
    atoms_[i].x = rng.uniform(0.0, config_.box_size);
    atoms_[i].y = rng.uniform(0.0, config_.box_size);
    atoms_[i].z = rng.uniform(0.0, config_.box_size);
    vx_[i] = rng.normal(0.0, 0.8);
    vy_[i] = rng.normal(0.0, 0.8);
    vz_[i] = rng.normal(0.0, 0.8);
  }
}

void BondSimulation::integrate() {
  // Free drift in a periodic box plus a gentle pairwise spring for atoms
  // inside the cutoff — enough dynamics for bonds to form and break.
  const double box = config_.box_size;
  auto wrap = [box](double v) {
    while (v < 0) v += box;
    while (v >= box) v -= box;
    return v;
  };
  const double k = 0.6;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      const double dx = atoms_[j].x - atoms_[i].x;
      const double dy = atoms_[j].y - atoms_[i].y;
      const double dz = atoms_[j].z - atoms_[i].z;
      const double d2 = dx * dx + dy * dy + dz * dz;
      const double cutoff2 = config_.bond_cutoff * config_.bond_cutoff;
      if (d2 > cutoff2 || d2 < 1e-9) continue;
      const double d = std::sqrt(d2);
      // Spring toward the preferred distance (0.8 * cutoff).
      const double f = k * (d - 0.8 * config_.bond_cutoff) / d;
      vx_[i] += f * dx * config_.dt;
      vy_[i] += f * dy * config_.dt;
      vz_[i] += f * dz * config_.dt;
      vx_[j] -= f * dx * config_.dt;
      vy_[j] -= f * dy * config_.dt;
      vz_[j] -= f * dz * config_.dt;
    }
  }
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    atoms_[i].x = wrap(atoms_[i].x + vx_[i] * config_.dt * 20);
    atoms_[i].y = wrap(atoms_[i].y + vy_[i] * config_.dt * 20);
    atoms_[i].z = wrap(atoms_[i].z + vz_[i] * config_.dt * 20);
  }
}

std::vector<Bond> BondSimulation::find_bonds() const {
  std::vector<Bond> bonds;
  const double cutoff2 = config_.bond_cutoff * config_.bond_cutoff;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      const double dx = atoms_[j].x - atoms_[i].x;
      const double dy = atoms_[j].y - atoms_[i].y;
      const double dz = atoms_[j].z - atoms_[i].z;
      if (dx * dx + dy * dy + dz * dz <= cutoff2) {
        bonds.push_back(Bond{atoms_[i].id, atoms_[j].id});
      }
    }
  }
  return bonds;
}

Timestep BondSimulation::step() {
  integrate();
  Timestep ts;
  ts.index = index_++;
  ts.atoms = atoms_;
  ts.bonds = find_bonds();
  return ts;
}

std::vector<Timestep> BondSimulation::steps(int n) {
  if (n <= 0) throw CodecError("steps(n): n must be positive");
  std::vector<Timestep> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(step());
  return out;
}

FormatPtr atom_format() {
  static const FormatPtr format = FormatBuilder("atom")
                                      .add_scalar("id", TypeKind::kInt32)
                                      .add_scalar("x", TypeKind::kFloat64)
                                      .add_scalar("y", TypeKind::kFloat64)
                                      .add_scalar("z", TypeKind::kFloat64)
                                      .build();
  return format;
}

FormatPtr bond_format() {
  static const FormatPtr format = FormatBuilder("bond")
                                      .add_scalar("a", TypeKind::kInt32)
                                      .add_scalar("b", TypeKind::kInt32)
                                      .build();
  return format;
}

FormatPtr timestep_format() {
  static const FormatPtr format = FormatBuilder("timestep")
                                      .add_scalar("index", TypeKind::kInt32)
                                      .add_struct_var_array("atoms", atom_format())
                                      .add_struct_var_array("bonds", bond_format())
                                      .build();
  return format;
}

FormatPtr batch_format(int max_steps) {
  if (max_steps < 1 || max_steps > 4) {
    throw CodecError("batch_format: max_steps must be 1..4");
  }
  static const FormatPtr formats[4] = {
      FormatBuilder("bond_batch_1")
          .add_scalar("count", TypeKind::kInt32)
          .add_struct_var_array("steps", timestep_format())
          .build(),
      FormatBuilder("bond_batch_2")
          .add_scalar("count", TypeKind::kInt32)
          .add_struct_var_array("steps", timestep_format())
          .build(),
      FormatBuilder("bond_batch_3")
          .add_scalar("count", TypeKind::kInt32)
          .add_struct_var_array("steps", timestep_format())
          .build(),
      FormatBuilder("bond_batch_4")
          .add_scalar("count", TypeKind::kInt32)
          .add_struct_var_array("steps", timestep_format())
          .build(),
  };
  return formats[max_steps - 1];
}

FormatPtr bond_request_format() {
  static const FormatPtr format = FormatBuilder("bond_request")
                                      .add_scalar("from_index", TypeKind::kInt32)
                                      .add_scalar("max_steps", TypeKind::kInt32)
                                      .build();
  return format;
}

Value timestep_to_value(const Timestep& step) {
  Value atoms = Value::empty_array();
  for (const Atom& a : step.atoms) {
    atoms.push_back(Value::record(
        {{"id", a.id}, {"x", a.x}, {"y", a.y}, {"z", a.z}}));
  }
  Value bonds = Value::empty_array();
  for (const Bond& b : step.bonds) {
    bonds.push_back(Value::record({{"a", b.a}, {"b", b.b}}));
  }
  return Value::record(
      {{"index", step.index}, {"atoms", std::move(atoms)}, {"bonds", std::move(bonds)}});
}

Timestep timestep_from_value(const Value& value) {
  Timestep step;
  step.index = static_cast<std::int32_t>(value.field("index").as_i64());
  for (const Value& a : value.field("atoms").elements()) {
    step.atoms.push_back(Atom{static_cast<std::int32_t>(a.field("id").as_i64()),
                              a.field("x").as_f64(), a.field("y").as_f64(),
                              a.field("z").as_f64()});
  }
  for (const Value& b : value.field("bonds").elements()) {
    step.bonds.push_back(Bond{static_cast<std::int32_t>(b.field("a").as_i64()),
                              static_cast<std::int32_t>(b.field("b").as_i64())});
  }
  return step;
}

Value batch_to_value(const std::vector<Timestep>& steps,
                     const pbio::FormatDesc& format) {
  if (format.field("steps") == nullptr) {
    throw CodecError("format '" + format.name + "' is not a bond batch format");
  }
  Value array = Value::empty_array();
  for (const Timestep& ts : steps) array.push_back(timestep_to_value(ts));
  return Value::record(
      {{"count", static_cast<std::int64_t>(steps.size())}, {"steps", std::move(array)}});
}

std::vector<Timestep> batch_from_value(const Value& value) {
  std::vector<Timestep> out;
  for (const Value& ts : value.field("steps").elements()) {
    out.push_back(timestep_from_value(ts));
  }
  return out;
}

Value trim_batch_handler(const Value& full, const pbio::FormatDesc& target,
                         const qos::AttributeMap& /*attributes*/) {
  // Target name "bond_batch_N" encodes the step budget.
  const char last = target.name.back();
  if (last < '1' || last > '4') {
    throw CodecError("trim_batch_handler: bad target format '" + target.name + "'");
  }
  const std::size_t budget = static_cast<std::size_t>(last - '0');
  const auto& steps = full.field("steps").elements();
  Value trimmed = Value::empty_array();
  for (std::size_t i = 0; i < steps.size() && i < budget; ++i) {
    trimmed.push_back(steps[i]);
  }
  return Value::record({{"count", static_cast<std::int64_t>(trimmed.array_size())},
                        {"steps", std::move(trimmed)}});
}

}  // namespace sbq::md
