// Molecular-dynamics bond server substrate.
//
// The paper's scientific application models "the behavior of the bonds
// between atoms within a molecule over time": a bond server builds a graph
// per timestep (vertices = atoms, edges = bonds), ~4 KB per timestep, and a
// remote client displays it. This module provides the simulation (a simple
// deterministic Lennard-Jones-flavoured integrator — physical plausibility
// is irrelevant, the data SHAPE matters), the graph extraction, and the
// PBIO formats for 1-4 timesteps per response.
#pragma once

#include <cstdint>
#include <vector>

#include "pbio/format.h"
#include "pbio/value.h"
#include "qos/manager.h"

namespace sbq::md {

struct Atom {
  std::int32_t id = 0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

struct Bond {
  std::int32_t a = 0;  // atom ids
  std::int32_t b = 0;
};

/// One timestep's bond graph.
struct Timestep {
  std::int32_t index = 0;
  std::vector<Atom> atoms;
  std::vector<Bond> bonds;
};

struct SimulationConfig {
  int atom_count = 96;        // sized so one timestep is ≈4 KB on the wire
  double box_size = 10.0;     // periodic cube edge
  double bond_cutoff = 1.6;   // distance under which two atoms are bonded
  double dt = 0.005;
  std::uint64_t seed = 77;
};

/// Deterministic toy molecular dynamics producing a bond graph per step.
class BondSimulation {
 public:
  explicit BondSimulation(SimulationConfig config = {});

  /// Advances one timestep and returns its graph.
  Timestep step();

  /// Advances `n` timesteps, returning all graphs (a multi-timestep batch).
  std::vector<Timestep> steps(int n);

  [[nodiscard]] std::int32_t current_index() const { return index_; }
  [[nodiscard]] const SimulationConfig& config() const { return config_; }

 private:
  void integrate();
  [[nodiscard]] std::vector<Bond> find_bonds() const;

  SimulationConfig config_;
  std::vector<Atom> atoms_;
  std::vector<double> vx_, vy_, vz_;
  std::int32_t index_ = 0;
};

// --- PBIO formats -----------------------------------------------------------

/// `atom{id:i32,x:f64,y:f64,z:f64}`
pbio::FormatPtr atom_format();
/// `bond{a:i32,b:i32}`
pbio::FormatPtr bond_format();
/// `timestep{index:i32,atoms:atom[],bonds:bond[]}`
pbio::FormatPtr timestep_format();
/// `bond_batch_N{count:i32,steps:timestep[]}` for N in 1..4 — the message
/// types the quality file selects among (more timesteps per response on a
/// healthy network, fewer under congestion).
pbio::FormatPtr batch_format(int max_steps);
/// Request format `bond_request{from_index:i32,max_steps:i32}`.
pbio::FormatPtr bond_request_format();

// --- Value bridging ---------------------------------------------------------

pbio::Value timestep_to_value(const Timestep& step);
Timestep timestep_from_value(const pbio::Value& value);

pbio::Value batch_to_value(const std::vector<Timestep>& steps,
                           const pbio::FormatDesc& format);
std::vector<Timestep> batch_from_value(const pbio::Value& value);

/// Quality handler: trims a full (4-step) batch down to the step budget the
/// target batch format implies (its name encodes N).
pbio::Value trim_batch_handler(const pbio::Value& full,
                               const pbio::FormatDesc& target,
                               const qos::AttributeMap& attributes);

}  // namespace sbq::md
