#include "apps/svg/svg.h"

#include <map>

#include "common/error.h"

namespace sbq::svg {

namespace {
std::string num(double v) {
  return xml::format_double(v);
}
}  // namespace

SvgWriter::SvgWriter(int width, int height) {
  writer_.declaration();
  writer_.start_element("svg");
  writer_.attribute("xmlns", "http://www.w3.org/2000/svg");
  writer_.attribute("width", std::int64_t{width});
  writer_.attribute("height", std::int64_t{height});
}

void SvgWriter::circle(double cx, double cy, double r, std::string_view fill) {
  writer_.start_element("circle");
  writer_.attribute("cx", num(cx));
  writer_.attribute("cy", num(cy));
  writer_.attribute("r", num(r));
  writer_.attribute("fill", fill);
  writer_.end_element();
}

void SvgWriter::line(double x1, double y1, double x2, double y2,
                     std::string_view stroke, double stroke_width) {
  writer_.start_element("line");
  writer_.attribute("x1", num(x1));
  writer_.attribute("y1", num(y1));
  writer_.attribute("x2", num(x2));
  writer_.attribute("y2", num(y2));
  writer_.attribute("stroke", stroke);
  writer_.attribute("stroke-width", num(stroke_width));
  writer_.end_element();
}

void SvgWriter::rect(double x, double y, double w, double h, std::string_view fill) {
  writer_.start_element("rect");
  writer_.attribute("x", num(x));
  writer_.attribute("y", num(y));
  writer_.attribute("width", num(w));
  writer_.attribute("height", num(h));
  writer_.attribute("fill", fill);
  writer_.end_element();
}

void SvgWriter::text(double x, double y, std::string_view content,
                     std::string_view fill, int font_size) {
  writer_.start_element("text");
  writer_.attribute("x", num(x));
  writer_.attribute("y", num(y));
  writer_.attribute("fill", fill);
  writer_.attribute("font-size", std::int64_t{font_size});
  writer_.text(content);
  writer_.end_element();
}

std::string SvgWriter::take() {
  writer_.end_element();  // svg
  return writer_.take();
}

std::string render_molecule(const md::Timestep& step, double box_size,
                            const RenderOptions& options) {
  if (box_size <= 0) throw ParseError("render_molecule: box_size must be positive");
  SvgWriter svg(options.width, options.height);
  svg.rect(0, 0, options.width, options.height, "#101018");

  const double sx = options.width / box_size;
  const double sy = options.height / box_size;

  // Atom id → projected position, for bond endpoints.
  std::map<std::int32_t, std::pair<double, double>> projected;
  for (const md::Atom& atom : step.atoms) {
    projected[atom.id] = {atom.x * sx, atom.y * sy};
  }

  // Bonds under the atoms.
  for (const md::Bond& bond : step.bonds) {
    const auto a = projected.find(bond.a);
    const auto b = projected.find(bond.b);
    if (a == projected.end() || b == projected.end()) {
      throw ParseError("bond references unknown atom id");
    }
    svg.line(a->second.first, a->second.second, b->second.first, b->second.second,
             options.bond_stroke);
  }
  for (const md::Atom& atom : step.atoms) {
    // Depth-cue the radius slightly by z.
    const double depth = 0.7 + 0.3 * (atom.z / box_size);
    svg.circle(atom.x * sx, atom.y * sy, options.atom_radius * depth,
               options.atom_fill);
  }
  if (options.label_index) {
    svg.text(8, 16, "t=" + std::to_string(step.index), "#cccccc");
  }
  return svg.take();
}

}  // namespace sbq::svg
