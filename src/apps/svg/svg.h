// SVG output — the remote-visualization client's display format.
//
// The paper's visualization client asks the service portal for bond data
// "in SVG format, which is just an XML document". This module provides a
// small SVG 1.0 writer plus the molecule renderer the portal's filter code
// uses (atoms → circles, bonds → lines, orthographic projection onto XY).
#pragma once

#include <string>
#include <string_view>

#include "apps/md/bond.h"
#include "xml/writer.h"

namespace sbq::svg {

/// Streaming SVG document writer (thin veneer over XmlWriter that knows the
/// SVG namespace and common shapes).
class SvgWriter {
 public:
  SvgWriter(int width, int height);

  void circle(double cx, double cy, double r, std::string_view fill);
  void line(double x1, double y1, double x2, double y2, std::string_view stroke,
            double stroke_width = 1.0);
  void rect(double x, double y, double w, double h, std::string_view fill);
  void text(double x, double y, std::string_view content,
            std::string_view fill = "black", int font_size = 12);

  /// Finishes the document and returns the XML.
  [[nodiscard]] std::string take();

 private:
  xml::XmlWriter writer_;
};

/// Rendering options for molecule frames.
struct RenderOptions {
  int width = 480;
  int height = 480;
  double atom_radius = 3.0;
  std::string atom_fill = "#4477aa";
  std::string bond_stroke = "#aaaaaa";
  bool label_index = true;  // annotate the timestep index
};

/// Renders one timestep's bond graph to an SVG document.
std::string render_molecule(const md::Timestep& step, double box_size,
                            const RenderOptions& options = {});

}  // namespace sbq::svg
