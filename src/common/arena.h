// Monotonic arena used by the PBIO decoder.
//
// PBIO's "receiver makes right" decoding materializes a native-layout record
// (struct bytes + out-of-line arrays and strings) whose pieces must share one
// lifetime. An arena gives the decoder a single allocation domain that is
// released wholesale when the record is no longer needed, mirroring how the
// original PBIO library handed back a buffer the caller freed once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace sbq {

/// Bump allocator with chunked backing storage. Not thread-safe by design:
/// one arena belongs to one decode operation.
class Arena {
 public:
  explicit Arena(std::size_t chunk_size = 64 * 1024) : chunk_size_(chunk_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `n` bytes aligned to `align` (power of two). Zero-size
  /// allocations return a unique, valid pointer.
  void* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    if (n == 0) n = 1;
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || offset + n > current_size_) {
      grow(n + align);
      offset = (used_ + align - 1) & ~(align - 1);
    }
    used_ = offset + n;
    return current_ + offset;
  }

  /// Typed allocation of `count` default-constructible trivially destructible
  /// objects. The arena never runs destructors.
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copies `n` bytes into the arena and returns the stable copy.
  void* copy(const void* src, std::size_t n, std::size_t align = 1) {
    void* dst = allocate(n, align);
    std::memcpy(dst, src, n);
    return dst;
  }

  /// Total bytes handed out (diagnostics only).
  [[nodiscard]] std::size_t bytes_used() const { return total_used_; }

  /// Releases every allocation at once.
  void reset() {
    chunks_.clear();
    current_ = nullptr;
    current_size_ = 0;
    used_ = 0;
    total_used_ = 0;
  }

 private:
  void grow(std::size_t at_least) {
    total_used_ += used_;
    std::size_t size = chunk_size_;
    if (size < at_least) size = at_least;
    chunks_.push_back(std::make_unique<std::uint8_t[]>(size));
    current_ = chunks_.back().get();
    current_size_ = size;
    used_ = 0;
  }

  std::size_t chunk_size_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::uint8_t* current_ = nullptr;
  std::size_t current_size_ = 0;
  std::size_t used_ = 0;
  std::size_t total_used_ = 0;
};

}  // namespace sbq
