#include "common/base64.h"

#include <array>

#include "common/error.h"

namespace sbq {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> build_reverse() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

const std::array<std::int8_t, 256> kReverse = build_reverse();

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::string base64_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) |
                            (std::uint32_t{data[i + 1]} << 8) | data[i + 2];
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += kAlphabet[v & 63];
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = std::uint32_t{data[i]} << 16;
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) |
                            (std::uint32_t{data[i + 1]} << 8);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

std::string base64_encode(std::string_view data) {
  return base64_encode(as_bytes(data));
}

Bytes base64_decode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t acc = 0;
  int bits = 0;
  std::size_t padding = 0;
  for (char c : text) {
    if (is_ws(c)) continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) throw ParseError("base64: data after padding");
    const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) throw ParseError(std::string("base64: bad character '") + c + "'");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  if (padding > 2) throw ParseError("base64: too much padding");
  return out;
}

std::string base64_decode_string(std::string_view text) {
  const Bytes b = base64_decode(text);
  return to_string(BytesView{b});
}

}  // namespace sbq
