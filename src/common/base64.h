// Base64 (RFC 4648) — used to carry binary byte arrays inside XML SOAP
// payloads (xsd:base64Binary), e.g. image pixels in compatibility mode.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace sbq {

/// Standard alphabet with '=' padding.
std::string base64_encode(BytesView data);
std::string base64_encode(std::string_view data);

/// Whitespace inside the input is tolerated; anything else malformed throws
/// ParseError.
Bytes base64_decode(std::string_view text);
std::string base64_decode_string(std::string_view text);

}  // namespace sbq
