#include "common/buffer_chain.h"

#include <cstring>

#include "common/error.h"

namespace sbq {

namespace {

/// Wraps moved-in storage in a shared keep-alive and returns a view of it.
/// Storage sits behind the shared_ptr, so Segment moves never invalidate
/// the view (std::string's SSO would otherwise do exactly that).
template <typename Storage>
std::pair<BytesView, BufferChain::Anchor> own(Storage&& storage) {
  auto holder = std::make_shared<Storage>(std::move(storage));
  BytesView view{reinterpret_cast<const std::uint8_t*>(holder->data()),
                 holder->size()};
  return {view, BufferChain::Anchor(std::move(holder))};
}

}  // namespace

void BufferChain::append(Bytes&& owned) {
  if (owned.empty()) return;
  auto [view, anchor] = own(std::move(owned));
  size_ += view.size();
  segments_.push_back(Segment{view, std::move(anchor)});
}

void BufferChain::append(std::string&& owned) {
  if (owned.empty()) return;
  auto [view, anchor] = own(std::move(owned));
  size_ += view.size();
  segments_.push_back(Segment{view, std::move(anchor)});
}

void BufferChain::append(BufferChain&& tail) {
  if (tail.segments_.empty()) {
    bytes_copied_ += tail.bytes_copied_;
    tail.bytes_copied_ = 0;
    return;
  }
  segments_.reserve(segments_.size() + tail.segments_.size());
  for (Segment& seg : tail.segments_) {
    size_ += seg.view.size();
    segments_.push_back(std::move(seg));
  }
  bytes_copied_ += tail.bytes_copied_;
  tail.clear();
}

void BufferChain::append_view(BytesView view, Anchor anchor) {
  if (view.empty()) return;
  size_ += view.size();
  segments_.push_back(Segment{view, std::move(anchor)});
}

void BufferChain::append_copy(BytesView view) {
  if (view.empty()) return;
  bytes_copied_ += view.size();
  append(Bytes(view.begin(), view.end()));
}

void BufferChain::append_shared(const BufferChain& other) {
  segments_.reserve(segments_.size() + other.segments_.size());
  for (const Segment& seg : other.segments_) {
    size_ += seg.view.size();
    segments_.push_back(seg);
  }
}

BufferChain BufferChain::share_suffix(std::size_t offset) const {
  if (offset > size_) throw CodecError("BufferChain::share_suffix out of range");
  BufferChain out;
  std::size_t skipped = 0;
  for (const Segment& seg : segments_) {
    if (skipped + seg.view.size() <= offset) {
      skipped += seg.view.size();
      continue;
    }
    const std::size_t drop = offset > skipped ? offset - skipped : 0;
    out.append_view(seg.view.subspan(drop), seg.keep_alive);
    skipped += seg.view.size();
  }
  return out;
}

void BufferChain::copy_to(std::uint8_t* dst) const {
  for (const Segment& seg : segments_) {
    std::memcpy(dst, seg.view.data(), seg.view.size());
    dst += seg.view.size();
  }
}

Bytes BufferChain::coalesce() const {
  Bytes out(size_);
  copy_to(out.data());
  bytes_copied_ += size_;
  return out;
}

void BufferChain::clear() {
  segments_.clear();
  size_ = 0;
  bytes_copied_ = 0;
}

BytesView BufferChain::const_iterator::operator*() const {
  return chain_->segments_[index_].view;
}

BufferChain::const_iterator& BufferChain::const_iterator::operator++() {
  ++index_;
  return *this;
}

// ---------------------------------------------------------------- ChainReader

void ChainReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw CodecError("chain reader underrun: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(remaining()));
  }
}

void ChainReader::skip_empty_segments() {
  while (seg_ < chain_.segments_.size() &&
         off_ == chain_.segments_[seg_].view.size()) {
    ++seg_;
    off_ = 0;
  }
}

std::uint8_t ChainReader::read_u8() {
  require(1);
  const std::uint8_t v = chain_.segments_[seg_].view[off_];
  ++off_;
  ++pos_;
  skip_empty_segments();
  return v;
}

std::uint16_t ChainReader::read_u16(ByteOrder order) {
  std::uint16_t v;
  read_raw(&v, sizeof v);
  return order == host_byte_order() ? v : byteswap16(v);
}

std::uint32_t ChainReader::read_u32(ByteOrder order) {
  std::uint32_t v;
  read_raw(&v, sizeof v);
  return order == host_byte_order() ? v : byteswap32(v);
}

std::uint64_t ChainReader::read_u64(ByteOrder order) {
  std::uint64_t v;
  read_raw(&v, sizeof v);
  return order == host_byte_order() ? v : byteswap64(v);
}

void ChainReader::read_raw(void* out, std::size_t n) {
  require(n);
  auto* dst = static_cast<std::uint8_t*>(out);
  while (n > 0) {
    const BytesView view = chain_.segments_[seg_].view;
    const std::size_t take = std::min(n, view.size() - off_);
    std::memcpy(dst, view.data() + off_, take);
    dst += take;
    off_ += take;
    pos_ += take;
    n -= take;
    skip_empty_segments();
  }
}

BytesView ChainReader::read_view(std::size_t n) {
  require(n);
  if (n == 0) return {};
  const BytesView view = chain_.segments_[seg_].view;
  if (view.size() - off_ >= n) {
    const BytesView result = view.subspan(off_, n);
    off_ += n;
    pos_ += n;
    skip_empty_segments();
    return result;
  }
  // Spans segments: flatten just this range into reader-owned scratch.
  Bytes& scratch = scratch_.emplace_back(n);
  read_raw(scratch.data(), n);
  bytes_copied_ += n;
  return BytesView{scratch};
}

std::string ChainReader::read_string(std::size_t n) {
  require(n);
  std::string out(n, '\0');
  read_raw(out.data(), n);
  return out;
}

void ChainReader::skip(std::size_t n) {
  require(n);
  while (n > 0) {
    const BytesView view = chain_.segments_[seg_].view;
    const std::size_t take = std::min(n, view.size() - off_);
    off_ += take;
    pos_ += take;
    n -= take;
    skip_empty_segments();
  }
}

}  // namespace sbq
