// BufferChain — the zero-copy wire pipeline's carrier type.
//
// A chain is an iovec-style list of byte segments that together form one
// logical message. Segments either *own* their storage (moved-in Bytes or
// strings, kept alive by the chain) or *borrow* it (views into memory the
// caller guarantees outlives the chain, optionally pinned by a shared
// "anchor"). Building a message as a chain lets every layer — PBIO encode,
// SOAP-bin enveloping, HTTP framing, the stream write — append or splice
// segments instead of concatenating buffers, so a payload block crosses the
// stack without ever being memcpy'd (docs/wire-format.md §6 documents the
// ownership rules per layer).
//
// The chain also keeps a `bytes_copied` ledger: every operation that *does*
// flatten bytes (coalesce(), append_copy(), ChainReader scratch reads)
// increments it, which is how core::EndpointStats observes copy elimination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace sbq {

class BufferChain {
 public:
  /// Keep-alive handle for borrowed segments: the chain holds the anchor for
  /// its lifetime, so a view into e.g. a shared_ptr-owned Value stays valid.
  using Anchor = std::shared_ptr<const void>;

  BufferChain() = default;

  /// A chain of one borrowed segment over `view` (caller keeps it alive).
  static BufferChain borrowing(BytesView view) {
    BufferChain chain;
    chain.append_view(view);
    return chain;
  }

  /// Appends owned storage; the chain keeps it alive.
  void append(Bytes&& owned);
  void append(std::string&& owned);
  void append(ByteBuffer&& buffer) { append(buffer.take()); }

  /// Splices another chain's segments onto this one (O(segments), no byte
  /// copies). The donor is left empty.
  void append(BufferChain&& tail);

  /// Appends a borrowed view. Without an anchor the caller must keep the
  /// bytes alive for the chain's lifetime; with one, the chain pins it.
  void append_view(BytesView view, Anchor anchor = nullptr);

  /// Appends an owned copy of `view` (counted in bytes_copied()).
  void append_copy(BytesView view);

  /// Appends every segment of `other` without copying bytes: owned segments
  /// are shared (their storage is jointly kept alive), borrowed segments
  /// stay borrowed under the same lifetime rules as in `other`.
  void append_shared(const BufferChain& other);

  /// Chain sharing `other`'s segments from byte `offset` to the end
  /// (mid-segment offsets split the segment's view). Used to hand a decoded
  /// message's payload region downstream without materializing it.
  [[nodiscard]] BufferChain share_suffix(std::size_t offset) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] BytesView segment(std::size_t i) const { return segments_[i].view; }

  /// Copies the whole chain into `dst` (size() bytes; not counted — callers
  /// that flatten via coalesce() are the ones charged).
  void copy_to(std::uint8_t* dst) const;

  /// Escape hatch: flattens into one contiguous buffer. Counted in
  /// bytes_copied() — the point of the pipeline is to make this rare.
  [[nodiscard]] Bytes coalesce() const;

  /// Total bytes flattened through this chain (coalesce/append_copy).
  [[nodiscard]] std::uint64_t bytes_copied() const { return bytes_copied_; }

  void clear();

  // --- segment iteration (yields BytesView) -------------------------------

  class const_iterator {
   public:
    using value_type = BytesView;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    BytesView operator*() const;
    const_iterator& operator++();
    bool operator==(const const_iterator& other) const = default;

   private:
    friend class BufferChain;
    const_iterator(const BufferChain* chain, std::size_t index)
        : chain_(chain), index_(index) {}
    const BufferChain* chain_ = nullptr;
    std::size_t index_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, segments_.size()}; }

 private:
  friend class ChainReader;

  struct Segment {
    BytesView view;
    Anchor keep_alive;  // owns or pins the bytes; null for plain borrows
  };

  std::vector<Segment> segments_;
  std::size_t size_ = 0;
  mutable std::uint64_t bytes_copied_ = 0;
};

/// Write cursor that assembles a BufferChain: small writes (scalars, length
/// prefixes, envelope fields) accumulate in a staging buffer; large blocks
/// are spliced in as their own segments via append_block(), flushing the
/// staging bytes first so wire order is preserved. The result is a chain of
/// a few segments — staging runs interleaved with borrowed payload blocks —
/// whose coalesced bytes are identical to a flat encode.
///
/// Exposes the same append_* surface as ByteBuffer so codecs can be written
/// once against either sink.
class ChainWriter {
 public:
  /// Blocks >= `borrow_threshold` bytes become their own segments; smaller
  /// ones are cheaper to copy into staging than to scatter-gather.
  static constexpr std::size_t kDefaultBorrowThreshold = 512;

  explicit ChainWriter(BufferChain& chain,
                       std::size_t borrow_threshold = kDefaultBorrowThreshold)
      : chain_(chain), threshold_(borrow_threshold) {}
  ~ChainWriter() { flush(); }

  ChainWriter(const ChainWriter&) = delete;
  ChainWriter& operator=(const ChainWriter&) = delete;

  void append_u8(std::uint8_t v) { staging_.append_u8(v); }
  void append_u16(std::uint16_t v, ByteOrder order) { staging_.append_u16(v, order); }
  void append_u32(std::uint32_t v, ByteOrder order) { staging_.append_u32(v, order); }
  void append_u64(std::uint64_t v, ByteOrder order) { staging_.append_u64(v, order); }
  void append_f32(float v, ByteOrder order) { staging_.append_f32(v, order); }
  void append_f64(double v, ByteOrder order) { staging_.append_f64(v, order); }
  void append_raw(const void* p, std::size_t n) { staging_.append_raw(p, n); }
  void append(BytesView v) { staging_.append(v); }
  void append(std::string_view s) { staging_.append(s); }

  /// Appends a payload block: borrowed as its own segment when large enough,
  /// staged otherwise. The anchor (if any) pins the borrowed storage.
  void append_block(BytesView block, BufferChain::Anchor anchor = nullptr) {
    if (block.size() >= threshold_) {
      flush();
      chain_.append_view(block, std::move(anchor));
    } else {
      staging_.append(block);
    }
  }

  /// Bytes appended through this writer so far (staged + spliced).
  [[nodiscard]] std::size_t size() const { return chain_.size() + staging_.size(); }

  /// Pushes any staged bytes into the chain as an owned segment.
  void flush() {
    if (!staging_.empty()) chain_.append(staging_.take());
  }

 private:
  BufferChain& chain_;
  ByteBuffer staging_;
  std::size_t threshold_;
};

/// Bounds-checked read cursor over a BufferChain — the counterpart of
/// ByteReader for segmented messages. Scalar reads cross segment boundaries
/// transparently; read_view() is zero-copy whenever the requested range lies
/// inside one segment (which chain-built messages guarantee for payload
/// blocks) and otherwise coalesces just that range into reader-owned scratch
/// storage, counted in bytes_copied().
class ChainReader {
 public:
  explicit ChainReader(const BufferChain& chain) : chain_(chain) {
    skip_empty_segments();
  }

  [[nodiscard]] std::size_t remaining() const { return chain_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  std::uint8_t read_u8();
  std::uint16_t read_u16(ByteOrder order);
  std::uint32_t read_u32(ByteOrder order);
  std::uint64_t read_u64(ByteOrder order);
  float read_f32(ByteOrder order) { return std::bit_cast<float>(read_u32(order)); }
  double read_f64(ByteOrder order) { return std::bit_cast<double>(read_u64(order)); }

  void read_raw(void* out, std::size_t n);

  /// Returns a view of the next `n` bytes and advances past them. The view
  /// stays valid for the reader's lifetime (scratch-backed when it spans
  /// segments) or the chain's (when it lies inside one segment).
  BytesView read_view(std::size_t n);

  std::string read_string(std::size_t n);

  void skip(std::size_t n);

  /// Bytes this reader had to flatten for cross-segment views.
  [[nodiscard]] std::uint64_t bytes_copied() const { return bytes_copied_; }

 private:
  void require(std::size_t n) const;
  void skip_empty_segments();

  const BufferChain& chain_;
  std::size_t seg_ = 0;  // current segment index
  std::size_t off_ = 0;  // offset within current segment
  std::size_t pos_ = 0;  // absolute position
  std::vector<Bytes> scratch_;  // backing for cross-segment read_view results
  std::uint64_t bytes_copied_ = 0;
};

}  // namespace sbq
