#include "common/bytes.h"

namespace sbq {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView v) {
  return std::string(as_chars(v));
}

}  // namespace sbq
