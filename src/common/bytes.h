// Byte-buffer primitives used by every wire codec in the library.
//
// ByteBuffer is an append-only output buffer with explicit little/big-endian
// primitives; ByteReader is a bounds-checked cursor over immutable bytes.
// Both exist so that codecs (PBIO, XDR, HTTP, LZSS) never touch raw pointer
// arithmetic and every out-of-range read surfaces as a CodecError instead of
// undefined behavior.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace sbq {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Host byte order of this process; PBIO tags payloads with the sender's order.
enum class ByteOrder : std::uint8_t { kLittle = 0, kBig = 1 };

/// Byte order of the machine this code is running on.
constexpr ByteOrder host_byte_order() {
  return std::endian::native == std::endian::little ? ByteOrder::kLittle
                                                    : ByteOrder::kBig;
}

/// Reverses the byte order of an unsigned integer value.
constexpr std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}
constexpr std::uint32_t byteswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000FF00u) | ((v << 8) & 0x00FF0000u) | (v << 24);
}
constexpr std::uint64_t byteswap64(std::uint64_t v) {
  return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v))) << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

/// Growable output buffer with endian-aware append primitives.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t reserve_bytes) { data_.reserve(reserve_bytes); }

  void clear() { data_.clear(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] const std::uint8_t* data() const { return data_.data(); }
  [[nodiscard]] BytesView view() const { return BytesView{data_}; }
  [[nodiscard]] Bytes take() { return std::move(data_); }
  [[nodiscard]] const Bytes& bytes() const { return data_; }

  void append_u8(std::uint8_t v) { data_.push_back(v); }
  void append_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }
  void append(BytesView v) { append_raw(v.data(), v.size()); }
  void append(std::string_view s) { append_raw(s.data(), s.size()); }

  void append_u16(std::uint16_t v, ByteOrder order) {
    if (order != host_byte_order()) v = byteswap16(v);
    append_raw(&v, sizeof v);
  }
  void append_u32(std::uint32_t v, ByteOrder order) {
    if (order != host_byte_order()) v = byteswap32(v);
    append_raw(&v, sizeof v);
  }
  void append_u64(std::uint64_t v, ByteOrder order) {
    if (order != host_byte_order()) v = byteswap64(v);
    append_raw(&v, sizeof v);
  }
  void append_f32(float v, ByteOrder order) {
    append_u32(std::bit_cast<std::uint32_t>(v), order);
  }
  void append_f64(double v, ByteOrder order) {
    append_u64(std::bit_cast<std::uint64_t>(v), order);
  }

  /// Overwrites 4 bytes at `offset` (used to patch length prefixes).
  void patch_u32(std::size_t offset, std::uint32_t v, ByteOrder order) {
    if (offset + 4 > data_.size()) throw CodecError("patch_u32 out of range");
    if (order != host_byte_order()) v = byteswap32(v);
    std::memcpy(data_.data() + offset, &v, sizeof v);
  }

 private:
  Bytes data_;
};

/// Bounds-checked forward cursor over an immutable byte range.
///
/// The reader does not own the bytes; callers must keep the underlying
/// storage alive for the reader's lifetime.
class ByteReader {
 public:
  explicit ByteReader(BytesView view) : view_(view) {}
  ByteReader(const void* p, std::size_t n)
      : view_(static_cast<const std::uint8_t*>(p), n) {}

  [[nodiscard]] std::size_t remaining() const { return view_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == view_.size(); }

  std::uint8_t read_u8() {
    require(1);
    return view_[pos_++];
  }
  std::uint16_t read_u16(ByteOrder order) {
    std::uint16_t v;
    read_raw(&v, sizeof v);
    return order == host_byte_order() ? v : byteswap16(v);
  }
  std::uint32_t read_u32(ByteOrder order) {
    std::uint32_t v;
    read_raw(&v, sizeof v);
    return order == host_byte_order() ? v : byteswap32(v);
  }
  std::uint64_t read_u64(ByteOrder order) {
    std::uint64_t v;
    read_raw(&v, sizeof v);
    return order == host_byte_order() ? v : byteswap64(v);
  }
  float read_f32(ByteOrder order) { return std::bit_cast<float>(read_u32(order)); }
  double read_f64(ByteOrder order) { return std::bit_cast<double>(read_u64(order)); }

  void read_raw(void* out, std::size_t n) {
    require(n);
    std::memcpy(out, view_.data() + pos_, n);
    pos_ += n;
  }

  /// Returns a view of the next `n` bytes and advances past them.
  BytesView read_view(std::size_t n) {
    require(n);
    BytesView v = view_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  std::string read_string(std::size_t n) {
    BytesView v = read_view(n);
    return std::string(reinterpret_cast<const char*>(v.data()), v.size());
  }

  void skip(std::size_t n) { require(n), pos_ += n; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw CodecError("byte reader underrun: need " + std::to_string(n) +
                       " bytes, have " + std::to_string(remaining()));
    }
  }

  BytesView view_;
  std::size_t pos_ = 0;
};

/// Views a string's bytes without copying. This (and as_chars below) is the
/// canonical char↔byte bridge: sbqlint's cast-confinement rule keeps
/// reinterpret_cast out of every file except this substrate and the wire
/// codecs, so "bytes reinterpreted as text" is greppable in one place.
inline BytesView as_bytes(std::string_view s) {
  return BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Views bytes as characters without copying (inverse of as_bytes).
inline std::string_view as_chars(BytesView v) {
  return std::string_view{reinterpret_cast<const char*>(v.data()), v.size()};
}

/// Converts a string to its byte representation (no copy of encoding logic).
Bytes to_bytes(std::string_view s);

/// Converts bytes to a std::string (bytes are taken verbatim).
std::string to_string(BytesView v);

}  // namespace sbq
