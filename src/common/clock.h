// Real-time measurement helpers. The *simulated* clock used by the network
// models lives in src/net/sim_clock.h; this header is only about measuring
// actual CPU work (marshalling costs are measured for real, per DESIGN.md).
#pragma once

#include <chrono>
#include <cstdint>

namespace sbq {

/// Nanoseconds on the monotonic clock.
inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped stopwatch: measures wall time between construction and elapsed_ns().
class Stopwatch {
 public:
  Stopwatch() : start_(steady_now_ns()) {}

  [[nodiscard]] std::uint64_t elapsed_ns() const { return steady_now_ns() - start_; }
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) / 1000.0;
  }
  void restart() { start_ = steady_now_ns(); }

 private:
  std::uint64_t start_;
};

}  // namespace sbq
