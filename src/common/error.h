// Error hierarchy shared by every SOAP-binQ subsystem.
//
// All recoverable failures are reported with exceptions derived from
// sbq::Error so call sites can catch either a specific failure class
// (ParseError, TransportError, ...) or everything from this library at once.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sbq {

/// Root of every exception thrown by the SOAP-binQ library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual input: XML, WSDL, quality files, HTTP headers.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Failure while encoding or decoding a binary representation (PBIO, XDR, LZSS).
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what) : Error("codec error: " + what) {}
};

/// Failure in the byte-transport layer (sockets, simulated links, HTTP framing).
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error("transport error: " + what) {}
};

/// A read or a whole call exceeded its deadline. Derives from TransportError
/// so existing transport-failure handling treats an expired deadline as a
/// dead connection, while retry/deadline-aware callers can catch it first.
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what) : TransportError(what) {}
};

/// The server shed the request under overload (HTTP 503). Derives from
/// TransportError so generic fault handling treats it as transient; the
/// retry path catches it first and honors the server-provided Retry-After
/// delay (microseconds; 0 = none given) over its local backoff schedule.
class OverloadError : public TransportError {
 public:
  OverloadError(const std::string& what, std::uint64_t retry_after_us)
      : TransportError(what), retry_after_us_(retry_after_us) {}

  [[nodiscard]] std::uint64_t retry_after_us() const { return retry_after_us_; }

 private:
  std::uint64_t retry_after_us_ = 0;
};

/// Remote invocation failure: SOAP faults, Sun RPC denials, unknown operations.
class RpcError : public Error {
 public:
  explicit RpcError(const std::string& what) : Error("rpc error: " + what) {}
};

/// Misconfigured or inconsistent quality-management policy.
class QosError : public Error {
 public:
  explicit QosError(const std::string& what) : Error("qos error: " + what) {}
};

/// Invalid command-line usage of one of the CLI tools (wsdlc, soapcall):
/// bad flags, unreadable input files, missing required arguments. Part of
/// the sbq::Error hierarchy so the tools satisfy sbqlint's no-raw-throw
/// rule and a top-level `catch (const Error&)` covers them too.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

}  // namespace sbq
