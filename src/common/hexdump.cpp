#include "common/hexdump.h"

#include <cstdio>

namespace sbq {

std::string hexdump(BytesView v) {
  std::string out;
  char line[24];
  for (std::size_t row = 0; row < v.size(); row += 16) {
    std::snprintf(line, sizeof line, "%06zx", row);
    out += line;
    out += "  ";
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < v.size()) {
        std::snprintf(line, sizeof line, "%02x ", v[row + i]);
        out += line;
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < v.size(); ++i) {
      const std::uint8_t c = v[row + i];
      out += (c >= 0x20 && c < 0x7F) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

}  // namespace sbq
