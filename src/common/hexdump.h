// Debug helper: canonical 16-bytes-per-line hex dump with ASCII gutter.
// Used by failing-test diagnostics and by the wire-format documentation
// examples; never on hot paths.
#pragma once

#include <string>

#include "common/bytes.h"

namespace sbq {

/// Renders `v` as `offset  hex bytes  |ascii|` lines.
std::string hexdump(BytesView v);

}  // namespace sbq
