#include "common/rng.h"

#include <cmath>

namespace sbq {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's rejection method keeps the distribution exactly uniform.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return mean + stddev * u * m;
}

bool Rng::chance(double p) {
  return next_double() < p;
}

}  // namespace sbq
