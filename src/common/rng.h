// Deterministic random number generation for workload synthesis and the
// network simulator. Every experiment seeds its own generator so benchmark
// rows are reproducible run-to-run, which real /dev/urandom would break.
#pragma once

#include <cstdint>

namespace sbq {

/// xoshiro256** PRNG seeded through SplitMix64.
///
/// Deterministic, fast, and good enough statistically for traffic models and
/// synthetic data; deliberately NOT cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (bound must be > 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Approximate standard normal via the polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability `p`.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  // Cached second deviate from the polar method.
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sbq
