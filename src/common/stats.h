// Cost accounting shared by the client stub, the service runtime, and the
// quality monitors.
//
// The paper's microbenchmarks separate marshalling, unmarshalling, and
// transmission costs; these counters let any experiment read them off a
// live endpoint instead of instrumenting call sites. The struct lives in
// common (not core) so lower layers — qos::MarshalCostMonitor reads it to
// derive the paper's "CPU load" attribute — never include core headers;
// sbqlint's layering rule enforces that edge direction.
#pragma once

#include <cstdint>

namespace sbq {

struct EndpointStats {
  std::uint64_t calls = 0;

  // Encode/decode work, microseconds of real CPU time.
  double marshal_us = 0.0;
  double unmarshal_us = 0.0;
  // XML ↔ binary conversion work (interoperability/compatibility modes).
  double convert_us = 0.0;
  // Compression work (compressed-XML mode).
  double compress_us = 0.0;
  // Envelope assembly / disassembly work (binary wire format).
  double envelope_us = 0.0;

  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  // Zero-copy pipeline accounting: payload bytes memcpy'd between buffers
  // while building/consuming messages (flat path: every splice; chain path:
  // only coalesce/scratch reads), and chain segments handed to the stream.
  std::uint64_t bytes_copied = 0;
  std::uint64_t segments_written = 0;

  // Failure-path accounting (fault injection, deadlines, retries, QoS
  // degradation — docs/robustness.md). `faults_injected` counts attempts
  // this endpoint saw fail with a transport-level fault (reset, timeout,
  // short write); `timeouts` the subset that were deadline expiries;
  // `retries` the re-sends the retry policy issued; `degradations` /
  // `recoveries` the observed response-type transitions away from / back to
  // the operation's full type.
  std::uint64_t faults_injected = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t degradations = 0;
  std::uint64_t recoveries = 0;

  // Overload-protection accounting (docs/robustness.md "Overload and
  // drain"). On a server, `sheds` counts requests answered 503 by admission
  // control, `drains` the graceful drains begun, and `queue_high_water` the
  // deepest accepted-connection queue the load monitor has observed. On a
  // client, `sheds` counts calls that came back 503 (attempts the server
  // shed) — the retry policy may still complete the call afterwards.
  std::uint64_t sheds = 0;
  std::uint64_t drains = 0;
  std::uint64_t queue_high_water = 0;

  // Client-side resilience accounting (docs/resilience.md), maintained by a
  // core::ResilientStub fronting a multi-replica EndpointSet. `failovers`
  // counts attempts re-routed to a different replica after a failure,
  // `hedges` hedged (second) attempts fired against a slow primary and
  // `hedge_wins` the hedges whose response won the call; `breaker_trips` /
  // `breaker_closes` are circuit-breaker transitions to open / back to
  // closed observed across the set, and `probes` / `probe_failures` the
  // active health probes sent and the subset that failed.
  std::uint64_t failovers = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;

  void reset() { *this = EndpointStats{}; }
};

}  // namespace sbq
