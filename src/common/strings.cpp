#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/error.h"

namespace sbq {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::uint64_t parse_u64(std::string_view s) {
  s = trim(s);
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("invalid unsigned integer: '" + std::string(s) + "'");
  }
  return v;
}

std::int64_t parse_i64(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return v;
}

double parse_f64(std::string_view s) {
  s = trim(s);
  if (s.empty()) throw ParseError("empty float");
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps us
  // portable; the copy bounds the input for strtod's NUL requirement.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    throw ParseError("invalid float: '" + buf + "'");
  }
  return v;
}

bool is_blank(std::string_view s) {
  for (char c : s) {
    if (!is_space(c)) return false;
  }
  return true;
}

}  // namespace sbq
