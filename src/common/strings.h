// Small string utilities shared by the textual front-ends (XML, HTTP, WSDL,
// quality files). Kept deliberately allocation-light: views in, views out
// wherever lifetimes permit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sbq {

/// Removes ASCII whitespace from both ends of `s`.
std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, discarding empty fields.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// ASCII lower-casing (sufficient for HTTP header names and XML keywords).
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Parses a non-negative decimal integer; throws sbq::ParseError on junk.
std::uint64_t parse_u64(std::string_view s);

/// Parses a signed decimal integer; throws sbq::ParseError on junk.
std::int64_t parse_i64(std::string_view s);

/// Parses a floating point number; throws sbq::ParseError on junk.
double parse_f64(std::string_view s);

/// True if `s` consists only of ASCII whitespace (or is empty).
bool is_blank(std::string_view s);

}  // namespace sbq
