#include "compress/lzss.h"

#include <algorithm>
#include <vector>

namespace sbq::lz {

namespace {

constexpr std::size_t kWindow = 4096;              // 12-bit distance
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1 << kHashBits;

std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes compress(BytesView input, const CompressOptions& options) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const std::uint32_t size32 = static_cast<std::uint32_t>(input.size());
  out.push_back(static_cast<std::uint8_t>(size32 & 0xFF));
  out.push_back(static_cast<std::uint8_t>((size32 >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((size32 >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((size32 >> 24) & 0xFF));

  // head[h] = most recent position (offset by 1; 0 = none) with hash h;
  // prev[i % kWindow] links to the previous position in the same chain.
  std::vector<std::uint32_t> head(kHashSize, 0);
  std::vector<std::uint32_t> prev(kWindow, 0);

  const std::uint8_t* data = input.data();
  const std::size_t n = input.size();
  std::size_t pos = 0;

  std::size_t flag_pos = 0;
  std::uint8_t flag_bits = 0;
  int tokens_in_group = 0;

  auto begin_token = [&] {
    if (tokens_in_group == 0) {
      flag_pos = out.size();
      out.push_back(0);
      flag_bits = 0;
    }
  };
  auto finish_token = [&](bool literal) {
    if (literal) flag_bits |= static_cast<std::uint8_t>(1u << tokens_in_group);
    out[flag_pos] = flag_bits;
    if (++tokens_in_group == 8) tokens_in_group = 0;
  };
  auto insert_hash = [&](std::size_t p) {
    if (p + kMinMatch <= n) {
      const std::uint32_t h = hash3(data + p);
      prev[p % kWindow] = head[h];
      head[h] = static_cast<std::uint32_t>(p + 1);
    }
  };

  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + kMinMatch <= n) {
      std::uint32_t cand = head[hash3(data + pos)];
      int chain = options.max_chain;
      const std::size_t max_len = std::min(kMaxMatch, n - pos);
      while (cand != 0 && chain-- > 0) {
        const std::size_t cpos = cand - 1;
        if (pos - cpos > kWindow) break;  // older entries are only further away
        std::size_t len = 0;
        while (len < max_len && data[cpos + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cpos;
          if (len == max_len) break;
        }
        const std::uint32_t next = prev[cpos % kWindow];
        // A ring slot overwritten by a newer position would point forward;
        // that means the chain has been recycled — stop.
        if (next != 0 && next - 1 >= cpos) break;
        cand = next;
      }
    }

    if (best_len >= kMinMatch) {
      begin_token();
      const std::uint16_t token = static_cast<std::uint16_t>(
          ((best_dist - 1) << 4) | (best_len - kMinMatch));
      out.push_back(static_cast<std::uint8_t>(token & 0xFF));
      out.push_back(static_cast<std::uint8_t>(token >> 8));
      finish_token(false);
      for (std::size_t k = 0; k < best_len; ++k) insert_hash(pos + k);
      pos += best_len;
    } else {
      begin_token();
      out.push_back(data[pos]);
      finish_token(true);
      insert_hash(pos);
      ++pos;
    }
  }

  return out;
}

// --- StreamCompressor ------------------------------------------------------
//
// Byte-identical to compress() above because every decision the flat encoder
// makes is reproduced under the same conditions:
//   - a position is only encoded once kMaxMatch lookahead bytes exist (or the
//     stream has ended), so max_len never depends on chunk boundaries;
//   - hash-chain inserts are deferred until `p + kMinMatch <= total_`, the
//     exact guard the flat encoder applies against its final n;
//   - positions are absolute (the same u32 encoding), so the recycled-chain
//     and window-distance checks behave identically after trimming.

namespace {
// Feeding a multi-megabyte segment still only stages this much at a time, so
// working memory stays O(window), not O(message).
constexpr std::size_t kFeedSlice = 16 * 1024;
}  // namespace

StreamCompressor::StreamCompressor(const CompressOptions& options)
    : options_(options), head_(kHashSize, 0), prev_(kWindow, 0) {
  out_.resize(4);  // u32 size prefix, patched in finish()
  window_.reserve(2 * kWindow + kFeedSlice);
}

void StreamCompressor::catch_up_hashes(std::size_t limit) {
  while (hashed_ < limit && hashed_ + kMinMatch <= total_) {
    const std::uint32_t h = hash3(&window_[hashed_ - base_]);
    prev_[hashed_ % kWindow] = head_[h];
    head_[h] = static_cast<std::uint32_t>(hashed_ + 1);
    ++hashed_;
  }
}

void StreamCompressor::trim_window() {
  std::size_t keep_from = pos_ > kWindow ? pos_ - kWindow : 0;
  keep_from = std::min(keep_from, hashed_);
  if (keep_from > base_ + kWindow) {  // amortize the erase
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(keep_from - base_));
    base_ = keep_from;
  }
}

void StreamCompressor::emit_tokens(bool final_block) {
  auto begin_token = [&] {
    if (tokens_in_group_ == 0) {
      flag_pos_ = out_.size();
      out_.push_back(0);
      flag_bits_ = 0;
    }
  };
  auto finish_token = [&](bool literal) {
    if (literal) flag_bits_ |= static_cast<std::uint8_t>(1u << tokens_in_group_);
    out_[flag_pos_] = flag_bits_;
    if (++tokens_in_group_ == 8) tokens_in_group_ = 0;
  };

  while (pos_ < total_ && (final_block || pos_ + kMaxMatch <= total_)) {
    catch_up_hashes(pos_);

    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos_ + kMinMatch <= total_) {
      std::uint32_t cand = head_[hash3(&window_[pos_ - base_])];
      int chain = options_.max_chain;
      const std::size_t max_len = std::min(kMaxMatch, total_ - pos_);
      while (cand != 0 && chain-- > 0) {
        const std::size_t cpos = cand - 1;
        if (pos_ - cpos > kWindow) break;
        std::size_t len = 0;
        while (len < max_len &&
               window_[cpos - base_ + len] == window_[pos_ - base_ + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_dist = pos_ - cpos;
          if (len == max_len) break;
        }
        const std::uint32_t next = prev_[cpos % kWindow];
        if (next != 0 && next - 1 >= cpos) break;
        cand = next;
      }
    }

    if (best_len >= kMinMatch) {
      begin_token();
      const std::uint16_t token = static_cast<std::uint16_t>(
          ((best_dist - 1) << 4) | (best_len - kMinMatch));
      out_.push_back(static_cast<std::uint8_t>(token & 0xFF));
      out_.push_back(static_cast<std::uint8_t>(token >> 8));
      finish_token(false);
      pos_ += best_len;
    } else {
      begin_token();
      out_.push_back(window_[pos_ - base_]);
      finish_token(true);
      ++pos_;
    }
  }
}

void StreamCompressor::feed(BytesView chunk) {
  if (finished_) throw CodecError("lzss: feed() after finish()");
  while (!chunk.empty()) {
    const std::size_t take = std::min(chunk.size(), kFeedSlice);
    window_.insert(window_.end(), chunk.begin(), chunk.begin() + take);
    total_ += take;
    chunk = chunk.subspan(take);
    emit_tokens(/*final_block=*/false);
    trim_window();
  }
}

Bytes StreamCompressor::finish() {
  if (finished_) throw CodecError("lzss: finish() called twice");
  finished_ = true;
  emit_tokens(/*final_block=*/true);
  const std::uint32_t size32 = static_cast<std::uint32_t>(total_);
  out_[0] = static_cast<std::uint8_t>(size32 & 0xFF);
  out_[1] = static_cast<std::uint8_t>((size32 >> 8) & 0xFF);
  out_[2] = static_cast<std::uint8_t>((size32 >> 16) & 0xFF);
  out_[3] = static_cast<std::uint8_t>((size32 >> 24) & 0xFF);
  Bytes result = std::move(out_);
  out_.clear();
  window_.clear();
  return result;
}

Bytes compress(const BufferChain& input, const CompressOptions& options) {
  StreamCompressor sc(options);
  for (BytesView segment : input) sc.feed(segment);
  return sc.finish();
}

Bytes decompress(BytesView input) {
  ByteReader reader(input);
  const std::uint32_t expected = reader.read_u32(ByteOrder::kLittle);
  Bytes out;
  out.reserve(expected);

  std::uint8_t flags = 0;
  int bits_left = 0;
  while (out.size() < expected) {
    if (bits_left == 0) {
      flags = reader.read_u8();
      bits_left = 8;
    }
    const bool literal = (flags & 1u) != 0;
    flags >>= 1;
    --bits_left;
    if (literal) {
      out.push_back(reader.read_u8());
    } else {
      const std::uint8_t lo = reader.read_u8();
      const std::uint8_t hi = reader.read_u8();
      const std::uint16_t token = static_cast<std::uint16_t>(lo | (hi << 8));
      const std::size_t dist = static_cast<std::size_t>(token >> 4) + 1;
      const std::size_t len = static_cast<std::size_t>(token & 0x0F) + kMinMatch;
      if (dist > out.size()) throw CodecError("lzss: distance before start of data");
      if (out.size() + len > expected) throw CodecError("lzss: output overrun");
      const std::size_t from = out.size() - dist;
      for (std::size_t k = 0; k < len; ++k) out.push_back(out[from + k]);
    }
  }
  return out;
}

Bytes compress_string(std::string_view s, const CompressOptions& options) {
  return compress(as_bytes(s), options);
}

std::string decompress_string(BytesView input) {
  const Bytes b = decompress(input);
  return to_string(BytesView{b});
}

}  // namespace sbq::lz
