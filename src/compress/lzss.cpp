#include "compress/lzss.h"

#include <algorithm>
#include <vector>

namespace sbq::lz {

namespace {

constexpr std::size_t kWindow = 4096;              // 12-bit distance
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1 << kHashBits;

std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes compress(BytesView input, const CompressOptions& options) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const std::uint32_t size32 = static_cast<std::uint32_t>(input.size());
  out.push_back(static_cast<std::uint8_t>(size32 & 0xFF));
  out.push_back(static_cast<std::uint8_t>((size32 >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((size32 >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((size32 >> 24) & 0xFF));

  // head[h] = most recent position (offset by 1; 0 = none) with hash h;
  // prev[i % kWindow] links to the previous position in the same chain.
  std::vector<std::uint32_t> head(kHashSize, 0);
  std::vector<std::uint32_t> prev(kWindow, 0);

  const std::uint8_t* data = input.data();
  const std::size_t n = input.size();
  std::size_t pos = 0;

  std::size_t flag_pos = 0;
  std::uint8_t flag_bits = 0;
  int tokens_in_group = 0;

  auto begin_token = [&] {
    if (tokens_in_group == 0) {
      flag_pos = out.size();
      out.push_back(0);
      flag_bits = 0;
    }
  };
  auto finish_token = [&](bool literal) {
    if (literal) flag_bits |= static_cast<std::uint8_t>(1u << tokens_in_group);
    out[flag_pos] = flag_bits;
    if (++tokens_in_group == 8) tokens_in_group = 0;
  };
  auto insert_hash = [&](std::size_t p) {
    if (p + kMinMatch <= n) {
      const std::uint32_t h = hash3(data + p);
      prev[p % kWindow] = head[h];
      head[h] = static_cast<std::uint32_t>(p + 1);
    }
  };

  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + kMinMatch <= n) {
      std::uint32_t cand = head[hash3(data + pos)];
      int chain = options.max_chain;
      const std::size_t max_len = std::min(kMaxMatch, n - pos);
      while (cand != 0 && chain-- > 0) {
        const std::size_t cpos = cand - 1;
        if (pos - cpos > kWindow) break;  // older entries are only further away
        std::size_t len = 0;
        while (len < max_len && data[cpos + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cpos;
          if (len == max_len) break;
        }
        const std::uint32_t next = prev[cpos % kWindow];
        // A ring slot overwritten by a newer position would point forward;
        // that means the chain has been recycled — stop.
        if (next != 0 && next - 1 >= cpos) break;
        cand = next;
      }
    }

    if (best_len >= kMinMatch) {
      begin_token();
      const std::uint16_t token = static_cast<std::uint16_t>(
          ((best_dist - 1) << 4) | (best_len - kMinMatch));
      out.push_back(static_cast<std::uint8_t>(token & 0xFF));
      out.push_back(static_cast<std::uint8_t>(token >> 8));
      finish_token(false);
      for (std::size_t k = 0; k < best_len; ++k) insert_hash(pos + k);
      pos += best_len;
    } else {
      begin_token();
      out.push_back(data[pos]);
      finish_token(true);
      insert_hash(pos);
      ++pos;
    }
  }

  return out;
}

Bytes decompress(BytesView input) {
  ByteReader reader(input);
  const std::uint32_t expected = reader.read_u32(ByteOrder::kLittle);
  Bytes out;
  out.reserve(expected);

  std::uint8_t flags = 0;
  int bits_left = 0;
  while (out.size() < expected) {
    if (bits_left == 0) {
      flags = reader.read_u8();
      bits_left = 8;
    }
    const bool literal = (flags & 1u) != 0;
    flags >>= 1;
    --bits_left;
    if (literal) {
      out.push_back(reader.read_u8());
    } else {
      const std::uint8_t lo = reader.read_u8();
      const std::uint8_t hi = reader.read_u8();
      const std::uint16_t token = static_cast<std::uint16_t>(lo | (hi << 8));
      const std::size_t dist = static_cast<std::size_t>(token >> 4) + 1;
      const std::size_t len = static_cast<std::size_t>(token & 0x0F) + kMinMatch;
      if (dist > out.size()) throw CodecError("lzss: distance before start of data");
      if (out.size() + len > expected) throw CodecError("lzss: output overrun");
      const std::size_t from = out.size() - dist;
      for (std::size_t k = 0; k < len; ++k) out.push_back(out[from + k]);
    }
  }
  return out;
}

Bytes compress_string(std::string_view s, const CompressOptions& options) {
  return compress(
      BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}, options);
}

std::string decompress_string(BytesView input) {
  const Bytes b = decompress(input);
  return to_string(BytesView{b});
}

}  // namespace sbq::lz
