// Lempel–Ziv (LZSS) compression, built from scratch.
//
// The paper's "SOAP (compressed XML)" baseline compresses SOAP payloads with
// Lempel–Ziv encoding before transmission. This module provides that
// baseline: a window-based LZSS with a hash-chain match finder. Highly tagged
// XML compresses to roughly PBIO size or below (Table I: 3898 B XML →
// 1264 B compressed), which this implementation reproduces.
//
// Wire format
//   [u32 le: uncompressed size]
//   repeated groups: 1 flag byte (LSB-first; 1 = literal, 0 = match)
//     literal: 1 raw byte
//     match:   2 bytes: 12-bit distance-1, 4-bit length-kMinMatch
//              (distance ∈ [1, 4096], length ∈ [3, 18])
#pragma once

#include "common/bytes.h"

namespace sbq::lz {

/// Effort knob: larger values follow longer hash chains for better ratios.
struct CompressOptions {
  int max_chain = 64;
};

/// Compresses `input`; output always decompresses to exactly `input`.
Bytes compress(BytesView input, const CompressOptions& options = {});

/// Decompresses a buffer produced by compress(). Throws CodecError on
/// corrupt input (bad distances, truncated stream, size mismatch).
Bytes decompress(BytesView input);

/// Convenience overloads for text payloads.
Bytes compress_string(std::string_view s, const CompressOptions& options = {});
std::string decompress_string(BytesView input);

}  // namespace sbq::lz
