// Lempel–Ziv (LZSS) compression, built from scratch.
//
// The paper's "SOAP (compressed XML)" baseline compresses SOAP payloads with
// Lempel–Ziv encoding before transmission. This module provides that
// baseline: a window-based LZSS with a hash-chain match finder. Highly tagged
// XML compresses to roughly PBIO size or below (Table I: 3898 B XML →
// 1264 B compressed), which this implementation reproduces.
//
// Wire format
//   [u32 le: uncompressed size]
//   repeated groups: 1 flag byte (LSB-first; 1 = literal, 0 = match)
//     literal: 1 raw byte
//     match:   2 bytes: 12-bit distance-1, 4-bit length-kMinMatch
//              (distance ∈ [1, 4096], length ∈ [3, 18])
#pragma once

#include <vector>

#include "common/buffer_chain.h"
#include "common/bytes.h"

namespace sbq::lz {

/// Effort knob: larger values follow longer hash chains for better ratios.
struct CompressOptions {
  int max_chain = 64;
};

/// Compresses `input`; output always decompresses to exactly `input`.
Bytes compress(BytesView input, const CompressOptions& options = {});

/// Segment-aware compress: feeds the chain through a StreamCompressor, so
/// the input is never coalesced. Output is byte-identical to
/// compress(chain.coalesce()).
Bytes compress(const BufferChain& input, const CompressOptions& options = {});

/// Incremental LZSS encoder with O(window) working memory: feed() arbitrary
/// chunks (e.g. chain segments), then finish() to obtain the stream.
///
/// Emission is deferred while fewer than kMaxMatch lookahead bytes are
/// buffered, so token choices are independent of how the input was chunked —
/// the output is byte-for-byte identical to the one-shot compress() above
/// (a property test asserts this). The sliding window keeps only the most
/// recent ~4 KB of history, so compressing an N-byte message needs O(4 KB)
/// memory instead of an N-byte flat copy of the input.
class StreamCompressor {
 public:
  explicit StreamCompressor(const CompressOptions& options = {});

  void feed(BytesView chunk);
  void feed(std::string_view chunk) { feed(as_bytes(chunk)); }

  /// Completes the stream and returns it; the compressor is spent afterwards.
  Bytes finish();

 private:
  void catch_up_hashes(std::size_t limit);
  void emit_tokens(bool final_block);
  void trim_window();

  CompressOptions options_;
  Bytes out_;                        // compressed stream (size prefix patched
                                     // at finish, once the total is known)
  std::vector<std::uint32_t> head_;  // hash -> most recent position + 1
  std::vector<std::uint32_t> prev_;  // position ring -> previous in chain
  Bytes window_;                     // input bytes [base_, base_+window_.size())
  std::size_t base_ = 0;             // absolute index of window_[0]
  std::size_t pos_ = 0;              // next absolute position to encode
  std::size_t hashed_ = 0;           // next absolute position to hash-insert
  std::size_t total_ = 0;            // bytes fed so far
  std::size_t flag_pos_ = 0;         // offset of the current flag byte in out_
  std::uint8_t flag_bits_ = 0;
  int tokens_in_group_ = 0;
  bool finished_ = false;
};

/// Decompresses a buffer produced by compress(). Throws CodecError on
/// corrupt input (bad distances, truncated stream, size mismatch).
Bytes decompress(BytesView input);

/// Convenience overloads for text payloads.
Bytes compress_string(std::string_view s, const CompressOptions& options = {});
std::string decompress_string(BytesView input);

}  // namespace sbq::lz
