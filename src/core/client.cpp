#include "core/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/strings.h"
#include "compress/lzss.h"
#include "pbio/decode.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "soap/envelope.h"
#include "xml/dom.h"

namespace sbq::core {

namespace {

/// A 503 is the server shedding load, not a server error: surface it as an
/// OverloadError carrying the advertised Retry-After so the retry loop can
/// honor the server's delay instead of its local backoff schedule. Checked
/// immediately after the round trip, before any body decode (a shed reply
/// carries no SOAP/PBIO payload) and before RTT observation (a fast 503
/// must not drag the RTT estimate down while the server is saturated).
/// Header parsing is delegated to http::retry_after_us, whose contract
/// (missing/malformed/zero → 0 = local backoff; absurd values clamped)
/// keeps a hostile header from forcing a 0-delay hot retry loop.
void throw_if_shed(const http::Response& response) {
  if (response.status != 503) return;
  throw OverloadError("server overloaded (503): " + response.body_string(),
                      http::retry_after_us(response.headers));
}

}  // namespace

std::uint64_t stable_seed(std::string_view identity) {
  // FNV-1a, 64-bit. Any identity maps to a fixed, platform-independent
  // seed; 0 is reserved as RetryPolicy's "derive me" sentinel.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : identity) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

void wait_on(net::TimeSource& clock, std::uint64_t us) {
  if (us == 0) return;
  if (auto* sim = dynamic_cast<net::SimClock*>(&clock)) {
    sim->advance_us(us);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

ClientStub::ClientStub(Transport& transport, WireFormat wire_format,
                       wsdl::ServiceDesc service,
                       std::shared_ptr<pbio::FormatServer> format_server,
                       std::shared_ptr<net::TimeSource> clock)
    : transport_(transport),
      wire_format_(wire_format),
      service_(std::move(service)),
      format_cache_(std::move(format_server)),
      clock_(std::move(clock)) {
  if (!clock_) throw TransportError("ClientStub needs a time source");
  static std::atomic<std::uint64_t> next_stub_id{1};
  client_id_ = "stub-" + std::to_string(next_stub_id.fetch_add(1));
  // Announce the service's formats (the client is a sender too).
  for (const auto& op : service_.operations) {
    format_cache_.announce(op.input);
    format_cache_.announce(op.output);
  }
}

void ClientStub::set_quality_manager(std::shared_ptr<qos::QualityManager> quality) {
  quality_ = std::move(quality);
}

double ClientStub::rtt_estimate_us() const {
  return quality_ ? quality_->rtt().value_us() : fallback_rtt_.value_us();
}

pbio::Value ClientStub::call(const std::string& operation, const pbio::Value& params) {
  return call(operation, params, default_options_);
}

pbio::Value ClientStub::call(const std::string& operation, const pbio::Value& params,
                             const CallOptions& options) {
  const wsdl::OperationDesc& op = service_.required_operation(operation);
  ++stats_.calls;
  transport_.set_attempt_timeout_us(options.deadline_us);

  const RetryPolicy& retry = options.retry;
  const int max_attempts = std::max(1, retry.max_attempts);
  // Deterministic jitter: same seed + same call ordinal → same delays. The
  // default seed (0) derives from this stub's identity, so two stubs left
  // on defaults back off on different schedules after a shared fault.
  const std::uint64_t seed =
      retry.jitter_seed != 0 ? retry.jitter_seed : stable_seed(client_id_);
  Rng jitter_rng(seed * 0x9E3779B97F4A7C15ull + stats_.calls);
  std::uint64_t backoff = retry.initial_backoff_us;
  for (int attempt = 1;; ++attempt) {
    try {
      return dispatch(op, params);
    } catch (const Error& e) {
      // Only wire-level faults are worth retrying; RpcError / ParseError /
      // QosError are deterministic and would fail again identically.
      const auto* shed = dynamic_cast<const OverloadError*>(&e);
      const bool is_timeout = dynamic_cast<const TimeoutError*>(&e) != nullptr;
      const bool is_fault =
          dynamic_cast<const TransportError*>(&e) != nullptr ||
          (retry.retry_codec_errors &&
           dynamic_cast<const CodecError*>(&e) != nullptr);
      if (!is_fault) throw;
      if (shed != nullptr) {
        // A shed is deliberate flow control, not evidence of a broken link:
        // count it, but spare the quality loop the loss-like penalty.
        ++stats_.sheds;
      } else {
        note_fault(options, is_timeout);
      }
      if (attempt >= max_attempts || !op.idempotent) throw;
      ++stats_.retries;

      // Capped exponential backoff with deterministic jitter, charged to
      // the endpoint's clock (virtual time under simulation). A shed server
      // knows its own recovery horizon: its Retry-After overrides the local
      // schedule (and needs no jitter — the server set the pacing).
      std::uint64_t delay = backoff;
      if (shed != nullptr && shed->retry_after_us() > 0) {
        delay = shed->retry_after_us();
      } else if (retry.jitter > 0.0 && delay > 0) {
        const double factor =
            1.0 + jitter_rng.uniform(-retry.jitter, retry.jitter);
        delay = static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
      }
      wait_us(delay);
      backoff = std::min(
          static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                     retry.backoff_multiplier),
          retry.max_backoff_us);

      // The failed connection may be gone for good: rebuild it and repeat
      // the sender-side format registration handshake before resending.
      transport_.reconnect();
      reannounce_formats();
    }
  }
}

pbio::Value ClientStub::dispatch(const wsdl::OperationDesc& op,
                                 const pbio::Value& params) {
  switch (wire_format_) {
    case WireFormat::kBinary:
      return call_binary(op, params);
    case WireFormat::kXml:
      return call_xml_wire(op, params, /*compressed=*/false);
    case WireFormat::kCompressedXml:
      return call_xml_wire(op, params, /*compressed=*/true);
  }
  throw RpcError("bad wire format");
}

void ClientStub::note_fault(const CallOptions& options, bool is_timeout) {
  ++stats_.faults_injected;
  if (is_timeout) ++stats_.timeouts;
  // A fault is loss-like evidence for the quality loop even when the call
  // ultimately fails: feed the penalty so sustained faults step the policy
  // down (docs/robustness.md).
  const auto deadline = static_cast<double>(options.deadline_us);
  if (quality_) {
    quality_->observe_fault(deadline);
  } else {
    const double penalty = 2.0 * std::max(deadline, fallback_rtt_.value_us());
    if (penalty > 0.0) fallback_rtt_.update(penalty);
  }
}

void ClientStub::note_response_type(const wsdl::OperationDesc& op) {
  const bool full = last_response_type_ == op.output->name;
  if (response_was_full_ && !full) ++stats_.degradations;
  if (!response_was_full_ && full) ++stats_.recoveries;
  response_was_full_ = full;
}

void ClientStub::reannounce_formats() {
  for (const auto& op : service_.operations) {
    format_cache_.announce(op.input);
    format_cache_.announce(op.output);
  }
}

void ClientStub::wait_us(std::uint64_t us) { wait_on(*clock_, us); }

std::string ClientStub::call_xml(const std::string& operation,
                                 const std::string& params_xml) {
  const wsdl::OperationDesc& op = service_.required_operation(operation);

  // Just-in-time client-side conversion: XML document → binary Value.
  Stopwatch to_value;
  const auto dom = xml::parse_document(params_xml);
  const pbio::Value params = soap::value_from_xml(*dom, *op.input);
  stats_.convert_us += to_value.elapsed_us();

  const pbio::Value result = call(operation, params);

  Stopwatch to_xml;
  std::string result_xml = soap::value_to_xml(result, *op.output, "result");
  stats_.convert_us += to_xml.elapsed_us();
  return result_xml;
}

pbio::Value ClientStub::call_binary(const wsdl::OperationDesc& op,
                                    const pbio::Value& params) {
  // Client-side quality: possibly send a reduced request type (opt-in).
  pbio::FormatPtr request_format = op.input;
  std::string message_type = op.input->name;
  const pbio::Value* to_send = &params;
  pbio::Value reduced;
  if (quality_ && request_quality_enabled_) {
    const qos::MessageType& type = quality_->select();
    reduced = quality_->apply(params, type);
    to_send = &reduced;
    request_format = type.format;
    message_type = type.name;
    format_cache_.announce(request_format);
  }

  BinEnvelope envelope;
  envelope.operation = op.name;
  envelope.message_type = message_type;
  envelope.timestamp_us = clock_->now_us();
  envelope.reported_rtt_us = rtt_estimate_us();

  http::Request request;
  request.method = "POST";
  request.target = "/" + service_.name;
  request.headers.set("Content-Type", std::string(kContentTypePbio));
  request.headers.set(std::string(kHeaderClientId), client_id_);
  request.headers.set("SOAPAction", "\"" + op.name + "\"");
  if (zero_copy_) {
    // Chain path: bulk blocks in the PBIO message borrow from `*to_send`,
    // which outlives the round trip (params is the caller's, `reduced` is a
    // local), so no anchor is needed; the envelope is one small owned
    // segment spliced in front. The payload is never copied into a combined
    // body buffer.
    Stopwatch marshal;
    BufferChain pbio_chain =
        pbio::encode_value_message_chain(*to_send, *request_format);
    stats_.marshal_us += marshal.elapsed_us();
    Stopwatch env;
    BufferChain body = encode_bin_message(envelope, std::move(pbio_chain));
    stats_.envelope_us += env.elapsed_us();
    stats_.segments_written += body.segment_count();
    stats_.bytes_copied += body.bytes_copied();
    request.set_body_chain(std::move(body));
  } else {
    Stopwatch marshal;
    const Bytes pbio_message = pbio::encode_value_message(*to_send, *request_format);
    stats_.marshal_us += marshal.elapsed_us();
    Stopwatch env;
    request.body = encode_bin_message(envelope, BytesView{pbio_message});
    stats_.envelope_us += env.elapsed_us();
    stats_.segments_written += 1;
    stats_.bytes_copied += pbio_message.size();  // spliced into the body
  }
  stats_.bytes_sent += request.body_size();

  const http::Response response = transport_.round_trip(request);
  stats_.bytes_received += response.body_size();
  throw_if_shed(response);
  if (response.status != 200) {
    throw RpcError("server error " + std::to_string(response.status) + ": " +
                   response.body_string());
  }

  const BufferChain response_body = response.body_as_chain();
  DecodedBinChain incoming = decode_bin_message(response_body);
  stats_.bytes_copied += incoming.bytes_copied;
  last_response_type_ = incoming.envelope.message_type;
  note_response_type(op);

  // RTT sample: now minus the echoed send timestamp, minus the server's
  // self-reported preparation time (§IV-C.h's rectification). Every binary
  // response echoes the request timestamp, including timestamp 0 from a
  // freshly started simulated clock.
  {
    const double sample = qos::rtt_sample_us(incoming.envelope.echoed_timestamp_us,
                                             clock_->now_us(),
                                             incoming.envelope.server_prep_us);
    last_rtt_us_ = sample;
    if (quality_) {
      quality_->observe_rtt(sample);
    } else {
      fallback_rtt_.update(sample);
    }
  }

  Stopwatch unmarshal;
  ChainReader reader(incoming.pbio_message);
  const pbio::WireHeader header = pbio::read_header(reader);
  const pbio::FormatPtr sender_format = format_cache_.resolve(header.format_id);
  pbio::Value result = pbio::decode_value_payload(reader, header.payload_length,
                                                  header.sender_order, *sender_format);
  if (header.format_id != op.output->format_id()) {
    // Reduced-quality response: pad back up to the full application type.
    result = pbio::project_value(result, *op.output);
  }
  stats_.unmarshal_us += unmarshal.elapsed_us();
  stats_.bytes_copied += reader.bytes_copied();
  return result;
}

pbio::Value ClientStub::call_xml_wire(const wsdl::OperationDesc& op,
                                      const pbio::Value& params, bool compressed) {
  // Client-side quality on the XML wire: possibly reduce the request
  // (opt-in, as on the binary wire).
  pbio::FormatPtr request_format = op.input;
  std::string message_type = op.input->name;
  const pbio::Value* to_send = &params;
  pbio::Value reduced;
  if (quality_ && request_quality_enabled_) {
    const qos::MessageType& type = quality_->select();
    reduced = quality_->apply(params, type);
    to_send = &reduced;
    request_format = type.format;
    message_type = type.name;
  }

  Stopwatch marshal;
  const std::string request_xml =
      soap::build_request(op.name, *to_send, *request_format);
  stats_.marshal_us += marshal.elapsed_us();

  http::Request request;
  request.method = "POST";
  request.target = "/" + service_.name;
  request.headers.set("SOAPAction", "\"" + op.name + "\"");
  request.headers.set(std::string(kHeaderClientId), client_id_);
  request.headers.set(std::string(kHeaderQualityType), message_type);
  if (rtt_estimate_us() > 0.0) {
    request.headers.set(std::string(kHeaderReportedRtt),
                        std::to_string(rtt_estimate_us()));
  }
  if (compressed) {
    Stopwatch sw;
    request.body = lz::compress_string(request_xml);
    stats_.compress_us += sw.elapsed_us();
    request.headers.set("Content-Type", std::string(kContentTypeCompressedXml));
  } else {
    request.set_body(request_xml);
    request.headers.set("Content-Type", std::string(kContentTypeXml));
  }
  stats_.bytes_sent += request.body_size();

  // RTT on the XML wire is measured around the round trip, minus the
  // server's self-reported preparation time.
  const std::uint64_t sent_at_us = clock_->now_us();
  const http::Response response = transport_.round_trip(request);
  stats_.bytes_received += response.body_size();
  throw_if_shed(response);
  {
    std::uint64_t prep_us = 0;
    if (auto prep = response.headers.get(kHeaderServerPrep)) {
      prep_us = parse_u64(*prep);
    }
    const double sample = qos::rtt_sample_us(sent_at_us, clock_->now_us(), prep_us);
    last_rtt_us_ = sample;
    if (quality_) {
      quality_->observe_rtt(sample);
    } else {
      fallback_rtt_.update(sample);
    }
  }

  std::string response_xml;
  if (compressed && response.headers.get("Content-Type").value_or("") ==
                        kContentTypeCompressedXml) {
    Stopwatch sw;
    response_xml = lz::decompress_string(response.body_view());
    stats_.compress_us += sw.elapsed_us();
  } else {
    response_xml = response.body_string();
  }

  Stopwatch unmarshal;
  const soap::ParsedEnvelope envelope = soap::parse_envelope(response_xml);
  if (envelope.is_fault()) {
    const soap::Fault fault = soap::parse_fault(envelope);
    throw RpcError("SOAP fault [" + fault.code + "]: " + fault.message);
  }
  if (response.status != 200) {
    throw RpcError("server error " + std::to_string(response.status));
  }

  // A quality-managed server may respond with a reduced message type named
  // in a header; decode with that type's format, then pad back up.
  pbio::FormatPtr response_format = op.output;
  last_response_type_ = op.output->name;
  if (auto type_name = response.headers.get(kHeaderQualityType)) {
    last_response_type_ = std::string(*type_name);
    if (*type_name != op.output->name) {
      if (!quality_) {
        throw RpcError("server sent quality type '" + last_response_type_ +
                       "' but no quality manager is attached");
      }
      response_format = quality_->required_type(*type_name).format;
    }
  }
  note_response_type(op);
  pbio::Value result = soap::decode_body(envelope, *response_format);
  if (response_format->format_id() != op.output->format_id()) {
    result = pbio::project_value(result, *op.output);
  }
  stats_.unmarshal_us += unmarshal.elapsed_us();
  return result;
}

}  // namespace sbq::core
