// ClientStub — the client half of SOAP-bin / SOAP-binQ.
//
// A stub is configured with a wire format and a Transport:
//   * WireFormat::kBinary        — SOAP-bin (PBIO bodies, RTT piggybacking),
//   * WireFormat::kXml           — standard SOAP (the baseline),
//   * WireFormat::kCompressedXml — Lempel–Ziv-compressed SOAP.
//
// The application-facing calls mirror the paper's modes:
//   * call()      — binary-native application (high-performance mode; also
//                   the client side of interoperability mode),
//   * call_xml()  — XML-native application: the stub converts XML → binary
//                   just in time before sending and binary → XML after
//                   receiving (compatibility mode, client side).
//
// With a qos::QualityManager attached, every binary call measures RTT from
// the echoed timestamp (minus the server's reported preparation time),
// smooths it with the α = 0.875 estimator, reports it to the server on the
// next request, and may reduce *request* parameters through the client-side
// quality policy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "core/message.h"
#include "core/stats.h"
#include "http/message.h"
#include "net/sim_clock.h"
#include "pbio/registry.h"
#include "pbio/value.h"
#include "qos/manager.h"
#include "wsdl/wsdl.h"

namespace sbq::core {

enum class WireFormat { kXml, kBinary, kCompressedXml };

/// Request/response transport used by the stub (HTTP over TCP, in-process
/// loopback, or the simulated-link transport).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual http::Response round_trip(const http::Request& request) = 0;

  /// Applies a per-attempt deadline: a round trip that has not produced a
  /// response after `timeout_us` fails with TimeoutError. Live transports
  /// arm the stream's read deadline; simulated links enforce it on the
  /// virtual clock. 0 clears. Default: ignored (loopback cannot block).
  virtual void set_attempt_timeout_us(std::uint64_t /*timeout_us*/) {}

  /// Re-establishes the underlying connection after a transport fault, so a
  /// retry does not re-use a dead stream. Default: no-op (loopback and
  /// simulated transports are connectionless).
  virtual void reconnect() {}
};

/// Capped exponential backoff with deterministic jitter. All delays pass
/// through the endpoint's clock: wall time on live transports, virtual time
/// on a SimClock — retry schedules are reproducible in simulation.
struct RetryPolicy {
  int max_attempts = 1;  // total attempts; 1 disables retry
  std::uint64_t initial_backoff_us = 10'000;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 1'000'000;
  double jitter = 0.1;  // ± fraction of each delay
  /// Jitter seed. 0 (the default) derives a stable seed from the stub's
  /// client_id, so a fleet of default-configured clients decorrelates its
  /// backoff schedules after a shared fault instead of retrying in lockstep.
  /// Any non-zero value is used as-is: same seed → same delays, for
  /// reproducible experiments.
  std::uint64_t jitter_seed = 0;
  /// Also treat a CodecError while decoding the response as a wire fault
  /// (bytes corrupted in transit) and retry it. Off by default: a genuine
  /// codec bug must not be masked by retries.
  bool retry_codec_errors = false;
};

/// Stable FNV-1a hash of an identity string, never 0 — the derivation behind
/// RetryPolicy::jitter_seed's default (seeded from client_id), exposed so
/// tests and the resilience layer can reproduce it.
[[nodiscard]] std::uint64_t stable_seed(std::string_view identity);

/// Passes time on an endpoint's clock: advances a SimClock in place, sleeps
/// the thread otherwise. The one blessed delay primitive for client-side
/// code — anything pacing retries, probes, or hedges must route through it
/// (sbqlint's clock-discipline rule bans raw sleeps elsewhere) so simulated
/// schedules stay deterministic.
void wait_on(net::TimeSource& clock, std::uint64_t us);

/// Per-call failure-handling contract. Only WSDL-declared idempotent
/// operations are ever retried — a lost response to a non-idempotent call
/// may already have taken effect server-side.
struct CallOptions {
  /// Per-attempt deadline in microseconds (0 = wait forever). Expiry
  /// surfaces as sbq::TimeoutError.
  std::uint64_t deadline_us = 0;
  RetryPolicy retry;
};

class ClientStub {
 public:
  /// `service` provides per-operation parameter formats (from WSDL).
  ClientStub(Transport& transport, WireFormat wire_format,
             wsdl::ServiceDesc service,
             std::shared_ptr<pbio::FormatServer> format_server,
             std::shared_ptr<net::TimeSource> clock);

  /// Invokes `operation`; params/result are records of the WSDL formats.
  /// Uses the stub's default CallOptions (no deadline, no retry unless
  /// set_default_call_options says otherwise).
  pbio::Value call(const std::string& operation, const pbio::Value& params);

  /// Invokes `operation` under an explicit failure-handling contract:
  /// per-attempt deadline, capped exponential backoff with deterministic
  /// jitter, idempotent-only retries. Each failed attempt is reported to the
  /// quality manager as a loss-like penalty sample (docs/robustness.md), the
  /// transport is reconnected, and the service's formats are re-announced
  /// before the resend.
  pbio::Value call(const std::string& operation, const pbio::Value& params,
                   const CallOptions& options);

  /// Options applied by the two-argument call() and call_xml().
  void set_default_call_options(CallOptions options) {
    default_options_ = std::move(options);
  }
  [[nodiscard]] const CallOptions& default_call_options() const {
    return default_options_;
  }

  /// XML-native application entry point: takes `<params...>` XML, returns
  /// the result element XML. In binary wire modes the stub performs the
  /// XML ↔ binary conversions (charged to stats().convert_us).
  std::string call_xml(const std::string& operation, const std::string& params_xml);

  /// Attaches client-side quality management: RTT estimation/reporting and
  /// resolution of reduced response types. Without it the stub still
  /// measures RTT internally.
  void set_quality_manager(std::shared_ptr<qos::QualityManager> quality);

  /// Opts into *request* reduction: before each call the quality manager
  /// selects a message type and its handler shrinks the request parameters
  /// (the server pads them back). Off by default — most quality files
  /// describe response types, which must not be applied to requests.
  void set_request_quality_enabled(bool enabled) {
    request_quality_enabled_ = enabled;
  }

  [[nodiscard]] std::shared_ptr<qos::QualityManager> quality_manager() const {
    return quality_;
  }

  /// Smoothed RTT estimate in microseconds (0 before the first call).
  [[nodiscard]] double rtt_estimate_us() const;

  /// RTT of the most recent call (raw sample, after prep-time subtraction).
  [[nodiscard]] double last_rtt_us() const { return last_rtt_us_; }

  /// Message type name the server used for the most recent response.
  [[nodiscard]] const std::string& last_response_type() const {
    return last_response_type_;
  }

  /// Toggles the zero-copy wire pipeline: request bodies assembled as
  /// BufferChains borrowing the params' storage, responses decoded straight
  /// from the parsed body without re-splicing. On by default; the flat path
  /// is kept so experiments can measure the difference (bench_pipeline_copies).
  void set_zero_copy(bool enabled) { zero_copy_ = enabled; }
  [[nodiscard]] bool zero_copy() const { return zero_copy_; }

  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  [[nodiscard]] WireFormat wire_format() const { return wire_format_; }
  [[nodiscard]] const wsdl::ServiceDesc& service() const { return service_; }

  /// The stub's view of the format server — callers shipping nested PBIO
  /// messages (e.g. the ECho bridge) announce their inner formats here.
  [[nodiscard]] pbio::FormatCache& format_cache() { return format_cache_; }

  /// Identity sent with every request (X-SOAP-Client-Id) so servers with a
  /// quality factory maintain per-client adaptation state. Unique per stub
  /// by default; override to share identity across stubs/reconnects.
  [[nodiscard]] const std::string& client_id() const { return client_id_; }
  void set_client_id(std::string id) { client_id_ = std::move(id); }

  /// Re-registers the service's formats after a reconnect (a restarted
  /// format server / peer must re-learn them before the next message).
  /// Public because the resilience layer's health probes walk the same
  /// format-announce path when a replica comes back (docs/resilience.md).
  void reannounce_formats();

 private:
  pbio::Value dispatch(const wsdl::OperationDesc& op, const pbio::Value& params);
  pbio::Value call_binary(const wsdl::OperationDesc& op, const pbio::Value& params);
  pbio::Value call_xml_wire(const wsdl::OperationDesc& op, const pbio::Value& params,
                            bool compressed);
  /// Records the fault in stats and feeds the loss-like penalty sample to
  /// the quality loop (or the fallback estimator).
  void note_fault(const CallOptions& options, bool is_timeout);
  /// Tracks degradation/recovery transitions of the response type.
  void note_response_type(const wsdl::OperationDesc& op);
  /// Passes time on the endpoint's clock (see wait_on).
  void wait_us(std::uint64_t us);

  Transport& transport_;
  WireFormat wire_format_;
  std::string client_id_;
  wsdl::ServiceDesc service_;
  pbio::FormatCache format_cache_;
  std::shared_ptr<net::TimeSource> clock_;
  std::shared_ptr<qos::QualityManager> quality_;
  bool request_quality_enabled_ = false;
  bool zero_copy_ = true;
  CallOptions default_options_;
  qos::EwmaEstimator fallback_rtt_;
  double last_rtt_us_ = 0.0;
  std::string last_response_type_;
  bool response_was_full_ = true;
  EndpointStats stats_;
};

}  // namespace sbq::core
