#include "core/message.h"

#include "common/error.h"

namespace sbq::core {

Bytes encode_bin_message(const BinEnvelope& envelope, BytesView pbio_message) {
  if (envelope.operation.size() > 0xFFFF || envelope.message_type.size() > 0xFFFF) {
    throw CodecError("bin envelope name too long");
  }
  ByteBuffer out(64 + pbio_message.size());
  out.append_u16(static_cast<std::uint16_t>(envelope.operation.size()),
                 ByteOrder::kLittle);
  out.append(std::string_view{envelope.operation});
  out.append_u16(static_cast<std::uint16_t>(envelope.message_type.size()),
                 ByteOrder::kLittle);
  out.append(std::string_view{envelope.message_type});
  out.append_u64(envelope.timestamp_us, ByteOrder::kLittle);
  out.append_u64(envelope.echoed_timestamp_us, ByteOrder::kLittle);
  out.append_u64(envelope.server_prep_us, ByteOrder::kLittle);
  out.append_f64(envelope.reported_rtt_us, ByteOrder::kLittle);
  out.append(pbio_message);
  return out.take();
}

BufferChain encode_bin_message(const BinEnvelope& envelope,
                               BufferChain&& pbio_message) {
  if (envelope.operation.size() > 0xFFFF || envelope.message_type.size() > 0xFFFF) {
    throw CodecError("bin envelope name too long");
  }
  ByteBuffer header(64 + envelope.operation.size() + envelope.message_type.size());
  header.append_u16(static_cast<std::uint16_t>(envelope.operation.size()),
                    ByteOrder::kLittle);
  header.append(std::string_view{envelope.operation});
  header.append_u16(static_cast<std::uint16_t>(envelope.message_type.size()),
                    ByteOrder::kLittle);
  header.append(std::string_view{envelope.message_type});
  header.append_u64(envelope.timestamp_us, ByteOrder::kLittle);
  header.append_u64(envelope.echoed_timestamp_us, ByteOrder::kLittle);
  header.append_u64(envelope.server_prep_us, ByteOrder::kLittle);
  header.append_f64(envelope.reported_rtt_us, ByteOrder::kLittle);
  BufferChain out;
  out.append(std::move(header));
  out.append(std::move(pbio_message));
  return out;
}

DecodedBinMessage decode_bin_message(BytesView body) {
  ByteReader reader(body);
  DecodedBinMessage out;
  out.envelope.operation = reader.read_string(reader.read_u16(ByteOrder::kLittle));
  out.envelope.message_type = reader.read_string(reader.read_u16(ByteOrder::kLittle));
  out.envelope.timestamp_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.echoed_timestamp_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.server_prep_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.reported_rtt_us = reader.read_f64(ByteOrder::kLittle);
  out.pbio_message = body.subspan(reader.position());
  return out;
}

DecodedBinChain decode_bin_message(const BufferChain& body) {
  ChainReader reader(body);
  DecodedBinChain out;
  out.envelope.operation = reader.read_string(reader.read_u16(ByteOrder::kLittle));
  out.envelope.message_type = reader.read_string(reader.read_u16(ByteOrder::kLittle));
  out.envelope.timestamp_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.echoed_timestamp_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.server_prep_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.reported_rtt_us = reader.read_f64(ByteOrder::kLittle);
  out.pbio_message = body.share_suffix(reader.position());
  out.bytes_copied = reader.bytes_copied();
  return out;
}

}  // namespace sbq::core
