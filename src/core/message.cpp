#include "core/message.h"

#include "common/error.h"

namespace sbq::core {

Bytes encode_bin_message(const BinEnvelope& envelope, BytesView pbio_message) {
  if (envelope.operation.size() > 0xFFFF || envelope.message_type.size() > 0xFFFF) {
    throw CodecError("bin envelope name too long");
  }
  ByteBuffer out(64 + pbio_message.size());
  out.append_u16(static_cast<std::uint16_t>(envelope.operation.size()),
                 ByteOrder::kLittle);
  out.append(std::string_view{envelope.operation});
  out.append_u16(static_cast<std::uint16_t>(envelope.message_type.size()),
                 ByteOrder::kLittle);
  out.append(std::string_view{envelope.message_type});
  out.append_u64(envelope.timestamp_us, ByteOrder::kLittle);
  out.append_u64(envelope.echoed_timestamp_us, ByteOrder::kLittle);
  out.append_u64(envelope.server_prep_us, ByteOrder::kLittle);
  out.append_f64(envelope.reported_rtt_us, ByteOrder::kLittle);
  out.append(pbio_message);
  return out.take();
}

DecodedBinMessage decode_bin_message(BytesView body) {
  ByteReader reader(body);
  DecodedBinMessage out;
  out.envelope.operation = reader.read_string(reader.read_u16(ByteOrder::kLittle));
  out.envelope.message_type = reader.read_string(reader.read_u16(ByteOrder::kLittle));
  out.envelope.timestamp_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.echoed_timestamp_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.server_prep_us = reader.read_u64(ByteOrder::kLittle);
  out.envelope.reported_rtt_us = reader.read_f64(ByteOrder::kLittle);
  out.pbio_message = body.subspan(reader.position());
  return out;
}

}  // namespace sbq::core
