// SOAP-bin wire messages.
//
// A SOAP-bin invocation still travels as an HTTP POST, but the body is a
// compact binary envelope instead of an XML document:
//
//   [u16 operation_len][operation]      which WSDL operation
//   [u16 msg_type_len][message_type]    quality type that encoded the params
//   [u64 timestamp_us]                  sender's clock when sending
//   [u64 echoed_timestamp_us]           response: request timestamp echoed back
//   [u64 server_prep_us]                response: server data-preparation time
//   [f64 reported_rtt_us]               request: client's current RTT estimate
//   [PBIO message]                      header + payload (pbio/encode.h)
//
// The timestamp/echo/prep fields implement the paper's RTT measurement
// scheme (client timestamps, server echoes, optionally set back by its
// preparation time); reported_rtt implements "the server is informed of the
// new value during the next request".
#pragma once

#include <string>

#include "common/buffer_chain.h"
#include "common/bytes.h"
#include "pbio/format.h"

namespace sbq::core {

/// HTTP content types distinguishing the wire formats.
inline constexpr std::string_view kContentTypeXml = "text/xml; charset=utf-8";
inline constexpr std::string_view kContentTypePbio = "application/x-soap-pbio";
inline constexpr std::string_view kContentTypeCompressedXml =
    "application/x-soap-xml-lz";

/// HTTP headers carrying the binary envelope's metadata on the XML wire,
/// so SOAP-binQ quality management also works for plain-SOAP peers
/// (paper §V future work: handlers/quality for XML data).
inline constexpr std::string_view kHeaderQualityType = "X-SOAP-Quality-Type";
inline constexpr std::string_view kHeaderClientId = "X-SOAP-Client-Id";
inline constexpr std::string_view kHeaderReportedRtt = "X-SOAP-Reported-RTT-us";
inline constexpr std::string_view kHeaderServerPrep = "X-SOAP-Server-Prep-us";

/// Binary envelope metadata (everything before the PBIO message).
struct BinEnvelope {
  std::string operation;
  std::string message_type;
  std::uint64_t timestamp_us = 0;
  std::uint64_t echoed_timestamp_us = 0;
  std::uint64_t server_prep_us = 0;
  double reported_rtt_us = 0.0;
};

/// Serializes the envelope followed by an already-encoded PBIO message.
Bytes encode_bin_message(const BinEnvelope& envelope, BytesView pbio_message);

/// Zero-copy variant: the envelope becomes one small owned segment and the
/// PBIO chain's segments are spliced in behind it — the PBIO payload is
/// never copied into a combined buffer.
BufferChain encode_bin_message(const BinEnvelope& envelope,
                               BufferChain&& pbio_message);

/// Splits a wire body into envelope + PBIO message view (into `body`).
struct DecodedBinMessage {
  BinEnvelope envelope;
  BytesView pbio_message;
};
DecodedBinMessage decode_bin_message(BytesView body);

/// Chain-aware split: the PBIO message comes back as a chain sharing the
/// body's segments (suffix slice, no flattening). `bytes_copied` counts the
/// scratch bytes the envelope decode itself needed (fields straddling a
/// segment boundary).
struct DecodedBinChain {
  BinEnvelope envelope;
  BufferChain pbio_message;
  std::uint64_t bytes_copied = 0;
};
DecodedBinChain decode_bin_message(const BufferChain& body);

}  // namespace sbq::core
