#include "core/quality_compiler.h"

#include <set>

#include "common/error.h"

namespace sbq::core {

std::shared_ptr<qos::QualityManager> compile_quality(
    const qos::QualityFile& file, const wsdl::ServiceDesc& service,
    const QualityCompileOptions& options) {
  if (!options.handler_specs.empty() && options.handlers == nullptr) {
    throw QosError("compile_quality: handler specs given without a repository");
  }

  auto manager = std::make_shared<qos::QualityManager>(file,
                                                       options.switch_threshold);

  std::set<std::string> registered;
  for (const qos::QualityRule& rule : file.rules()) {
    if (!registered.insert(rule.message_type).second) continue;

    const pbio::FormatPtr format = service.type(rule.message_type);
    if (!format) {
      throw QosError("quality file names message type '" + rule.message_type +
                     "' which the WSDL does not define");
    }

    qos::QualityHandler handler;  // empty = trivial projection handler
    const auto spec = options.handler_specs.find(rule.message_type);
    if (spec != options.handler_specs.end()) {
      handler = options.handlers->instantiate(spec->second);
    }
    manager->register_message_type(rule.message_type, format, std::move(handler));
  }

  // Specs for types the quality file never selects are configuration bugs.
  for (const auto& [type_name, spec] : options.handler_specs) {
    if (!registered.contains(type_name)) {
      throw QosError("handler spec for '" + type_name +
                     "' but the quality file never selects that type");
    }
  }
  return manager;
}

}  // namespace sbq::core
