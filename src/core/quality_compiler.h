// The quality compiler — joint compilation of quality file + WSDL.
//
// Paper §III-A: "Quality attributes are specified in a *quality file*,
// which is compiled jointly with the WSDL file to generate stub files. The
// information contained in this file are the data types of the parameters
// ... It also references the quality handlers specified by end users (when
// present) or generates trivial quality handlers otherwise."
//
// compile_quality() is that step at runtime: every message type named in
// the quality file is resolved against the service's WSDL types, handlers
// come from an (optional) handler repository via spec strings, and types
// without a spec get the trivial projection handler. The result is a ready
// QualityManager for either endpoint.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "qos/handler_repository.h"
#include "qos/manager.h"
#include "wsdl/wsdl.h"

namespace sbq::core {

/// Options for compile_quality().
struct QualityCompileOptions {
  /// Handler spec per message type ("truncate:samples:4", ...). Types not
  /// listed get the default projection handler.
  std::map<std::string, std::string> handler_specs;
  /// Repository resolving the specs; required when handler_specs is
  /// non-empty.
  const qos::HandlerRepository* handlers = nullptr;
  int switch_threshold = 3;
};

/// Builds a QualityManager whose message types are the service's WSDL
/// complexTypes named by the quality file's rules. Throws QosError when a
/// rule names a type the WSDL does not define, or when a handler spec
/// cannot be resolved.
std::shared_ptr<qos::QualityManager> compile_quality(
    const qos::QualityFile& file, const wsdl::ServiceDesc& service,
    const QualityCompileOptions& options = {});

}  // namespace sbq::core
