#include "core/registry_host.h"

#include "common/error.h"

namespace sbq::core {

using pbio::Value;

void host_repository(ServiceRuntime& runtime,
                     std::shared_ptr<wsdl::ServiceRepository> repository) {
  if (!repository) throw RpcError("host_repository: null repository");

  runtime.register_operation(
      "publish", wsdl::registry_record_format(), wsdl::registry_ack_format(),
      [repository](const Value& params) {
        repository->publish(params.field("name").as_string(),
                            params.field("wsdl").as_string(),
                            params.field("quality").as_string());
        return Value::record({{"ok", 1}});
      });

  runtime.register_operation(
      "lookup", wsdl::registry_name_format(), wsdl::registry_record_format(),
      [repository](const Value& params) {
        const std::string& name = params.field("name").as_string();
        const auto found = repository->lookup(name);
        if (!found) throw RpcError("no published service named '" + name + "'");
        return Value::record({{"name", found->name},
                              {"wsdl", found->wsdl_xml},
                              {"quality", found->quality_text}});
      });

  runtime.register_operation(
      "list", wsdl::registry_ack_format(), wsdl::registry_listing_format(),
      [repository](const Value&) {
        Value names = Value::empty_array();
        for (const std::string& name : repository->list()) {
          names.push_back(Value::record({{"name", name}}));
        }
        return Value::record({{"names", std::move(names)}});
      });
}

void publish_service(ClientStub& registry_client, const std::string& name,
                     const std::string& wsdl_xml, const std::string& quality_text) {
  const Value ack = registry_client.call(
      "publish",
      Value::record({{"name", name}, {"wsdl", wsdl_xml}, {"quality", quality_text}}));
  if (ack.field("ok").as_i64() != 1) {
    throw RpcError("registry rejected publication of '" + name + "'");
  }
}

wsdl::Discovery discover_service(ClientStub& registry_client,
                                 const std::string& name) {
  const Value record =
      registry_client.call("lookup", Value::record({{"name", name}}));
  wsdl::PublishedService published;
  published.name = record.field("name").as_string();
  published.wsdl_xml = record.field("wsdl").as_string();
  published.quality_text = record.field("quality").as_string();
  return wsdl::compile_published(published);
}

std::vector<std::string> list_services(ClientStub& registry_client) {
  const Value listing =
      registry_client.call("list", Value::record({{"ok", 0}}));
  std::vector<std::string> out;
  for (const Value& entry : listing.field("names").elements()) {
    out.push_back(entry.field("name").as_string());
  }
  return out;
}

}  // namespace sbq::core
