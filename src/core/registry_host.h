// Hosting the service repository over SOAP-bin, and discovering services
// through it.
//
// The repository's own operations ride the same stack as everything else:
//   publish(registry_record) -> registry_ack
//   lookup(registry_name)    -> registry_record
//   list(registry_ack)       -> registry_listing
//
// A client that knows only the registry endpoint can fetch a service's WSDL
// *and* its quality file in one lookup, compile both, and immediately speak
// the service's message types — the paper's "directly access the service,
// without knowledge of the actual message types used in data transmission".
#pragma once

#include <memory>

#include "core/client.h"
#include "core/service.h"
#include "wsdl/repository.h"

namespace sbq::core {

/// Registers the repository's operations on `runtime`.
void host_repository(ServiceRuntime& runtime,
                     std::shared_ptr<wsdl::ServiceRepository> repository);

/// Publishes a service through a registry client stub.
void publish_service(ClientStub& registry_client, const std::string& name,
                     const std::string& wsdl_xml,
                     const std::string& quality_text = {});

/// Fetches + compiles a published service. Throws RpcError when the name is
/// unknown.
wsdl::Discovery discover_service(ClientStub& registry_client,
                                 const std::string& name);

/// All names known to the registry.
std::vector<std::string> list_services(ClientStub& registry_client);

}  // namespace sbq::core
