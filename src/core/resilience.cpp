#include "core/resilience.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sbq::core {

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options,
                               std::shared_ptr<net::TimeSource> clock)
    : options_(options), clock_(std::move(clock)) {
  if (!clock_) throw UsageError("CircuitBreaker needs a time source");
  if (options_.window <= 0) throw UsageError("breaker window must be positive");
  window_.assign(static_cast<std::size_t>(options_.window), 0);
}

BreakerState CircuitBreaker::state_locked() const {
  if (!open_) return BreakerState::kClosed;
  return clock_->now_us() >= opened_at_us_ + options_.cooldown_us
             ? BreakerState::kHalfOpen
             : BreakerState::kOpen;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_locked();
}

void CircuitBreaker::trip_locked() {
  open_ = true;
  opened_at_us_ = clock_->now_us();
  half_open_successes_ = 0;
  ++trips_;
}

void CircuitBreaker::push_outcome_locked(bool failure) {
  const char prior = window_[window_pos_];
  if (window_count_ < options_.window) {
    ++window_count_;
  } else if (prior != 0) {
    --window_failures_;  // the overwritten outcome leaves the window
  }
  window_[window_pos_] = failure ? 1 : 0;
  if (failure) ++window_failures_;
  window_pos_ = (window_pos_ + 1) % window_.size();
}

bool CircuitBreaker::record_success() {
  std::lock_guard lock(mu_);
  if (open_) {
    // A success can only arrive here through the half-open gate (a probe or
    // a routed user call after the cool-down).
    if (++half_open_successes_ < options_.half_open_successes) return false;
    open_ = false;
    ++closes_;
    consecutive_failures_ = 0;
    half_open_successes_ = 0;
    std::fill(window_.begin(), window_.end(), 0);
    window_pos_ = 0;
    window_count_ = 0;
    window_failures_ = 0;
    return true;
  }
  consecutive_failures_ = 0;
  push_outcome_locked(/*failure=*/false);
  return false;
}

bool CircuitBreaker::record_failure() {
  std::lock_guard lock(mu_);
  if (open_) {
    // A failed half-open probe (or a failure racing the trip) re-opens the
    // breaker: the cool-down restarts from now. Count the transition as a
    // trip only when the half-open gate had actually opened.
    const bool was_half_open = state_locked() == BreakerState::kHalfOpen;
    opened_at_us_ = clock_->now_us();
    half_open_successes_ = 0;
    if (was_half_open) ++trips_;
    return was_half_open;
  }
  ++consecutive_failures_;
  push_outcome_locked(/*failure=*/true);
  if (consecutive_failures_ >= options_.consecutive_failure_threshold) {
    trip_locked();
    return true;
  }
  if (window_count_ >= options_.error_rate_min_calls &&
      static_cast<double>(window_failures_) >=
          options_.error_rate_threshold * static_cast<double>(window_count_)) {
    trip_locked();
    return true;
  }
  return false;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard lock(mu_);
  return trips_;
}

std::uint64_t CircuitBreaker::closes() const {
  std::lock_guard lock(mu_);
  return closes_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard lock(mu_);
  return consecutive_failures_;
}

std::uint64_t CircuitBreaker::half_open_at_us() const {
  std::lock_guard lock(mu_);
  return open_ ? opened_at_us_ + options_.cooldown_us : 0;
}

LatencyWindow::LatencyWindow(std::size_t capacity)
    : samples_(capacity == 0 ? 1 : capacity, 0.0) {}

void LatencyWindow::record(double us) {
  samples_[pos_] = us;
  pos_ = (pos_ + 1) % samples_.size();
  if (count_ < samples_.size()) ++count_;
}

double LatencyWindow::percentile(double p) const {
  if (count_ == 0) return 0.0;
  std::vector<double> sorted(samples_.begin(),
                             samples_.begin() + static_cast<std::ptrdiff_t>(count_));
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::size_t LatencyWindow::count() const { return count_; }

EndpointSet::Endpoint::Endpoint(EndpointConfig config, WireFormat wire_format,
                                const wsdl::ServiceDesc& service,
                                std::shared_ptr<pbio::FormatServer> format_server,
                                std::shared_ptr<net::TimeSource> clock,
                                const ResilienceOptions& options)
    : name(std::move(config.name)),
      transport(config.transport_factory ? config.transport_factory() : nullptr),
      breaker(options.breaker, clock),
      latency(options.latency_window) {
  if (!transport) {
    throw UsageError("endpoint '" + name + "' produced no transport");
  }
  stub = std::make_unique<ClientStub>(*transport, wire_format, service,
                                      std::move(format_server), std::move(clock));
}

EndpointSet::EndpointSet(std::vector<EndpointConfig> configs,
                         WireFormat wire_format, wsdl::ServiceDesc service,
                         std::shared_ptr<pbio::FormatServer> format_server,
                         std::shared_ptr<net::TimeSource> clock,
                         ResilienceOptions options)
    : options_(options), service_(std::move(service)), clock_(std::move(clock)) {
  if (configs.empty()) throw UsageError("EndpointSet needs at least one endpoint");
  if (!clock_) throw UsageError("EndpointSet needs a time source");
  endpoints_.reserve(configs.size());
  for (auto& config : configs) {
    endpoints_.push_back(std::make_unique<Endpoint>(
        std::move(config), wire_format, service_, format_server, clock_, options_));
  }
  // One identity across the set: the server's per-client quality state (RTT
  // report, selected type) must follow the client to whichever replica
  // serves it next, not restart from scratch on every failover.
  client_id_ = endpoints_.front()->stub->client_id();
  for (std::size_t i = 1; i < endpoints_.size(); ++i) {
    endpoints_[i]->stub->set_client_id(client_id_);
  }
}

std::vector<EndpointSnapshot> EndpointSet::snapshots() const {
  std::vector<EndpointSnapshot> out;
  out.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) {
    EndpointSnapshot snap;
    snap.name = ep->name;
    snap.breaker = ep->breaker.state();
    snap.breaker_trips = ep->breaker.trips();
    snap.breaker_closes = ep->breaker.closes();
    snap.ewma_latency_us = ep->ewma_latency.value_us();
    snap.penalized_until_us = ep->penalized_until_us;
    snap.probes = ep->probes;
    snap.probe_failures = ep->probe_failures;
    snap.stats = ep->stub->stats();
    out.push_back(std::move(snap));
  }
  return out;
}

ResilientStub::ResilientStub(EndpointSet& endpoints) : set_(endpoints) {}

void ResilientStub::set_quality_manager(
    std::shared_ptr<qos::QualityManager> quality) {
  quality_ = std::move(quality);
  for (std::size_t i = 0; i < set_.size(); ++i) {
    set_.endpoint(i).stub->set_quality_manager(quality_);
  }
}

void ResilientStub::set_request_quality_enabled(bool enabled) {
  for (std::size_t i = 0; i < set_.size(); ++i) {
    set_.endpoint(i).stub->set_request_quality_enabled(enabled);
  }
}

std::size_t ResilientStub::pick_allowed(const std::vector<char>& failed,
                                        std::uint64_t now,
                                        std::size_t exclude) const {
  std::size_t best = kNone;
  int best_state_rank = 0;
  double best_latency = 0.0;
  for (std::size_t i = 0; i < set_.size(); ++i) {
    if (i == exclude || (i < failed.size() && failed[i] != 0)) continue;
    const auto& ep = set_.endpoint(i);
    const BreakerState state = ep.breaker.state();
    if (state == BreakerState::kOpen) continue;
    if (ep.penalized_until_us > now) continue;
    // Rank closed above half-open, then by smoothed latency; an endpoint
    // with no samples yet sorts first, which round-robins the warm-up
    // across fresh replicas.
    const int state_rank = state == BreakerState::kClosed ? 0 : 1;
    const double latency =
        ep.ewma_latency.has_sample() ? ep.ewma_latency.value_us() : -1.0;
    if (best == kNone || state_rank < best_state_rank ||
        (state_rank == best_state_rank && latency < best_latency)) {
      best = i;
      best_state_rank = state_rank;
      best_latency = latency;
    }
  }
  return best;
}

std::size_t ResilientStub::pick(const std::vector<char>& failed,
                                std::uint64_t now) const {
  std::size_t choice = pick_allowed(failed, now, kNone);
  if (choice != kNone) return choice;
  // Every allowed endpoint already failed this call: re-try the best of
  // them anyway rather than giving up with budget left.
  choice = pick_allowed(/*failed=*/{}, now, kNone);
  if (choice != kNone) return choice;
  // Nothing is allowed (all breakers open / penalized): pick the one that
  // becomes available soonest — its half-open gate may admit this attempt.
  std::size_t best = 0;
  std::uint64_t best_at = ~0ull;
  for (std::size_t i = 0; i < set_.size(); ++i) {
    const auto& ep = set_.endpoint(i);
    const std::uint64_t at =
        std::max(ep.breaker.half_open_at_us(), ep.penalized_until_us);
    if (at < best_at) {
      best_at = at;
      best = i;
    }
  }
  return best;
}

void ResilientStub::note_endpoint_failure(EndpointSet::Endpoint& ep,
                                          const CallOptions& options,
                                          bool is_timeout) {
  ++stats_.faults_injected;
  if (is_timeout) ++stats_.timeouts;
  if (ep.breaker.record_failure()) {
    ++stats_.breaker_trips;
    // A trip is stronger evidence than one lost attempt: feed the loss-like
    // penalty so quality steps down while the replica set is degraded
    // (docs/robustness.md); probes feed the recovery mirror on close.
    if (quality_) {
      quality_->observe_fault(static_cast<double>(options.deadline_us));
    }
  }
}

pbio::Value ResilientStub::attempt_on(std::size_t index,
                                      const std::string& operation,
                                      const pbio::Value& params,
                                      const CallOptions& options,
                                      std::uint64_t deadline_us,
                                      bool timeout_is_hedge) {
  EndpointSet::Endpoint& ep = set_.endpoint(index);
  CallOptions per_attempt = options;
  per_attempt.deadline_us = deadline_us;
  per_attempt.retry = RetryPolicy{};
  per_attempt.retry.max_attempts = 1;  // this layer owns retry and failover
  const std::uint64_t t0 = set_.time_source().now_us();
  try {
    pbio::Value result = ep.stub->call(operation, params, per_attempt);
    const auto rtt = static_cast<double>(set_.time_source().now_us() - t0);
    ep.latency.record(rtt);
    ep.ewma_latency.update(rtt);
    if (ep.breaker.record_success()) ++stats_.breaker_closes;
    last_response_type_ = ep.stub->last_response_type();
    last_index_ = index;
    return result;
  } catch (const OverloadError& e) {
    // A shed is deliberate flow control, not a broken replica: no breaker
    // charge, but honor the advertised Retry-After as a selection penalty
    // so the next attempts prefer replicas that asked for no delay.
    ++stats_.sheds;
    if (e.retry_after_us() > 0) {
      ep.penalized_until_us = set_.time_source().now_us() + e.retry_after_us();
    }
    throw;
  } catch (const TimeoutError&) {
    if (timeout_is_hedge) throw;  // hedge boundary, not replica evidence
    note_endpoint_failure(ep, options, /*is_timeout=*/true);
    throw;
  } catch (const TransportError&) {
    note_endpoint_failure(ep, options, /*is_timeout=*/false);
    throw;
  } catch (const CodecError&) {
    if (options.retry.retry_codec_errors) {
      note_endpoint_failure(ep, options, /*is_timeout=*/false);
    }
    throw;
  }
}

bool ResilientStub::probe(std::size_t index) {
  EndpointSet::Endpoint& ep = set_.endpoint(index);
  ep.last_probe_us = set_.time_source().now_us();
  ++ep.probes;
  ++stats_.probes;
  http::Request request;
  request.method = "GET";
  request.target = "/" + set_.service().name;
  request.headers.set(std::string(kHeaderClientId), set_.client_id());
  ep.transport->set_attempt_timeout_us(set_.options().probe_timeout_us);
  const std::uint64_t t0 = set_.time_source().now_us();
  try {
    (void)ep.transport->round_trip(request);
  } catch (const Error&) {
    ++ep.probe_failures;
    ++stats_.probe_failures;
    if (ep.breaker.record_failure()) ++stats_.breaker_trips;
    try {
      ep.transport->reconnect();
    } catch (const Error&) {
      // Still down; the next probe will try again after the cool-down.
    }
    return false;
  }
  // Any HTTP response proves the replica is alive and serving its front
  // door (admission control sheds only POSTs, so probes pass even under
  // overload). Walk the format-announce path so a restarted peer re-learns
  // our formats before the first real message, and feed the probe RTT to
  // the latency estimate and the quality loop — recovery is a quality
  // signal just like degradation was.
  const auto rtt = static_cast<double>(set_.time_source().now_us() - t0);
  if (ep.breaker.record_success()) ++stats_.breaker_closes;
  if (rtt > 0.0) ep.ewma_latency.update(rtt);
  ep.stub->reannounce_formats();
  if (quality_) quality_->observe_probe(rtt);
  return true;
}

void ResilientStub::pump_probes() {
  const std::uint64_t now = set_.time_source().now_us();
  const std::uint64_t interval = set_.options().probe_interval_us;
  for (std::size_t i = 0; i < set_.size(); ++i) {
    EndpointSet::Endpoint& ep = set_.endpoint(i);
    const BreakerState state = ep.breaker.state();
    if (state == BreakerState::kHalfOpen) {
      probe(i);
    } else if (state == BreakerState::kClosed && interval > 0 &&
               (ep.last_probe_us == 0 || now - ep.last_probe_us >= interval)) {
      probe(i);
    }
  }
}

pbio::Value ResilientStub::call(const std::string& operation,
                                const pbio::Value& params) {
  return call(operation, params, default_options_);
}

pbio::Value ResilientStub::call(const std::string& operation,
                                const pbio::Value& params,
                                const CallOptions& options) {
  const wsdl::OperationDesc& op = set_.service().required_operation(operation);
  ++stats_.calls;
  pump_probes();

  const RetryPolicy& retry = options.retry;
  const int max_attempts = std::max(1, retry.max_attempts);
  const std::uint64_t seed = retry.jitter_seed != 0
                                 ? retry.jitter_seed
                                 : stable_seed(set_.client_id());
  Rng jitter_rng(seed * 0x9E3779B97F4A7C15ull + stats_.calls);
  std::uint64_t backoff = retry.initial_backoff_us;
  std::vector<char> failed(set_.size(), 0);
  std::size_t prev = kNone;
  const ResilienceOptions& ro = set_.options();

  for (int attempt = 1;; ++attempt) {
    const std::uint64_t now = set_.time_source().now_us();
    const std::size_t primary = pick(failed, now);
    if (prev != kNone && primary != prev) ++stats_.failovers;
    std::size_t used = primary;
    try {
      EndpointSet::Endpoint& ep = set_.endpoint(primary);
      // Hedge an idempotent call when the primary has a trusted latency
      // profile and a healthy alternative exists: bound the primary attempt
      // at the hedge delay; if it blows through, cancel it (reconnect) and
      // spend the rest of the deadline at the next-best replica.
      if (op.idempotent && ro.hedge_enabled &&
          ep.latency.count() >= ro.hedge_min_samples) {
        const auto profile = static_cast<std::uint64_t>(
            ep.latency.percentile(ro.hedge_percentile) * ro.hedge_factor);
        const std::uint64_t hedge_delay =
            std::max(ro.hedge_min_delay_us, profile);
        const std::size_t alternative = pick_allowed(failed, now, primary);
        const bool fits =
            options.deadline_us == 0 || hedge_delay < options.deadline_us;
        if (alternative != kNone && fits) {
          try {
            return attempt_on(primary, operation, params, options, hedge_delay,
                              /*timeout_is_hedge=*/true);
          } catch (const TimeoutError&) {
            // The hedge boundary fired: the primary is slower than its own
            // profile. Record the bound as a (censored) latency sample —
            // into the EWMA too, so a replica that keeps getting hedged
            // loses its selection preference instead of soaking up a
            // doubling hedge boundary forever — then cancel the straggling
            // attempt and race the alternative with the remaining budget.
            // First response wins — the loser's connection is torn down, so
            // its late reply is dropped.
            ++stats_.hedges;
            ep.latency.record(static_cast<double>(hedge_delay));
            ep.ewma_latency.update(static_cast<double>(hedge_delay));
            try {
              ep.transport->reconnect();
            } catch (const Error&) {
              // A dead primary fails its reconnect too; the hedge proceeds.
            }
            const std::uint64_t remaining =
                options.deadline_us == 0 ? 0
                                         : options.deadline_us - hedge_delay;
            used = alternative;
            pbio::Value result = attempt_on(alternative, operation, params,
                                            options, remaining,
                                            /*timeout_is_hedge=*/false);
            ++stats_.hedge_wins;
            return result;
          }
        }
      }
      return attempt_on(primary, operation, params, options,
                        options.deadline_us, /*timeout_is_hedge=*/false);
    } catch (const Error& e) {
      const auto* shed = dynamic_cast<const OverloadError*>(&e);
      const bool is_fault =
          dynamic_cast<const TransportError*>(&e) != nullptr ||
          (retry.retry_codec_errors &&
           dynamic_cast<const CodecError*>(&e) != nullptr);
      if (!is_fault) throw;
      if (attempt >= max_attempts || !op.idempotent) throw;
      ++stats_.retries;
      failed[used] = 1;
      prev = used;

      // Pacing: when another allowed replica is standing by, fail over to
      // it immediately — waiting out a backoff in front of a healthy
      // replica only adds latency. With nowhere better to go, wait the
      // jittered backoff (or the server's own Retry-After) before
      // re-trying, exactly like the single-endpoint retry loop.
      const std::uint64_t after = set_.time_source().now_us();
      if (pick_allowed(failed, after, kNone) == kNone) {
        std::uint64_t delay = backoff;
        if (shed != nullptr && shed->retry_after_us() > 0) {
          delay = shed->retry_after_us();
        } else if (retry.jitter > 0.0 && delay > 0) {
          const double factor =
              1.0 + jitter_rng.uniform(-retry.jitter, retry.jitter);
          delay =
              static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
        }
        wait_on(set_.time_source(), delay);
        backoff = std::min(
            static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                       retry.backoff_multiplier),
            retry.max_backoff_us);
      }

      // Rebuild the failed replica's connection so a later attempt (or
      // probe) does not re-use a dead stream, and repeat the sender-side
      // format handshake.
      try {
        set_.endpoint(used).transport->reconnect();
      } catch (const Error&) {
        // Replica still unreachable; its breaker is already charged.
      }
      set_.endpoint(used).stub->reannounce_formats();
    }
  }
}

}  // namespace sbq::core
