// Client-side resilience: multi-replica endpoint sets, circuit breakers,
// health probes, failover, and hedged requests (docs/resilience.md).
//
// The paper's continuous quality management adapts message *quality* to one
// live link; this layer adapts *which link* the client uses. An EndpointSet
// holds N replicas of the same service, each with its own Transport,
// ClientStub, per-endpoint circuit breaker, and latency window. A
// ResilientStub fronts the set: every call is routed to the healthiest
// replica, failed attempts fail over to the next-best one within the
// existing CallOptions retry budget, open breakers are re-closed by cheap
// active health probes instead of burning user calls, and idempotent calls
// can be hedged — when the primary replica exceeds a latency percentile the
// attempt is cancelled and re-fired at the next-best replica.
//
// All timing flows through the endpoint's net::TimeSource: cool-downs,
// probe intervals, and hedge delays are deterministic under a SimClock,
// which is how the tests and bench_resilience script exact failure
// scenarios. sbqlint's clock discipline enforces that this file never
// touches a raw clock or sleep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "core/client.h"
#include "net/sim_clock.h"
#include "qos/rtt.h"

namespace sbq::core {

/// Circuit-breaker state (docs/resilience.md state machine):
///   * kClosed   — calls flow; failures are counted.
///   * kOpen     — tripped; calls are routed around until the cool-down ends.
///   * kHalfOpen — cool-down elapsed; one probe (or user call) is allowed
///                 through to decide between closing and re-opening.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] std::string_view to_string(BreakerState state);

/// Trip/recovery thresholds. A breaker trips on either signal: a run of
/// consecutive failures (fast trip on a dead replica) or a windowed error
/// rate (slow trip on a flaky one).
struct BreakerOptions {
  int consecutive_failure_threshold = 3;
  double error_rate_threshold = 0.5;
  /// Minimum outcomes in the window before the rate signal may trip — a
  /// single early failure is not a 100% error rate worth acting on.
  int error_rate_min_calls = 8;
  int window = 16;  // outcomes tracked for the error-rate signal
  std::uint64_t cooldown_us = 1'000'000;
  /// Successes required while half-open before the breaker closes.
  int half_open_successes = 1;
};

/// Per-endpoint three-state circuit breaker. All transitions are driven by
/// record_success / record_failure plus the passage of time on the injected
/// TimeSource; kHalfOpen is *derived* (open + cool-down elapsed) rather than
/// stored, so no background work is needed to leave kOpen.
class CircuitBreaker {
 public:
  CircuitBreaker(BreakerOptions options, std::shared_ptr<net::TimeSource> clock);

  [[nodiscard]] BreakerState state() const;
  /// Whether a call may be routed here (closed or half-open).
  [[nodiscard]] bool allows() const { return state() != BreakerState::kOpen; }

  /// Records a successful outcome. Returns true when this success *closed*
  /// the breaker (half-open → closed transition), so callers can count
  /// recovery transitions.
  bool record_success();

  /// Records a failed outcome. Returns true when this failure *tripped* the
  /// breaker (closed → open, or a failed half-open probe re-opening it).
  bool record_failure();

  [[nodiscard]] std::uint64_t trips() const;
  [[nodiscard]] std::uint64_t closes() const;
  [[nodiscard]] int consecutive_failures() const;
  /// When an open breaker becomes half-open (opened_at + cool-down);
  /// 0 when not open.
  [[nodiscard]] std::uint64_t half_open_at_us() const;

 private:
  [[nodiscard]] BreakerState state_locked() const;
  void trip_locked();
  void push_outcome_locked(bool failure);

  const BreakerOptions options_;
  const std::shared_ptr<net::TimeSource> clock_;
  mutable std::mutex mu_;
  // kHalfOpen is derived from open_ + the clock.
  bool open_ = false;               // sbqlint:guarded_by(mu_)
  std::uint64_t opened_at_us_ = 0;  // sbqlint:guarded_by(mu_)
  int consecutive_failures_ = 0;    // sbqlint:guarded_by(mu_)
  int half_open_successes_ = 0;     // sbqlint:guarded_by(mu_)
  // Ring buffer of recent outcomes for the error-rate signal.
  std::vector<char> window_;        // sbqlint:guarded_by(mu_)
  std::size_t window_pos_ = 0;      // sbqlint:guarded_by(mu_)
  int window_count_ = 0;            // sbqlint:guarded_by(mu_)
  int window_failures_ = 0;         // sbqlint:guarded_by(mu_)
  std::uint64_t trips_ = 0;         // sbqlint:guarded_by(mu_)
  std::uint64_t closes_ = 0;        // sbqlint:guarded_by(mu_)
};

/// Ring buffer of recent attempt latencies; feeds the hedge delay
/// (percentile × factor) and the endpoint snapshots.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 64);

  void record(double us);
  /// Latency at percentile p ∈ (0, 1]; 0 with no samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::size_t count() const;

 private:
  // Mutex-free by design: the window is only touched from the calling
  // client thread (ResilientStub::call and the probe pump it drives).
  std::vector<double> samples_;  // sbqlint:affine(client)
  std::size_t pos_ = 0;          // sbqlint:affine(client)
  std::size_t count_ = 0;        // sbqlint:affine(client)
};

/// One replica of the service: a name for diagnostics plus a factory for
/// its Transport (so the set owns the connection lifecycle and can rebuild
/// it on failover).
struct EndpointConfig {
  std::string name;
  std::function<std::unique_ptr<Transport>()> transport_factory;
};

struct ResilienceOptions {
  BreakerOptions breaker;
  /// Interval for background probes of *closed* endpoints; 0 (default)
  /// probes only half-open endpoints (the recovery path).
  std::uint64_t probe_interval_us = 0;
  std::uint64_t probe_timeout_us = 100'000;
  /// Hedging (idempotent calls only): when the primary attempt exceeds
  /// latency-window percentile × factor, cancel it and re-fire at the
  /// next-best replica.
  bool hedge_enabled = false;
  double hedge_percentile = 0.95;
  double hedge_factor = 2.0;
  std::uint64_t hedge_min_delay_us = 1'000;
  /// Samples required before the percentile is trusted enough to hedge.
  std::size_t hedge_min_samples = 8;
  std::size_t latency_window = 64;
};

/// Read-only view of one endpoint's health for experiments and monitors.
struct EndpointSnapshot {
  std::string name;
  BreakerState breaker = BreakerState::kClosed;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_closes = 0;
  double ewma_latency_us = 0.0;
  std::uint64_t penalized_until_us = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  EndpointStats stats;
};

/// N replicas of one service sharing a wire format, format server, and
/// clock. Every replica gets its own Transport + ClientStub (per-endpoint
/// stats and RTT state) but all stubs share one client id, so server-side
/// per-client quality adaptation follows the client across failovers.
class EndpointSet {
 public:
  struct Endpoint {
    Endpoint(EndpointConfig config, WireFormat wire_format,
             const wsdl::ServiceDesc& service,
             std::shared_ptr<pbio::FormatServer> format_server,
             std::shared_ptr<net::TimeSource> clock,
             const ResilienceOptions& options);

    std::string name;
    std::unique_ptr<Transport> transport;  // must outlive `stub`
    std::unique_ptr<ClientStub> stub;
    CircuitBreaker breaker;
    LatencyWindow latency;
    qos::EwmaEstimator ewma_latency;
    /// Selection penalty from an OverloadError's Retry-After hint: the
    /// endpoint is skipped until this instant. Like the latency window,
    /// the mutable health fields below are client-thread state.
    std::uint64_t penalized_until_us = 0;  // sbqlint:affine(client)
    std::uint64_t last_probe_us = 0;       // sbqlint:affine(client)
    std::uint64_t probes = 0;              // sbqlint:affine(client)
    std::uint64_t probe_failures = 0;      // sbqlint:affine(client)
  };

  EndpointSet(std::vector<EndpointConfig> configs, WireFormat wire_format,
              wsdl::ServiceDesc service,
              std::shared_ptr<pbio::FormatServer> format_server,
              std::shared_ptr<net::TimeSource> clock,
              ResilienceOptions options = {});

  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }
  [[nodiscard]] Endpoint& endpoint(std::size_t i) { return *endpoints_[i]; }
  [[nodiscard]] const Endpoint& endpoint(std::size_t i) const {
    return *endpoints_[i];
  }
  [[nodiscard]] const ResilienceOptions& options() const { return options_; }
  [[nodiscard]] const wsdl::ServiceDesc& service() const { return service_; }
  [[nodiscard]] net::TimeSource& time_source() { return *clock_; }
  /// The shared client id all replica stubs present to servers.
  [[nodiscard]] const std::string& client_id() const { return client_id_; }

  [[nodiscard]] std::vector<EndpointSnapshot> snapshots() const;

 private:
  ResilienceOptions options_;
  wsdl::ServiceDesc service_;
  std::shared_ptr<net::TimeSource> clock_;
  std::string client_id_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

/// The application-facing stub over an EndpointSet. Mirrors ClientStub's
/// call API; the differences are where an attempt goes (healthiest replica
/// first, ranked by breaker state then smoothed latency then Retry-After
/// penalties) and what happens when it fails (fail over to the next-best
/// replica — immediately when one is available, after jittered backoff
/// otherwise — within the CallOptions retry budget). Active health probes
/// run piggybacked on calls via pump_probes(), so no background thread is
/// needed and SimClock tests stay single-threaded and deterministic.
class ResilientStub {
 public:
  explicit ResilientStub(EndpointSet& endpoints);

  pbio::Value call(const std::string& operation, const pbio::Value& params);
  pbio::Value call(const std::string& operation, const pbio::Value& params,
                   const CallOptions& options);

  void set_default_call_options(CallOptions options) {
    default_options_ = std::move(options);
  }
  [[nodiscard]] const CallOptions& default_call_options() const {
    return default_options_;
  }

  /// Attaches one quality manager to every replica stub and to the
  /// resilience layer itself: per-attempt RTT/fault samples flow in from
  /// the stubs as usual, breaker trips add the loss-like penalty, and
  /// successful probes of recovering replicas feed observe_probe so quality
  /// re-projects upward as the set heals.
  void set_quality_manager(std::shared_ptr<qos::QualityManager> quality);
  [[nodiscard]] std::shared_ptr<qos::QualityManager> quality_manager() const {
    return quality_;
  }

  void set_request_quality_enabled(bool enabled);

  /// Probes endpoints that are due: every half-open endpoint (the recovery
  /// path — a cheap idempotent GET walks the format-announce path and
  /// closes the breaker without risking a user call), plus closed endpoints
  /// whose probe_interval_us has elapsed. Called automatically at the start
  /// of every call; exposed for tests and event loops that want to drive
  /// recovery without traffic.
  void pump_probes();

  /// Aggregate stats across the set: calls/retries plus the resilience
  /// counters (failovers, hedges, breaker transitions, probes). Per-replica
  /// detail lives in EndpointSet::snapshots().
  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Message type name of the most recent response (from whichever replica
  /// answered).
  [[nodiscard]] const std::string& last_response_type() const {
    return last_response_type_;
  }
  /// Index of the replica that served the most recent successful attempt.
  [[nodiscard]] std::size_t last_endpoint() const { return last_index_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Best allowed endpoint (breaker allows, not penalized, not `exclude`,
  /// not in `failed`); kNone when none qualifies.
  [[nodiscard]] std::size_t pick_allowed(const std::vector<char>& failed,
                                         std::uint64_t now,
                                         std::size_t exclude) const;
  /// Endpoint for the next attempt: best allowed outside `failed`, else
  /// best allowed overall, else the least-bad (soonest available) one.
  [[nodiscard]] std::size_t pick(const std::vector<char>& failed,
                                 std::uint64_t now) const;

  /// One bounded attempt against endpoint `index` with all per-endpoint
  /// bookkeeping (latency windows, breaker outcomes, Retry-After
  /// penalties). When `timeout_is_hedge`, a TimeoutError is the hedge
  /// boundary firing — it is rethrown without charging the breaker.
  pbio::Value attempt_on(std::size_t index, const std::string& operation,
                         const pbio::Value& params, const CallOptions& options,
                         std::uint64_t deadline_us, bool timeout_is_hedge);

  bool probe(std::size_t index);
  void note_endpoint_failure(EndpointSet::Endpoint& ep,
                             const CallOptions& options, bool is_timeout);

  EndpointSet& set_;
  CallOptions default_options_;
  std::shared_ptr<qos::QualityManager> quality_;
  EndpointStats stats_;
  std::size_t last_index_ = 0;
  std::string last_response_type_;
};

}  // namespace sbq::core
