#include "core/service.h"

#include <algorithm>

#include "common/clock.h"
#include "common/strings.h"
#include "common/error.h"
#include "compress/lzss.h"
#include "pbio/encode.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "soap/envelope.h"

namespace sbq::core {

namespace {

http::Response error_response(int status, const std::string& message) {
  http::Response resp;
  resp.status = status;
  resp.reason = std::string(http::reason_phrase(status));
  resp.headers.set("Content-Type", "text/plain");
  resp.set_body(message);
  return resp;
}

http::Response fault_response(const std::string& code, const std::string& message,
                              bool compressed) {
  http::Response resp;
  resp.status = 500;
  resp.reason = std::string(http::reason_phrase(500));
  const std::string fault = soap::build_fault(code, message);
  if (compressed) {
    resp.headers.set("Content-Type", std::string(kContentTypeCompressedXml));
    resp.body = lz::compress_string(fault);
  } else {
    resp.headers.set("Content-Type", std::string(kContentTypeXml));
    resp.set_body(fault);
  }
  return resp;
}

}  // namespace

ServiceRuntime::ServiceRuntime(std::shared_ptr<pbio::FormatServer> format_server,
                               std::shared_ptr<net::TimeSource> clock)
    : clock_(std::move(clock)), format_cache_(std::move(format_server)) {
  if (!clock_) throw TransportError("ServiceRuntime needs a time source");
}

void ServiceRuntime::register_operation(const std::string& name, pbio::FormatPtr input,
                                        pbio::FormatPtr output,
                                        OperationHandler handler) {
  if (!input || !output || !handler) {
    throw RpcError("register_operation('" + name + "'): null argument");
  }
  format_cache_.announce(input);
  format_cache_.announce(output);
  operations_[name] = Operation{std::move(input), std::move(output),
                                std::move(handler), nullptr};
}

void ServiceRuntime::register_xml_operation(const std::string& name,
                                            pbio::FormatPtr input,
                                            pbio::FormatPtr output,
                                            XmlOperationHandler handler) {
  if (!input || !output || !handler) {
    throw RpcError("register_xml_operation('" + name + "'): null argument");
  }
  format_cache_.announce(input);
  format_cache_.announce(output);
  operations_[name] = Operation{std::move(input), std::move(output), nullptr,
                                std::move(handler)};
}

void ServiceRuntime::set_quality_manager(std::shared_ptr<qos::QualityManager> quality) {
  quality_ = std::move(quality);
}

void ServiceRuntime::set_wsdl_document(std::string wsdl_xml) {
  wsdl_document_ = std::move(wsdl_xml);
}

void ServiceRuntime::set_quality_factory(QualityFactory factory) {
  quality_factory_ = std::move(factory);
}

void ServiceRuntime::set_load_monitor(std::shared_ptr<qos::LoadMonitor> monitor) {
  load_monitor_ = std::move(monitor);
}

void ServiceRuntime::set_draining(bool draining) {
  if (draining) {
    if (!draining_.exchange(true)) {
      bump_stats([](EndpointStats& s) { ++s.drains; });
    }
  } else {
    draining_.store(false);
  }
}

std::size_t ServiceRuntime::client_quality_count() const {
  std::lock_guard lock(clients_mu_);
  return client_quality_.size();
}

std::shared_ptr<qos::QualityManager> ServiceRuntime::quality_for(
    const http::Request& request) {
  if (quality_factory_) {
    if (const auto client_id = request.headers.get(kHeaderClientId)) {
      std::lock_guard lock(clients_mu_);
      auto& manager = client_quality_[std::string(*client_id)];
      if (!manager) manager = quality_factory_();
      return manager;
    }
  }
  return quality_;
}

EndpointStats ServiceRuntime::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void ServiceRuntime::reset_stats() {
  std::lock_guard lock(stats_mu_);
  stats_.reset();
}

const ServiceRuntime::Operation& ServiceRuntime::find_operation(
    const std::string& name) const {
  const auto it = operations_.find(name);
  if (it == operations_.end()) throw RpcError("unknown operation: " + name);
  return it->second;
}

pbio::Value ServiceRuntime::invoke(const Operation& op, const pbio::Value& params) {
  if (op.handler) return op.handler(params);

  // XML-native application: down-convert parameters to XML, invoke, parse
  // the XML result back. Both conversions are compatibility-mode costs.
  Stopwatch to_xml;
  const std::string params_xml = soap::value_to_xml(params, *op.input, "params");
  bump_stats([&](EndpointStats& s) { s.convert_us += to_xml.elapsed_us(); });

  const std::string result_xml = op.xml_handler(params_xml);

  Stopwatch from_xml;
  const auto dom = xml::parse_document(result_xml);
  pbio::Value result = soap::value_from_xml(*dom, *op.output);
  bump_stats([&](EndpointStats& s) { s.convert_us += from_xml.elapsed_us(); });
  return result;
}

http::Response ServiceRuntime::handle(const http::Request& request) {
  http::Response resp = dispatch(request);
  // A draining endpoint answers, then tells the client not to come back on
  // this connection (http::Server's own drain flag covers connections it
  // serves; this covers runtimes hosted behind other transports too).
  if (draining_.load()) resp.headers.set("Connection", "close");
  return resp;
}

http::Response ServiceRuntime::dispatch(const http::Request& request) {
  bump_stats([&](EndpointStats& s) {
    ++s.calls;
    s.bytes_received += request.body_size();
  });
  // The overload ladder, rungs one and two: refresh the load signal, hand
  // it to quality management (degrade), and once the smoothed load reaches
  // the shed threshold answer with 503 + Retry-After before decoding a
  // single body byte (shed) — a saturated server must not pay unmarshalling
  // costs for work it is about to refuse.
  if (load_monitor_) {
    load_monitor_->poll();
    bump_stats([&](EndpointStats& s) {
      s.queue_high_water = std::max<std::uint64_t>(
          s.queue_high_water, load_monitor_->queue_high_water());
    });
    if (request.method == "POST" && load_monitor_->should_shed()) {
      bump_stats([](EndpointStats& s) { ++s.sheds; });
      http::Response resp = error_response(503, "server overloaded; retry later");
      resp.headers.set("Retry-After",
                       std::to_string(load_monitor_->retry_after_s()));
      return resp;
    }
  }
  // WSDL advertisement: GET <target>?wsdl.
  if (request.method == "GET") {
    const std::size_t query = request.target.find('?');
    if (!wsdl_document_.empty() && query != std::string::npos &&
        request.target.find("wsdl", query) != std::string::npos) {
      http::Response resp;
      resp.headers.set("Content-Type", std::string(kContentTypeXml));
      resp.set_body(wsdl_document_);
      bump_stats([&](EndpointStats& s) { s.bytes_sent += resp.body_size(); });
      return resp;
    }
    return error_response(404, wsdl_document_.empty()
                                   ? "no WSDL published for this endpoint"
                                   : "append ?wsdl for the service description");
  }
  if (request.method != "POST") {
    return error_response(405, "SOAP endpoints accept POST only");
  }
  const std::string content_type(request.headers.get("Content-Type").value_or(""));
  try {
    if (content_type.starts_with(kContentTypePbio)) {
      return handle_binary(request);
    }
    if (content_type.starts_with(kContentTypeCompressedXml)) {
      return handle_xml(request, /*compressed=*/true);
    }
    // Default: standard SOAP over text/xml.
    return handle_xml(request, /*compressed=*/false);
  } catch (const std::exception& e) {
    if (content_type.starts_with(kContentTypePbio)) {
      return error_response(500, e.what());
    }
    // SOAP 1.1 fault codes: bad requests are the client's fault, handler
    // and codec failures the server's.
    const char* code = (dynamic_cast<const RpcError*>(&e) != nullptr ||
                        dynamic_cast<const ParseError*>(&e) != nullptr)
                           ? "soap:Client"
                           : "soap:Server";
    return fault_response(code, e.what(),
                          content_type.starts_with(kContentTypeCompressedXml));
  }
}

http::Response ServiceRuntime::handle_binary(const http::Request& request) {
  const BufferChain request_body = request.body_as_chain();
  const DecodedBinChain incoming = decode_bin_message(request_body);
  const Operation& op = find_operation(incoming.envelope.operation);
  const std::shared_ptr<qos::QualityManager> quality = quality_for(request);

  // Degrade rung: publish the smoothed server load so a quality file
  // monitoring `server_load` steps message types down before shedding starts.
  if (quality && load_monitor_) {
    quality->update_attribute(qos::LoadMonitor::kAttribute,
                              load_monitor_->load());
  }
  // Inform quality management of the client's current RTT estimate — unless
  // the policy monitors server load, which client-reported RTT must not
  // clobber.
  if (quality && incoming.envelope.reported_rtt_us > 0.0 &&
      quality->attribute_name() != qos::LoadMonitor::kAttribute) {
    quality->update_attribute(quality->attribute_name(),
                              incoming.envelope.reported_rtt_us);
  }

  // Resolve the sender's format through the format server (cached after the
  // first message), decode, and lift onto the full input type if the client
  // sent a reduced message.
  Stopwatch unmarshal;
  ChainReader reader(incoming.pbio_message);
  const pbio::WireHeader header = pbio::read_header(reader);
  const pbio::FormatPtr sender_format = format_cache_.resolve(header.format_id);
  pbio::Value params = pbio::decode_value_payload(reader, header.payload_length,
                                                  header.sender_order, *sender_format);
  if (header.format_id != op.input->format_id()) {
    params = pbio::project_value(params, *op.input);
  }
  bump_stats([&](EndpointStats& s) {
    s.unmarshal_us += unmarshal.elapsed_us();
    s.bytes_copied += incoming.bytes_copied + reader.bytes_copied();
  });

  // Application work, measured so the client can subtract it from RTT.
  Stopwatch prep;
  pbio::Value result = invoke(op, params);
  const auto prep_us = static_cast<std::uint64_t>(prep.elapsed_us());

  // SOAP-binQ: choose the response message type from the quality policy.
  pbio::FormatPtr response_format = op.output;
  std::string message_type = op.output->name;
  pbio::Value* to_send = &result;
  pbio::Value reduced;
  if (quality) {
    const qos::MessageType& type = quality->select();
    reduced = quality->apply(result, type);
    to_send = &reduced;
    response_format = type.format;
    format_cache_.announce(response_format);
    message_type = type.name;
  }

  BinEnvelope out;
  out.operation = incoming.envelope.operation;
  out.message_type = message_type;
  out.timestamp_us = clock_->now_us();
  out.echoed_timestamp_us = incoming.envelope.timestamp_us;
  out.server_prep_us = prep_us;

  http::Response resp;
  resp.status = 200;
  resp.headers.set("Content-Type", std::string(kContentTypePbio));
  if (zero_copy_) {
    // The outgoing value moves into a shared anchor: the body chain borrows
    // its bulk buffers, and the anchor keeps them alive for as long as the
    // response (and anything sharing its chain) exists — well past this
    // handler frame.
    Stopwatch marshal;
    auto owned = std::make_shared<pbio::Value>(std::move(*to_send));
    BufferChain pbio_chain = pbio::encode_value_message_chain(
        *owned, *response_format, host_byte_order(), owned);
    bump_stats([&](EndpointStats& s) { s.marshal_us += marshal.elapsed_us(); });
    Stopwatch env;
    BufferChain body = encode_bin_message(out, std::move(pbio_chain));
    bump_stats([&](EndpointStats& s) {
      s.envelope_us += env.elapsed_us();
      s.segments_written += body.segment_count();
      s.bytes_copied += body.bytes_copied();
    });
    resp.set_body_chain(std::move(body));
  } else {
    Stopwatch marshal;
    const Bytes pbio_message = pbio::encode_value_message(*to_send, *response_format);
    bump_stats([&](EndpointStats& s) { s.marshal_us += marshal.elapsed_us(); });
    Stopwatch env;
    resp.body = encode_bin_message(out, BytesView{pbio_message});
    bump_stats([&](EndpointStats& s) {
      s.envelope_us += env.elapsed_us();
      s.segments_written += 1;
      s.bytes_copied += pbio_message.size();  // spliced into the body
    });
  }
  bump_stats([&](EndpointStats& s) { s.bytes_sent += resp.body_size(); });
  return resp;
}

http::Response ServiceRuntime::handle_xml(const http::Request& request,
                                          bool compressed) {
  std::string xml_text;
  if (compressed) {
    Stopwatch sw;
    xml_text = lz::decompress_string(request.body_view());
    bump_stats([&](EndpointStats& s) { s.compress_us += sw.elapsed_us(); });
  } else {
    xml_text = request.body_string();
  }

  // RTT reporting also works on the XML wire, via headers; server load wins
  // over client-reported RTT when the policy monitors `server_load`.
  const std::shared_ptr<qos::QualityManager> quality = quality_for(request);
  if (quality && load_monitor_) {
    quality->update_attribute(qos::LoadMonitor::kAttribute,
                              load_monitor_->load());
  }
  if (quality && quality->attribute_name() != qos::LoadMonitor::kAttribute) {
    if (auto reported = request.headers.get(kHeaderReportedRtt)) {
      const double rtt = parse_f64(*reported);
      if (rtt > 0.0) quality->update_attribute(quality->attribute_name(), rtt);
    }
  }

  Stopwatch unmarshal;
  const soap::ParsedEnvelope envelope = soap::parse_envelope(xml_text);
  const std::string operation(envelope.operation());
  const Operation& op = find_operation(operation);

  // A quality-managed client may have sent a reduced request type, named in
  // a header; decode with that type's format and lift onto the full input.
  pbio::FormatPtr request_format = op.input;
  if (quality) {
    if (auto type_name = request.headers.get(kHeaderQualityType)) {
      if (*type_name != op.input->name) {
        request_format = quality->required_type(*type_name).format;
      }
    }
  }
  pbio::Value params = soap::decode_body(envelope, *request_format);
  if (request_format->format_id() != op.input->format_id()) {
    params = pbio::project_value(params, *op.input);
  }
  bump_stats([&](EndpointStats& s) { s.unmarshal_us += unmarshal.elapsed_us(); });

  Stopwatch prep;
  const pbio::Value result = invoke(op, params);
  const auto prep_us = static_cast<std::uint64_t>(prep.elapsed_us());

  // SOAP-binQ on the XML wire: select + apply a quality handler before the
  // response is serialized.
  pbio::FormatPtr response_format = op.output;
  std::string message_type = op.output->name;
  const pbio::Value* to_send = &result;
  pbio::Value reduced;
  if (quality) {
    const qos::MessageType& type = quality->select();
    reduced = quality->apply(result, type);
    to_send = &reduced;
    response_format = type.format;
    message_type = type.name;
  }

  Stopwatch marshal;
  std::string response_xml =
      soap::build_response(operation, *to_send, *response_format);
  bump_stats([&](EndpointStats& s) { s.marshal_us += marshal.elapsed_us(); });

  http::Response resp;
  resp.status = 200;
  resp.headers.set(std::string(kHeaderQualityType), message_type);
  resp.headers.set(std::string(kHeaderServerPrep), std::to_string(prep_us));
  if (compressed) {
    Stopwatch sw;
    resp.body = lz::compress_string(response_xml);
    bump_stats([&](EndpointStats& s) { s.compress_us += sw.elapsed_us(); });
    resp.headers.set("Content-Type", std::string(kContentTypeCompressedXml));
  } else {
    resp.set_body(response_xml);
    resp.headers.set("Content-Type", std::string(kContentTypeXml));
  }
  bump_stats([&](EndpointStats& s) { s.bytes_sent += resp.body_size(); });
  return resp;
}

qos::LoadMonitor::Source server_load_source(const http::Server& server) {
  return [&server] {
    const http::ServerLoad l = server.load();
    qos::LoadSample s;
    s.queue_depth = l.queue_depth;
    s.queue_capacity = l.queue_capacity;
    s.in_flight = l.in_flight;
    s.workers = l.workers;
    s.runtimes = l.runtimes;
    s.connections = l.connections;
    s.pending_events = l.pending_events;
    return s;
  };
}

}  // namespace sbq::core
