// ServiceRuntime — the server half of SOAP-bin / SOAP-binQ.
//
// One runtime hosts the operations of a service (typically compiled from
// WSDL) and answers HTTP POSTs carrying any of the three wire formats:
//   * XML            — standard SOAP (the baseline),
//   * PBIO binary    — SOAP-bin; parameters stay binary end to end,
//   * compressed XML — the Lempel-Ziv baseline from the paper.
//
// Operations come in two flavors mirroring the paper's modes:
//   * register_operation       — the application speaks binary (Values);
//     SOAP-bin high-performance / interoperability modes,
//   * register_xml_operation   — a legacy application that produces and
//     consumes XML documents; the runtime performs bin↔XML conversions
//     around it (SOAP-bin compatibility mode, server side).
//
// Attaching a qos::QualityManager turns SOAP-bin into SOAP-binQ: before
// each response is sent the runtime selects a message type from the quality
// file (driven by the client-reported RTT), applies the type's quality
// handler (or the default field projection), and transmits the reduced
// message.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/message.h"
#include "core/stats.h"
#include "http/message.h"
#include "http/server.h"
#include "net/sim_clock.h"
#include "pbio/registry.h"
#include "pbio/value.h"
#include "qos/load.h"
#include "qos/manager.h"

namespace sbq::core {

/// Builds a qos::LoadMonitor source that snapshots `server.load()` on every
/// poll — the standard wiring between an http::Server and the runtime's
/// load monitor. Works for both serving fronts: threaded samples carry
/// queue depth / in-flight / workers; event-front samples additionally carry
/// runtimes, live connections, and pending readiness events, so the monitor
/// sees saturated runtimes even while the dispatch queue still has room.
/// The server must outlive the monitor (or at least every poll).
qos::LoadMonitor::Source server_load_source(const http::Server& server);

/// Handler for binary-native applications.
using OperationHandler = std::function<pbio::Value(const pbio::Value& params)>;

/// Handler for XML-native (legacy) applications: receives the parameter
/// element serialized as XML, returns the result serialized as XML.
using XmlOperationHandler = std::function<std::string(const std::string& params_xml)>;

class ServiceRuntime {
 public:
  ServiceRuntime(std::shared_ptr<pbio::FormatServer> format_server,
                 std::shared_ptr<net::TimeSource> clock);

  /// Registers a binary-native operation. Formats are announced to the
  /// format server immediately (the sender-side registration handshake).
  void register_operation(const std::string& name, pbio::FormatPtr input,
                          pbio::FormatPtr output, OperationHandler handler);

  /// Registers an XML-native operation (compatibility mode, server side).
  void register_xml_operation(const std::string& name, pbio::FormatPtr input,
                              pbio::FormatPtr output, XmlOperationHandler handler);

  /// Attaches quality management for responses (SOAP-binQ). The manager's
  /// registered message types are announced to the format server lazily.
  void set_quality_manager(std::shared_ptr<qos::QualityManager> quality);

  /// Per-client quality management (the client-specific behaviors of the
  /// paper's grid middleware, ref. [18]): the factory builds one fresh
  /// QualityManager per distinct X-SOAP-Client-Id, so two clients on very
  /// different links each get their own RTT state and message-type
  /// selection. Requests without a client id fall back to the shared
  /// manager set by set_quality_manager().
  using QualityFactory = std::function<std::shared_ptr<qos::QualityManager>()>;
  void set_quality_factory(QualityFactory factory);

  /// Number of distinct per-client managers created so far.
  [[nodiscard]] std::size_t client_quality_count() const;

  /// Attaches server-side load monitoring — the degrade/shed rungs of the
  /// overload ladder (docs/robustness.md). On every request the runtime
  /// polls the monitor (its source typically snapshots http::Server::load()),
  /// publishes the smoothed load as the `server_load` attribute to the
  /// request's quality manager so selection can step quality down, and —
  /// once the load reaches the shed threshold — answers POSTs with
  /// `503 Service Unavailable` + `Retry-After` before decoding anything.
  void set_load_monitor(std::shared_ptr<qos::LoadMonitor> monitor);
  [[nodiscard]] std::shared_ptr<qos::LoadMonitor> load_monitor() const {
    return load_monitor_;
  }

  /// Drain mode: every response is marked `Connection: close` so keep-alive
  /// clients reconnect elsewhere. Entering drain bumps the `drains` counter.
  void set_draining(bool draining);
  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// Publishes a WSDL document for this endpoint: any GET request whose
  /// query string contains "wsdl" is answered with it (the 2004 convention
  /// — `http://host/service?wsdl` — used by the paper's service portal to
  /// advertise itself).
  void set_wsdl_document(std::string wsdl_xml);

  [[nodiscard]] std::shared_ptr<qos::QualityManager> quality_manager() const {
    return quality_;
  }

  /// Dispatches one HTTP request. Never throws: errors become SOAP faults
  /// (XML modes) or HTTP error statuses (binary mode). Safe to call from
  /// multiple connection threads concurrently.
  http::Response handle(const http::Request& request);

  /// Toggles the zero-copy response pipeline (binary wire): the outgoing
  /// value is moved into a shared anchor and the response body chain borrows
  /// its bulk buffers instead of splicing them into one flat body. On by
  /// default; the flat path remains for A/B measurement.
  void set_zero_copy(bool enabled) { zero_copy_ = enabled; }
  [[nodiscard]] bool zero_copy() const { return zero_copy_; }

  /// Snapshot of the cost counters (copied under the stats lock).
  [[nodiscard]] EndpointStats stats() const;
  void reset_stats();

  [[nodiscard]] pbio::FormatCache& format_cache() { return format_cache_; }

 private:
  struct Operation {
    pbio::FormatPtr input;
    pbio::FormatPtr output;
    OperationHandler handler;      // exactly one of handler/xml_handler is set
    XmlOperationHandler xml_handler;
  };

  const Operation& find_operation(const std::string& name) const;
  pbio::Value invoke(const Operation& op, const pbio::Value& params);

  http::Response dispatch(const http::Request& request);
  http::Response handle_binary(const http::Request& request);
  http::Response handle_xml(const http::Request& request, bool compressed);

  /// Applies a mutation to the shared counters under the stats lock.
  template <typename Fn>
  void bump_stats(Fn&& fn) {
    std::lock_guard lock(stats_mu_);
    fn(stats_);
  }

  std::shared_ptr<net::TimeSource> clock_;
  pbio::FormatCache format_cache_;
  /// Resolves the quality manager for a request (per-client or shared).
  std::shared_ptr<qos::QualityManager> quality_for(const http::Request& request);

  bool zero_copy_ = true;
  std::map<std::string, Operation> operations_;
  std::shared_ptr<qos::QualityManager> quality_;
  std::shared_ptr<qos::LoadMonitor> load_monitor_;
  std::atomic<bool> draining_{false};
  QualityFactory quality_factory_;
  mutable std::mutex clients_mu_;
  std::map<std::string, std::shared_ptr<qos::QualityManager>> client_quality_;  // sbqlint:guarded_by(clients_mu_)
  std::string wsdl_document_;
  mutable std::mutex stats_mu_;
  EndpointStats stats_;  // sbqlint:guarded_by(stats_mu_)
};

}  // namespace sbq::core
