// Cost accounting shared by the client stub and the service runtime.
//
// The paper's microbenchmarks separate marshalling, unmarshalling, and
// transmission costs; these counters let any experiment read them off a
// live endpoint instead of instrumenting call sites.
#pragma once

#include <cstdint>

namespace sbq::core {

struct EndpointStats {
  std::uint64_t calls = 0;

  // Encode/decode work, microseconds of real CPU time.
  double marshal_us = 0.0;
  double unmarshal_us = 0.0;
  // XML ↔ binary conversion work (interoperability/compatibility modes).
  double convert_us = 0.0;
  // Compression work (compressed-XML mode).
  double compress_us = 0.0;

  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  void reset() { *this = EndpointStats{}; }
};

}  // namespace sbq::core
