// Compatibility alias: EndpointStats moved to common/stats.h so layers
// below core (qos monitors) can read endpoint counters without including
// core headers. Existing call sites keep saying core::EndpointStats.
#pragma once

#include "common/stats.h"

namespace sbq::core {

using sbq::EndpointStats;

}  // namespace sbq::core
