#include "core/transports.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/error.h"

namespace sbq::core {

http::Response SimLinkTransport::round_trip(const http::Request& request) {
  // Deadline budget for this attempt on the virtual clock. Every advance
  // goes through spend(): when the budget runs out the clock lands exactly
  // on attempt-start + deadline — the instant a live stream's read deadline
  // would fire — and the attempt fails with TimeoutError.
  std::uint64_t remaining = attempt_timeout_us_ == 0
                                ? std::numeric_limits<std::uint64_t>::max()
                                : attempt_timeout_us_;
  auto spend = [&](std::uint64_t us, std::uint64_t* bucket) {
    if (us >= remaining) {
      clock_->advance_us(remaining);
      if (bucket != nullptr) *bucket += remaining;
      throw TimeoutError("read deadline expired after " +
                         std::to_string(attempt_timeout_us_) +
                         "us (simulated link)");
    }
    clock_->advance_us(us);
    if (bucket != nullptr) *bucket += us;
    remaining -= us;
  };

  // One injector op per round trip: the simulated link works at exchange
  // granularity, so stream-level fault kinds collapse onto exchange-level
  // outcomes (reset/short-write/truncate all lose the exchange).
  std::optional<net::FaultSpec> fault;
  if (faults_) fault = faults_->next_fault(/*is_read=*/true, /*is_write=*/true);

  if (fault) {
    switch (fault->kind) {
      case net::FaultKind::kReset:
      case net::FaultKind::kShortWrite:
      case net::FaultKind::kTruncate:
        // The exchange is silently lost mid-flight. With a deadline armed
        // the failure surfaces when that deadline expires; without one the
        // simulation cannot block forever, so it reports the dead
        // connection immediately.
        if (attempt_timeout_us_ > 0) {
          spend(std::numeric_limits<std::uint64_t>::max(), nullptr);
        }
        throw TransportError("injected connection reset (simulated link)");
      case net::FaultKind::kStall:
        // Dead air before the exchange proceeds; may consume the whole
        // deadline budget (and then some — spend() clamps to the deadline).
        spend(fault->stall_us, nullptr);
        break;
      default:
        break;  // kPartialRead / kCorrupt handled below or meaningless here
    }
  }

  if (per_call_setup_us_ > 0) {
    spend(per_call_setup_us_, &timing_.request_transfer_us);
  }
  // Link costs are charged from the exact wire size without materializing
  // the wire image — the simulated link never needed the bytes, only their
  // count, and serializing here was a full-message copy per direction.
  const std::uint64_t request_us =
      link_.transfer_time_us(request.serialized_size(), clock_->now_us());
  spend(request_us, &timing_.request_transfer_us);

  Stopwatch server_cpu;
  http::Response response = runtime_.handle(request);
  const auto cpu_us =
      static_cast<std::uint64_t>(server_cpu.elapsed_us() * cpu_scale_);
  if (charge_server_cpu_) {
    spend(cpu_us, &timing_.server_cpu_us);
  }

  const std::uint64_t response_us =
      link_.transfer_time_us(response.serialized_size(), clock_->now_us());
  spend(response_us, &timing_.response_transfer_us);

  if (fault && fault->kind == net::FaultKind::kCorrupt) {
    // Byte corruption in transit: flip one byte of the response body so the
    // decoder (not the HTTP layer) sees the damage.
    Bytes flat(response.body_view().begin(), response.body_view().end());
    if (!flat.empty()) {
      flat[fault->offset % flat.size()] ^= fault->xor_mask;
      response.set_body(std::move(flat));
    }
  }

  ++timing_.round_trips;
  return response;
}

}  // namespace sbq::core
