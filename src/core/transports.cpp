#include "core/transports.h"

#include "common/clock.h"

namespace sbq::core {

http::Response SimLinkTransport::round_trip(const http::Request& request) {
  if (per_call_setup_us_ > 0) {
    clock_->advance_us(per_call_setup_us_);
    timing_.request_transfer_us += per_call_setup_us_;
  }
  // Link costs are charged from the exact wire size without materializing
  // the wire image — the simulated link never needed the bytes, only their
  // count, and serializing here was a full-message copy per direction.
  const std::uint64_t request_us =
      link_.transfer_time_us(request.serialized_size(), clock_->now_us());
  clock_->advance_us(request_us);
  timing_.request_transfer_us += request_us;

  Stopwatch server_cpu;
  const http::Response response = runtime_.handle(request);
  const auto cpu_us =
      static_cast<std::uint64_t>(server_cpu.elapsed_us() * cpu_scale_);
  if (charge_server_cpu_) {
    clock_->advance_us(cpu_us);
    timing_.server_cpu_us += cpu_us;
  }

  const std::uint64_t response_us =
      link_.transfer_time_us(response.serialized_size(), clock_->now_us());
  clock_->advance_us(response_us);
  timing_.response_transfer_us += response_us;

  ++timing_.round_trips;
  return response;
}

}  // namespace sbq::core
