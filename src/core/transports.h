// Transport implementations for the client stub.
//
//   * HttpTransport — a real HTTP connection over any net::Stream (TCP for
//     the examples, in-process pipes for tests).
//   * LoopbackTransport — calls a ServiceRuntime directly; zero transport
//     cost. Useful for unit tests and for measuring pure codec costs.
//   * SimLinkTransport — LoopbackTransport plus a deterministic LinkModel
//     and a shared SimClock: each round trip advances simulated time by the
//     request transfer, the real (measured) server processing time, and the
//     response transfer. This is what the benchmark harnesses use to stand
//     in for the paper's 100 Mbps and ADSL testbeds (DESIGN.md §3).
#pragma once

#include <functional>
#include <memory>

#include "core/client.h"
#include "core/service.h"
#include "http/client.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/sim_clock.h"
#include "net/stream.h"

namespace sbq::core {

/// HTTP over a live byte stream. Two modes:
///   * borrowing — wraps a caller-owned Stream; reconnect() is a no-op
///     (the caller owns the connection lifecycle),
///   * owning — built from a StreamFactory; the factory is invoked at
///     construction and again on every reconnect(), which is how the client
///     stub's retry path replaces a connection a fault killed.
class HttpTransport final : public Transport {
 public:
  explicit HttpTransport(net::Stream& stream) : stream_(&stream) {
    client_ = std::make_unique<http::Client>(*stream_);
  }

  using StreamFactory = std::function<std::unique_ptr<net::Stream>()>;
  explicit HttpTransport(StreamFactory factory) : factory_(std::move(factory)) {
    reconnect();
  }

  http::Response round_trip(const http::Request& request) override {
    return client_->round_trip(request);
  }

  /// Arms the stream's read deadline (deadline-capable streams only).
  void set_attempt_timeout_us(std::uint64_t timeout_us) override {
    attempt_timeout_us_ = timeout_us;
    if (stream_ != nullptr) stream_->set_read_timeout_us(timeout_us);
  }

  void reconnect() override {
    if (!factory_) return;  // borrowed stream: nothing to rebuild
    owned_ = factory_();
    if (!owned_) throw TransportError("stream factory returned no stream");
    stream_ = owned_.get();
    stream_->set_read_timeout_us(attempt_timeout_us_);
    client_ = std::make_unique<http::Client>(*stream_);
  }

  [[nodiscard]] const http::Client& http_client() const { return *client_; }

 private:
  StreamFactory factory_;
  std::unique_ptr<net::Stream> owned_;  // owning mode only
  net::Stream* stream_ = nullptr;
  std::unique_ptr<http::Client> client_;
  std::uint64_t attempt_timeout_us_ = 0;
};

/// Direct in-process dispatch to a ServiceRuntime.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(ServiceRuntime& runtime) : runtime_(runtime) {}

  http::Response round_trip(const http::Request& request) override {
    return runtime_.handle(request);
  }

 private:
  ServiceRuntime& runtime_;
};

/// Accumulated timing of a simulated endpoint pair.
struct SimTiming {
  std::uint64_t request_transfer_us = 0;
  std::uint64_t response_transfer_us = 0;
  std::uint64_t server_cpu_us = 0;
  std::uint64_t round_trips = 0;

  [[nodiscard]] std::uint64_t total_us() const {
    return request_transfer_us + response_transfer_us + server_cpu_us;
  }
  void reset() { *this = SimTiming{}; }
};

/// In-process dispatch behind a simulated link. The shared SimClock must
/// also be the TimeSource of the client stub and the service runtime so the
/// RTT timestamps they exchange are in simulated time.
class SimLinkTransport final : public Transport {
 public:
  SimLinkTransport(ServiceRuntime& runtime, net::LinkModel link,
                   std::shared_ptr<net::SimClock> clock)
      : runtime_(runtime), link_(std::move(link)), clock_(std::move(clock)) {}

  http::Response round_trip(const http::Request& request) override;

  [[nodiscard]] const SimTiming& timing() const { return timing_; }
  void reset_timing() { timing_.reset(); }

  [[nodiscard]] net::LinkModel& link() { return link_; }
  // sbqlint:allow(clock-discipline): accessor for the virtual SimClock, not libc clock()
  [[nodiscard]] net::SimClock& clock() { return *clock_; }

  /// When false (default true), the server's real CPU time is not charged
  /// to the simulated clock — isolates pure-transfer experiments from host
  /// noise.
  void set_charge_server_cpu(bool charge) { charge_server_cpu_ = charge; }

  /// Fixed extra cost charged before every round trip, modeling
  /// connection-per-request HTTP (TCP handshake + teardown), which is how
  /// 2004-era SOAP stacks like Soup transacted. 0 (default) models a
  /// keep-alive connection.
  void set_per_call_setup_us(std::uint64_t us) { per_call_setup_us_ = us; }

  /// Multiplier applied to the measured server CPU time before charging it
  /// to the simulated clock (CPU-era calibration; see bench_util.h).
  void set_cpu_scale(double scale) { cpu_scale_ = scale; }

  /// Attaches a fault scenario. Each round trip consumes one injector op;
  /// scripted faults map onto exchange-level outcomes (docs/robustness.md):
  /// reset/truncate/short-write lose the exchange, a stall delays it on the
  /// virtual clock, corrupt flips a byte of the response body.
  void set_fault_injector(std::shared_ptr<net::FaultInjector> faults) {
    faults_ = std::move(faults);
  }
  [[nodiscard]] const std::shared_ptr<net::FaultInjector>& fault_injector() const {
    return faults_;
  }

  /// Per-attempt deadline on the virtual clock: a round trip whose simulated
  /// duration would exceed it advances the clock exactly to the deadline and
  /// throws TimeoutError — the moment a live stream's read deadline fires.
  void set_attempt_timeout_us(std::uint64_t timeout_us) override {
    attempt_timeout_us_ = timeout_us;
  }

 private:
  ServiceRuntime& runtime_;
  net::LinkModel link_;
  std::shared_ptr<net::SimClock> clock_;
  std::shared_ptr<net::FaultInjector> faults_;
  SimTiming timing_;
  bool charge_server_cpu_ = true;
  std::uint64_t per_call_setup_us_ = 0;
  std::uint64_t attempt_timeout_us_ = 0;
  double cpu_scale_ = 1.0;
};

}  // namespace sbq::core
