// Transport implementations for the client stub.
//
//   * HttpTransport — a real HTTP connection over any net::Stream (TCP for
//     the examples, in-process pipes for tests).
//   * LoopbackTransport — calls a ServiceRuntime directly; zero transport
//     cost. Useful for unit tests and for measuring pure codec costs.
//   * SimLinkTransport — LoopbackTransport plus a deterministic LinkModel
//     and a shared SimClock: each round trip advances simulated time by the
//     request transfer, the real (measured) server processing time, and the
//     response transfer. This is what the benchmark harnesses use to stand
//     in for the paper's 100 Mbps and ADSL testbeds (DESIGN.md §3).
#pragma once

#include <memory>

#include "core/client.h"
#include "core/service.h"
#include "http/client.h"
#include "net/link.h"
#include "net/sim_clock.h"
#include "net/stream.h"

namespace sbq::core {

/// HTTP over a live byte stream.
class HttpTransport final : public Transport {
 public:
  explicit HttpTransport(net::Stream& stream) : client_(stream) {}

  http::Response round_trip(const http::Request& request) override {
    return client_.round_trip(request);
  }

  [[nodiscard]] const http::Client& http_client() const { return client_; }

 private:
  http::Client client_;
};

/// Direct in-process dispatch to a ServiceRuntime.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(ServiceRuntime& runtime) : runtime_(runtime) {}

  http::Response round_trip(const http::Request& request) override {
    return runtime_.handle(request);
  }

 private:
  ServiceRuntime& runtime_;
};

/// Accumulated timing of a simulated endpoint pair.
struct SimTiming {
  std::uint64_t request_transfer_us = 0;
  std::uint64_t response_transfer_us = 0;
  std::uint64_t server_cpu_us = 0;
  std::uint64_t round_trips = 0;

  [[nodiscard]] std::uint64_t total_us() const {
    return request_transfer_us + response_transfer_us + server_cpu_us;
  }
  void reset() { *this = SimTiming{}; }
};

/// In-process dispatch behind a simulated link. The shared SimClock must
/// also be the TimeSource of the client stub and the service runtime so the
/// RTT timestamps they exchange are in simulated time.
class SimLinkTransport final : public Transport {
 public:
  SimLinkTransport(ServiceRuntime& runtime, net::LinkModel link,
                   std::shared_ptr<net::SimClock> clock)
      : runtime_(runtime), link_(std::move(link)), clock_(std::move(clock)) {}

  http::Response round_trip(const http::Request& request) override;

  [[nodiscard]] const SimTiming& timing() const { return timing_; }
  void reset_timing() { timing_.reset(); }

  [[nodiscard]] net::LinkModel& link() { return link_; }
  [[nodiscard]] net::SimClock& clock() { return *clock_; }

  /// When false (default true), the server's real CPU time is not charged
  /// to the simulated clock — isolates pure-transfer experiments from host
  /// noise.
  void set_charge_server_cpu(bool charge) { charge_server_cpu_ = charge; }

  /// Fixed extra cost charged before every round trip, modeling
  /// connection-per-request HTTP (TCP handshake + teardown), which is how
  /// 2004-era SOAP stacks like Soup transacted. 0 (default) models a
  /// keep-alive connection.
  void set_per_call_setup_us(std::uint64_t us) { per_call_setup_us_ = us; }

  /// Multiplier applied to the measured server CPU time before charging it
  /// to the simulated clock (CPU-era calibration; see bench_util.h).
  void set_cpu_scale(double scale) { cpu_scale_ = scale; }

 private:
  ServiceRuntime& runtime_;
  net::LinkModel link_;
  std::shared_ptr<net::SimClock> clock_;
  SimTiming timing_;
  bool charge_server_cpu_ = true;
  std::uint64_t per_call_setup_us_ = 0;
  double cpu_scale_ = 1.0;
};

}  // namespace sbq::core
