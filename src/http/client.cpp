#include "http/client.h"

#include "common/error.h"

namespace sbq::http {

Response Client::round_trip(const Request& request) {
  BufferChain wire;
  request.serialize_to(wire);
  stream_.write_chain(wire);
  bytes_sent_ += wire.size();

  auto response = reader_.read_response();
  if (!response) throw TransportError("connection closed before response");
  // Charge what actually crossed the wire (the parser's consumed count) —
  // re-serializing the parsed response would both copy the body again and
  // miscount whenever serialization isn't byte-identical to the peer's.
  bytes_received_ = reader_.bytes_consumed();
  return std::move(*response);
}

}  // namespace sbq::http
