#include "http/client.h"

#include "common/error.h"

namespace sbq::http {

Response Client::round_trip(const Request& request) {
  const Bytes wire = request.serialize();
  stream_.write_all(BytesView{wire});
  bytes_sent_ += wire.size();

  auto response = reader_.read_response();
  if (!response) throw TransportError("connection closed before response");
  bytes_received_ += response->serialize().size();
  return std::move(*response);
}

}  // namespace sbq::http
