// HTTP/1.1 client over an arbitrary Stream, with keep-alive.
#pragma once

#include <memory>

#include "http/message.h"
#include "http/parser.h"
#include "net/stream.h"

namespace sbq::http {

/// One logical connection. Requests are issued sequentially (SOAP-binQ's
/// invocation model is strictly request/response).
class Client {
 public:
  /// Borrows `stream`; the caller keeps it alive for the client's lifetime.
  explicit Client(net::Stream& stream) : stream_(stream), reader_(stream) {}

  /// Sends the request and blocks for the response.
  Response round_trip(const Request& request);

  /// Total bytes written/read since construction (benchmark accounting).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  net::Stream& stream_;
  MessageReader reader_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace sbq::http
