#include "http/event_front.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "http/parser.h"
#include "net/poller.h"

namespace sbq::http {

namespace {
constexpr std::size_t kReadChunk = 8192;
constexpr int kListenBacklog = 256;
}  // namespace

struct EventFront::Impl {
  struct Shard;

  /// Connection state machine (docs/event-front.md):
  ///   kReading     — POLLIN armed; bytes feed the resumable parser
  ///   kDispatching — a parsed request runs on the worker pool; no poll
  ///                  interest (back-pressure: the socket is left unread)
  ///   kWriting     — POLLOUT armed; the serialized response drains through
  ///                  non-blocking writev, resuming after partial writes
  enum class ConnState { kReading, kDispatching, kWriting };

  struct Connection {
    std::unique_ptr<net::TcpStream> stream;
    MessageReader reader;
    ConnState state = ConnState::kReading;
    std::uint64_t gen = 0;  // guards completions against fd reuse
    Response response;      // owns the body while `wire` drains
    BufferChain wire;       // serialized response (borrows `response`)
    std::size_t sent = 0;   // bytes of `wire` already accepted by the kernel
    bool close_after_write = false;
    bool request_wants_close = false;
    bool exchange_in_flight = false;  // counted in exchanges_in_flight_
    std::uint64_t deadline_ns = 0;    // 0 = none

    Connection(std::unique_ptr<net::TcpStream> s, const ParserLimits& limits)
        : stream(std::move(s)), reader(*stream, limits) {}
  };

  /// A finished handler run, routed back to the owning shard.
  struct Completion {
    int fd = -1;
    std::uint64_t gen = 0;
    Response response;
  };

  /// A parsed request waiting for (or running on) a worker.
  struct Job {
    Shard* shard = nullptr;
    int fd = -1;
    std::uint64_t gen = 0;
    Request request;
  };

  /// One event runtime: an accept shard plus the poller loop over its
  /// connections. Everything except `completions` (fed by workers under
  /// `completion_mu`) and `last_batch` is owned by the shard thread.
  struct Shard {
    std::size_t index = 0;
    std::unique_ptr<net::TcpListener> listener;
    net::Poller poller;  // not affine: workers may call poller.wake()
    std::unordered_map<int, std::unique_ptr<Connection>> conns;  // sbqlint:affine(event-shard)
    std::mutex completion_mu;
    std::vector<Completion> completions;  // sbqlint:guarded_by(completion_mu)
    std::atomic<std::size_t> last_batch{0};
    std::thread thread;
  };

  Impl(std::uint16_t port, const Handler& handler_in,
       const ServerOptions& options_in, detail::ServerCounters& counters_in,
       std::atomic<bool>& draining_in)
      : handler(handler_in), options(options_in), counters(counters_in),
        draining(draining_in) {
    options.runtimes = std::max<std::size_t>(1, options.runtimes);
    options.workers = std::max<std::size_t>(1, options.workers);
    options.queue_depth = std::max<std::size_t>(1, options.queue_depth);
    options.max_connections = std::max<std::size_t>(1, options.max_connections);

    net::TcpListener::Options lopts;
    lopts.reuse_port = true;
    lopts.nonblocking = true;
    lopts.backlog = kListenBacklog;
    shards.reserve(options.runtimes);
    for (std::size_t i = 0; i < options.runtimes; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->index = i;
      // The first listener resolves an ephemeral port; its siblings bind the
      // same resolved port, each owning a kernel-side accept shard.
      shard->listener =
          std::make_unique<net::TcpListener>(i == 0 ? port : port_, lopts);
      if (i == 0) port_ = shard->listener->port();
      shard->poller.add(shard->listener->fd(), /*read=*/true, /*write=*/false);
      shards.push_back(std::move(shard));
    }
    workers.reserve(options.workers);
    for (std::size_t i = 0; i < options.workers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
    for (auto& shard : shards) {
      Shard* s = shard.get();
      s->thread = std::thread([this, s] { shard_loop(*s); });
    }
  }

  ~Impl() { shutdown(0); }

  // ----------------------------------------------------------- shard loop
  //
  // Everything below down to the worker-pool section runs on the shard's
  // own thread only — the sbqlint:affine(event-shard) annotations make the
  // analyzer prove no other thread root can reach these functions.

  // sbqlint:affine(event-shard)
  void shard_loop(Shard& s) {
    for (;;) {
      auto events = s.poller.wait(shard_timeout_ms(s));
      s.last_batch.store(events.size());
      if (accept_closed.load()) maybe_close_listener(s);
      deliver_completions(s);
      if (stopping.load()) {
        teardown(s);
        return;
      }
      const int lfd = s.listener ? s.listener->fd() : -1;
      for (const net::PollEvent& ev : events) {
        if (lfd >= 0 && ev.fd == lfd) {
          accept_ready(s);
          continue;
        }
        auto it = s.conns.find(ev.fd);
        if (it == s.conns.end()) continue;  // stale event for a closed fd
        Connection& conn = *it->second;
        if (ev.readable && conn.state == ConnState::kReading) {
          handle_readable(s, ev.fd);
        } else if (ev.writable && conn.state == ConnState::kWriting) {
          flush_writes(s, ev.fd);
        } else if (ev.hangup) {
          close_connection(s, ev.fd);
        }
      }
      expire_deadlines(s);
    }
  }

  /// Poll timeout to the nearest connection deadline (-1 = no deadline).
  // sbqlint:affine(event-shard)
  int shard_timeout_ms(const Shard& s) const {
    std::uint64_t nearest = 0;
    for (const auto& [fd, conn] : s.conns) {
      (void)fd;
      if (conn->deadline_ns == 0) continue;
      if (nearest == 0 || conn->deadline_ns < nearest) nearest = conn->deadline_ns;
    }
    if (nearest == 0) return -1;
    const std::uint64_t now = steady_now_ns();
    if (nearest <= now) return 0;
    return static_cast<int>((nearest - now + 999'999) / 1'000'000);
  }

  // sbqlint:affine(event-shard)
  void maybe_close_listener(Shard& s) {
    if (!s.listener) return;
    const int lfd = s.listener->fd();
    if (lfd >= 0) {
      s.poller.remove(lfd);
      s.listener->close();
    }
  }

  // sbqlint:affine(event-shard)
  void accept_ready(Shard& s) {
    for (;;) {
      bool would_block = false;
      std::unique_ptr<net::TcpStream> stream;
      try {
        stream = s.listener->try_accept(would_block);
      } catch (const TransportError&) {
        return;  // transient accept failure; the next event retries
      }
      if (!stream) return;  // would-block or listener closed
      counters.accepted.fetch_add(1);
      stream->set_nonblocking(true);
      const int fd = stream->fd();
      auto conn = std::make_unique<Connection>(std::move(stream), options.limits);
      conn->gen = next_gen.fetch_add(1);
      const std::size_t live = live_connections.fetch_add(1) + 1;
      detail::ServerCounters::raise(counters.peak_connections, live);
      s.poller.add(fd, /*read=*/true, /*write=*/false);
      Connection& placed = *(s.conns[fd] = std::move(conn));
      if (live > options.max_connections || draining.load()) {
        // Admission control: past the cap (or mid-drain) the connection gets
        // the canned 503 before a single request byte is read.
        counters.shed.fetch_add(1);
        queue_response(s, fd, make_shed_response(options.shed_retry_after_s),
                       /*close_after=*/true);
        continue;
      }
      arm_read_deadline(placed);
    }
  }

  // sbqlint:affine(event-shard)
  void handle_readable(Shard& s, int fd) {
    std::uint8_t buf[kReadChunk];
    for (;;) {
      auto it = s.conns.find(fd);
      if (it == s.conns.end()) return;
      Connection& conn = *it->second;
      if (conn.state != ConnState::kReading) return;  // back-pressure
      bool would_block = false;
      std::size_t n = 0;
      try {
        n = conn.stream->read_some_nonblocking(buf, sizeof buf, would_block);
      } catch (const TransportError&) {
        close_connection(s, fd);
        return;
      }
      if (would_block) return;
      if (n == 0) {
        // EOF — clean between messages or truncation inside one; either way
        // there is nothing to answer on this connection anymore.
        close_connection(s, fd);
        return;
      }
      conn.reader.feed(BytesView{buf, n});
      if (!advance_parse(s, fd)) return;
    }
  }

  /// Tries to parse (and dispatch) the next request from buffered bytes.
  /// Returns false when the connection was closed.
  // sbqlint:affine(event-shard)
  bool advance_parse(Shard& s, int fd) {
    auto it = s.conns.find(fd);
    if (it == s.conns.end()) return false;
    Connection& conn = *it->second;
    if (conn.state != ConnState::kReading) return true;
    std::optional<Request> request;
    try {
      request = conn.reader.try_next_request();
    } catch (const Error& e) {
      // Malformed input is the client's fault: 400 and hang up (the read
      // position inside the bad message is unrecoverable).
      Response bad;
      bad.status = 400;
      bad.reason = std::string(reason_phrase(400));
      bad.headers.set("Connection", "close");
      bad.set_body(e.what());
      queue_response(s, fd, std::move(bad), /*close_after=*/true);
      return s.conns.count(fd) > 0;
    }
    if (!request) {
      arm_read_deadline(conn);
      return true;
    }
    conn.request_wants_close =
        request->headers.get("Connection").value_or("") == "close";
    dispatch(s, fd, std::move(*request));
    return s.conns.count(fd) > 0;
  }

  // sbqlint:affine(event-shard)
  void dispatch(Shard& s, int fd, Request&& request) {
    Connection& conn = *s.conns.at(fd);
    bool admitted = false;
    std::size_t depth = 0;
    {
      std::lock_guard lock(dispatch_mu);
      if (!jobs_closed && jobs.size() < options.queue_depth) {
        jobs.push_back(Job{&s, fd, conn.gen, std::move(request)});
        depth = jobs.size();
        admitted = true;
      }
    }
    if (!admitted) {
      // The worker queue is full (or closed by a drain): shed before the
      // handler pays any decode cost, exactly like the threaded acceptor.
      counters.shed.fetch_add(1);
      queue_response(s, fd, make_shed_response(options.shed_retry_after_s),
                     /*close_after=*/true);
      return;
    }
    detail::ServerCounters::raise(counters.queue_high_water, depth);
    conn.state = ConnState::kDispatching;
    conn.deadline_ns = 0;  // the bounded pool, not the peer, sets the pace
    conn.exchange_in_flight = true;
    exchanges_in_flight.fetch_add(1);
    s.poller.modify(fd, /*read=*/false, /*write=*/false);
    dispatch_cv.notify_one();
  }

  /// Installs `response` as the connection's outgoing message and starts
  /// (or restarts) the non-blocking drain of its serialized form.
  // sbqlint:affine(event-shard)
  void queue_response(Shard& s, int fd, Response&& response, bool close_after) {
    auto it = s.conns.find(fd);
    if (it == s.conns.end()) return;
    Connection& conn = *it->second;
    conn.response = std::move(response);
    if (draining.load()) conn.response.headers.set("Connection", "close");
    conn.close_after_write =
        close_after || conn.request_wants_close ||
        conn.response.headers.get("Connection").value_or("") == "close";
    conn.wire.clear();
    conn.sent = 0;
    // The response stays segmented all the way into the socket: the wire
    // chain borrows the response's body buffers, never flattening them.
    conn.response.serialize_to(conn.wire);
    conn.state = ConnState::kWriting;
    conn.deadline_ns = options.write_timeout_us > 0
                           ? steady_now_ns() + options.write_timeout_us * 1000
                           : 0;
    s.poller.modify(fd, /*read=*/false, /*write=*/true);
    flush_writes(s, fd);  // the common case finishes without a POLLOUT trip
  }

  /// Drains as much of the send queue as the kernel will take. Returns
  /// false when the connection was closed.
  // sbqlint:affine(event-shard)
  bool flush_writes(Shard& s, int fd) {
    auto it = s.conns.find(fd);
    if (it == s.conns.end()) return false;
    Connection& conn = *it->second;
    if (conn.state != ConnState::kWriting) return true;
    bool would_block = false;
    std::size_t n = 0;
    try {
      n = conn.stream->write_chain_some(conn.wire, conn.sent, would_block);
    } catch (const TransportError&) {
      close_connection(s, fd);
      return false;
    }
    conn.sent += n;
    if (conn.sent < conn.wire.size()) {
      // Partial write: resume on the next POLLOUT. Progress re-arms the
      // write-stall deadline; zero progress lets it keep counting down.
      if (n > 0 && options.write_timeout_us > 0) {
        conn.deadline_ns = steady_now_ns() + options.write_timeout_us * 1000;
      }
      return true;
    }
    // Response fully handed to the kernel.
    if (conn.exchange_in_flight) {
      exchanges_in_flight.fetch_sub(1);
      conn.exchange_in_flight = false;
    }
    if (conn.close_after_write) {
      close_connection(s, fd);
      return false;
    }
    conn.state = ConnState::kReading;
    conn.wire.clear();
    conn.response = Response{};
    conn.sent = 0;
    conn.request_wants_close = false;
    s.poller.modify(fd, /*read=*/true, /*write=*/false);
    arm_read_deadline(conn);
    // A pipelined next request may already be sitting in the parse buffer.
    return advance_parse(s, fd);
  }

  // sbqlint:affine(event-shard)
  void deliver_completions(Shard& s) {
    std::vector<Completion> batch;
    {
      std::lock_guard lock(s.completion_mu);
      batch.swap(s.completions);
    }
    for (Completion& done : batch) {
      auto it = s.conns.find(done.fd);
      if (it == s.conns.end() || it->second->gen != done.gen) {
        // The connection died while its handler ran; the exchange ends here.
        exchanges_in_flight.fetch_sub(1);
        continue;
      }
      queue_response(s, done.fd, std::move(done.response),
                     /*close_after=*/false);
    }
  }

  // sbqlint:affine(event-shard)
  void arm_read_deadline(Connection& conn) const {
    const std::uint64_t timeout_us =
        conn.reader.phase() == MessageReader::Phase::kBody
            ? options.read_timeout_us
            : options.idle_timeout_us;
    conn.deadline_ns = timeout_us > 0 ? steady_now_ns() + timeout_us * 1000 : 0;
  }

  // sbqlint:affine(event-shard)
  void expire_deadlines(Shard& s) {
    const std::uint64_t now = steady_now_ns();
    std::vector<int> expired;
    for (const auto& [fd, conn] : s.conns) {
      if (conn->deadline_ns != 0 && conn->deadline_ns <= now) {
        expired.push_back(fd);
      }
    }
    // Expiry means the *peer* stalled (idle keep-alive, trickled message,
    // or unread response); the connection is dropped, mirroring the
    // threaded front's TimeoutError path in serve_connection.
    for (const int fd : expired) close_connection(s, fd);
  }

  // sbqlint:affine(event-shard)
  void close_connection(Shard& s, int fd) {
    auto it = s.conns.find(fd);
    if (it == s.conns.end()) return;
    Connection& conn = *it->second;
    // A dispatching connection's completion is still in flight and will
    // decrement the exchange counter when it finds the connection gone.
    if (conn.exchange_in_flight && conn.state != ConnState::kDispatching) {
      exchanges_in_flight.fetch_sub(1);
    }
    s.poller.remove(fd);
    conn.stream->close();
    s.conns.erase(it);
    live_connections.fetch_sub(1);
  }

  // sbqlint:affine(event-shard)
  void teardown(Shard& s) {
    const bool drain = drain_mode.load();
    std::vector<int> fds;
    fds.reserve(s.conns.size());
    for (const auto& [fd, conn] : s.conns) {
      (void)conn;
      fds.push_back(fd);
    }
    for (const int fd : fds) {
      if (drain) counters.forced_closes.fetch_add(1);
      close_connection(s, fd);
    }
  }

  // ---------------------------------------------------------- worker pool

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lock(dispatch_mu);
        dispatch_cv.wait(lock, [this] { return !jobs.empty() || jobs_closed; });
        if (jobs.empty()) return;  // queue closed and drained
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      Completion done;
      done.fd = job.fd;
      done.gen = job.gen;
      // peak_in_flight mirrors the threaded front's meaning: handler-pool
      // occupancy (bounded by `workers`), not exchanges awaiting their
      // response flush — those are drain bookkeeping, not load.
      const std::size_t busy = handlers_busy.fetch_add(1) + 1;
      detail::ServerCounters::raise(counters.peak_in_flight, busy);
      try {
        done.response = handler(job.request);
      } catch (const std::exception& e) {
        done.response = Response{};
        done.response.status = 500;
        done.response.reason = std::string(reason_phrase(500));
        done.response.set_body(e.what());
      } catch (...) {  // sbqlint:allow(no-swallow): converted to a canned 500 + ServerStats::worker_errors
        counters.worker_errors.fetch_add(1);
        done.response = Response{};
        done.response.status = 500;
        done.response.reason = std::string(reason_phrase(500));
        done.response.set_body("non-standard exception escaped handler");
      }
      handlers_busy.fetch_sub(1);
      Shard& s = *job.shard;
      {
        std::lock_guard lock(s.completion_mu);
        s.completions.push_back(std::move(done));
      }
      s.poller.wake();
    }
  }

  // ------------------------------------------------------------- shutdown

  void shutdown(std::uint64_t drain_deadline_us) {
    if (shutdown_started.exchange(true)) return;
    const bool drain = drain_deadline_us > 0;
    drain_mode.store(drain);
    draining.store(true);  // in-flight responses get Connection: close
    if (drain) counters.drains.fetch_add(1);
    accept_closed.store(true);
    for (auto& s : shards) s->poller.wake();

    // Requests parsed but never dispatched get the canned 503 (with
    // Connection: close) rather than silence — the event-mode equivalent of
    // the threaded front shedding its queued-but-unserved connections.
    std::deque<Job> unserved;
    {
      std::lock_guard lock(dispatch_mu);
      jobs_closed = true;
      unserved.swap(jobs);
    }
    dispatch_cv.notify_all();
    for (Job& job : unserved) {
      Completion done;
      done.fd = job.fd;
      done.gen = job.gen;
      done.response = make_shed_response(options.shed_retry_after_s);
      Shard& s = *job.shard;
      {
        std::lock_guard lock(s.completion_mu);
        s.completions.push_back(std::move(done));
      }
      s.poller.wake();
    }

    if (drain) {
      // Let in-flight exchanges finish (handler + response drain), but only
      // until the deadline; whatever is left gets force-closed below.
      const std::uint64_t deadline_ns =
          steady_now_ns() + drain_deadline_us * 1000;
      while (exchanges_in_flight.load() > 0 && steady_now_ns() < deadline_ns) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    stopping.store(true);
    for (auto& s : shards) s->poller.wake();
    for (auto& s : shards) {
      if (s->thread.joinable()) s->thread.join();
    }
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
  }

  // ----------------------------------------------------------- load signal

  ServerLoad load() {
    ServerLoad snapshot;
    {
      std::lock_guard lock(dispatch_mu);
      snapshot.queue_depth = jobs.size();
    }
    snapshot.queue_capacity = options.queue_depth;
    // Occupancy parity with the threaded front: in_flight means handlers
    // running now (≤ workers), not exchanges awaiting a response flush.
    snapshot.in_flight = handlers_busy.load();
    snapshot.workers = options.workers;
    snapshot.runtimes = shards.size();
    snapshot.connections = live_connections.load();
    std::size_t pending = 0;
    for (const auto& s : shards) pending += s->last_batch.load();
    snapshot.pending_events = pending;
    return snapshot;
  }

  // --------------------------------------------------------------- members

  const Handler& handler;
  ServerOptions options;
  detail::ServerCounters& counters;
  std::atomic<bool>& draining;

  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::thread> workers;

  std::mutex dispatch_mu;
  std::condition_variable dispatch_cv;
  std::deque<Job> jobs;      // sbqlint:guarded_by(dispatch_mu)
  bool jobs_closed = false;  // sbqlint:guarded_by(dispatch_mu)

  std::atomic<std::uint64_t> next_gen{1};
  std::atomic<std::size_t> live_connections{0};
  std::atomic<std::size_t> exchanges_in_flight{0};
  std::atomic<std::size_t> handlers_busy{0};
  std::atomic<bool> accept_closed{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> drain_mode{false};
  std::atomic<bool> shutdown_started{false};
};

EventFront::EventFront(std::uint16_t port, const Handler& handler,
                       const ServerOptions& options,
                       detail::ServerCounters& counters,
                       std::atomic<bool>& draining)
    : impl_(std::make_unique<Impl>(port, handler, options, counters, draining)) {}

EventFront::~EventFront() = default;

std::uint16_t EventFront::port() const {
  return impl_->port_;
}

ServerLoad EventFront::load() const {
  return impl_->load();
}

std::size_t EventFront::connection_count() const {
  return impl_->live_connections.load();
}

void EventFront::shutdown(std::uint64_t drain_deadline_us) {
  impl_->shutdown(drain_deadline_us);
}

}  // namespace sbq::http
