// The readiness-driven multi-runtime serving front (docs/event-front.md).
//
// N event runtimes ("shards") each own:
//   * an accept shard — their own SO_REUSEPORT listener on the shared port,
//     so the kernel spreads incoming connections across runtimes with no
//     user-space handoff,
//   * a net::Poller over the shard's connections,
//   * the per-connection state machines: resumable request parsing
//     (MessageReader::feed / try_next_request), dispatch to the shared
//     bounded worker pool, and a non-blocking writev send queue that
//     resumes partial writes on POLLOUT.
//
// Handler execution stays on the worker pool — application code may block —
// so a runtime thread only ever moves bytes and flips connection states;
// the number of live connections is decoupled from every thread count.
//
// The overload ladder is the same as the threaded front's: arrivals past
// `max_connections`, and parsed requests past `queue_depth`, get the canned
// 503 + Retry-After; shutdown(drain_deadline_us) answers undispatched
// requests with the 503, lets in-flight exchanges finish with
// `Connection: close`, and force-closes stragglers only past the deadline.
//
// This header intentionally exposes almost nothing: http::Server owns an
// EventFront when ServerOptions::front == FrontMode::kEvent and forwards
// its public surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "http/server.h"

namespace sbq::http {

class EventFront {
 public:
  /// Binds `runtimes` SO_REUSEPORT listeners (port 0 = ephemeral, resolved
  /// by the first) and starts the runtime and worker threads. `handler`,
  /// `counters`, and `draining` are borrowed from the owning Server.
  EventFront(std::uint16_t port, const Handler& handler,
             const ServerOptions& options, detail::ServerCounters& counters,
             std::atomic<bool>& draining);
  ~EventFront();

  EventFront(const EventFront&) = delete;
  EventFront& operator=(const EventFront&) = delete;

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] ServerLoad load() const;
  [[nodiscard]] std::size_t connection_count() const;

  /// See Server::shutdown. Idempotent; later calls are no-ops.
  void shutdown(std::uint64_t drain_deadline_us);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sbq::http
