#include "http/message.h"

#include "common/error.h"
#include "common/strings.h"

namespace sbq::http {

void Headers::set(std::string name, std::string value) {
  for (auto& [k, v] : items_) {
    if (iequals(k, name)) {
      v = std::move(value);
      return;
    }
  }
  items_.emplace_back(std::move(name), std::move(value));
}

void Headers::add(std::string name, std::string value) {
  items_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& [k, v] : items_) {
    if (iequals(k, name)) return std::string_view{v};
  }
  return std::nullopt;
}

bool Headers::has(std::string_view name) const {
  return get(name).has_value();
}

namespace {
void serialize_headers(const Headers& headers, std::size_t body_size,
                       std::string& out) {
  bool have_length = false;
  for (const auto& [k, v] : headers.items()) {
    if (iequals(k, "Content-Length")) {
      have_length = true;
      continue;  // always recomputed below
    }
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  (void)have_length;
  out += "Content-Length: " + std::to_string(body_size) + "\r\n\r\n";
}
}  // namespace

namespace {
/// Head (request/status line + headers + blank line) + body into `out`.
void serialize_message_to(std::string head, const MessageBody& message,
                          BufferChain& out) {
  out.append(std::move(head));
  if (!message.body_chain.empty()) {
    out.append_shared(message.body_chain);
  } else if (!message.body.empty()) {
    out.append_view(BytesView{message.body});
  }
}
}  // namespace

Bytes Request::serialize() const {
  BufferChain chain;
  serialize_to(chain);
  return chain.coalesce();
}

void Request::serialize_to(BufferChain& out) const {
  std::string head = method + " " + target + " " + version + "\r\n";
  serialize_headers(headers, body_size(), head);
  serialize_message_to(std::move(head), *this, out);
}

std::size_t Request::serialized_size() const {
  std::string head = method + " " + target + " " + version + "\r\n";
  serialize_headers(headers, body_size(), head);
  return head.size() + body_size();
}

Bytes Response::serialize() const {
  BufferChain chain;
  serialize_to(chain);
  return chain.coalesce();
}

void Response::serialize_to(BufferChain& out) const {
  std::string head = version + " " + std::to_string(status) + " " + reason + "\r\n";
  serialize_headers(headers, body_size(), head);
  serialize_message_to(std::move(head), *this, out);
}

std::size_t Response::serialized_size() const {
  std::string head = version + " " + std::to_string(status) + " " + reason + "\r\n";
  serialize_headers(headers, body_size(), head);
  return head.size() + body_size();
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::uint64_t retry_after_us(const Headers& headers) {
  const auto after = headers.get("Retry-After");
  if (!after) return 0;
  std::uint64_t seconds = 0;
  try {
    seconds = parse_u64(*after);
  } catch (const ParseError&) {
    return 0;  // HTTP-date or junk: no usable hint, use local backoff
  }
  if (seconds == 0) return 0;
  if (seconds >= kMaxRetryAfterUs / 1'000'000ull) return kMaxRetryAfterUs;
  return seconds * 1'000'000ull;
}

}  // namespace sbq::http
