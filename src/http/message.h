// HTTP/1.1 message model.
//
// SOAP rides on HTTP POST; this module provides the minimal, correct subset
// the stack needs: request/response lines, case-insensitive headers,
// Content-Length framing, and keep-alive. Chunked transfer encoding is
// deliberately out of scope (SOAP messages here always know their length).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/buffer_chain.h"
#include "common/bytes.h"

namespace sbq::http {

/// Ordered header list with case-insensitive name lookup (RFC 7230 §3.2).
class Headers {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// Body storage shared by Request and Response: either a flat byte vector
/// (`body`, the classic path and what the parser fills in) or a segmented
/// `body_chain` produced by the zero-copy pipeline. A non-empty chain takes
/// precedence; the accessors below hide which one is populated.
struct MessageBody {
  Bytes body;
  BufferChain body_chain;

  [[nodiscard]] std::size_t body_size() const {
    return body_chain.empty() ? body.size() : body_chain.size();
  }

  /// Contiguous view of the body. A multi-segment chain is coalesced once
  /// into an internal cache (a counted copy) — callers that can stay
  /// segment-aware should prefer body_as_chain().
  [[nodiscard]] BytesView body_view() const {
    if (body_chain.empty()) return BytesView{body};
    if (body_chain.segment_count() == 1) return body_chain.segment(0);
    if (coalesced_.empty()) coalesced_ = body_chain.coalesce();
    return BytesView{coalesced_};
  }

  /// The body as a chain without flattening: shares `body_chain`'s segments,
  /// or borrows the flat `body` (the message must outlive the result).
  [[nodiscard]] BufferChain body_as_chain() const {
    BufferChain out;
    if (!body_chain.empty()) {
      out.append_shared(body_chain);
    } else if (!body.empty()) {
      out.append_view(BytesView{body});
    }
    return out;
  }

  [[nodiscard]] std::string body_string() const {
    const BytesView v = body_view();
    return to_string(v);
  }

  void set_body(std::string_view s) {
    body = to_bytes(s);
    body_chain.clear();
    coalesced_.clear();
  }
  void set_body(Bytes bytes) {
    body = std::move(bytes);
    body_chain.clear();
    coalesced_.clear();
  }
  void set_body_chain(BufferChain&& chain) {
    body.clear();
    coalesced_.clear();
    body_chain = std::move(chain);
  }

  /// Copies a multi-segment chain made by body_view(), if any (for stats).
  [[nodiscard]] std::uint64_t body_bytes_copied() const {
    return body_chain.bytes_copied();
  }

 protected:
  mutable Bytes coalesced_;  // body_view() cache for multi-segment chains
};

struct Request : MessageBody {
  std::string method = "POST";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;

  /// Serializes with a correct Content-Length header.
  [[nodiscard]] Bytes serialize() const;

  /// Appends head + body to `out` without flattening: the head becomes one
  /// owned segment, body segments are shared (or borrowed from `body`, in
  /// which case the request must outlive `out`). Coalescing `out` yields
  /// exactly the serialize() bytes.
  void serialize_to(BufferChain& out) const;

  /// Exact wire size serialize() would produce, without building the body.
  [[nodiscard]] std::size_t serialized_size() const;
};

struct Response : MessageBody {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;

  [[nodiscard]] Bytes serialize() const;
  void serialize_to(BufferChain& out) const;  // see Request::serialize_to
  [[nodiscard]] std::size_t serialized_size() const;
};

/// Standard reason phrase for a status code.
std::string_view reason_phrase(int status);

/// Ceiling on the server-advertised retry delay a client will honor: one
/// hour. Anything larger (or overflowing delta-seconds arithmetic) clamps
/// here instead of wrapping around to a tiny — or zero — delay.
inline constexpr std::uint64_t kMaxRetryAfterUs = 3'600'000'000ull;

/// Parses a Retry-After header (RFC 7231 delta-seconds form) into
/// microseconds. The robustness contract for client retry loops: a missing,
/// malformed (HTTP-date or junk), or zero-valued header yields 0 — "no
/// usable server hint, use local backoff" — and absurd values clamp to
/// kMaxRetryAfterUs, so a hostile or buggy header can neither melt the
/// client into a 0-delay hot retry loop nor park it forever.
std::uint64_t retry_after_us(const Headers& headers);

}  // namespace sbq::http
