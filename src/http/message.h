// HTTP/1.1 message model.
//
// SOAP rides on HTTP POST; this module provides the minimal, correct subset
// the stack needs: request/response lines, case-insensitive headers,
// Content-Length framing, and keep-alive. Chunked transfer encoding is
// deliberately out of scope (SOAP messages here always know their length).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace sbq::http {

/// Ordered header list with case-insensitive name lookup (RFC 7230 §3.2).
class Headers {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

struct Request {
  std::string method = "POST";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  [[nodiscard]] std::string body_string() const { return to_string(BytesView{body}); }
  void set_body(std::string_view s) { body = to_bytes(s); }

  /// Serializes with a correct Content-Length header.
  [[nodiscard]] Bytes serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  [[nodiscard]] std::string body_string() const { return to_string(BytesView{body}); }
  void set_body(std::string_view s) { body = to_bytes(s); }

  [[nodiscard]] Bytes serialize() const;
};

/// Standard reason phrase for a status code.
std::string_view reason_phrase(int status);

}  // namespace sbq::http
