#include "http/parser.h"

#include "common/error.h"
#include "common/strings.h"

namespace sbq::http {

Headers parse_header_lines(std::string_view block, std::size_t max_fields) {
  Headers headers;
  std::size_t pos = 0;
  std::size_t fields = 0;
  while (pos < block.size()) {
    std::size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    if (max_fields > 0 && ++fields > max_fields) {
      throw ParseError("more than " + std::to_string(max_fields) +
                       " header fields");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("header line without colon: '" + std::string(line) + "'");
    }
    const std::string_view name = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));
    if (name.empty()) throw ParseError("empty header name");
    headers.add(std::string(name), std::string(value));
  }
  return headers;
}

bool MessageReader::fill() {
  std::uint8_t chunk[8192];
  const std::size_t n = stream_.read_some(chunk, sizeof chunk);
  if (n == 0) return false;
  buffer_.append(as_chars(BytesView{chunk, n}));
  return true;
}

void MessageReader::feed(BytesView bytes) {
  buffer_.append(as_chars(bytes));
}

MessageReader::Phase MessageReader::phase() const {
  if (pending_request_ || pending_response_) return Phase::kBody;
  return buffer_.empty() ? Phase::kIdle : Phase::kHead;
}

void MessageReader::arm_stream_deadline() {
  if (idle_timeout_us_ == 0 && read_timeout_us_ == 0) return;
  stream_.set_read_timeout_us(phase() == Phase::kBody ? read_timeout_us_
                                                      : idle_timeout_us_);
}

std::optional<std::string> MessageReader::try_take_head() {
  const std::size_t end = buffer_.find("\r\n\r\n");
  if (end != std::string::npos) {
    if (end + 4 > limits_.max_header_bytes) {
      throw ParseError("header block exceeds limit");
    }
    std::string head = buffer_.substr(0, end + 4);
    buffer_.erase(0, end + 4);
    consumed_ += head.size();
    return head;
  }
  if (buffer_.size() > limits_.max_header_bytes) {
    throw ParseError("header block exceeds limit");
  }
  return std::nullopt;
}

std::size_t MessageReader::body_length(const Headers& headers) const {
  std::size_t length = 0;
  if (auto cl = headers.get("Content-Length")) {
    length = static_cast<std::size_t>(parse_u64(*cl));
  } else if (auto te = headers.get("Transfer-Encoding")) {
    throw ParseError("unsupported Transfer-Encoding: " + std::string(*te));
  }
  // Checked at head-parse time, before a single body byte is buffered: a
  // Content-Length of 2^60 costs nothing.
  if (length > limits_.max_body_bytes) throw ParseError("body exceeds limit");
  return length;
}

void MessageReader::parse_request_head(std::string head) {
  const std::size_t eol = head.find("\r\n");
  const std::string_view line = std::string_view(head).substr(0, eol);
  const auto parts = split_whitespace(line);
  if (parts.size() != 3) {
    throw ParseError("bad request line: '" + std::string(line) + "'");
  }
  Request req;
  req.method = std::string(parts[0]);
  req.target = std::string(parts[1]);
  req.version = std::string(parts[2]);
  if (!req.version.starts_with("HTTP/1.")) {
    throw ParseError("unsupported HTTP version: " + req.version);
  }
  req.headers = parse_header_lines(std::string_view(head).substr(eol + 2),
                                   limits_.max_header_fields);
  body_needed_ = body_length(req.headers);
  pending_request_ = std::move(req);
}

void MessageReader::parse_response_head(std::string head) {
  const std::size_t eol = head.find("\r\n");
  const std::string_view line = std::string_view(head).substr(0, eol);
  // Status line: HTTP/1.1 SP status SP reason (reason may contain spaces).
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) throw ParseError("bad status line");
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  Response resp;
  resp.version = std::string(line.substr(0, sp1));
  if (!resp.version.starts_with("HTTP/1.")) {
    throw ParseError("unsupported HTTP version: " + resp.version);
  }
  const std::string_view status_str =
      line.substr(sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                                         : sp2 - sp1 - 1);
  resp.status = static_cast<int>(parse_u64(status_str));
  resp.reason =
      sp2 == std::string_view::npos ? "" : std::string(trim(line.substr(sp2 + 1)));
  resp.headers = parse_header_lines(std::string_view(head).substr(eol + 2),
                                    limits_.max_header_fields);
  body_needed_ = body_length(resp.headers);
  pending_response_ = std::move(resp);
}

std::optional<Bytes> MessageReader::try_take_body() {
  if (buffer_.size() < body_needed_) return std::nullopt;
  Bytes body(buffer_.begin(), buffer_.begin() + static_cast<long>(body_needed_));
  buffer_.erase(0, body_needed_);
  consumed_ += body_needed_;
  body_needed_ = 0;
  return body;
}

std::optional<Request> MessageReader::try_next_request() {
  if (!pending_request_) {
    auto head = try_take_head();
    if (!head) return std::nullopt;
    parse_request_head(std::move(*head));
  }
  auto body = try_take_body();
  if (!body) return std::nullopt;
  Request req = std::move(*pending_request_);
  pending_request_.reset();
  req.body = std::move(*body);
  return req;
}

std::optional<Request> MessageReader::read_request() {
  for (;;) {
    arm_stream_deadline();
    auto req = try_next_request();
    if (req) return req;
    if (!fill()) {
      if (phase() == Phase::kIdle) return std::nullopt;  // clean EOF
      throw TransportError(pending_request_ ? "EOF inside HTTP body"
                                            : "EOF inside HTTP header block");
    }
  }
}

std::optional<Response> MessageReader::read_response() {
  for (;;) {
    arm_stream_deadline();
    if (!pending_response_) {
      auto head = try_take_head();
      if (head) parse_response_head(std::move(*head));
    }
    if (pending_response_) {
      auto body = try_take_body();
      if (body) {
        Response resp = std::move(*pending_response_);
        pending_response_.reset();
        resp.body = std::move(*body);
        return resp;
      }
    }
    if (!fill()) {
      if (phase() == Phase::kIdle) return std::nullopt;  // clean EOF
      throw TransportError(pending_response_ ? "EOF inside HTTP body"
                                             : "EOF inside HTTP header block");
    }
  }
}

}  // namespace sbq::http
