// HTTP/1.1 wire parsing.
//
// Stream-oriented: reads from a net::Stream with an internal buffer, so a
// single connection can carry many keep-alive request/response exchanges.
#pragma once

#include <memory>
#include <optional>

#include "http/message.h"
#include "net/stream.h"

namespace sbq::http {

/// Upper bounds on header block size, header field count, and body size
/// (defense against malformed or adversarial peers; generous for the paper's
/// ~1 MB payloads). Every limit violation throws ParseError *before* the
/// oversized item is buffered — a Content-Length of 2^60 costs nothing.
struct ParserLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_header_fields = 100;
  std::size_t max_body_bytes = 256 * 1024 * 1024;
};

/// Buffered reader that parses HTTP messages off a Stream.
class MessageReader {
 public:
  explicit MessageReader(net::Stream& stream, ParserLimits limits = {})
      : stream_(stream), limits_(limits) {}

  /// Per-connection deadlines (server side). `idle_us` bounds the wait for
  /// the next message head on a keep-alive connection; `read_us` bounds each
  /// read once a message body is being consumed. While either is non-zero
  /// the reader re-arms the stream's read deadline per phase; expiry
  /// surfaces as sbq::TimeoutError from the read. Both 0 (the default)
  /// leaves the stream's deadline untouched — clients that arm their own
  /// attempt deadline on the stream are unaffected.
  void set_deadlines_us(std::uint64_t idle_us, std::uint64_t read_us) {
    idle_timeout_us_ = idle_us;
    read_timeout_us_ = read_us;
  }

  /// Reads the next request; empty optional on clean EOF between messages.
  /// Throws ParseError on malformed input, TransportError on truncated input.
  std::optional<Request> read_request();

  /// Reads the next response; empty optional on clean EOF.
  std::optional<Response> read_response();

  /// Total wire bytes consumed by parsed messages so far (head + body, the
  /// exact on-the-wire size — NOT a re-serialization of the parsed message).
  [[nodiscard]] std::uint64_t bytes_consumed() const { return consumed_; }

 private:
  /// Reads through the blank line; returns the raw header block, or empty
  /// optional if EOF occurs before any byte of it.
  std::optional<std::string> read_head();
  Bytes read_body(const Headers& headers);
  bool fill();  // pull more bytes from the stream; false on EOF

  net::Stream& stream_;
  ParserLimits limits_;
  std::string buffer_;
  std::uint64_t consumed_ = 0;
  std::uint64_t idle_timeout_us_ = 0;
  std::uint64_t read_timeout_us_ = 0;
};

/// Parses a header block (everything up to and including the blank line).
/// `max_fields` bounds the field count (0 = unlimited). Exposed for unit
/// testing.
Headers parse_header_lines(std::string_view block, std::size_t max_fields = 0);

}  // namespace sbq::http
