// HTTP/1.1 wire parsing.
//
// Stream-oriented and *resumable*: the parsing core is an incremental state
// machine over an internal buffer, so the same MessageReader serves two
// consumption styles:
//
//   * blocking — read_request()/read_response() pull bytes from the
//     net::Stream until a full message is buffered (the threaded front and
//     the client),
//   * feed-on-readiness — the event front pushes whatever bytes the socket
//     had via feed() and asks try_next_request() whether a complete message
//     has accumulated; an incomplete message parks as parser state, not as
//     a blocked thread.
//
// A single connection can carry many keep-alive exchanges either way, and
// pipelined requests buffered in one feed parse out one try_next_request()
// at a time.
#pragma once

#include <memory>
#include <optional>

#include "http/message.h"
#include "net/stream.h"

namespace sbq::http {

/// Upper bounds on header block size, header field count, and body size
/// (defense against malformed or adversarial peers; generous for the paper's
/// ~1 MB payloads). Every limit violation throws ParseError *before* the
/// oversized item is buffered — a Content-Length of 2^60 costs nothing.
struct ParserLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_header_fields = 100;
  std::size_t max_body_bytes = 256 * 1024 * 1024;
};

/// Buffered reader that parses HTTP messages off a Stream.
class MessageReader {
 public:
  explicit MessageReader(net::Stream& stream, ParserLimits limits = {})
      : stream_(stream), limits_(limits) {}

  /// Where the parser stands between calls — what the event front keys its
  /// per-phase deadlines on (idle vs read, mirroring the blocking side).
  enum class Phase {
    kIdle,  // between messages: nothing buffered
    kHead,  // head bytes buffered, terminator not yet seen
    kBody,  // head parsed, body incomplete
  };

  /// Per-connection deadlines (server side). `idle_us` bounds the wait for
  /// the next message head on a keep-alive connection; `read_us` bounds each
  /// read once a message body is being consumed. While either is non-zero
  /// the reader re-arms the stream's read deadline per phase; expiry
  /// surfaces as sbq::TimeoutError from the read. Both 0 (the default)
  /// leaves the stream's deadline untouched — clients that arm their own
  /// attempt deadline on the stream are unaffected.
  void set_deadlines_us(std::uint64_t idle_us, std::uint64_t read_us) {
    idle_timeout_us_ = idle_us;
    read_timeout_us_ = read_us;
  }

  /// Reads the next request; empty optional on clean EOF between messages.
  /// Throws ParseError on malformed input, TransportError on truncated input.
  std::optional<Request> read_request();

  /// Reads the next response; empty optional on clean EOF.
  std::optional<Response> read_response();

  // --- resumable surface (event front) ------------------------------------

  /// Appends bytes pulled off the socket by a readiness loop. Limit checks
  /// run on the next try_next_request(); feeding never throws.
  void feed(BytesView bytes);

  /// Attempts to parse one complete request out of the buffered bytes.
  /// Empty optional = incomplete, feed more on the next readable event.
  /// Throws ParseError on malformed or limit-violating input.
  std::optional<Request> try_next_request();

  /// Current incremental phase (drives idle- vs read-deadline selection).
  [[nodiscard]] Phase phase() const;

  /// True when no unconsumed bytes are buffered (used to decide whether a
  /// keep-alive connection may already hold a pipelined next request).
  [[nodiscard]] bool buffer_empty() const { return buffer_.empty(); }

  /// Total wire bytes consumed by parsed messages so far (head + body, the
  /// exact on-the-wire size — NOT a re-serialization of the parsed message).
  [[nodiscard]] std::uint64_t bytes_consumed() const { return consumed_; }

 private:
  /// Incremental step: extracts the raw header block (through the blank
  /// line) from the buffer if complete. Enforces max_header_bytes.
  std::optional<std::string> try_take_head();
  /// Incremental step: parses request/response head into `pending_*` state
  /// and records the body length still owed. Enforces body/field limits.
  void parse_request_head(std::string head);
  void parse_response_head(std::string head);
  /// Incremental step: moves the body out of the buffer once fully present.
  std::optional<Bytes> try_take_body();
  /// Body length implied by `headers` (Content-Length framing only).
  std::size_t body_length(const Headers& headers) const;

  bool fill();  // pull more bytes from the stream; false on EOF
  void arm_stream_deadline();

  net::Stream& stream_;
  ParserLimits limits_;
  std::string buffer_;
  std::uint64_t consumed_ = 0;
  std::uint64_t idle_timeout_us_ = 0;
  std::uint64_t read_timeout_us_ = 0;

  // In-flight incremental state: exactly one of pending_request_ /
  // pending_response_ is engaged while a head has parsed but its body is
  // still owed (`body_needed_` bytes).
  std::optional<Request> pending_request_;
  std::optional<Response> pending_response_;
  std::size_t body_needed_ = 0;
};

/// Parses a header block (everything up to and including the blank line).
/// `max_fields` bounds the field count (0 = unlimited). Exposed for unit
/// testing.
Headers parse_header_lines(std::string_view block, std::size_t max_fields = 0);

}  // namespace sbq::http
