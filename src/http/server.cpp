#include "http/server.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "http/event_front.h"
#include "http/parser.h"

namespace sbq::http {

Response make_shed_response(std::uint64_t retry_after_s) {
  Response resp;
  resp.status = 503;
  resp.reason = std::string(reason_phrase(503));
  resp.headers.set("Retry-After", std::to_string(retry_after_s));
  resp.headers.set("Connection", "close");
  resp.headers.set("Content-Type", "text/plain");
  resp.set_body("server overloaded; retry later");
  return resp;
}

void serve_connection(net::Stream& stream, const Handler& handler,
                      const ConnectionOptions& options) {
  MessageReader reader(stream, options.limits);
  reader.set_deadlines_us(options.idle_timeout_us, options.read_timeout_us);
  for (;;) {
    std::optional<Request> request;
    try {
      request = reader.read_request();
    } catch (const TransportError&) {
      return;  // peer vanished mid-message (or read deadline); nothing to send
    } catch (const Error& e) {
      // Malformed input of any kind — parse errors, limit violations, bad
      // framing numbers — is the client's fault: answer 400 and hang up
      // (the read position inside the bad message is unrecoverable).
      Response bad;
      bad.status = 400;
      bad.reason = std::string(reason_phrase(400));
      bad.headers.set("Connection", "close");
      bad.set_body(e.what());
      BufferChain wire;
      bad.serialize_to(wire);
      try {
        stream.write_chain(wire);
      } catch (const TransportError&) {
      }
      return;
    }
    if (!request) return;  // clean EOF

    Response response;
    try {
      response = handler(*request);
    } catch (const std::exception& e) {
      response = Response{};
      response.status = 500;
      response.reason = std::string(reason_phrase(500));
      response.set_body(e.what());
    }
    // A draining server finishes this exchange but tells the client not to
    // send another request on this connection.
    const bool draining =
        options.draining != nullptr && options.draining->load();
    if (draining) response.headers.set("Connection", "close");
    // The response stays segmented all the way into the stream: its body
    // chain (borrowing the handler's result buffers) is never flattened.
    BufferChain wire;
    response.serialize_to(wire);
    try {
      stream.write_chain(wire);
    } catch (const TransportError&) {
      return;
    }
    const bool close_requested =
        (request->headers.get("Connection").value_or("") == "close") ||
        (response.headers.get("Connection").value_or("") == "close");
    if (close_requested || draining) return;
  }
}

void serve_connection(net::Stream& stream, const Handler& handler,
                      const ParserLimits& limits) {
  ConnectionOptions options;
  options.limits = limits;
  serve_connection(stream, handler, options);
}

Server::Server(std::uint16_t port, Handler handler, ServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  options_.workers = std::max<std::size_t>(1, options_.workers);
  options_.queue_depth = std::max<std::size_t>(1, options_.queue_depth);
  options_.max_connections = std::max<std::size_t>(1, options_.max_connections);

  if (options_.front == FrontMode::kEvent) {
    event_front_ = std::make_unique<EventFront>(port, handler_, options_,
                                                counters_, draining_);
    return;
  }

  listener_ = std::make_unique<net::TcpListener>(port);
  // Accepted streams carry the idle deadline from birth, so even the window
  // between accept() and a worker adopting the connection is bounded.
  listener_->set_accepted_read_timeout_us(options_.idle_timeout_us);
  // The pool is fixed at construction: workers are never registered later,
  // so shutdown cannot race a worker being added and joins each exactly once.
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::Server(std::uint16_t port, Handler handler, ParserLimits limits)
    : Server(port, std::move(handler), [&] {
        ServerOptions options;
        options.limits = limits;
        return options;
      }()) {}

Server::~Server() {
  shutdown();
}

std::uint16_t Server::port() const {
  return event_front_ ? event_front_->port() : listener_->port();
}

void Server::accept_loop() {
  for (;;) {
    std::unique_ptr<net::TcpStream> conn;
    try {
      conn = listener_->accept();
    } catch (const TransportError&) {
      break;
    }
    if (!conn || stopping_.load()) break;
    auto stream = std::shared_ptr<net::TcpStream>(std::move(conn));

    counters_.accepted.fetch_add(1);
    bool admitted = false;
    {
      std::lock_guard lock(mu_);
      // Prune entries whose connections have ended: the registry tracks
      // only live connections instead of growing for the server's life.
      std::erase_if(connections_,
                    [](const std::weak_ptr<net::TcpStream>& weak) {
                      return weak.expired();
                    });
      const bool full = queue_closed_ ||
                        queue_.size() >= options_.queue_depth ||
                        connections_.size() >= options_.max_connections;
      if (!full) {
        queue_.push_back(stream);
        connections_.push_back(stream);
        detail::ServerCounters::raise(counters_.queue_high_water, queue_.size());
        admitted = true;
      }
    }
    if (admitted) {
      work_cv_.notify_one();
    } else {
      counters_.shed.fetch_add(1);
      shed_connection(*stream);
    }
  }
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<net::TcpStream> stream;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || queue_closed_; });
      if (queue_.empty()) return;  // queue closed and drained: pool winds down
      stream = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      detail::ServerCounters::raise(counters_.peak_in_flight, in_flight_);
    }

    ConnectionOptions conn_options;
    conn_options.limits = options_.limits;
    conn_options.idle_timeout_us = options_.idle_timeout_us;
    conn_options.read_timeout_us = options_.read_timeout_us;
    conn_options.draining = &draining_;
    // Connection-scoped failures must never take a worker down, but they
    // must not vanish either: anything escaping serve_connection (which
    // already converts handler exceptions to 500s itself) is answered with
    // a canned 500 and counted in ServerStats::worker_errors.
    try {
      serve_connection(*stream, handler_, conn_options);
    } catch (const std::exception& e) {
      fail_connection(*stream, e.what());
    } catch (...) {  // sbqlint:allow(no-swallow): converted to a 500 + ServerStats::worker_errors by fail_connection
      fail_connection(*stream, "non-standard exception escaped serve_connection");
    }
    stream->close();
    stream.reset();  // expire the registry entry before reporting idle

    {
      std::lock_guard lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void Server::fail_connection(net::TcpStream& stream, const char* what) {
  counters_.worker_errors.fetch_add(1);
  Response resp;
  resp.status = 500;
  resp.reason = std::string(reason_phrase(500));
  resp.headers.set("Connection", "close");
  resp.headers.set("Content-Type", "text/plain");
  resp.set_body(what);
  BufferChain wire;
  resp.serialize_to(wire);
  try {
    stream.write_chain(wire);
  } catch (const TransportError&) {
    // The peer is gone; the counter above still records the failure.
  }
}

void Server::shed_connection(net::TcpStream& stream) {
  const Response resp = make_shed_response(options_.shed_retry_after_s);
  BufferChain wire;
  resp.serialize_to(wire);
  try {
    stream.write_chain(wire);
  } catch (const TransportError&) {
  }
  stream.close();
}

void Server::shutdown(std::uint64_t drain_deadline_us) {
  if (stopping_.exchange(true)) return;
  const bool drain = drain_deadline_us > 0;
  draining_.store(true);  // in-flight responses get Connection: close

  if (event_front_) {
    event_front_->shutdown(drain_deadline_us);
    return;
  }

  listener_->close();
  if (acceptor_.joinable()) acceptor_.join();

  // Close the queue and pull out connections that never reached a worker;
  // they get the canned 503 (with Connection: close) rather than silence.
  std::deque<std::shared_ptr<net::TcpStream>> unserved;
  {
    std::lock_guard lock(mu_);
    queue_closed_ = true;
    unserved.swap(queue_);
  }
  if (drain) counters_.drains.fetch_add(1);
  work_cv_.notify_all();
  for (const auto& stream : unserved) shed_connection(*stream);
  unserved.clear();

  if (drain) {
    // Let in-flight exchanges finish, but only until the deadline.
    std::unique_lock lock(mu_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(drain_deadline_us),
                      [this] { return in_flight_ == 0; });
  }

  // Force-close whatever is still open so workers blocked on reads (or
  // writes to a stuffed peer) fail out promptly and can be joined.
  {
    std::lock_guard lock(mu_);
    for (const auto& weak : connections_) {
      if (auto stream = weak.lock()) {
        stream->shutdown_io();
        if (drain) counters_.forced_closes.fetch_add(1);
      }
    }
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::lock_guard lock(mu_);
  connections_.clear();
}

ServerLoad Server::load() const {
  if (event_front_) return event_front_->load();
  std::lock_guard lock(mu_);
  ServerLoad snapshot;
  snapshot.queue_depth = queue_.size();
  snapshot.queue_capacity = options_.queue_depth;
  snapshot.in_flight = in_flight_;
  snapshot.workers = options_.workers;
  return snapshot;
}

std::size_t Server::tracked_connections() const {
  if (event_front_) return event_front_->connection_count();
  std::lock_guard lock(mu_);
  return connections_.size();
}

}  // namespace sbq::http
