#include "http/server.h"

#include "common/error.h"
#include "http/parser.h"

namespace sbq::http {

void serve_connection(net::Stream& stream, const Handler& handler,
                      const ParserLimits& limits) {
  MessageReader reader(stream, limits);
  for (;;) {
    std::optional<Request> request;
    try {
      request = reader.read_request();
    } catch (const TransportError&) {
      return;  // peer vanished mid-message (or read deadline); nothing to send
    } catch (const Error& e) {
      // Malformed input of any kind — parse errors, limit violations, bad
      // framing numbers — is the client's fault: answer 400 and hang up
      // (the read position inside the bad message is unrecoverable).
      Response bad;
      bad.status = 400;
      bad.reason = std::string(reason_phrase(400));
      bad.headers.set("Connection", "close");
      bad.set_body(e.what());
      BufferChain wire;
      bad.serialize_to(wire);
      try {
        stream.write_chain(wire);
      } catch (const TransportError&) {
      }
      return;
    }
    if (!request) return;  // clean EOF

    Response response;
    try {
      response = handler(*request);
    } catch (const std::exception& e) {
      response = Response{};
      response.status = 500;
      response.reason = std::string(reason_phrase(500));
      response.set_body(e.what());
    }
    // The response stays segmented all the way into the stream: its body
    // chain (borrowing the handler's result buffers) is never flattened.
    BufferChain wire;
    response.serialize_to(wire);
    try {
      stream.write_chain(wire);
    } catch (const TransportError&) {
      return;
    }
    const bool close_requested =
        (request->headers.get("Connection").value_or("") == "close") ||
        (response.headers.get("Connection").value_or("") == "close");
    if (close_requested) return;
  }
}

Server::Server(std::uint16_t port, Handler handler, ParserLimits limits)
    : listener_(port), handler_(std::move(handler)), limits_(limits) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() {
  shutdown();
}

void Server::accept_loop() {
  for (;;) {
    std::unique_ptr<net::TcpStream> conn;
    try {
      conn = listener_.accept();
    } catch (const TransportError&) {
      break;
    }
    if (!conn || stopping_.load()) break;
    auto stream = std::shared_ptr<net::TcpStream>(std::move(conn));
    std::lock_guard lock(workers_mu_);
    connections_.push_back(stream);
    workers_.emplace_back([this, stream = std::move(stream)] {
      try {
        serve_connection(*stream, handler_, limits_);
      } catch (...) {
        // Connection-scoped failures must never take the server down.
      }
    });
  }
}

void Server::shutdown() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard lock(workers_mu_);
  for (auto& weak : connections_) {
    if (auto stream = weak.lock()) stream->shutdown_io();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  connections_.clear();
}

}  // namespace sbq::http
