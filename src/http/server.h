// Threaded HTTP/1.1 server.
//
// A thin acceptor loop: one thread per connection, keep-alive within a
// connection, dispatch to a user handler. The SOAP-binQ ServiceRuntime
// plugs in as the handler; the server knows nothing about SOAP.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "net/tcp.h"

namespace sbq::http {

using Handler = std::function<Response(const Request&)>;

/// Serves a single connection until EOF. Exposed so tests can drive a
/// server over an in-process pipe without sockets or the acceptor loop.
/// Connection-scoped failures never propagate: exceptions from the handler
/// become 500 responses, malformed input (parse errors, limit violations)
/// gets a 400 and the connection closes, transport failures and read
/// timeouts just close the connection — one bad client can never take the
/// accept loop or its sibling connections down.
void serve_connection(net::Stream& stream, const Handler& handler,
                      const ParserLimits& limits = {});

/// TCP server bound to 127.0.0.1.
class Server {
 public:
  /// Binds (port 0 = ephemeral) and starts the acceptor thread. `limits`
  /// applies to every connection's request parsing.
  Server(std::uint16_t port, Handler handler, ParserLimits limits = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, closes the listener, joins all threads.
  void shutdown();

 private:
  void accept_loop();

  net::TcpListener listener_;
  Handler handler_;
  ParserLimits limits_;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  // Live connections; shutdown() force-closes them so workers joining
  // cannot deadlock on clients that keep their end open.
  std::vector<std::weak_ptr<net::TcpStream>> connections_;
};

}  // namespace sbq::http
