// Threaded HTTP/1.1 server with a bounded worker pool.
//
// The acceptor thread pushes accepted connections onto a bounded queue; a
// fixed pool of worker threads drains it, serving keep-alive exchanges and
// dispatching to a user handler. The SOAP-binQ ServiceRuntime plugs in as
// the handler; the server knows nothing about SOAP.
//
// Overload protection (docs/robustness.md "Overload and drain"): the pool
// size, queue depth, connection cap, and per-connection deadlines are all
// bounded by ServerOptions, so a connection flood can never spawn unbounded
// threads or park forever on a stalled peer. Connections arriving past the
// queue/connection caps are answered with a canned `503 Service
// Unavailable` + `Retry-After` and closed — the last rung of the
// degradation ladder after quality management (qos::LoadMonitor) has
// already stepped response quality down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "net/tcp.h"

namespace sbq::http {

using Handler = std::function<Response(const Request&)>;

/// Knobs bounding what one Server may consume. Defaults suit tests and
/// examples; production fronts size `workers` to the host and `queue_depth`
/// to the latency budget (a deep queue is just latency nobody asked for).
struct ServerOptions {
  /// Fixed worker pool size (threads serving connections). At least 1.
  std::size_t workers = 8;
  /// Accepted connections allowed to wait for a free worker. A connection
  /// arriving with the queue full is shed with the canned 503.
  std::size_t queue_depth = 64;
  /// Cap on live connections (queued + in service). Arrivals past it are
  /// shed even when the queue itself has room.
  std::size_t max_connections = 256;
  /// Keep-alive idle deadline: how long a connection may sit between
  /// requests (and while its next request head trickles in) before the
  /// worker drops it. 0 = wait forever.
  std::uint64_t idle_timeout_us = 0;
  /// Per-read deadline while a request body is being received (defends the
  /// pool against peers that stall mid-message). 0 = wait forever.
  std::uint64_t read_timeout_us = 0;
  /// Retry-After value (seconds) sent with the canned shed response.
  std::uint64_t shed_retry_after_s = 1;
  /// Request-parsing limits applied to every connection.
  ParserLimits limits;
};

/// Point-in-time load signal, the raw material of qos::LoadMonitor.
struct ServerLoad {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t in_flight = 0;  // connections being served right now
  std::size_t workers = 0;
};

/// Lifetime counters (copied under the server lock).
struct ServerStats {
  std::uint64_t accepted = 0;          // connections the acceptor saw
  std::uint64_t shed = 0;              // answered with the canned 503
  std::uint64_t queue_high_water = 0;  // deepest queue observed
  std::uint64_t peak_in_flight = 0;    // most connections in service at once
  std::uint64_t drains = 0;            // graceful drains begun
  std::uint64_t forced_closes = 0;     // connections cut at the drain deadline
  std::uint64_t worker_errors = 0;     // failures escaping serve_connection,
                                       // converted to a canned 500
};

/// Per-connection serving knobs for serve_connection (the Server builds one
/// from its ServerOptions; tests may use the defaults).
struct ConnectionOptions {
  ParserLimits limits;
  std::uint64_t idle_timeout_us = 0;
  std::uint64_t read_timeout_us = 0;
  /// When set and true, every response is marked `Connection: close` and the
  /// keep-alive loop ends after it — how a draining server tells well-behaved
  /// clients to move on without cutting them off mid-exchange.
  const std::atomic<bool>* draining = nullptr;
};

/// Serves a single connection until EOF. Exposed so tests can drive a
/// server over an in-process pipe without sockets or the acceptor loop.
/// Connection-scoped failures never propagate: exceptions from the handler
/// become 500 responses, malformed input (parse errors, limit violations)
/// gets a 400 and the connection closes, transport failures and read
/// timeouts just close the connection — one bad client can never take the
/// accept loop or its sibling connections down.
void serve_connection(net::Stream& stream, const Handler& handler,
                      const ConnectionOptions& options = {});

/// Compatibility overload: limits only, no deadlines or drain signal.
void serve_connection(net::Stream& stream, const Handler& handler,
                      const ParserLimits& limits);

/// TCP server bound to 127.0.0.1.
class Server {
 public:
  /// Binds (port 0 = ephemeral), starts the worker pool and the acceptor.
  Server(std::uint16_t port, Handler handler, ServerOptions options = {});

  /// Compatibility constructor: default pool/queue bounds, custom limits.
  Server(std::uint16_t port, Handler handler, ParserLimits limits);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Stops the server. With `drain_deadline_us` 0: force-closes every
  /// connection immediately (the old hard shutdown). Otherwise a graceful
  /// drain: stop accepting, answer queued-but-unserved connections with the
  /// canned 503 (`Connection: close`), let in-flight exchanges finish with
  /// responses marked `Connection: close`, and only once the deadline has
  /// passed force-close whatever is still open. Every worker and the
  /// acceptor are joined exactly once; safe to call repeatedly and
  /// concurrently (later calls are no-ops).
  void shutdown(std::uint64_t drain_deadline_us = 0);

  /// Current load signal (queue depth, in-flight count, pool size).
  [[nodiscard]] ServerLoad load() const;

  [[nodiscard]] ServerStats stats() const;

  /// Live entries in the connection registry (expired ones are pruned as
  /// new connections register; exposed so tests can assert the registry
  /// does not grow for the life of the server).
  [[nodiscard]] std::size_t tracked_connections() const;

  [[nodiscard]] bool draining() const { return draining_.load(); }

 private:
  void accept_loop();
  void worker_loop();
  /// Writes the canned 503 + Retry-After (+ Connection: close) and closes.
  void shed_connection(net::TcpStream& stream);
  /// Converts a failure that escaped serve_connection into a canned 500
  /// (best effort — the connection may already be dead) and counts it in
  /// ServerStats::worker_errors.
  void fail_connection(net::TcpStream& stream, const char* what);

  net::TcpListener listener_;
  Handler handler_;
  ServerOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread acceptor_;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;  // queue_ gained work / was closed
  std::condition_variable idle_cv_;  // in_flight_ dropped (drain waits here)
  std::deque<std::shared_ptr<net::TcpStream>> queue_;
  bool queue_closed_ = false;
  std::size_t in_flight_ = 0;
  std::vector<std::thread> workers_;  // fixed pool, created in the ctor
  // Live connections (queued + in service); shutdown force-closes them so
  // workers joining cannot deadlock on clients that keep their end open.
  // Expired entries are pruned as new connections register.
  std::vector<std::weak_ptr<net::TcpStream>> connections_;
  ServerStats stats_;
};

}  // namespace sbq::http
