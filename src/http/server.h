// HTTP/1.1 server with two serving fronts behind one API.
//
//   * FrontMode::kThreaded — the classic bounded worker pool: the acceptor
//     pushes accepted connections onto a bounded queue; a fixed pool of
//     worker threads drains it, each worker serving one connection at a
//     time (blocking reads). Concurrency is capped at `workers`.
//   * FrontMode::kEvent — the readiness-driven multi-runtime front
//     (docs/event-front.md): N event runtimes each own an accept shard
//     (SO_REUSEPORT) and a net::Poller over their connections, driving
//     per-connection state machines (reading → dispatching → writing) with
//     resumable parsing and non-blocking writev send queues. Handler
//     execution still runs on the bounded worker pool, so application code
//     may block; only byte-moving is event-driven. Concurrency is capped by
//     memory, not threads.
//
// Overload protection (docs/robustness.md "Overload and drain") is
// identical in both modes: pool size, queue depth, connection cap, and
// per-connection deadlines are bounded by ServerOptions; arrivals past the
// caps get a canned `503 Service Unavailable` + `Retry-After` — the last
// rung of the degradation ladder after quality management
// (qos::LoadMonitor) has already stepped response quality down — and
// shutdown(drain_deadline_us) drains both fronts the same way.
//
// The SOAP-binQ ServiceRuntime plugs in as the handler; the server knows
// nothing about SOAP.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "net/tcp.h"

namespace sbq::http {

using Handler = std::function<Response(const Request&)>;

/// Which serving front a Server runs (see file comment).
enum class FrontMode {
  kThreaded,  // blocking worker-per-connection over a bounded pool
  kEvent,     // readiness-driven multi-runtime front
};

/// Knobs bounding what one Server may consume. Defaults suit tests and
/// examples; production fronts size `workers` to the host and `queue_depth`
/// to the latency budget (a deep queue is just latency nobody asked for).
struct ServerOptions {
  /// Serving front. The overload ladder behaves identically in both; the
  /// event front additionally decouples connection count from thread count.
  FrontMode front = FrontMode::kThreaded;
  /// Event runtimes (accept shards), event front only. At least 1.
  std::size_t runtimes = 2;
  /// Fixed worker pool size (threads running the handler). At least 1.
  std::size_t workers = 8;
  /// Threaded front: accepted connections allowed to wait for a free
  /// worker. Event front: parsed requests allowed to wait for a free
  /// worker. Arrivals past it are shed with the canned 503.
  std::size_t queue_depth = 64;
  /// Cap on live connections (queued + in service). Arrivals past it are
  /// shed even when the queue itself has room.
  std::size_t max_connections = 256;
  /// Keep-alive idle deadline: how long a connection may sit between
  /// requests (and while its next request head trickles in) before the
  /// server drops it. 0 = wait forever.
  std::uint64_t idle_timeout_us = 0;
  /// Per-read deadline while a request body is being received (defends the
  /// server against peers that stall mid-message). 0 = wait forever.
  std::uint64_t read_timeout_us = 0;
  /// Write-progress deadline while a response drains to the peer (defends
  /// against peers that stop reading mid-response). Re-armed on every byte
  /// of progress. 0 = wait forever.
  std::uint64_t write_timeout_us = 0;
  /// Retry-After value (seconds) sent with the canned shed response.
  std::uint64_t shed_retry_after_s = 1;
  /// Request-parsing limits applied to every connection.
  ParserLimits limits;
};

/// Point-in-time load signal, the raw material of qos::LoadMonitor.
struct ServerLoad {
  std::size_t queue_depth = 0;     // waiting work (connections or requests)
  std::size_t queue_capacity = 0;
  std::size_t in_flight = 0;       // exchanges being served right now
  std::size_t workers = 0;
  // Event front only (0 under the threaded front):
  std::size_t runtimes = 0;        // event runtimes (accept shards)
  std::size_t connections = 0;     // live connections across all shards
  std::size_t pending_events = 0;  // readiness events in the last loop turns,
                                   // summed across shards (event-queue depth)
};

/// Lifetime counters. Snapshots are taken from atomics — reading stats
/// never contends with the accept path or the event runtimes.
struct ServerStats {
  std::uint64_t accepted = 0;          // connections the server saw
  std::uint64_t shed = 0;              // answered with the canned 503
  std::uint64_t queue_high_water = 0;  // deepest queue observed
  std::uint64_t peak_in_flight = 0;    // most exchanges in service at once
  std::uint64_t peak_connections = 0;  // most live connections at once (event)
  std::uint64_t drains = 0;            // graceful drains begun
  std::uint64_t forced_closes = 0;     // connections cut at the drain deadline
  std::uint64_t worker_errors = 0;     // failures escaping serve_connection,
                                       // converted to a canned 500
};

namespace detail {

/// The atomic counterparts of ServerStats, bumped lock-free from the accept
/// path, the workers, and the event runtimes alike.
struct ServerCounters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> queue_high_water{0};
  std::atomic<std::uint64_t> peak_in_flight{0};
  std::atomic<std::uint64_t> peak_connections{0};
  std::atomic<std::uint64_t> drains{0};
  std::atomic<std::uint64_t> forced_closes{0};
  std::atomic<std::uint64_t> worker_errors{0};

  /// Monotonic max update (queue high-water, peak in-flight).
  static void raise(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] ServerStats snapshot() const {
    ServerStats s;
    s.accepted = accepted.load();
    s.shed = shed.load();
    s.queue_high_water = queue_high_water.load();
    s.peak_in_flight = peak_in_flight.load();
    s.peak_connections = peak_connections.load();
    s.drains = drains.load();
    s.forced_closes = forced_closes.load();
    s.worker_errors = worker_errors.load();
    return s;
  }
};

}  // namespace detail

/// Builds the canned `503 Service Unavailable` + `Retry-After` shed
/// response without touching any request (the peer may not have sent one).
Response make_shed_response(std::uint64_t retry_after_s);

/// Per-connection serving knobs for serve_connection (the Server builds one
/// from its ServerOptions; tests may use the defaults).
struct ConnectionOptions {
  ParserLimits limits;
  std::uint64_t idle_timeout_us = 0;
  std::uint64_t read_timeout_us = 0;
  /// When set and true, every response is marked `Connection: close` and the
  /// keep-alive loop ends after it — how a draining server tells well-behaved
  /// clients to move on without cutting them off mid-exchange.
  const std::atomic<bool>* draining = nullptr;
};

/// Serves a single connection until EOF. Exposed so tests can drive a
/// server over an in-process pipe without sockets or the acceptor loop.
/// Connection-scoped failures never propagate: exceptions from the handler
/// become 500 responses, malformed input (parse errors, limit violations)
/// gets a 400 and the connection closes, transport failures and read
/// timeouts just close the connection — one bad client can never take the
/// accept loop or its sibling connections down.
void serve_connection(net::Stream& stream, const Handler& handler,
                      const ConnectionOptions& options = {});

/// Compatibility overload: limits only, no deadlines or drain signal.
void serve_connection(net::Stream& stream, const Handler& handler,
                      const ParserLimits& limits);

class EventFront;  // defined in http/event_front.h

/// TCP server bound to 127.0.0.1.
class Server {
 public:
  /// Binds (port 0 = ephemeral), starts the selected front.
  Server(std::uint16_t port, Handler handler, ServerOptions options = {});

  /// Compatibility constructor: default pool/queue bounds, custom limits.
  Server(std::uint16_t port, Handler handler, ParserLimits limits);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const;

  /// Stops the server. With `drain_deadline_us` 0: force-closes every
  /// connection immediately (the old hard shutdown). Otherwise a graceful
  /// drain: stop accepting, answer queued-but-unserved work with the
  /// canned 503 (`Connection: close`), let in-flight exchanges finish with
  /// responses marked `Connection: close`, and only once the deadline has
  /// passed force-close whatever is still open. Every worker and runtime
  /// is joined exactly once; safe to call repeatedly and concurrently
  /// (later calls are no-ops).
  void shutdown(std::uint64_t drain_deadline_us = 0);

  /// Current load signal (queue depth, in-flight count, pool size; the
  /// event front adds runtimes, live connections, pending events).
  [[nodiscard]] ServerLoad load() const;

  /// Lock-free counter snapshot (never contends with accepts).
  [[nodiscard]] ServerStats stats() const { return counters_.snapshot(); }

  /// Live entries in the connection registry (threaded front: weak_ptr
  /// registry, pruned as new connections register; event front: live
  /// connections across shards). Exposed so tests can assert the registry
  /// does not grow for the life of the server.
  [[nodiscard]] std::size_t tracked_connections() const;

  [[nodiscard]] bool draining() const { return draining_.load(); }

  [[nodiscard]] FrontMode front() const { return options_.front; }

 private:
  void accept_loop();
  void worker_loop();
  /// Writes the canned 503 + Retry-After (+ Connection: close) and closes.
  void shed_connection(net::TcpStream& stream);
  /// Converts a failure that escaped serve_connection into a canned 500
  /// (best effort — the connection may already be dead) and counts it in
  /// ServerStats::worker_errors.
  void fail_connection(net::TcpStream& stream, const char* what);

  Handler handler_;
  ServerOptions options_;
  detail::ServerCounters counters_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  // --- event front ---------------------------------------------------------
  std::unique_ptr<EventFront> event_front_;

  // --- threaded front ------------------------------------------------------
  std::unique_ptr<net::TcpListener> listener_;
  std::thread acceptor_;
  mutable std::mutex mu_;  // guards the queue + registry below
  std::condition_variable work_cv_;  // queue_ gained work / was closed
  std::condition_variable idle_cv_;  // in_flight_ dropped (drain waits here)
  std::deque<std::shared_ptr<net::TcpStream>> queue_;  // sbqlint:guarded_by(mu_)
  bool queue_closed_ = false;                          // sbqlint:guarded_by(mu_)
  std::size_t in_flight_ = 0;                          // sbqlint:guarded_by(mu_)
  std::vector<std::thread> workers_;  // fixed pool, created in the ctor
  // Live connections (queued + in service); shutdown force-closes them so
  // workers joining cannot deadlock on clients that keep their end open.
  // Expired entries are pruned as new connections register.
  std::vector<std::weak_ptr<net::TcpStream>> connections_;  // sbqlint:guarded_by(mu_)
};

}  // namespace sbq::http
