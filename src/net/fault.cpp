#include "net/fault.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace sbq::net {

void FaultInjector::schedule(FaultSpec spec) {
  std::lock_guard lock(mu_);
  scripted_.push_back(Scheduled{spec, false});
}

bool FaultInjector::applies(FaultKind kind, bool is_read, bool is_write) {
  switch (kind) {
    case FaultKind::kPartialRead:
      return is_read;
    case FaultKind::kShortWrite:
      return is_write;
    case FaultKind::kTruncate:
    case FaultKind::kReset:
    case FaultKind::kCorrupt:
    case FaultKind::kStall:
      return is_read || is_write;
    case FaultKind::kNone:
      return false;
  }
  return false;
}

void FaultInjector::record(FaultKind kind) {
  ++stats_.faults_injected;
  switch (kind) {
    case FaultKind::kPartialRead: ++stats_.partial_reads; break;
    case FaultKind::kShortWrite: ++stats_.short_writes; break;
    case FaultKind::kTruncate: ++stats_.truncations; break;
    case FaultKind::kReset: ++stats_.resets; break;
    case FaultKind::kCorrupt: ++stats_.corruptions; break;
    case FaultKind::kStall: ++stats_.stalls; break;
    case FaultKind::kNone: --stats_.faults_injected; break;
  }
}

std::optional<FaultSpec> FaultInjector::next_fault(bool is_read, bool is_write) {
  std::lock_guard lock(mu_);
  const std::uint64_t op = next_op_++;

  // Scripted faults win over probabilistic ones: exact-index matches first,
  // then the oldest applicable "next op" spec.
  for (auto& entry : scripted_) {
    if (entry.consumed || entry.spec.at_op != op) continue;
    entry.consumed = true;
    record(entry.spec.kind);
    return entry.spec;
  }
  for (auto& entry : scripted_) {
    if (entry.consumed || entry.spec.at_op != FaultSpec::kNextOp) continue;
    if (!applies(entry.spec.kind, is_read, is_write)) continue;
    entry.consumed = true;
    record(entry.spec.kind);
    return entry.spec;
  }

  if (is_read && p_partial_read_ > 0.0 && rng_.chance(p_partial_read_)) {
    FaultSpec spec;
    spec.kind = FaultKind::kPartialRead;
    spec.offset = static_cast<std::size_t>(rng_.next_u64());
    record(spec.kind);
    return spec;
  }
  if (p_corrupt_ > 0.0 && rng_.chance(p_corrupt_)) {
    FaultSpec spec;
    spec.kind = FaultKind::kCorrupt;
    spec.offset = static_cast<std::size_t>(rng_.next_u64());
    spec.xor_mask = static_cast<std::uint8_t>(1 + rng_.next_below(255));
    record(spec.kind);
    return spec;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::op_count() const {
  std::lock_guard lock(mu_);
  return next_op_;
}

bool FaultInjector::exhausted() const {
  std::lock_guard lock(mu_);
  return std::all_of(scripted_.begin(), scripted_.end(),
                     [](const Scheduled& s) { return s.consumed; });
}

FaultStats FaultInjector::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void FaultInjector::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = FaultStats{};
}

// --- FaultyStream ----------------------------------------------------------

FaultyStream::FaultyStream(Stream& inner, std::shared_ptr<FaultInjector> faults)
    : inner_(inner), faults_(std::move(faults)) {
  if (!faults_) throw TransportError("FaultyStream needs an injector");
}

void FaultyStream::set_read_timeout_us(std::uint64_t timeout_us) {
  inner_.set_read_timeout_us(timeout_us);
}

std::uint64_t FaultyStream::read_timeout_us() const {
  return inner_.read_timeout_us();
}

void FaultyStream::stall_for(std::uint64_t us) {
  if (stall_) {
    stall_(us);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

std::size_t FaultyStream::read_some(void* buf, std::size_t n) {
  if (broken_) return 0;  // a truncated connection never yields more bytes
  const auto fault = faults_->next_fault(/*is_read=*/true, /*is_write=*/false);
  if (fault) {
    switch (fault->kind) {
      case FaultKind::kReset:
        broken_ = true;
        throw TransportError("injected connection reset");
      case FaultKind::kTruncate:
        broken_ = true;
        return 0;  // mid-message EOF
      case FaultKind::kStall: {
        // A stall longer than the read deadline is indistinguishable from a
        // dead peer: pass the deadline's worth of time, then time out.
        const std::uint64_t deadline = read_timeout_us();
        if (deadline > 0 && fault->stall_us >= deadline) {
          stall_for(deadline);
          throw TimeoutError("read deadline expired after " +
                             std::to_string(deadline) + "us (injected stall)");
        }
        stall_for(fault->stall_us);
        break;
      }
      case FaultKind::kPartialRead:
        if (n > 1) n = 1 + fault->offset % (n - 1);
        break;
      case FaultKind::kCorrupt: {
        const std::size_t got = inner_.read_some(buf, n);
        if (got > 0) {
          static_cast<std::uint8_t*>(buf)[fault->offset % got] ^= fault->xor_mask;
        }
        return got;
      }
      case FaultKind::kShortWrite:
      case FaultKind::kNone:
        break;
    }
  }
  return inner_.read_some(buf, n);
}

void FaultyStream::write_all(const void* buf, std::size_t n) {
  if (broken_) throw TransportError("write on reset connection");
  const auto fault = faults_->next_fault(/*is_read=*/false, /*is_write=*/true);
  if (fault) {
    switch (fault->kind) {
      case FaultKind::kReset:
        broken_ = true;
        throw TransportError("injected connection reset");
      case FaultKind::kShortWrite: {
        const std::size_t prefix = std::min(n, fault->offset);
        if (prefix > 0) inner_.write_all(buf, prefix);
        broken_ = true;
        throw TransportError("injected short write: sent " +
                             std::to_string(prefix) + " of " +
                             std::to_string(n) + " bytes");
      }
      case FaultKind::kTruncate: {
        // Let a prefix through, then kill the connection quietly — the peer
        // sees a mid-message EOF, this side keeps "succeeding" like a sender
        // whose packets vanish after the window fills.
        const std::size_t prefix = std::min(n, fault->offset);
        if (prefix > 0) inner_.write_all(buf, prefix);
        broken_ = true;
        inner_.close();
        return;
      }
      case FaultKind::kStall:
        stall_for(fault->stall_us);
        break;
      case FaultKind::kCorrupt:
        if (n > 0) {
          Bytes copy(static_cast<const std::uint8_t*>(buf),
                     static_cast<const std::uint8_t*>(buf) + n);
          copy[fault->offset % n] ^= fault->xor_mask;
          inner_.write_all(copy.data(), copy.size());
          return;
        }
        break;
      case FaultKind::kPartialRead:
      case FaultKind::kNone:
        break;
    }
  }
  inner_.write_all(buf, n);
}

void FaultyStream::close() {
  inner_.close();
}

}  // namespace sbq::net
