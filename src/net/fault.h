// Deterministic fault injection.
//
// The paper's quality loop adapts to *measured* link behavior; testing that
// loop (and the deadline/retry machinery around it) needs links that fail on
// demand and reproducibly. A FaultInjector holds a scripted scenario — an
// ordered list of faults, each bound either to a specific instrumented
// operation index or to "the next applicable operation" — plus seeded
// probabilistic knobs for sweep-style tests. Consumers draw from the shared
// operation counter:
//
//   * FaultyStream   — a Stream decorator; every read_some/write_all is one
//     instrumented operation and may suffer a partial read, short write,
//     mid-message truncation, connection reset, byte corruption, or a stall.
//   * SimLinkTransport — every simulated round trip is one operation;
//     resets/stalls/truncations/corruptions play out on the virtual clock,
//     so sim-link failure runs are fully deterministic.
//
// All randomness comes from the common seeded Rng — the same scenario spec
// replays byte-for-byte in tests and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "net/stream.h"

namespace sbq::net {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kPartialRead,  // deliver fewer bytes than asked (stream only)
  kShortWrite,   // write a prefix, then fail the connection (stream only)
  kTruncate,     // EOF mid-message; the connection yields no further bytes
  kReset,        // connection dies: streams fail immediately, sim links lose
                 // the in-flight exchange (surfaces at the read deadline)
  kCorrupt,      // XOR one payload byte in transit
  kStall,        // freeze for stall_us before the operation proceeds
};

/// One scripted fault. `at_op` binds it to an absolute operation index of the
/// injector's shared counter; the default kNextOp fires on the next operation
/// the fault kind applies to (FIFO among such specs).
struct FaultSpec {
  static constexpr std::uint64_t kNextOp = ~std::uint64_t{0};

  FaultKind kind = FaultKind::kNone;
  std::uint64_t at_op = kNextOp;
  std::uint64_t stall_us = 0;    // kStall: how long the operation freezes
  std::size_t offset = 0;        // kCorrupt: byte offset; kShortWrite/kTruncate:
                                 // bytes let through before the cut
  std::uint8_t xor_mask = 0xFF;  // kCorrupt: mask applied to the byte
};

/// What the injector actually did — assertable from tests and mirrored into
/// EndpointStats by the transports.
struct FaultStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t partial_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t truncations = 0;
  std::uint64_t resets = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t stalls = 0;
};

/// Scenario holder shared by any number of FaultyStreams and transports.
/// Thread-safe: reconnecting clients wrap a fresh stream around the same
/// injector and the scenario (and its operation counter) continues.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 1) : rng_(seed) {}

  /// Appends a scripted fault (see FaultSpec for addressing).
  void schedule(FaultSpec spec);

  /// Probability that a read delivers only part of the available bytes.
  void set_partial_read_probability(double p) { p_partial_read_ = p; }

  /// Probability that one byte of a read or write is corrupted in transit.
  void set_corrupt_probability(double p) { p_corrupt_ = p; }

  /// Draws the fault (if any) for the next instrumented operation.
  /// `is_read`/`is_write` describe the operation so kNextOp specs only fire
  /// where they apply; transports pass both true (a round trip does both).
  std::optional<FaultSpec> next_fault(bool is_read, bool is_write);

  /// Operations instrumented so far (reads + writes + round trips).
  [[nodiscard]] std::uint64_t op_count() const;

  /// True once every scripted fault has been consumed.
  [[nodiscard]] bool exhausted() const;

  [[nodiscard]] FaultStats stats() const;
  void reset_stats();

 private:
  static bool applies(FaultKind kind, bool is_read, bool is_write);
  void record(FaultKind kind);

  mutable std::mutex mu_;
  Rng rng_;
  double p_partial_read_ = 0.0;
  double p_corrupt_ = 0.0;
  std::uint64_t next_op_ = 0;
  struct Scheduled {
    FaultSpec spec;
    bool consumed = false;
  };
  std::vector<Scheduled> scripted_;
  FaultStats stats_;
};

/// Stream decorator that applies a FaultInjector's scenario to live traffic.
/// Borrows the inner stream; shares the injector so a scenario can span
/// reconnects. Read deadlines are honored: an injected stall that exceeds the
/// configured read timeout surfaces as TimeoutError exactly like a real one.
class FaultyStream final : public Stream {
 public:
  FaultyStream(Stream& inner, std::shared_ptr<FaultInjector> faults);

  std::size_t read_some(void* buf, std::size_t n) override;
  void write_all(const void* buf, std::size_t n) override;
  using Stream::write_all;
  void close() override;

  void set_read_timeout_us(std::uint64_t timeout_us) override;
  [[nodiscard]] std::uint64_t read_timeout_us() const override;

  /// How an injected stall passes time. The default sleeps the calling
  /// thread (wall clock); virtual-clock harnesses install a hook that
  /// advances their SimClock instead, keeping the run deterministic.
  using StallHandler = std::function<void(std::uint64_t stall_us)>;
  void set_stall_handler(StallHandler handler) { stall_ = std::move(handler); }

  [[nodiscard]] FaultInjector& injector() { return *faults_; }

 private:
  void stall_for(std::uint64_t us);

  Stream& inner_;
  std::shared_ptr<FaultInjector> faults_;
  StallHandler stall_;
  bool broken_ = false;  // a truncation/reset leaves the stream dead
};

}  // namespace sbq::net
