#include "net/link.h"

#include <algorithm>

#include "common/error.h"

namespace sbq::net {

void CrossTrafficSchedule::add_phase(std::uint64_t start_us, std::uint64_t end_us,
                                     double load) {
  if (end_us <= start_us) throw TransportError("traffic phase with end <= start");
  if (load < 0.0) throw TransportError("negative traffic load");
  phases_.push_back(TrafficPhase{start_us, end_us, load});
}

double CrossTrafficSchedule::load_at(std::uint64_t t_us) const {
  double load = 0.0;
  for (const auto& p : phases_) {
    if (t_us >= p.start_us && t_us < p.end_us) load = std::max(load, p.load);
  }
  return std::min(load, 0.95);  // the link never fully starves
}

LinkConfig lan_100mbps() {
  LinkConfig c;
  c.bandwidth_bps = 100e6;
  c.latency_us = 200;       // single-hop switched Ethernet
  c.per_message_us = 80;    // HTTP + kernel per-message overhead
  return c;
}

LinkConfig adsl_1mbps() {
  LinkConfig c;
  c.bandwidth_bps = 1e6;    // "peak bandwidth of about 1Mbps"
  c.latency_us = 15000;     // typical 2004-era ADSL first-hop latency
  c.per_message_us = 500;
  return c;
}

LinkModel::LinkModel(LinkConfig config, std::uint64_t jitter_seed)
    : config_(config), jitter_rng_(jitter_seed) {
  if (config_.bandwidth_bps <= 0) throw TransportError("non-positive bandwidth");
}

void LinkModel::set_cross_traffic(CrossTrafficSchedule schedule) {
  cross_traffic_ = std::move(schedule);
}

double LinkModel::available_bps(std::uint64_t t_us) const {
  return config_.bandwidth_bps * (1.0 - cross_traffic_.load_at(t_us));
}

std::uint64_t LinkModel::transfer_time_us(std::size_t bytes,
                                          std::uint64_t t_us) const {
  const double bps = available_bps(t_us);
  const double serialization_us = static_cast<double>(bytes) * 8.0 * 1e6 / bps;
  double total = static_cast<double>(config_.latency_us) +
                 static_cast<double>(config_.per_message_us) + serialization_us;
  if (config_.jitter_fraction > 0.0) {
    total *= 1.0 + jitter_rng_.uniform(-config_.jitter_fraction,
                                       config_.jitter_fraction);
  }
  return static_cast<std::uint64_t>(total);
}

}  // namespace sbq::net
