// Deterministic link models.
//
// These stand in for the paper's two testbeds — a 100 Mbps laboratory
// Ethernet and a ~1 Mbps home ADSL line — plus the iperf-style UDP
// cross-traffic the evaluation injects to perturb them. A LinkModel answers
// one question: how long does transferring N bytes starting at time T take?
// Everything else (queues, adaptation, RTT estimation) is built on top.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/sim_clock.h"

namespace sbq::net {

/// One step of background load: while active, `load` ∈ [0,1) of the link's
/// bandwidth is consumed by cross-traffic.
struct TrafficPhase {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  double load = 0.0;
};

/// Piecewise-constant background traffic, like an iperf UDP sender being
/// switched between rates during an experiment.
class CrossTrafficSchedule {
 public:
  CrossTrafficSchedule() = default;
  explicit CrossTrafficSchedule(std::vector<TrafficPhase> phases)
      : phases_(std::move(phases)) {}

  /// Adds a phase [start_us, end_us) at `load`.
  void add_phase(std::uint64_t start_us, std::uint64_t end_us, double load);

  /// Background load at time `t` (max over overlapping phases, clamped < 1).
  [[nodiscard]] double load_at(std::uint64_t t_us) const;

  [[nodiscard]] bool empty() const { return phases_.empty(); }

 private:
  std::vector<TrafficPhase> phases_;
};

/// Parameters of a point-to-point link.
struct LinkConfig {
  double bandwidth_bps = 100e6;     // payload bandwidth
  std::uint64_t latency_us = 200;   // one-way propagation + stack latency
  std::uint64_t per_message_us = 50;  // fixed per-message cost (syscalls, HTTP)
  double jitter_fraction = 0.0;     // uniform +/- jitter on transfer time
};

/// Named presets matching the paper's evaluation environments.
LinkConfig lan_100mbps();
LinkConfig adsl_1mbps();

/// Deterministic link: transfer time = latency + fixed cost + serialization
/// time at the bandwidth left over by cross-traffic, with optional jitter.
class LinkModel {
 public:
  explicit LinkModel(LinkConfig config, std::uint64_t jitter_seed = 1);

  /// Time in microseconds to move `bytes` one way starting at `t_us`.
  [[nodiscard]] std::uint64_t transfer_time_us(std::size_t bytes,
                                               std::uint64_t t_us) const;

  /// Attaches background traffic.
  void set_cross_traffic(CrossTrafficSchedule schedule);

  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Effective available bandwidth at time `t`.
  [[nodiscard]] double available_bps(std::uint64_t t_us) const;

 private:
  LinkConfig config_;
  CrossTrafficSchedule cross_traffic_;
  mutable Rng jitter_rng_;
};

}  // namespace sbq::net
