#include "net/pipe.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"

namespace sbq::net {

std::pair<std::unique_ptr<PipeStream>, std::unique_ptr<PipeStream>> make_pipe() {
  auto a_to_b = std::make_shared<PipeStream::Channel>();
  auto b_to_a = std::make_shared<PipeStream::Channel>();
  auto a = std::unique_ptr<PipeStream>(new PipeStream());
  auto b = std::unique_ptr<PipeStream>(new PipeStream());
  a->outgoing_ = a_to_b;
  a->incoming_ = b_to_a;
  b->outgoing_ = b_to_a;
  b->incoming_ = a_to_b;
  return {std::move(a), std::move(b)};
}

std::size_t PipeStream::read_some(void* buf, std::size_t n) {
  if (!incoming_) throw TransportError("read on closed pipe");
  std::unique_lock lock(incoming_->mu);
  const auto readable = [&] { return !incoming_->data.empty() || incoming_->closed; };
  if (read_timeout_us_ > 0) {
    if (!incoming_->cv.wait_for(lock, std::chrono::microseconds(read_timeout_us_),
                                readable)) {
      throw TimeoutError("read deadline expired after " +
                         std::to_string(read_timeout_us_) + "us");
    }
  } else {
    incoming_->cv.wait(lock, readable);
  }
  if (incoming_->data.empty()) return 0;  // closed and drained: EOF
  const std::size_t take = std::min(n, incoming_->data.size());
  auto* out = static_cast<std::uint8_t*>(buf);
  for (std::size_t i = 0; i < take; ++i) {
    out[i] = incoming_->data.front();
    incoming_->data.pop_front();
  }
  return take;
}

void PipeStream::write_all(const void* buf, std::size_t n) {
  if (!outgoing_) throw TransportError("write on closed pipe");
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::lock_guard lock(outgoing_->mu);
  if (outgoing_->closed) throw TransportError("write to closed pipe");
  outgoing_->data.insert(outgoing_->data.end(), p, p + n);
  outgoing_->cv.notify_all();
}

void PipeStream::close() {
  if (outgoing_) {
    std::lock_guard lock(outgoing_->mu);
    outgoing_->closed = true;
    outgoing_->cv.notify_all();
  }
  if (incoming_) {
    std::lock_guard lock(incoming_->mu);
    incoming_->closed = true;
    incoming_->cv.notify_all();
  }
}

}  // namespace sbq::net
