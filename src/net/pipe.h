// In-process duplex byte pipe.
//
// Gives tests a Stream pair with the same blocking semantics as a socket but
// no kernel involvement: what one end writes, the other reads. Used to run
// client and server threads inside one test process deterministically.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "net/stream.h"

namespace sbq::net {

class PipeStream;

/// Creates a connected pair of streams (a.write → b.read and vice versa).
std::pair<std::unique_ptr<PipeStream>, std::unique_ptr<PipeStream>> make_pipe();

/// One end of an in-process duplex pipe.
class PipeStream final : public Stream {
 public:
  std::size_t read_some(void* buf, std::size_t n) override;
  void write_all(const void* buf, std::size_t n) override;
  using Stream::write_all;
  void close() override;

  /// Read deadline via a timed condition wait; expiry throws TimeoutError.
  void set_read_timeout_us(std::uint64_t timeout_us) override {
    read_timeout_us_ = timeout_us;
  }
  [[nodiscard]] std::uint64_t read_timeout_us() const override {
    return read_timeout_us_;
  }

 private:
  friend std::pair<std::unique_ptr<PipeStream>, std::unique_ptr<PipeStream>>
  make_pipe();

  // Shared unidirectional channel.
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::uint8_t> data;
    bool closed = false;
  };

  std::shared_ptr<Channel> incoming_;
  std::shared_ptr<Channel> outgoing_;
  std::uint64_t read_timeout_us_ = 0;
};

}  // namespace sbq::net
