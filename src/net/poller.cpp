#include "net/poller.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "common/error.h"

namespace sbq::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void set_cloexec_nonblock(int fd) {
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Poller::Poller(Backend backend) {
#if defined(__linux__)
  const bool want_epoll = backend != Backend::kPoll;
#else
  (void)backend;
#endif
#if defined(__linux__)
  if (want_epoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
    wake_read_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_read_ < 0) {
      ::close(epoll_fd_);
      throw_errno("eventfd");
    }
    wake_write_ = wake_read_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev) != 0) {
      ::close(wake_read_);
      ::close(epoll_fd_);
      throw_errno("epoll_ctl(wake)");
    }
    return;
  }
#endif
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw_errno("pipe(wake)");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_cloexec_nonblock(wake_read_);
  set_cloexec_nonblock(wake_write_);
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0 && wake_write_ != wake_read_) ::close(wake_write_);
}

void Poller::add(int fd, bool want_read, bool want_write) {
  if (fd < 0) throw TransportError("Poller::add on negative fd");
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(add)");
    }
    ++watched_;
    return;
  }
#endif
  for (const Watch& w : watches_) {
    if (w.fd == fd) throw TransportError("Poller::add: fd already watched");
  }
  watches_.push_back(Watch{fd, want_read, want_write});
  ++watched_;
}

void Poller::modify(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(mod)");
    }
    return;
  }
#endif
  for (Watch& w : watches_) {
    if (w.fd == fd) {
      w.want_read = want_read;
      w.want_write = want_write;
      return;
    }
  }
  throw TransportError("Poller::modify: fd not watched");
}

void Poller::remove(int fd) {
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      throw_errno("epoll_ctl(del)");
    }
    --watched_;
    return;
  }
#endif
  const auto before = watches_.size();
  std::erase_if(watches_, [fd](const Watch& w) { return w.fd == fd; });
  if (watches_.size() == before) {
    throw TransportError("Poller::remove: fd not watched");
  }
  --watched_;
}

void Poller::drain_wake_channel() {
  // Both channels are non-blocking: read until empty.
  std::uint8_t scratch[64];
  while (::read(wake_read_, scratch, sizeof scratch) > 0) {
  }
}

std::vector<PollEvent> Poller::wait(int timeout_ms) {
  std::vector<PollEvent> out;
#if defined(__linux__)
  if (epoll_fd_ >= 0) {
    epoll_event events[128];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("epoll_wait");
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == wake_read_) {
        drain_wake_channel();
        continue;
      }
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.hangup = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return out;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(watches_.size() + 1);
  pfds.push_back(pollfd{wake_read_, POLLIN, 0});
  for (const Watch& w : watches_) {
    short interest = 0;
    if (w.want_read) interest |= POLLIN;
    if (w.want_write) interest |= POLLOUT;
    pfds.push_back(pollfd{w.fd, interest, 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("poll");
  if ((pfds[0].revents & POLLIN) != 0) drain_wake_channel();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    PollEvent ev;
    ev.fd = pfds[i].fd;
    ev.readable = (pfds[i].revents & POLLIN) != 0;
    ev.writable = (pfds[i].revents & POLLOUT) != 0;
    ev.hangup = (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return out;
}

void Poller::wake() {
  const std::uint64_t one = 1;
  // eventfd wants exactly 8 bytes; the self-pipe is happy with them too.
  // EAGAIN (pipe full / counter saturated) still means a pending wake-up.
  [[maybe_unused]] const ssize_t w = ::write(wake_write_, &one, sizeof one);
}

}  // namespace sbq::net
