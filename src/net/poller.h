// Readiness notification for the event-driven serving front.
//
// A Poller watches a set of file descriptors and reports which became
// readable or writable — the primitive that lets one thread own thousands
// of connections instead of parking one thread per blocking read. Two
// backends behind one interface:
//
//   * kEpoll — epoll(7), Linux only; O(ready) wakeups, the production path.
//   * kPoll  — poll(2), portable; O(watched) per wait, and the reference
//     implementation the epoll backend must agree with (tests run both).
//
// wait() can be interrupted from another thread with wake() (eventfd under
// epoll, a self-pipe under poll) — how worker threads hand completed
// responses back to an event runtime blocked in the kernel, and how
// shutdown interrupts every runtime at once.
//
// Thread model: add/modify/remove and wait() belong to the owning runtime
// thread; only wake() is safe to call from anywhere.
#pragma once

#include <cstddef>
#include <vector>

namespace sbq::net {

/// One readiness report. `hangup` covers both error and peer-closed
/// conditions (EPOLLERR/EPOLLHUP, POLLERR/POLLHUP/POLLNVAL): the owner
/// should tear the connection down rather than retry I/O forever.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool hangup = false;
};

class Poller {
 public:
  enum class Backend {
    kAuto,   // epoll where available, poll otherwise
    kPoll,   // portable poll(2) backend
#if defined(__linux__)
    kEpoll,  // epoll(7) backend
#endif
  };

  explicit Poller(Backend backend = Backend::kAuto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers `fd` with the given interest set. A descriptor with neither
  /// interest is still watched for hangup/error.
  void add(int fd, bool want_read, bool want_write);

  /// Replaces the interest set of a registered descriptor.
  void modify(int fd, bool want_read, bool want_write);

  /// Stops watching `fd`. Must be called before the descriptor is closed
  /// (a closed fd silently vanishes from epoll but not from the poll set).
  void remove(int fd);

  /// Blocks until at least one descriptor is ready, the timeout elapses
  /// (`timeout_ms` < 0 waits forever, 0 polls), or another thread calls
  /// wake(). A wake-up or timeout may return an empty vector.
  std::vector<PollEvent> wait(int timeout_ms);

  /// Interrupts a concurrent (or the next) wait(). Thread-safe; multiple
  /// wakes before a wait coalesce into one early return.
  void wake();

  /// Descriptors currently registered (excludes the internal wake channel).
  [[nodiscard]] std::size_t watched() const { return watched_; }

  /// True when this instance runs on epoll.
  [[nodiscard]] bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  void drain_wake_channel();

  // add/modify/remove/wait (and the state they touch) belong to the
  // owning runtime thread — the event shard loop; only wake() and the
  // write end it uses are safe to call from anywhere.
  std::size_t watched_ = 0;  // sbqlint:affine(event-shard)
  int epoll_fd_ = -1;    // epoll backend; -1 under poll
  int wake_read_ = -1;   // sbqlint:affine(event-shard)
  int wake_write_ = -1;  // self-pipe write end; == wake_read_ for eventfd

  // poll backend state: the registered interest table, rebuilt into a
  // pollfd array per wait().
  struct Watch {
    int fd;
    bool want_read;
    bool want_write;
  };
  std::vector<Watch> watches_;  // sbqlint:affine(event-shard)
};

}  // namespace sbq::net
