// Time sources.
//
// The experiments mix two notions of time: CPU work (marshalling,
// conversion, filters) is measured for real on the host, while network
// transfer time comes from a deterministic link model (DESIGN.md §3). Both
// the SOAP-binQ runtime and the QoS estimators only ever see a TimeSource,
// so the same code runs against the wall clock in examples and against the
// simulated clock in benchmark harnesses.
#pragma once

#include <cstdint>
#include <memory>

#include "common/clock.h"

namespace sbq::net {

/// Abstract clock, microsecond resolution.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  [[nodiscard]] virtual std::uint64_t now_us() const = 0;
};

/// Wall-clock time source (monotonic).
class SteadyTimeSource final : public TimeSource {
 public:
  [[nodiscard]] std::uint64_t now_us() const override {
    return steady_now_ns() / 1000;
  }
};

/// Manually advanced clock used by the link simulator.
class SimClock final : public TimeSource {
 public:
  [[nodiscard]] std::uint64_t now_us() const override { return now_us_; }

  void advance_us(std::uint64_t delta) { now_us_ += delta; }
  void set_us(std::uint64_t t) { now_us_ = t; }

 private:
  std::uint64_t now_us_ = 0;
};

}  // namespace sbq::net
