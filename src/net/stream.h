// Byte-stream abstraction under the HTTP layer.
//
// Both real TCP sockets and the in-process duplex pipe implement Stream, so
// the HTTP client/server, the Sun RPC transport, and the SOAP runtime are
// written once and run over either.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/buffer_chain.h"
#include "common/bytes.h"
#include "common/error.h"

namespace sbq::net {

/// Blocking, bidirectional byte stream.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Reads up to `n` bytes into `buf`; returns the count read, or 0 on EOF.
  /// Throws TransportError on failure.
  virtual std::size_t read_some(void* buf, std::size_t n) = 0;

  /// Writes all of `buf`; throws TransportError on failure.
  virtual void write_all(const void* buf, std::size_t n) = 0;

  /// Closes the write direction (signals EOF to the peer) and releases
  /// resources. Idempotent.
  virtual void close() = 0;

  /// Bounds how long a single read_some may block, in microseconds; once the
  /// deadline passes the read throws TimeoutError. 0 (the default) restores
  /// blocking-forever semantics. Transports without timer support ignore the
  /// deadline — callers needing a hard guarantee must pick a deadline-capable
  /// stream (TcpStream: poll; PipeStream: timed condition wait; simulated
  /// links enforce deadlines on the virtual clock at the transport layer).
  virtual void set_read_timeout_us(std::uint64_t /*timeout_us*/) {}

  /// Currently configured read timeout (0 = none).
  [[nodiscard]] virtual std::uint64_t read_timeout_us() const { return 0; }

  /// Writes every segment of `chain` in order, without flattening it first.
  /// The default walks the segments through write_all; gathering transports
  /// (TcpStream) override it with vectored I/O.
  virtual void write_chain(const BufferChain& chain) {
    for (BytesView segment : chain) {
      write_all(segment.data(), segment.size());
    }
  }

  // --- helpers over the primitives ---------------------------------------

  /// Reads exactly `n` bytes; throws TransportError on premature EOF. The
  /// message reports both the want and the progress already made so a
  /// truncation mid-message is distinguishable from a clean close.
  void read_exact(void* buf, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
      const std::size_t r = read_some(p + got, n - got);
      if (r == 0) {
        throw TransportError("unexpected EOF: wanted " + std::to_string(n) +
                             " bytes, got only " + std::to_string(got) +
                             " (" + std::to_string(n - got) + " missing)");
      }
      got += r;
    }
  }

  void write_all(BytesView v) { write_all(v.data(), v.size()); }
  void write_all(std::string_view s) { write_all(s.data(), s.size()); }
};

}  // namespace sbq::net
