#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/error.h"

namespace sbq::net {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

/// Gathers up to `max_iov` non-empty segments of `chain` into `iov`,
/// starting at segment `seg` with `consumed` bytes of it already sent.
std::size_t gather_iovecs(const BufferChain& chain, std::size_t seg,
                          std::size_t consumed, iovec* iov,
                          std::size_t max_iov) {
  std::size_t count = 0;
  const std::size_t nsegs = chain.segment_count();
  for (std::size_t i = seg; i < nsegs && count < max_iov; ++i) {
    BytesView v = chain.segment(i);
    if (i == seg) v = v.subspan(consumed);
    if (v.empty()) continue;
    iov[count].iov_base = const_cast<std::uint8_t*>(v.data());
    iov[count].iov_len = v.size();
    ++count;
  }
  return count;
}

/// Advances (seg, consumed) by `written` bytes, skipping emptied segments.
void advance_cursor(const BufferChain& chain, std::size_t& seg,
                    std::size_t& consumed, std::size_t written) {
  const std::size_t nsegs = chain.segment_count();
  while (seg < nsegs && written > 0) {
    const std::size_t seg_left = chain.segment(seg).size() - consumed;
    if (written >= seg_left) {
      written -= seg_left;
      ++seg;
      consumed = 0;
    } else {
      consumed += written;
      written = 0;
    }
  }
  while (seg < nsegs && chain.segment(seg).size() == consumed) {
    ++seg;  // skip segments fully sent (covers empty ones too)
    consumed = 0;
  }
}
}  // namespace

std::unique_ptr<TcpStream> TcpStream::connect(const std::string& host,
                                              std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpStream>(fd);
}

TcpStream::~TcpStream() {
  close();
}

std::size_t TcpStream::read_some(void* buf, std::size_t n) {
  const int fd = fd_.load();
  if (fd < 0) throw TransportError("read on closed stream");
  if (read_timeout_us_ > 0) {
    // Wait for readability up to the deadline; the deadline spans the whole
    // wait even when poll() is interrupted by signals.
    const std::uint64_t deadline_ns = steady_now_ns() + read_timeout_us_ * 1000;
    for (;;) {
      const std::uint64_t now_ns = steady_now_ns();
      if (now_ns >= deadline_ns) {
        throw TimeoutError("read deadline expired after " +
                           std::to_string(read_timeout_us_) + "us");
      }
      pollfd pfd{fd, POLLIN, 0};
      const auto left_ms =
          static_cast<int>((deadline_ns - now_ns + 999'999) / 1'000'000);
      const int ready = ::poll(&pfd, 1, left_ms);
      if (ready > 0) break;
      if (ready == 0) {
        throw TimeoutError("read deadline expired after " +
                           std::to_string(read_timeout_us_) + "us");
      }
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
  }
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    throw_errno("read");
  }
}

std::size_t TcpStream::read_some_nonblocking(void* buf, std::size_t n,
                                             bool& would_block) {
  would_block = false;
  const int fd = fd_.load();
  if (fd < 0) throw TransportError("read on closed stream");
  for (;;) {
    const ssize_t r = ::recv(fd, buf, n, MSG_DONTWAIT);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block = true;
      return 0;
    }
    throw_errno("recv");
  }
}

void TcpStream::wait_writable(int fd, std::uint64_t deadline_ns) const {
  for (;;) {
    const std::uint64_t now_ns = steady_now_ns();
    if (now_ns >= deadline_ns) {
      throw TimeoutError("write deadline expired after " +
                         std::to_string(write_timeout_us_) + "us");
    }
    pollfd pfd{fd, POLLOUT, 0};
    const auto left_ms =
        static_cast<int>((deadline_ns - now_ns + 999'999) / 1'000'000);
    const int ready = ::poll(&pfd, 1, left_ms);
    if (ready > 0) return;
    if (ready == 0) {
      throw TimeoutError("write deadline expired after " +
                         std::to_string(write_timeout_us_) + "us");
    }
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void TcpStream::write_all(const void* buf, std::size_t n) {
  const int fd = fd_.load();
  if (fd < 0) throw TransportError("write on closed stream");
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  if (write_timeout_us_ > 0) {
    // Deadline mode: non-blocking sends with a POLLOUT wait between them,
    // re-armed on every byte of progress (bounds stall, not transfer time).
    std::uint64_t deadline_ns = steady_now_ns() + write_timeout_us_ * 1000;
    while (sent < n) {
      const ssize_t w = ::send(fd, p + sent, n - sent, MSG_DONTWAIT);
      if (w > 0) {
        sent += static_cast<std::size_t>(w);
        deadline_ns = steady_now_ns() + write_timeout_us_ * 1000;
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_writable(fd, deadline_ns);
        continue;
      }
      throw_errno("send");
    }
    return;
  }
  while (sent < n) {
    const ssize_t w = ::write(fd, p + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(w);
  }
}

void TcpStream::write_chain(const BufferChain& chain) {
  const int fd = fd_.load();
  if (fd < 0) throw TransportError("write on closed stream");
  // Gather up to kBatch segments per writev(); resume mid-segment after a
  // short write by advancing the cursor.
  constexpr std::size_t kBatch = 64;  // well under any IOV_MAX
  iovec iov[kBatch];
  std::size_t seg = 0;
  const std::size_t nsegs = chain.segment_count();
  std::size_t consumed_in_seg = 0;  // bytes of segment `seg` already sent
  const bool deadline_mode = write_timeout_us_ > 0;
  std::uint64_t deadline_ns =
      deadline_mode ? steady_now_ns() + write_timeout_us_ * 1000 : 0;
  while (seg < nsegs) {
    const std::size_t count =
        gather_iovecs(chain, seg, consumed_in_seg, iov, kBatch);
    if (count == 0) break;  // nothing but empty segments left
    ssize_t w;
    if (deadline_mode) {
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = count;
      w = ::sendmsg(fd, &msg, MSG_DONTWAIT);
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_writable(fd, deadline_ns);
        continue;
      }
    } else {
      w = ::writev(fd, iov, static_cast<int>(count));
    }
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno(deadline_mode ? "sendmsg" : "writev");
    }
    if (deadline_mode && w > 0) {
      deadline_ns = steady_now_ns() + write_timeout_us_ * 1000;
    }
    advance_cursor(chain, seg, consumed_in_seg, static_cast<std::size_t>(w));
  }
}

std::size_t TcpStream::write_chain_some(const BufferChain& chain,
                                        std::size_t from, bool& would_block) {
  would_block = false;
  const int fd = fd_.load();
  if (fd < 0) throw TransportError("write on closed stream");
  // Locate the (segment, offset) cursor for the absolute byte offset.
  std::size_t seg = 0;
  std::size_t consumed_in_seg = 0;
  advance_cursor(chain, seg, consumed_in_seg, from);
  const std::size_t nsegs = chain.segment_count();
  std::size_t written_total = 0;
  constexpr std::size_t kBatch = 64;
  iovec iov[kBatch];
  while (seg < nsegs) {
    const std::size_t count =
        gather_iovecs(chain, seg, consumed_in_seg, iov, kBatch);
    if (count == 0) break;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t w = ::sendmsg(fd, &msg, MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        would_block = true;
        return written_total;
      }
      throw_errno("sendmsg");
    }
    written_total += static_cast<std::size_t>(w);
    advance_cursor(chain, seg, consumed_in_seg, static_cast<std::size_t>(w));
  }
  return written_total;
}

void TcpStream::set_nonblocking(bool enabled) {
  const int fd = fd_.load();
  if (fd < 0) throw TransportError("set_nonblocking on closed stream");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) throw_errno("fcntl(F_SETFL)");
}

void TcpStream::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void TcpStream::shutdown_io() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

TcpListener::TcpListener(std::uint16_t port, const Options& options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (options.reuse_port) {
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      throw_errno("setsockopt(SO_REUSEPORT)");
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd_, options.backlog) != 0) throw_errno("listen");
  if (options.nonblocking) {
    const int flags = ::fcntl(fd_.load(), F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd_.load(), F_SETFL, flags | O_NONBLOCK) != 0) {
      throw_errno("fcntl(listener O_NONBLOCK)");
    }
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  close();
}

std::unique_ptr<TcpStream> TcpListener::accept() {
  const int fd = fd_.load();
  if (fd < 0) return nullptr;
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto stream = std::make_unique<TcpStream>(client);
      stream->set_read_timeout_us(accepted_read_timeout_us_);
      return stream;
    }
    if (errno == EINTR) continue;
    // Closed from another thread: report end-of-listening, not an error.
    if (errno == EBADF || errno == EINVAL) return nullptr;
    throw_errno("accept");
  }
}

std::unique_ptr<TcpStream> TcpListener::try_accept(bool& would_block) {
  would_block = false;
  const int fd = fd_.load();
  if (fd < 0) return nullptr;
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto stream = std::make_unique<TcpStream>(client);
      stream->set_read_timeout_us(accepted_read_timeout_us_);
      return stream;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block = true;
      return nullptr;
    }
    if (errno == EBADF || errno == EINVAL) return nullptr;
    throw_errno("accept");
  }
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace sbq::net
