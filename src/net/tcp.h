// Real TCP sockets (POSIX) behind the Stream interface.
//
// Used by the examples and the end-to-end integration tests; benchmark
// harnesses use the deterministic link models instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/stream.h"

namespace sbq::net {

/// Connected TCP socket.
class TcpStream final : public Stream {
 public:
  /// Connects to host:port (IPv4 dotted or "localhost").
  static std::unique_ptr<TcpStream> connect(const std::string& host, std::uint16_t port);

  /// Wraps an already-connected file descriptor (takes ownership).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  std::size_t read_some(void* buf, std::size_t n) override;
  void write_all(const void* buf, std::size_t n) override;
  using Stream::write_all;
  /// Read deadline via poll(2) before each read; expiry throws TimeoutError.
  void set_read_timeout_us(std::uint64_t timeout_us) override {
    read_timeout_us_ = timeout_us;
  }
  [[nodiscard]] std::uint64_t read_timeout_us() const override {
    return read_timeout_us_;
  }
  /// Vectored send: the whole chain goes to the kernel in writev() batches,
  /// so multi-segment messages need neither a user-space concatenation nor
  /// one syscall per segment.
  void write_chain(const BufferChain& chain) override;
  void close() override;

  /// Shuts down both directions without releasing the descriptor —
  /// unblocks a reader in another thread (used by Server::shutdown()).
  void shutdown_io();

 private:
  // Atomic because close() (the owning thread) and shutdown_io() (a
  // server draining from another thread) may race; each I/O call snapshots
  // the descriptor once.
  std::atomic<int> fd_{-1};
  std::uint64_t read_timeout_us_ = 0;
};

/// Listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; `port` 0 picks an ephemeral port.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection; returns nullptr once closed.
  std::unique_ptr<TcpStream> accept();

  /// Read deadline applied to every stream accept() returns from now on
  /// (0 = none). Closes the window between accept and the first armed read:
  /// a peer that connects and never sends cannot hold a blocking reader
  /// forever, even before the serving layer configures its own deadlines.
  void set_accepted_read_timeout_us(std::uint64_t timeout_us) {
    accepted_read_timeout_us_ = timeout_us;
  }

  /// Port actually bound (after ephemeral resolution).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Unblocks pending accept() calls and closes the socket.
  void close();

 private:
  // Atomic: close() runs from the shutdown path while the acceptor thread
  // is blocked in (or entering) accept().
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::uint64_t accepted_read_timeout_us_ = 0;
};

}  // namespace sbq::net
