// Real TCP sockets (POSIX) behind the Stream interface.
//
// Used by the examples and the end-to-end integration tests; benchmark
// harnesses use the deterministic link models instead. Besides the blocking
// Stream surface, TcpStream/TcpListener expose a non-blocking side —
// set_nonblocking(), read_some_nonblocking(), write_chain_some(),
// try_accept(), fd() — which is what the event-driven serving front
// (http::EventFront + net::Poller) drives; blocking callers never see it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/stream.h"

namespace sbq::net {

/// Connected TCP socket.
class TcpStream final : public Stream {
 public:
  /// Connects to host:port (IPv4 dotted or "localhost").
  static std::unique_ptr<TcpStream> connect(const std::string& host, std::uint16_t port);

  /// Wraps an already-connected file descriptor (takes ownership).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  std::size_t read_some(void* buf, std::size_t n) override;
  void write_all(const void* buf, std::size_t n) override;
  using Stream::write_all;
  /// Read deadline via poll(2) before each read; expiry throws TimeoutError.
  void set_read_timeout_us(std::uint64_t timeout_us) override {
    read_timeout_us_ = timeout_us;
  }
  [[nodiscard]] std::uint64_t read_timeout_us() const override {
    return read_timeout_us_;
  }
  /// Write deadline: with a non-zero deadline every write_all/write_chain
  /// sends non-blockingly and polls for POLLOUT between attempts, so a peer
  /// that stops draining its receive window surfaces as TimeoutError instead
  /// of parking the writer forever. The deadline re-arms whenever the kernel
  /// accepts bytes — it bounds *stall*, not total transfer time, so a slow
  /// but live peer never trips it. 0 (default) = block forever.
  void set_write_timeout_us(std::uint64_t timeout_us) {
    write_timeout_us_ = timeout_us;
  }
  [[nodiscard]] std::uint64_t write_timeout_us() const {
    return write_timeout_us_;
  }
  /// Vectored send: the whole chain goes to the kernel in writev() batches,
  /// so multi-segment messages need neither a user-space concatenation nor
  /// one syscall per segment.
  void write_chain(const BufferChain& chain) override;
  void close() override;

  /// Shuts down both directions without releasing the descriptor —
  /// unblocks a reader in another thread (used by Server::shutdown()).
  void shutdown_io();

  // --- non-blocking surface (event front) ---------------------------------

  /// The underlying descriptor (-1 once closed) for readiness registration.
  [[nodiscard]] int fd() const { return fd_.load(); }

  /// Switches the socket between blocking and O_NONBLOCK modes.
  void set_nonblocking(bool enabled);

  /// One non-blocking read attempt. Returns the byte count read; 0 with
  /// `would_block` set means no bytes were available, 0 with it clear means
  /// EOF. Throws TransportError on failure.
  std::size_t read_some_nonblocking(void* buf, std::size_t n, bool& would_block);

  /// One non-blocking vectored write of `chain` starting at absolute byte
  /// offset `from`; returns the bytes accepted by the kernel this call
  /// (possibly 0 with `would_block` set). The caller resumes with
  /// `from + returned` once the poller reports writability again.
  std::size_t write_chain_some(const BufferChain& chain, std::size_t from,
                               bool& would_block);

 private:
  /// Polls for writability until `deadline_ns`; throws TimeoutError on expiry.
  void wait_writable(int fd, std::uint64_t deadline_ns) const;

  // Atomic because close() (the owning thread) and shutdown_io() (a
  // server draining from another thread) may race; each I/O call snapshots
  // the descriptor once.
  std::atomic<int> fd_{-1};
  std::uint64_t read_timeout_us_ = 0;
  std::uint64_t write_timeout_us_ = 0;
};

/// Listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  struct Options {
    /// SO_REUSEPORT: lets N listeners bind the same port, each receiving an
    /// accept shard from the kernel — one listener per event runtime.
    bool reuse_port = false;
    /// O_NONBLOCK on the listening socket (accept via try_accept()).
    bool nonblocking = false;
    /// listen(2) backlog.
    int backlog = 64;
  };

  /// Binds and listens; `port` 0 picks an ephemeral port.
  explicit TcpListener(std::uint16_t port) : TcpListener(port, Options{}) {}
  TcpListener(std::uint16_t port, const Options& options);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection; returns nullptr once closed.
  std::unique_ptr<TcpStream> accept();

  /// Non-blocking accept: a connection if one is pending, else nullptr with
  /// `would_block` set. nullptr with `would_block` clear means the listener
  /// is closed. (On a blocking listener this still blocks like accept().)
  std::unique_ptr<TcpStream> try_accept(bool& would_block);

  /// Read deadline applied to every stream accept() returns from now on
  /// (0 = none). Closes the window between accept and the first armed read:
  /// a peer that connects and never sends cannot hold a blocking reader
  /// forever, even before the serving layer configures its own deadlines.
  void set_accepted_read_timeout_us(std::uint64_t timeout_us) {
    accepted_read_timeout_us_ = timeout_us;
  }

  /// Port actually bound (after ephemeral resolution).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The listening descriptor (-1 once closed) for readiness registration.
  [[nodiscard]] int fd() const { return fd_.load(); }

  /// Unblocks pending accept() calls and closes the socket.
  void close();

 private:
  // Atomic: close() runs from the shutdown path while the acceptor thread
  // is blocked in (or entering) accept().
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::uint64_t accepted_read_timeout_us_ = 0;
};

}  // namespace sbq::net
