#include "pbio/decode.h"

#include <cstring>

#include "common/error.h"
#include "pbio/detail.h"

namespace sbq::pbio {

namespace {

struct RawVarArray {
  std::uint32_t count;
  const void* data;
};

class Decoder {
 public:
  Decoder(ByteReader& reader, ByteOrder order, Arena& arena)
      : reader_(reader), order_(order), arena_(arena) {}

  /// Decodes one record of `wire_format`, materializing into `native_format`.
  std::uint8_t* decode_record(const FormatDesc& wire_format,
                              const FormatDesc& native_format) {
    auto* record =
        static_cast<std::uint8_t*>(arena_.allocate(native_format.native_size, 16));
    std::memset(record, 0, native_format.native_size);
    for (const FieldDesc& wire_field : wire_format.fields) {
      const FieldDesc* native_field = native_format.field(wire_field.name);
      decode_field(wire_field, native_field, record);
    }
    return record;
  }

 private:
  /// Decodes one wire field; writes into the record when the receiver has a
  /// matching field, otherwise consumes and discards the wire bytes.
  void decode_field(const FieldDesc& wire_field, const FieldDesc* native_field,
                    std::uint8_t* record) {
    std::uint8_t* dst =
        native_field == nullptr ? nullptr : record + native_field->offset;
    switch (wire_field.arity) {
      case Arity::kScalar:
        if (wire_field.kind == TypeKind::kString) {
          decode_string(wire_field, native_field, dst);
        } else if (wire_field.kind == TypeKind::kStruct) {
          decode_embedded_struct(wire_field, native_field, dst);
        } else {
          const detail::Scalar s = detail::read_scalar(reader_, wire_field.kind, order_);
          if (dst != nullptr) detail::store_scalar(dst, native_field->kind, s);
        }
        break;
      case Arity::kFixedArray:
        decode_elements(wire_field, native_field, dst, wire_field.fixed_count,
                        /*var_array=*/false);
        break;
      case Arity::kVarArray: {
        const std::uint32_t count = reader_.read_u32(order_);
        decode_elements(wire_field, native_field, dst, count, /*var_array=*/true);
        break;
      }
    }
  }

  void decode_string(const FieldDesc& wire_field, const FieldDesc* native_field,
                     std::uint8_t* dst) {
    const std::uint32_t len = reader_.read_u32(order_);
    const BytesView chars = reader_.read_view(len);
    if (dst == nullptr) return;
    if (native_field->kind != TypeKind::kString) {
      throw CodecError("field '" + wire_field.name + "': string vs non-string");
    }
    char* copy = arena_.allocate_array<char>(len + 1);
    std::memcpy(copy, chars.data(), len);
    copy[len] = '\0';
    const char* ptr = copy;
    std::memcpy(dst, &ptr, sizeof ptr);
  }

  void decode_embedded_struct(const FieldDesc& wire_field,
                              const FieldDesc* native_field, std::uint8_t* dst) {
    if (native_field != nullptr && native_field->kind != TypeKind::kStruct) {
      throw CodecError("field '" + wire_field.name + "': struct vs non-struct");
    }
    if (native_field == nullptr) {
      skip_record(*wire_field.struct_format);
      return;
    }
    // Decode in place: embedded structs occupy their slot directly.
    decode_record_into(*wire_field.struct_format, *native_field->struct_format, dst);
  }

  void decode_record_into(const FormatDesc& wire_format,
                          const FormatDesc& native_format, std::uint8_t* dst) {
    for (const FieldDesc& wf : wire_format.fields) {
      decode_field(wf, native_format.field(wf.name), dst);
    }
  }

  void decode_elements(const FieldDesc& wire_field, const FieldDesc* native_field,
                       std::uint8_t* dst, std::uint32_t count, bool var_array) {
    if (native_field != nullptr && native_field->kind != wire_field.kind &&
        (wire_field.kind == TypeKind::kStruct ||
         native_field->kind == TypeKind::kStruct)) {
      throw CodecError("field '" + wire_field.name + "': struct vs scalar array");
    }

    // Receiver storage: for var arrays allocate elements from the arena; for
    // fixed arrays write in place, clipping to the receiver's count.
    std::uint8_t* elems = nullptr;
    std::uint32_t writable = 0;
    if (native_field != nullptr) {
      if (var_array) {
        if (native_field->arity != Arity::kVarArray) {
          throw CodecError("field '" + wire_field.name + "': var array vs scalar");
        }
        const std::size_t elem_size = native_field->element_size();
        elems = static_cast<std::uint8_t*>(
            arena_.allocate(std::size_t{count} * elem_size, 16));
        std::memset(elems, 0, std::size_t{count} * elem_size);
        RawVarArray va{count, elems};
        std::memcpy(dst, &va, sizeof va);
        writable = count;
      } else {
        if (native_field->arity != Arity::kFixedArray) {
          throw CodecError("field '" + wire_field.name + "': fixed array vs scalar");
        }
        elems = dst;
        writable = native_field->fixed_count;
      }
    }

    const std::size_t native_elem =
        native_field == nullptr ? 0 : native_field->element_size();

    if (wire_field.kind == TypeKind::kStruct) {
      for (std::uint32_t i = 0; i < count; ++i) {
        if (elems != nullptr && i < writable) {
          decode_record_into(*wire_field.struct_format,
                             *native_field->struct_format, elems + i * native_elem);
        } else {
          skip_record(*wire_field.struct_format);
        }
      }
      return;
    }

    // Scalar elements. Fast path: same kind, same order — block copy.
    const std::size_t wire_elem = scalar_size(wire_field.kind);
    if (native_field != nullptr && native_field->kind == wire_field.kind &&
        (order_ == host_byte_order() || wire_elem == 1)) {
      const std::uint32_t n = std::min(count, writable);
      const BytesView block = reader_.read_view(std::size_t{count} * wire_elem);
      std::memcpy(elems, block.data(), std::size_t{n} * wire_elem);
      return;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const detail::Scalar s = detail::read_scalar(reader_, wire_field.kind, order_);
      if (elems != nullptr && i < writable) {
        detail::store_scalar(elems + i * native_elem, native_field->kind, s);
      }
    }
  }

  /// Consumes a record of `wire_format` without materializing it.
  void skip_record(const FormatDesc& wire_format) {
    for (const FieldDesc& wf : wire_format.fields) {
      decode_field(wf, nullptr, nullptr);
    }
  }

  ByteReader& reader_;
  ByteOrder order_;
  Arena& arena_;
};

}  // namespace

void* decode_payload(BytesView payload, ByteOrder sender_order,
                     const FormatDesc& sender_format,
                     const FormatDesc& receiver_format, Arena& arena) {
  ByteReader reader(payload);
  Decoder decoder(reader, sender_order, arena);
  std::uint8_t* record = decoder.decode_record(sender_format, receiver_format);
  if (!reader.exhausted()) {
    throw CodecError("PBIO payload has " + std::to_string(reader.remaining()) +
                     " trailing bytes");
  }
  return record;
}

void* decode_message(BytesView message, const FormatDesc& sender_format,
                     const FormatDesc& receiver_format, Arena& arena) {
  ByteReader reader(message);
  const WireHeader header = read_header(reader);
  if (header.format_id != sender_format.format_id()) {
    throw CodecError("message format id does not match sender format");
  }
  const BytesView payload = reader.read_view(header.payload_length);
  return decode_payload(payload, header.sender_order, sender_format,
                        receiver_format, arena);
}

}  // namespace sbq::pbio
