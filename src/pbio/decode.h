// PBIO "receiver makes right" decoding.
//
// The receiver decodes a payload described by the SENDER's format into a
// record laid out per the RECEIVER's format. When the two formats are
// structurally identical and the byte orders match, this is a straight
// sequential copy; otherwise the decoder
//   * swaps byte order per scalar (foreign-endian sender),
//   * matches fields by NAME, so senders and receivers may disagree about
//     field order or about which fields exist at all,
//   * converts between numeric kinds (i32 → i64, f32 → f64, ...),
//   * zero-fills receiver fields the sender did not supply — the exact
//     mechanism SOAP-binQ's quality layer reuses to pad reduced-quality
//     messages back to the application's full message type.
//
// All storage for the decoded record (struct bytes, array elements, string
// characters) comes from the caller's Arena and lives until the arena is
// reset.
#pragma once

#include "common/arena.h"
#include "common/bytes.h"
#include "pbio/encode.h"
#include "pbio/format.h"

namespace sbq::pbio {

/// Decodes a full message (header + payload). `sender_format` must be the
/// format announced under the header's format id (callers resolve it through
/// their FormatCache). Returns the record in `receiver_format` layout.
void* decode_message(BytesView message, const FormatDesc& sender_format,
                     const FormatDesc& receiver_format, Arena& arena);

/// Decodes just a payload that is already known to use `sender_format`.
void* decode_payload(BytesView payload, ByteOrder sender_order,
                     const FormatDesc& sender_format,
                     const FormatDesc& receiver_format, Arena& arena);

/// Typed convenience wrapper.
template <typename T>
const T* decode_message_as(BytesView message, const FormatDesc& sender_format,
                           const FormatDesc& receiver_format, Arena& arena) {
  static_assert(std::is_trivially_copyable_v<T>);
  return static_cast<const T*>(
      decode_message(message, sender_format, receiver_format, arena));
}

}  // namespace sbq::pbio
