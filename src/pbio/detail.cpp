#include "pbio/detail.h"

#include <cstring>

#include "common/error.h"

namespace sbq::pbio::detail {

Scalar read_scalar(ByteReader& reader, TypeKind kind, ByteOrder order) {
  Scalar s{};
  switch (kind) {
    case TypeKind::kInt32:
      s.cls = Scalar::Class::kSigned;
      s.i = static_cast<std::int32_t>(reader.read_u32(order));
      break;
    case TypeKind::kInt64:
      s.cls = Scalar::Class::kSigned;
      s.i = static_cast<std::int64_t>(reader.read_u64(order));
      break;
    case TypeKind::kUInt32:
      s.cls = Scalar::Class::kUnsigned;
      s.u = reader.read_u32(order);
      break;
    case TypeKind::kUInt64:
      s.cls = Scalar::Class::kUnsigned;
      s.u = reader.read_u64(order);
      break;
    case TypeKind::kFloat32:
      s.cls = Scalar::Class::kFloat;
      s.f = reader.read_f32(order);
      break;
    case TypeKind::kFloat64:
      s.cls = Scalar::Class::kFloat;
      s.f = reader.read_f64(order);
      break;
    case TypeKind::kChar:
      s.cls = Scalar::Class::kUnsigned;
      s.u = reader.read_u8();
      break;
    default:
      throw CodecError("read_scalar: not a scalar kind");
  }
  return s;
}

void store_scalar(std::uint8_t* dst, TypeKind kind, const Scalar& s) {
  auto as_i64 = [&]() -> std::int64_t {
    switch (s.cls) {
      case Scalar::Class::kSigned: return s.i;
      case Scalar::Class::kUnsigned: return static_cast<std::int64_t>(s.u);
      case Scalar::Class::kFloat: return static_cast<std::int64_t>(s.f);
    }
    return 0;
  };
  auto as_u64 = [&]() -> std::uint64_t {
    switch (s.cls) {
      case Scalar::Class::kSigned: return static_cast<std::uint64_t>(s.i);
      case Scalar::Class::kUnsigned: return s.u;
      case Scalar::Class::kFloat: return static_cast<std::uint64_t>(s.f);
    }
    return 0;
  };
  auto as_f64 = [&]() -> double {
    switch (s.cls) {
      case Scalar::Class::kSigned: return static_cast<double>(s.i);
      case Scalar::Class::kUnsigned: return static_cast<double>(s.u);
      case Scalar::Class::kFloat: return s.f;
    }
    return 0.0;
  };

  switch (kind) {
    case TypeKind::kInt32: {
      const auto v = static_cast<std::int32_t>(as_i64());
      std::memcpy(dst, &v, sizeof v);
      break;
    }
    case TypeKind::kInt64: {
      const auto v = as_i64();
      std::memcpy(dst, &v, sizeof v);
      break;
    }
    case TypeKind::kUInt32: {
      const auto v = static_cast<std::uint32_t>(as_u64());
      std::memcpy(dst, &v, sizeof v);
      break;
    }
    case TypeKind::kUInt64: {
      const auto v = as_u64();
      std::memcpy(dst, &v, sizeof v);
      break;
    }
    case TypeKind::kFloat32: {
      const auto v = static_cast<float>(as_f64());
      std::memcpy(dst, &v, sizeof v);
      break;
    }
    case TypeKind::kFloat64: {
      const auto v = as_f64();
      std::memcpy(dst, &v, sizeof v);
      break;
    }
    case TypeKind::kChar:
      *dst = static_cast<std::uint8_t>(as_u64());
      break;
    default:
      throw CodecError("store_scalar: not a scalar kind");
  }
}

void skip_record(ByteReader& reader, const FormatDesc& format, ByteOrder order) {
  for (const FieldDesc& field : format.fields) {
    switch (field.arity) {
      case Arity::kScalar:
        if (field.kind == TypeKind::kString) {
          reader.skip(reader.read_u32(order));
        } else if (field.kind == TypeKind::kStruct) {
          skip_record(reader, *field.struct_format, order);
        } else {
          reader.skip(scalar_size(field.kind));
        }
        break;
      case Arity::kFixedArray:
      case Arity::kVarArray: {
        const std::uint32_t count = field.arity == Arity::kFixedArray
                                        ? field.fixed_count
                                        : reader.read_u32(order);
        if (field.kind == TypeKind::kStruct) {
          for (std::uint32_t i = 0; i < count; ++i) {
            skip_record(reader, *field.struct_format, order);
          }
        } else {
          reader.skip(std::size_t{count} * scalar_size(field.kind));
        }
        break;
      }
    }
  }
}

}  // namespace sbq::pbio::detail
