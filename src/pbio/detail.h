// Internal helpers shared by the interpretive decoder (decode.cpp) and the
// compiled-plan decoder (plan.cpp). Not part of the public API.
#pragma once

#include "common/bytes.h"
#include "pbio/format.h"

namespace sbq::pbio::detail {

/// A scalar read from the wire, held in canonical 64-bit form.
struct Scalar {
  enum class Class { kSigned, kUnsigned, kFloat } cls = Class::kSigned;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double f = 0.0;
};

/// Reads one wire scalar of `kind` in `order`.
Scalar read_scalar(ByteReader& reader, TypeKind kind, ByteOrder order);

/// Stores a canonical scalar as `kind` at `dst` (host representation).
void store_scalar(std::uint8_t* dst, TypeKind kind, const Scalar& s);

/// Consumes one record of `format` from the wire without materializing it.
void skip_record(ByteReader& reader, const FormatDesc& format, ByteOrder order);

}  // namespace sbq::pbio::detail
