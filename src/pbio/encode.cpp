#include "pbio/encode.h"

#include <cstring>

#include "common/error.h"
#include "pbio/sink.h"

namespace sbq::pbio {

namespace {

using detail::sink_block;

/// Layout-compatible view of any VarArray<T>.
struct RawVarArray {
  std::uint32_t count;
  const void* data;
};
static_assert(sizeof(RawVarArray) == sizeof(VarArray<int>));
static_assert(offsetof(RawVarArray, count) == offsetof(VarArray<int>, count));
static_assert(offsetof(RawVarArray, data) == offsetof(VarArray<int>, data));

template <typename Sink>
void append_scalar(const std::uint8_t* src, TypeKind kind, Sink& out,
                   ByteOrder order) {
  switch (scalar_size(kind)) {
    case 1:
      out.append_u8(*src);
      break;
    case 4: {
      std::uint32_t v;
      std::memcpy(&v, src, 4);
      out.append_u32(v, order);
      break;
    }
    case 8: {
      std::uint64_t v;
      std::memcpy(&v, src, 8);
      out.append_u64(v, order);
      break;
    }
    default:
      throw CodecError("unsupported scalar size");
  }
}

template <typename Sink>
void encode_record(const std::uint8_t* record, const FormatDesc& format,
                   Sink& out, ByteOrder order);

template <typename Sink>
void encode_elements(const std::uint8_t* base, const FieldDesc& field,
                     std::size_t count, Sink& out, ByteOrder order) {
  const std::size_t elem = field.element_size();
  if (field.kind == TypeKind::kStruct) {
    for (std::size_t i = 0; i < count; ++i) {
      encode_record(base + i * elem, *field.struct_format, out, order);
    }
  } else if (order == host_byte_order() || elem == 1) {
    // Same-order scalar runs are a single block — the memcpy fast path that
    // makes PBIO arrays cheap to marshal, and on the chain path a borrowed
    // view into the record's own array (no copy at all).
    sink_block(out, BytesView{base, count * elem}, nullptr);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      append_scalar(base + i * elem, field.kind, out, order);
    }
  }
}

template <typename Sink>
void encode_record(const std::uint8_t* record, const FormatDesc& format,
                   Sink& out, ByteOrder order) {
  for (const FieldDesc& field : format.fields) {
    const std::uint8_t* src = record + field.offset;
    switch (field.arity) {
      case Arity::kScalar:
        if (field.kind == TypeKind::kString) {
          const char* s = nullptr;
          std::memcpy(&s, src, sizeof s);
          const std::uint32_t len =
              s == nullptr ? 0 : static_cast<std::uint32_t>(std::strlen(s));
          out.append_u32(len, order);
          if (len > 0) {
            sink_block(out, BytesView{reinterpret_cast<const std::uint8_t*>(s), len},
                       nullptr);
          }
        } else if (field.kind == TypeKind::kStruct) {
          encode_record(src, *field.struct_format, out, order);
        } else {
          append_scalar(src, field.kind, out, order);
        }
        break;
      case Arity::kFixedArray:
        encode_elements(src, field, field.fixed_count, out, order);
        break;
      case Arity::kVarArray: {
        RawVarArray va;
        std::memcpy(&va, src, sizeof va);
        out.append_u32(va.count, order);
        if (va.count > 0) {
          if (va.data == nullptr) {
            throw CodecError("var array '" + field.name + "' has count " +
                             std::to_string(va.count) + " but null data");
          }
          encode_elements(static_cast<const std::uint8_t*>(va.data), field,
                          va.count, out, order);
        }
        break;
      }
    }
  }
}

std::size_t record_wire_size(const std::uint8_t* record, const FormatDesc& format);

std::size_t elements_wire_size(const std::uint8_t* base, const FieldDesc& field,
                               std::size_t count) {
  if (field.kind == TypeKind::kStruct) {
    std::size_t total = 0;
    const std::size_t elem = field.element_size();
    for (std::size_t i = 0; i < count; ++i) {
      total += record_wire_size(base + i * elem, *field.struct_format);
    }
    return total;
  }
  return count * field.element_size();
}

std::size_t record_wire_size(const std::uint8_t* record, const FormatDesc& format) {
  std::size_t total = 0;
  for (const FieldDesc& field : format.fields) {
    const std::uint8_t* src = record + field.offset;
    switch (field.arity) {
      case Arity::kScalar:
        if (field.kind == TypeKind::kString) {
          const char* s = nullptr;
          std::memcpy(&s, src, sizeof s);
          total += 4 + (s == nullptr ? 0 : std::strlen(s));
        } else if (field.kind == TypeKind::kStruct) {
          total += record_wire_size(src, *field.struct_format);
        } else {
          total += scalar_size(field.kind);
        }
        break;
      case Arity::kFixedArray:
        total += elements_wire_size(src, field, field.fixed_count);
        break;
      case Arity::kVarArray: {
        RawVarArray va;
        std::memcpy(&va, src, sizeof va);
        total += 4;
        if (va.count > 0) {
          total += elements_wire_size(static_cast<const std::uint8_t*>(va.data),
                                      field, va.count);
        }
        break;
      }
    }
  }
  return total;
}

}  // namespace

namespace {

template <typename Reader>
WireHeader read_header_impl(Reader& reader) {
  WireHeader h;
  h.format_id = reader.read_u64(ByteOrder::kLittle);
  const std::uint8_t order = reader.read_u8();
  if (order > 1) throw CodecError("bad byte-order tag in PBIO header");
  h.sender_order = static_cast<ByteOrder>(order);
  h.payload_length = reader.read_u32(ByteOrder::kLittle);
  if (h.payload_length > reader.remaining()) {
    throw CodecError("PBIO payload length exceeds message");
  }
  return h;
}

}  // namespace

WireHeader read_header(ByteReader& reader) { return read_header_impl(reader); }

WireHeader read_header(ChainReader& reader) { return read_header_impl(reader); }

void encode_native(const void* record, const FormatDesc& format, ByteBuffer& out,
                   ByteOrder wire_order) {
  out.append_u64(format.format_id(), ByteOrder::kLittle);
  out.append_u8(static_cast<std::uint8_t>(wire_order));
  const std::size_t len_pos = out.size();
  out.append_u32(0, ByteOrder::kLittle);
  const std::size_t payload_start = out.size();
  encode_record(static_cast<const std::uint8_t*>(record), format, out, wire_order);
  out.patch_u32(len_pos, static_cast<std::uint32_t>(out.size() - payload_start),
                ByteOrder::kLittle);
}

Bytes encode_message(const void* record, const FormatDesc& format,
                     ByteOrder wire_order) {
  ByteBuffer out(WireHeader::kSize + wire_size(record, format));
  encode_native(record, format, out, wire_order);
  return out.take();
}

BufferChain encode_message_chain(const void* record, const FormatDesc& format,
                                 ByteOrder wire_order) {
  // Payload length is known exactly up front (wire_size), so the header is
  // emitted complete — chains cannot be patched across segments.
  const std::size_t payload_size = wire_size(record, format);
  BufferChain chain;
  ChainWriter writer(chain);
  writer.append_u64(format.format_id(), ByteOrder::kLittle);
  writer.append_u8(static_cast<std::uint8_t>(wire_order));
  writer.append_u32(static_cast<std::uint32_t>(payload_size), ByteOrder::kLittle);
  encode_record(static_cast<const std::uint8_t*>(record), format, writer,
                wire_order);
  writer.flush();
  return chain;
}

std::size_t wire_size(const void* record, const FormatDesc& format) {
  return record_wire_size(static_cast<const std::uint8_t*>(record), format);
}

}  // namespace sbq::pbio
