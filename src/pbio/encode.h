// PBIO native-record encoding.
//
// The sender hands the encoder a pointer to a record in its own native
// layout; the encoder walks the format's fields and emits a compact,
// padding-free payload in the sender's byte order, prefixed by a small
// header. No up-translation happens on the send side — that is PBIO's
// "sender sends native, receiver makes right" discipline.
//
// Wire layout (header fields are always little-endian so the header itself
// is unambiguous; the PAYLOAD uses the sender's declared order):
//   [u64 format_id][u8 sender_byte_order][u32 payload_length][payload]
#pragma once

#include "common/buffer_chain.h"
#include "common/bytes.h"
#include "pbio/format.h"

namespace sbq::pbio {

/// Fixed-size prefix of every PBIO message.
struct WireHeader {
  FormatId format_id = 0;
  ByteOrder sender_order = ByteOrder::kLittle;
  std::uint32_t payload_length = 0;

  static constexpr std::size_t kSize = 8 + 1 + 4;
};

/// Reads and validates the header, leaving `reader` at the payload.
WireHeader read_header(ByteReader& reader);

/// Chain-aware overload for messages that were never flattened.
WireHeader read_header(ChainReader& reader);

/// Encodes the record at `record` (native layout per `format`) into `out`.
///
/// `wire_order` defaults to the host order — passing the other order
/// simulates a foreign-endian sender, which exercises the receiver-side
/// conversion path without heterogeneous hardware.
void encode_native(const void* record, const FormatDesc& format, ByteBuffer& out,
                   ByteOrder wire_order = host_byte_order());

/// Convenience: header + payload in one buffer.
Bytes encode_message(const void* record, const FormatDesc& format,
                     ByteOrder wire_order = host_byte_order());

/// Chain-emitting overload: header and small fields accumulate in staging
/// segments; same-order scalar runs large enough to matter are appended as
/// *borrowed* views straight into the record's native arrays — the caller
/// must keep `record` (and the arrays its VarArrays point to) alive for the
/// chain's lifetime. Coalesced output is byte-identical to encode_message.
BufferChain encode_message_chain(const void* record, const FormatDesc& format,
                                 ByteOrder wire_order = host_byte_order());

/// Payload size the record will occupy on the wire (exact, no encoding).
std::size_t wire_size(const void* record, const FormatDesc& format);

}  // namespace sbq::pbio
