#include "pbio/format.h"

#include <algorithm>

#include "common/error.h"

namespace sbq::pbio {

std::uint32_t scalar_size(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32:
    case TypeKind::kUInt32:
    case TypeKind::kFloat32:
      return 4;
    case TypeKind::kInt64:
    case TypeKind::kUInt64:
    case TypeKind::kFloat64:
      return 8;
    case TypeKind::kChar:
      return 1;
    case TypeKind::kString:
    case TypeKind::kStruct:
      throw CodecError("kind has no fixed scalar size");
  }
  throw CodecError("unknown TypeKind");
}

std::string_view kind_name(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32: return "i32";
    case TypeKind::kInt64: return "i64";
    case TypeKind::kUInt32: return "u32";
    case TypeKind::kUInt64: return "u64";
    case TypeKind::kFloat32: return "f32";
    case TypeKind::kFloat64: return "f64";
    case TypeKind::kChar: return "char";
    case TypeKind::kString: return "string";
    case TypeKind::kStruct: return "struct";
  }
  return "?";
}

std::uint32_t FieldDesc::element_size() const {
  switch (kind) {
    case TypeKind::kString:
      return sizeof(const char*);
    case TypeKind::kStruct:
      if (!struct_format) throw CodecError("struct field without format: " + name);
      return struct_format->native_size;
    default:
      return scalar_size(kind);
  }
}

std::uint32_t FieldDesc::alignment() const {
  if (arity == Arity::kVarArray) return alignof(VarArray<int>);
  switch (kind) {
    case TypeKind::kString:
      return alignof(const char*);
    case TypeKind::kStruct:
      if (!struct_format) throw CodecError("struct field without format: " + name);
      return struct_format->native_align;
    default:
      return scalar_size(kind);
  }
}

std::string FormatDesc::canonical() const {
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out += ',';
    first = false;
    out += f.name;
    out += ':';
    if (f.kind == TypeKind::kStruct) {
      out += f.struct_format->canonical();
    } else {
      out += kind_name(f.kind);
    }
    if (f.arity == Arity::kFixedArray) {
      out += '[';
      out += std::to_string(f.fixed_count);
      out += ']';
    } else if (f.arity == Arity::kVarArray) {
      out += "[]";
    }
  }
  out += '}';
  return out;
}

FormatId FormatDesc::format_id() const {
  // FNV-1a 64-bit over the canonical rendering.
  const std::string c = canonical();
  FormatId h = 0xCBF29CE484222325ull;
  for (unsigned char ch : c) {
    h ^= ch;
    h *= 0x100000001B3ull;
  }
  return h;
}

const FieldDesc* FormatDesc::field(std::string_view field_name) const {
  for (const auto& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

std::size_t FormatDesc::total_field_count() const {
  std::size_t n = 0;
  for (const auto& f : fields) {
    ++n;
    if (f.kind == TypeKind::kStruct) n += f.struct_format->total_field_count();
  }
  return n;
}

std::size_t FormatDesc::nesting_depth() const {
  std::size_t depth = 1;
  for (const auto& f : fields) {
    if (f.kind == TypeKind::kStruct) {
      depth = std::max(depth, 1 + f.struct_format->nesting_depth());
    }
  }
  return depth;
}

FormatBuilder::FormatBuilder(std::string name) {
  desc_.name = std::move(name);
}

FieldDesc& FormatBuilder::push(std::string name, TypeKind kind, Arity arity) {
  for (const auto& f : desc_.fields) {
    if (f.name == name) throw CodecError("duplicate field: " + name);
  }
  FieldDesc f;
  f.name = std::move(name);
  f.kind = kind;
  f.arity = arity;
  desc_.fields.push_back(std::move(f));
  return desc_.fields.back();
}

FormatBuilder& FormatBuilder::add_scalar(std::string name, TypeKind kind) {
  if (kind == TypeKind::kString || kind == TypeKind::kStruct) {
    throw CodecError("add_scalar: use add_string/add_struct for " + name);
  }
  push(std::move(name), kind, Arity::kScalar);
  return *this;
}

FormatBuilder& FormatBuilder::add_fixed_array(std::string name, TypeKind kind,
                                              std::uint32_t count) {
  if (kind == TypeKind::kString || kind == TypeKind::kStruct) {
    throw CodecError("add_fixed_array: use add_struct_fixed_array for " + name);
  }
  if (count == 0) throw CodecError("fixed array of zero elements: " + name);
  FieldDesc& f = push(std::move(name), kind, Arity::kFixedArray);
  f.fixed_count = count;
  return *this;
}

FormatBuilder& FormatBuilder::add_var_array(std::string name, TypeKind kind) {
  if (kind == TypeKind::kString) {
    throw CodecError("variable arrays of strings are not supported: " + name);
  }
  push(std::move(name), kind, Arity::kVarArray);
  return *this;
}

FormatBuilder& FormatBuilder::add_string(std::string name) {
  push(std::move(name), TypeKind::kString, Arity::kScalar);
  return *this;
}

FormatBuilder& FormatBuilder::add_struct(std::string name, FormatPtr format) {
  if (!format) throw CodecError("add_struct: null format for " + name);
  FieldDesc& f = push(std::move(name), TypeKind::kStruct, Arity::kScalar);
  f.struct_format = std::move(format);
  return *this;
}

FormatBuilder& FormatBuilder::add_struct_var_array(std::string name, FormatPtr format) {
  if (!format) throw CodecError("add_struct_var_array: null format for " + name);
  FieldDesc& f = push(std::move(name), TypeKind::kStruct, Arity::kVarArray);
  f.struct_format = std::move(format);
  return *this;
}

FormatBuilder& FormatBuilder::add_struct_fixed_array(std::string name,
                                                     FormatPtr format,
                                                     std::uint32_t count) {
  if (!format) throw CodecError("add_struct_fixed_array: null format for " + name);
  if (count == 0) throw CodecError("fixed array of zero structs: " + name);
  FieldDesc& f = push(std::move(name), TypeKind::kStruct, Arity::kFixedArray);
  f.struct_format = std::move(format);
  f.fixed_count = count;
  return *this;
}

FormatPtr FormatBuilder::build() {
  if (desc_.fields.empty()) throw CodecError("format with no fields: " + desc_.name);
  std::uint32_t offset = 0;
  std::uint32_t max_align = 1;
  for (auto& f : desc_.fields) {
    const std::uint32_t align = f.alignment();
    max_align = std::max(max_align, align);
    offset = (offset + align - 1) & ~(align - 1);
    f.offset = offset;
    switch (f.arity) {
      case Arity::kScalar:
        f.size = f.element_size();
        break;
      case Arity::kFixedArray:
        f.size = f.element_size() * f.fixed_count;
        break;
      case Arity::kVarArray:
        f.size = sizeof(VarArray<int>);
        break;
    }
    offset += f.size;
  }
  desc_.native_align = max_align;
  desc_.native_size = (offset + max_align - 1) & ~(max_align - 1);
  return std::make_shared<const FormatDesc>(std::move(desc_));
}

namespace {

void serialize_into(const FormatDesc& format, ByteBuffer& out) {
  out.append_u32(static_cast<std::uint32_t>(format.name.size()), ByteOrder::kLittle);
  out.append(format.name);
  out.append_u32(static_cast<std::uint32_t>(format.fields.size()), ByteOrder::kLittle);
  for (const auto& f : format.fields) {
    out.append_u32(static_cast<std::uint32_t>(f.name.size()), ByteOrder::kLittle);
    out.append(f.name);
    out.append_u8(static_cast<std::uint8_t>(f.kind));
    out.append_u8(static_cast<std::uint8_t>(f.arity));
    out.append_u32(f.fixed_count, ByteOrder::kLittle);
    if (f.kind == TypeKind::kStruct) serialize_into(*f.struct_format, out);
  }
}

FormatPtr deserialize_from(ByteReader& reader) {
  FormatBuilder builder(reader.read_string(reader.read_u32(ByteOrder::kLittle)));
  const std::uint32_t field_count = reader.read_u32(ByteOrder::kLittle);
  if (field_count > 100000) throw CodecError("format field count implausible");
  for (std::uint32_t i = 0; i < field_count; ++i) {
    std::string name = reader.read_string(reader.read_u32(ByteOrder::kLittle));
    const auto kind = static_cast<TypeKind>(reader.read_u8());
    const auto arity = static_cast<Arity>(reader.read_u8());
    const std::uint32_t fixed_count = reader.read_u32(ByteOrder::kLittle);
    if (kind == TypeKind::kStruct) {
      FormatPtr sub = deserialize_from(reader);
      if (arity == Arity::kVarArray) {
        builder.add_struct_var_array(std::move(name), std::move(sub));
      } else if (arity == Arity::kScalar) {
        builder.add_struct(std::move(name), std::move(sub));
      } else {
        builder.add_struct_fixed_array(std::move(name), std::move(sub), fixed_count);
      }
    } else if (kind == TypeKind::kString) {
      builder.add_string(std::move(name));
    } else {
      switch (arity) {
        case Arity::kScalar:
          builder.add_scalar(std::move(name), kind);
          break;
        case Arity::kFixedArray:
          builder.add_fixed_array(std::move(name), kind, fixed_count);
          break;
        case Arity::kVarArray:
          builder.add_var_array(std::move(name), kind);
          break;
      }
    }
  }
  return builder.build();
}

}  // namespace

Bytes serialize_format(const FormatDesc& format) {
  ByteBuffer out;
  serialize_into(format, out);
  return out.take();
}

FormatPtr deserialize_format(BytesView bytes) {
  ByteReader reader(bytes);
  FormatPtr format = deserialize_from(reader);
  if (!reader.exhausted()) throw CodecError("trailing bytes after format description");
  return format;
}

}  // namespace sbq::pbio
