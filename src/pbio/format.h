// PBIO format descriptors ("formats").
//
// A format plays the role an XML schema plays for a document: it describes
// how a structured record is laid out. PBIO ("Portable Binary Input/Output",
// Eisenhauer et al., the paper's native data representation) lets the sender
// transmit records in its own native layout; the receiver converts only if
// its layout differs — the "receiver makes right" discipline.
//
// Differences from the historical C library, documented per DESIGN.md §3:
//  * variable-length arrays are represented natively as an inline
//    {count, pointer} pair (see VarArray<T>) instead of referencing a
//    separate integer length field by name; this keeps the native and
//    dynamic (Value) paths symmetric,
//  * formats are identified by a 64-bit structural hash rather than a
//    server-assigned ordinal; two structurally identical formats share an id,
//    which is exactly the caching behavior the format server needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace sbq::pbio {

/// Scalar and composite kinds a field can have. The schema mirrors Soup's:
/// integer, char, string and float base types plus structs and arrays.
enum class TypeKind : std::uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kUInt32 = 2,
  kUInt64 = 3,
  kFloat32 = 4,
  kFloat64 = 5,
  kChar = 6,
  kString = 7,   // native: const char*, NUL-terminated
  kStruct = 8,   // native: embedded sub-struct
};

/// How many instances of the base kind a field holds.
enum class Arity : std::uint8_t {
  kScalar = 0,
  kFixedArray = 1,  // `count` elements embedded inline
  kVarArray = 2,    // native: VarArray<T> {count, data}
};

/// Native representation of a variable-length array field.
///
/// The pointed-to data is NOT owned by the record; encode reads through the
/// pointer, decode allocates the element storage from the caller's Arena.
template <typename T>
struct VarArray {
  std::uint32_t count = 0;
  const T* data = nullptr;
};

struct FormatDesc;  // forward

/// One field of a format.
struct FieldDesc {
  std::string name;
  TypeKind kind = TypeKind::kInt32;
  Arity arity = Arity::kScalar;
  std::uint32_t fixed_count = 0;  // kFixedArray only
  std::shared_ptr<const FormatDesc> struct_format;  // kStruct only

  std::uint32_t offset = 0;  // byte offset in the native struct
  std::uint32_t size = 0;    // native size of the whole field (incl. arrays)

  /// Native size of a single element of this field.
  [[nodiscard]] std::uint32_t element_size() const;
  /// Native alignment of this field.
  [[nodiscard]] std::uint32_t alignment() const;
};

/// Identifier under which a format is registered with the format server.
using FormatId = std::uint64_t;

/// A complete format: named, ordered fields plus the native struct size.
struct FormatDesc {
  std::string name;
  std::vector<FieldDesc> fields;
  std::uint32_t native_size = 0;
  std::uint32_t native_align = 1;

  /// Structural 64-bit id (FNV-1a over the canonical rendering). Stable
  /// across processes, so both peers compute the same id independently.
  [[nodiscard]] FormatId format_id() const;

  /// Canonical one-line rendering, e.g. "bond{count:u32,atoms:f64[]}".
  [[nodiscard]] std::string canonical() const;

  /// Field lookup by name; nullptr when absent.
  [[nodiscard]] const FieldDesc* field(std::string_view name) const;

  /// Total number of fields including those of nested structs (recursive) —
  /// the paper's format-registration cost grows with this.
  [[nodiscard]] std::size_t total_field_count() const;

  /// Maximum struct nesting depth (a flat format has depth 1).
  [[nodiscard]] std::size_t nesting_depth() const;
};

using FormatPtr = std::shared_ptr<const FormatDesc>;

/// Builds a FormatDesc, computing natural-alignment offsets automatically
/// (matching what a C++ compiler produces for a struct with the same member
/// order, which lets native structs round-trip through offsetof checks).
class FormatBuilder {
 public:
  explicit FormatBuilder(std::string name);

  FormatBuilder& add_scalar(std::string name, TypeKind kind);
  FormatBuilder& add_fixed_array(std::string name, TypeKind kind, std::uint32_t count);
  FormatBuilder& add_var_array(std::string name, TypeKind kind);
  FormatBuilder& add_string(std::string name);
  FormatBuilder& add_struct(std::string name, FormatPtr format);
  FormatBuilder& add_struct_var_array(std::string name, FormatPtr format);
  FormatBuilder& add_struct_fixed_array(std::string name, FormatPtr format,
                                        std::uint32_t count);

  /// Finalizes offsets/sizes and returns the immutable format.
  [[nodiscard]] FormatPtr build();

 private:
  FieldDesc& push(std::string name, TypeKind kind, Arity arity);

  FormatDesc desc_;
};

/// Size in bytes of one scalar of `kind` (strings/structs have no fixed
/// scalar size and throw CodecError).
std::uint32_t scalar_size(TypeKind kind);

/// Human-readable kind name ("i32", "f64", "string", ...).
std::string_view kind_name(TypeKind kind);

/// Serializes a format description for transmission to the format server.
Bytes serialize_format(const FormatDesc& format);

/// Reconstructs a format description received from the format server.
FormatPtr deserialize_format(BytesView bytes);

}  // namespace sbq::pbio
