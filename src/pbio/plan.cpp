#include "pbio/plan.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "pbio/detail.h"
#include "pbio/encode.h"

namespace sbq::pbio {

namespace {

struct RawVarArray {
  std::uint32_t count;
  const void* data;
};

bool is_plain_scalar(const FieldDesc& f) {
  return f.arity == Arity::kScalar && f.kind != TypeKind::kString &&
         f.kind != TypeKind::kStruct;
}

}  // namespace

/// Builds the op list for one (sender, receiver, order) triple.
class PlanCompiler {
 public:
  static std::vector<DecodePlan::Op> compile(const FormatDesc& sender,
                                             const FormatDesc& receiver,
                                             ByteOrder order) {
    std::vector<DecodePlan::Op> ops;
    const bool host_order = order == host_byte_order();

    for (const FieldDesc& wf : sender.fields) {
      const FieldDesc* nf = receiver.field(wf.name);
      DecodePlan::Op op;
      op.wire_kind = wf.kind;

      if (is_plain_scalar(wf)) {
        if (nf == nullptr) {
          op.kind = DecodePlan::Op::Kind::kSkipScalar;
          ops.push_back(op);
          continue;
        }
        if (nf->arity != Arity::kScalar || nf->kind == TypeKind::kString ||
            nf->kind == TypeKind::kStruct) {
          throw CodecError("field '" + wf.name + "': scalar vs non-scalar");
        }
        // Verbatim-copyable scalar: same kind, host order (or 1 byte).
        if (nf->kind == wf.kind && (host_order || scalar_size(wf.kind) == 1)) {
          const std::uint32_t bytes = scalar_size(wf.kind);
          // Merge with the previous op when both wire and native runs are
          // contiguous — this is where plans beat interpretation.
          if (!ops.empty() &&
              ops.back().kind == DecodePlan::Op::Kind::kBlockCopy &&
              ops.back().native_offset +
                      static_cast<std::int64_t>(ops.back().wire_bytes) ==
                  static_cast<std::int64_t>(nf->offset)) {
            ops.back().wire_bytes += bytes;
            continue;
          }
          op.kind = DecodePlan::Op::Kind::kBlockCopy;
          op.wire_bytes = bytes;
          op.native_offset = nf->offset;
          ops.push_back(op);
          continue;
        }
        op.kind = DecodePlan::Op::Kind::kScalar;
        op.native_kind = nf->kind;
        op.native_offset = nf->offset;
        ops.push_back(op);
        continue;
      }

      if (wf.kind == TypeKind::kString) {
        if (nf != nullptr && nf->kind != TypeKind::kString) {
          throw CodecError("field '" + wf.name + "': string vs non-string");
        }
        op.kind = DecodePlan::Op::Kind::kString;
        op.native_offset =
            nf == nullptr ? -1 : static_cast<std::int64_t>(nf->offset);
        ops.push_back(op);
        continue;
      }

      if (wf.kind == TypeKind::kStruct && wf.arity == Arity::kScalar) {
        if (nf != nullptr && nf->kind != TypeKind::kStruct) {
          throw CodecError("field '" + wf.name + "': struct vs non-struct");
        }
        op.kind = DecodePlan::Op::Kind::kStruct;
        if (nf != nullptr) {
          op.native_offset = nf->offset;
          op.sub_plan =
              DecodePlan::compile(wf.struct_format, nf->struct_format, order);
        } else {
          // Skip path still needs the wire shape.
          op.sub_plan = DecodePlan::compile(wf.struct_format, wf.struct_format, order);
        }
        ops.push_back(op);
        continue;
      }

      // Arrays (fixed or var, scalar or struct elements).
      const bool wire_var = wf.arity == Arity::kVarArray;
      op.fixed_count = wire_var ? 0 : wf.fixed_count;
      if (nf != nullptr) {
        if ((wf.kind == TypeKind::kStruct) != (nf->kind == TypeKind::kStruct)) {
          throw CodecError("field '" + wf.name + "': struct vs scalar array");
        }
        if (wire_var && nf->arity != Arity::kVarArray) {
          throw CodecError("field '" + wf.name + "': var array vs scalar");
        }
        if (!wire_var && nf->arity != Arity::kFixedArray) {
          throw CodecError("field '" + wf.name + "': fixed array vs scalar");
        }
        op.native_offset = nf->offset;
        op.native_elem_size = nf->element_size();
        op.native_fixed_capacity = wire_var ? 0 : nf->fixed_count;
      }
      if (wf.kind == TypeKind::kStruct) {
        op.kind = DecodePlan::Op::Kind::kStructArray;
        op.sub_plan = DecodePlan::compile(
            wf.struct_format, nf != nullptr ? nf->struct_format : wf.struct_format,
            order);
      } else {
        op.kind = DecodePlan::Op::Kind::kScalarArray;
        op.native_kind = nf != nullptr ? nf->kind : wf.kind;
        op.bulk_copy_elements = nf != nullptr && nf->kind == wf.kind &&
                                (host_order || scalar_size(wf.kind) == 1);
      }
      ops.push_back(op);
    }
    return ops;
  }
};

PlanPtr DecodePlan::compile(FormatPtr sender, FormatPtr receiver, ByteOrder order) {
  if (!sender || !receiver) throw CodecError("DecodePlan::compile: null format");
  std::vector<Op> ops = PlanCompiler::compile(*sender, *receiver, order);
  return PlanPtr(
      new DecodePlan(std::move(sender), std::move(receiver), order, std::move(ops)));
}

std::size_t DecodePlan::block_copy_bytes() const {
  std::size_t total = 0;
  for (const Op& op : ops_) {
    if (op.kind == Op::Kind::kBlockCopy) total += op.wire_bytes;
  }
  return total;
}

void* DecodePlan::execute(BytesView payload, Arena& arena) const {
  ByteReader reader(payload);
  auto* record = static_cast<std::uint8_t*>(
      arena.allocate(receiver_->native_size, 16));
  std::memset(record, 0, receiver_->native_size);
  execute_into(reader, record, arena);
  if (!reader.exhausted()) {
    throw CodecError("PBIO payload has " + std::to_string(reader.remaining()) +
                     " trailing bytes");
  }
  return record;
}

void DecodePlan::execute_into(ByteReader& reader, std::uint8_t* record,
                              Arena& arena) const {
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kBlockCopy: {
        const BytesView block = reader.read_view(op.wire_bytes);
        std::memcpy(record + op.native_offset, block.data(), op.wire_bytes);
        break;
      }
      case Op::Kind::kScalar: {
        const detail::Scalar s = detail::read_scalar(reader, op.wire_kind, order_);
        detail::store_scalar(record + op.native_offset, op.native_kind, s);
        break;
      }
      case Op::Kind::kSkipScalar:
        reader.skip(scalar_size(op.wire_kind));
        break;
      case Op::Kind::kString: {
        const std::uint32_t len = reader.read_u32(order_);
        const BytesView chars = reader.read_view(len);
        if (op.native_offset >= 0) {
          char* copy = arena.allocate_array<char>(len + 1);
          std::memcpy(copy, chars.data(), len);
          copy[len] = '\0';
          const char* ptr = copy;
          std::memcpy(record + op.native_offset, &ptr, sizeof ptr);
        }
        break;
      }
      case Op::Kind::kStruct:
        if (op.native_offset >= 0) {
          op.sub_plan->execute_into(reader, record + op.native_offset, arena);
        } else {
          detail::skip_record(reader, op.sub_plan->sender(), order_);
        }
        break;
      case Op::Kind::kScalarArray: {
        const std::uint32_t count =
            op.fixed_count != 0 ? op.fixed_count : reader.read_u32(order_);
        const std::size_t wire_elem = scalar_size(op.wire_kind);
        if (op.native_offset < 0) {
          reader.skip(std::size_t{count} * wire_elem);
          break;
        }
        std::uint8_t* elems;
        std::uint32_t writable;
        const bool var_dest = op.fixed_count == 0;
        if (var_dest) {
          elems = static_cast<std::uint8_t*>(
              arena.allocate(std::size_t{count} * op.native_elem_size, 16));
          std::memset(elems, 0, std::size_t{count} * op.native_elem_size);
          const RawVarArray va{count, elems};
          std::memcpy(record + op.native_offset, &va, sizeof va);
          writable = count;
        } else {
          elems = record + op.native_offset;
          writable = op.native_fixed_capacity;
        }
        if (op.bulk_copy_elements) {
          const BytesView block = reader.read_view(std::size_t{count} * wire_elem);
          std::memcpy(elems, block.data(),
                      std::size_t{std::min(count, writable)} * wire_elem);
          break;
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          const detail::Scalar s = detail::read_scalar(reader, op.wire_kind, order_);
          if (i < writable) {
            detail::store_scalar(elems + i * op.native_elem_size, op.native_kind, s);
          }
        }
        break;
      }
      case Op::Kind::kStructArray: {
        const std::uint32_t count =
            op.fixed_count != 0 ? op.fixed_count : reader.read_u32(order_);
        if (op.native_offset < 0) {
          for (std::uint32_t i = 0; i < count; ++i) {
            detail::skip_record(reader, op.sub_plan->sender(), order_);
          }
          break;
        }
        std::uint8_t* elems;
        std::uint32_t writable;
        const bool var_dest = op.fixed_count == 0;
        if (var_dest) {
          elems = static_cast<std::uint8_t*>(
              arena.allocate(std::size_t{count} * op.native_elem_size, 16));
          std::memset(elems, 0, std::size_t{count} * op.native_elem_size);
          const RawVarArray va{count, elems};
          std::memcpy(record + op.native_offset, &va, sizeof va);
          writable = count;
        } else {
          elems = record + op.native_offset;
          writable = op.native_fixed_capacity;
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          if (i < writable) {
            op.sub_plan->execute_into(reader, elems + i * op.native_elem_size, arena);
          } else {
            detail::skip_record(reader, op.sub_plan->sender(), order_);
          }
        }
        break;
      }
    }
  }
}

PlanPtr PlanCache::get(const FormatPtr& sender, const FormatPtr& receiver,
                       ByteOrder order) {
  const Key key{sender->format_id(), receiver->format_id(),
                static_cast<std::uint8_t>(order)};
  std::lock_guard lock(mu_);
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    return it->second;
  }
  ++compiles_;
  PlanPtr plan = DecodePlan::compile(sender, receiver, order);
  plans_.emplace(key, plan);
  return plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return plans_.size();
}

std::size_t PlanCache::hit_count() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::size_t PlanCache::compile_count() const {
  std::lock_guard lock(mu_);
  return compiles_;
}

void* decode_message_planned(BytesView message, const FormatPtr& sender_format,
                             const FormatPtr& receiver_format, PlanCache& cache,
                             Arena& arena) {
  ByteReader reader(message);
  const WireHeader header = read_header(reader);
  if (header.format_id != sender_format->format_id()) {
    throw CodecError("message format id does not match sender format");
  }
  const PlanPtr plan = cache.get(sender_format, receiver_format, header.sender_order);
  return plan->execute(reader.read_view(header.payload_length), arena);
}

}  // namespace sbq::pbio
