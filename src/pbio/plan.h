// Compiled decode plans — the dynamic-code-generation analogue.
//
// The original PBIO used DILL dynamic binary code generation to emit a
// specialized conversion routine per (sender format, receiver format) pair,
// so steady-state decoding never touches format metadata. Portable C++
// cannot JIT, but it can do the next best thing: compile the conversion
// *decisions* (field matching by name, kind conversions, byte-order
// handling, contiguous-run detection) once into a flat operation list, and
// execute that list with a tight interpreter. Same architecture, same
// asymptotics: metadata work happens once per format pair, not per message.
//
// A plan is specific to sender format + receiver format + sender byte
// order; PlanCache memoizes all three dimensions. decode_with_plan()
// produces bit-identical records to pbio::decode_payload() — the property
// suite asserts this on random formats.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "pbio/format.h"

namespace sbq::pbio {

class DecodePlan;
using PlanPtr = std::shared_ptr<const DecodePlan>;

/// A compiled conversion routine. Thread-safe to execute concurrently.
class DecodePlan {
 public:
  /// Compiles the conversion sender→receiver for payloads in `order`.
  static PlanPtr compile(FormatPtr sender, FormatPtr receiver, ByteOrder order);

  /// Decodes one payload (no wire header) into a receiver-layout record
  /// allocated from `arena`. Behaviour identical to decode_payload().
  void* execute(BytesView payload, Arena& arena) const;

  /// Introspection for tests/benches: number of flat operations, and how
  /// many bytes are moved by block-copy (the memcpy fast path).
  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }
  [[nodiscard]] std::size_t block_copy_bytes() const;

  [[nodiscard]] const FormatDesc& sender() const { return *sender_; }
  [[nodiscard]] const FormatDesc& receiver() const { return *receiver_; }
  [[nodiscard]] ByteOrder order() const { return order_; }

 private:
  friend class PlanCompiler;

  struct Op {
    enum class Kind : std::uint8_t {
      kBlockCopy,        // wire_bytes → record+native_offset, verbatim
      kScalar,           // one scalar, possibly swapped/converted
      kSkipScalar,       // consume one scalar, no destination
      kString,           // u32 len + bytes → arena C string (or skip)
      kScalarArray,      // [count] scalars (fixed or var) → inline/arena
      kStruct,           // embedded struct via sub-plan
      kStructArray,      // fixed or var array of structs via sub-plan
    };
    Kind kind = Kind::kBlockCopy;
    TypeKind wire_kind = TypeKind::kInt32;
    TypeKind native_kind = TypeKind::kInt32;
    std::uint32_t wire_bytes = 0;     // kBlockCopy: bytes to copy
    std::int64_t native_offset = -1;  // -1 = no destination (skip)
    std::uint32_t fixed_count = 0;    // fixed arrays; 0 = read u32 count
    std::uint32_t native_elem_size = 0;
    std::uint32_t native_fixed_capacity = 0;  // fixed-array destination slots
    bool bulk_copy_elements = false;  // same kind + host order: memcpy
    PlanPtr sub_plan;                 // struct ops
  };

  DecodePlan(FormatPtr sender, FormatPtr receiver, ByteOrder order,
             std::vector<Op> ops)
      : sender_(std::move(sender)),
        receiver_(std::move(receiver)),
        order_(order),
        ops_(std::move(ops)) {}

  void execute_into(ByteReader& reader, std::uint8_t* record, Arena& arena) const;

  FormatPtr sender_;
  FormatPtr receiver_;
  ByteOrder order_;
  std::vector<Op> ops_;
};

/// Memoizes plans by (sender id, receiver id, order). Thread-safe.
class PlanCache {
 public:
  PlanPtr get(const FormatPtr& sender, const FormatPtr& receiver, ByteOrder order);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hit_count() const;
  [[nodiscard]] std::size_t compile_count() const;

 private:
  struct Key {
    FormatId sender;
    FormatId receiver;
    std::uint8_t order;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.sender * 1000003u ^ k.receiver ^
                                        (std::uint64_t{k.order} << 63));
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, PlanPtr, KeyHash> plans_;
  std::size_t hits_ = 0;
  std::size_t compiles_ = 0;
};

/// Convenience: full message decode through a plan (header + payload),
/// compiling (or fetching) the plan from `cache`.
void* decode_message_planned(BytesView message, const FormatPtr& sender_format,
                             const FormatPtr& receiver_format, PlanCache& cache,
                             Arena& arena);

}  // namespace sbq::pbio
