#include "pbio/registry.h"

#include "common/error.h"

namespace sbq::pbio {

FormatId FormatRegistry::register_format(FormatPtr format) {
  if (!format) throw CodecError("register_format: null format");
  const FormatId id = format->format_id();
  std::lock_guard lock(mu_);
  formats_.emplace(id, std::move(format));
  return id;
}

FormatPtr FormatRegistry::lookup(FormatId id) const {
  std::lock_guard lock(mu_);
  auto it = formats_.find(id);
  return it == formats_.end() ? nullptr : it->second;
}

std::size_t FormatRegistry::size() const {
  std::lock_guard lock(mu_);
  return formats_.size();
}

FormatId FormatServer::register_format(const FormatPtr& format) {
  const FormatId id = registry_.register_format(format);
  std::lock_guard lock(stats_mu_);
  ++stats_.registrations;
  stats_.bytes_received += serialize_format(*format).size();
  return id;
}

FormatPtr FormatServer::fetch(FormatId id) {
  FormatPtr format = registry_.lookup(id);
  std::lock_guard lock(stats_mu_);
  ++stats_.lookups;
  if (!format) {
    ++stats_.misses;
    throw CodecError("format server: unknown format id " + std::to_string(id));
  }
  stats_.bytes_sent += serialize_format(*format).size();
  return format;
}

FormatServerStats FormatServer::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void FormatServer::reset_stats() {
  std::lock_guard lock(stats_mu_);
  stats_ = FormatServerStats{};
}

FormatPtr FormatCache::resolve(FormatId id) {
  if (FormatPtr local = local_.lookup(id)) {
    std::lock_guard lock(counter_mu_);
    ++hits_;
    last_fetch_bytes_ = 0;
    return local;
  }
  // Cache miss: round-trip to the format server. The description travels
  // serialized; record its size so link models can charge for it.
  FormatPtr fetched = server_->fetch(id);
  const std::size_t fetched_bytes = serialize_format(*fetched).size();
  local_.register_format(fetched);
  std::lock_guard lock(counter_mu_);
  ++misses_;
  last_fetch_bytes_ = fetched_bytes;
  return fetched;
}

FormatId FormatCache::announce(const FormatPtr& format) {
  const FormatId id = server_->register_format(format);
  local_.register_format(format);
  return id;
}

bool FormatCache::contains(FormatId id) const {
  return local_.lookup(id) != nullptr;
}

std::size_t FormatCache::last_fetch_bytes() const {
  std::lock_guard lock(counter_mu_);
  return last_fetch_bytes_;
}

std::size_t FormatCache::hit_count() const {
  std::lock_guard lock(counter_mu_);
  return hits_;
}

std::size_t FormatCache::miss_count() const {
  std::lock_guard lock(counter_mu_);
  return misses_;
}

}  // namespace sbq::pbio
