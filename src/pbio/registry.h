// The PBIO "format server" and per-endpoint format caches.
//
// Every PBIO transaction begins with the sender registering its format with a
// format server. When a receiver encounters an unknown format id it consults
// the server once, then caches the description locally; all subsequent
// messages of that format decode against the cached copy. The paper observes
// that this first-message cost is negligible for small formats and becomes
// significant only for deeply nested structures — bench_ablate_format_cache
// quantifies exactly that using the byte counts this module tracks.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "pbio/format.h"

namespace sbq::pbio {

/// Plain id → format map. Thread-safe; shared by server and caches.
class FormatRegistry {
 public:
  /// Registers `format`; returns its structural id. Re-registering the same
  /// structure is idempotent.
  FormatId register_format(FormatPtr format);

  /// Returns the format or nullptr.
  [[nodiscard]] FormatPtr lookup(FormatId id) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<FormatId, FormatPtr> formats_;
};

/// Counters for the traffic a format server generates; the ablation bench
/// turns these into "cold start" costs.
struct FormatServerStats {
  std::uint64_t registrations = 0;
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_sent = 0;      // format descriptions served
  std::uint64_t bytes_received = 0;  // format descriptions registered
};

/// The format server proper. In the original system this was a network
/// service; here it is an in-process object shared by the communicating
/// endpoints, with every interaction measured in serialized-description
/// bytes so link simulations can charge for the handshake.
class FormatServer {
 public:
  /// Registers a format (sender side, first message of a format).
  FormatId register_format(const FormatPtr& format);

  /// Fetches a format description (receiver side, unknown id). Throws
  /// CodecError when the id was never registered.
  FormatPtr fetch(FormatId id);

  [[nodiscard]] FormatServerStats stats() const;
  void reset_stats();

 private:
  FormatRegistry registry_;
  mutable std::mutex stats_mu_;
  FormatServerStats stats_;
};

/// Client-side cache in front of a FormatServer. Each endpoint owns one;
/// the first lookup of an id costs a simulated server round trip (reported
/// via `last_fetch_bytes`), later lookups are local. Thread-safe: a server
/// runtime resolves formats from one cache across connection threads.
class FormatCache {
 public:
  explicit FormatCache(std::shared_ptr<FormatServer> server)
      : server_(std::move(server)) {}

  /// Resolves an id, consulting the server on a miss.
  FormatPtr resolve(FormatId id);

  /// Registers a local format with the server and caches it.
  FormatId announce(const FormatPtr& format);

  /// True if the id is already cached (no server traffic needed).
  [[nodiscard]] bool contains(FormatId id) const;

  /// Serialized size of the most recent server fetch (0 if cache hit).
  [[nodiscard]] std::size_t last_fetch_bytes() const;

  [[nodiscard]] std::size_t hit_count() const;
  [[nodiscard]] std::size_t miss_count() const;

 private:
  std::shared_ptr<FormatServer> server_;
  FormatRegistry local_;
  mutable std::mutex counter_mu_;
  std::size_t last_fetch_bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace sbq::pbio
