// Internal sink abstraction for the PBIO encoders. Not part of the public
// API.
//
// The native and dynamic encoders are written once as templates over a Sink
// with ByteBuffer's append_* surface; three sinks instantiate them:
//   * ByteBuffer    — the flat-Bytes path (pre-chain behavior, kept for the
//                     copy baseline and for callers that want one buffer),
//   * ChainWriter   — the zero-copy path: bulk blocks become borrowed chain
//                     segments via sink_block(),
//   * CountingSink  — a size-only dry run, used to emit the wire header's
//                     payload length up front so the chain path never needs
//                     to patch across segments.
// All three produce/account byte-identical wire images; tests assert it.
#pragma once

#include "common/buffer_chain.h"
#include "common/bytes.h"

namespace sbq::pbio::detail {

/// Sink that measures the encoded size without writing any bytes.
class CountingSink {
 public:
  void append_u8(std::uint8_t) { size_ += 1; }
  void append_u16(std::uint16_t, ByteOrder) { size_ += 2; }
  void append_u32(std::uint32_t, ByteOrder) { size_ += 4; }
  void append_u64(std::uint64_t, ByteOrder) { size_ += 8; }
  void append_f32(float, ByteOrder) { size_ += 4; }
  void append_f64(double, ByteOrder) { size_ += 8; }
  void append_raw(const void*, std::size_t n) { size_ += n; }
  void append(BytesView v) { size_ += v.size(); }
  void append(std::string_view s) { size_ += s.size(); }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
};

/// Bulk payload block: a borrowed segment on the chain path, a plain append
/// elsewhere. The anchor pins borrowed storage (ignored by flat sinks).
inline void sink_block(ByteBuffer& out, BytesView block,
                       const BufferChain::Anchor&) {
  out.append(block);
}
inline void sink_block(ChainWriter& out, BytesView block,
                       const BufferChain::Anchor& anchor) {
  out.append_block(block, anchor);
}
inline void sink_block(CountingSink& out, BytesView block,
                       const BufferChain::Anchor&) {
  out.append(block);
}

}  // namespace sbq::pbio::detail
