#include "pbio/value.h"

#include <cstdio>

namespace sbq::pbio {

namespace {
const char* kind_label(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kInt: return "int";
    case Value::Kind::kUInt: return "uint";
    case Value::Kind::kFloat: return "float";
    case Value::Kind::kChar: return "char";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kRecord: return "record";
  }
  return "?";
}
}  // namespace

void Value::require(Kind k, const char* what) const {
  if (kind_ != k) {
    throw CodecError(std::string("value is ") + kind_label(kind_) + ", wanted " + what);
  }
}

std::int64_t Value::as_i64() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUInt: return static_cast<std::int64_t>(uint_);
    case Kind::kFloat: return static_cast<std::int64_t>(float_);
    case Kind::kChar: return static_cast<std::int64_t>(char_);
    default: throw CodecError(std::string("value is ") + kind_label(kind_) + ", wanted numeric");
  }
}

std::uint64_t Value::as_u64() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<std::uint64_t>(int_);
    case Kind::kUInt: return uint_;
    case Kind::kFloat: return static_cast<std::uint64_t>(float_);
    case Kind::kChar: return static_cast<std::uint64_t>(static_cast<unsigned char>(char_));
    default: throw CodecError(std::string("value is ") + kind_label(kind_) + ", wanted numeric");
  }
}

double Value::as_f64() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUInt: return static_cast<double>(uint_);
    case Kind::kFloat: return float_;
    case Kind::kChar: return static_cast<double>(char_);
    default: throw CodecError(std::string("value is ") + kind_label(kind_) + ", wanted numeric");
  }
}

char Value::as_char() const {
  switch (kind_) {
    case Kind::kChar: return char_;
    case Kind::kInt: return static_cast<char>(int_);
    case Kind::kUInt: return static_cast<char>(uint_);
    default: throw CodecError(std::string("value is ") + kind_label(kind_) + ", wanted char");
  }
}

const std::string& Value::as_string() const {
  require(Kind::kString, "string");
  return str_;
}

Value Value::empty_array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::array(std::initializer_list<Value> elements) {
  Value v = empty_array();
  v.children_.assign(elements.begin(), elements.end());
  return v;
}

std::size_t Value::array_size() const {
  require(Kind::kArray, "array");
  return children_.size();
}

const Value& Value::at(std::size_t i) const {
  require(Kind::kArray, "array");
  if (i >= children_.size()) {
    throw CodecError("array index " + std::to_string(i) + " out of range");
  }
  return children_[i];
}

void Value::push_back(Value v) {
  require(Kind::kArray, "array");
  children_.push_back(std::move(v));
}

const std::vector<Value>& Value::elements() const {
  require(Kind::kArray, "array");
  return children_;
}

Value Value::empty_record() {
  Value v;
  v.kind_ = Kind::kRecord;
  return v;
}

Value Value::record(std::initializer_list<NamedValue> fields) {
  Value v = empty_record();
  for (const auto& f : fields) {
    v.names_.push_back(f.name);
    v.children_.push_back(f.value);
  }
  return v;
}

std::size_t Value::field_count() const {
  require(Kind::kRecord, "record");
  return children_.size();
}

const std::string& Value::field_name(std::size_t i) const {
  require(Kind::kRecord, "record");
  return names_.at(i);
}

const Value& Value::field_at(std::size_t i) const {
  require(Kind::kRecord, "record");
  return children_.at(i);
}

const Value* Value::find_field(std::string_view name) const {
  require(Kind::kRecord, "record");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return &children_[i];
  }
  return nullptr;
}

const Value& Value::field(std::string_view name) const {
  const Value* v = find_field(name);
  if (v == nullptr) throw CodecError("record has no field '" + std::string(name) + "'");
  return *v;
}

void Value::set_field(std::string_view name, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kRecord;
  require(Kind::kRecord, "record");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      children_[i] = std::move(v);
      return;
    }
  }
  names_.emplace_back(name);
  children_.push_back(std::move(v));
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kInt: return int_ == other.int_;
    case Kind::kUInt: return uint_ == other.uint_;
    case Kind::kFloat: return float_ == other.float_;
    case Kind::kChar: return char_ == other.char_;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return children_ == other.children_;
    case Kind::kRecord: return names_ == other.names_ && children_ == other.children_;
  }
  return false;
}

std::string Value::to_debug_string() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kUInt:
      return std::to_string(uint_) + "u";
    case Kind::kFloat: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", float_);
      return buf;
    }
    case Kind::kChar:
      return std::string("'") + char_ + "'";
    case Kind::kString:
      return '"' + str_ + '"';
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i].to_debug_string();
      }
      return out + "]";
    }
    case Kind::kRecord: {
      std::string out = "{";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += names_[i] + ": " + children_[i].to_debug_string();
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace sbq::pbio
