// Dynamic record model.
//
// The SOAP-binQ runtime learns parameter types from WSDL at runtime, so it
// cannot use compile-time native structs. Value is the dynamic counterpart:
// a tree of scalars, strings, arrays and records that encodes to exactly the
// same PBIO wire bytes as a native struct with the same format — tests
// assert byte-for-byte equality between the two paths.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace sbq::pbio {

/// A dynamically typed datum. Numeric scalars are stored widened (i64 / u64 /
/// double); the format supplies the wire width at encode time. Records keep
/// their fields ordered because PBIO payloads are positional.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kInt,     // int64
    kUInt,    // uint64
    kFloat,   // double
    kChar,
    kString,
    kArray,
    kRecord,
  };

  Value() = default;
  Value(std::int64_t v) : kind_(Kind::kInt), int_(v) {}    // NOLINT(google-explicit-constructor)
  Value(int v) : kind_(Kind::kInt), int_(v) {}             // NOLINT
  Value(std::uint64_t v) : kind_(Kind::kUInt), uint_(v) {} // NOLINT
  Value(unsigned v) : kind_(Kind::kUInt), uint_(v) {}      // NOLINT
  Value(double v) : kind_(Kind::kFloat), float_(v) {}      // NOLINT
  Value(char v) : kind_(Kind::kChar), char_(v) {}          // NOLINT
  Value(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}  // NOLINT
  Value(const char* v) : kind_(Kind::kString), str_(v) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_uint() const { return kind_ == Kind::kUInt; }
  [[nodiscard]] bool is_float() const { return kind_ == Kind::kFloat; }
  [[nodiscard]] bool is_char() const { return kind_ == Kind::kChar; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_record() const { return kind_ == Kind::kRecord; }
  [[nodiscard]] bool is_numeric() const {
    return is_int() || is_uint() || is_float() || is_char();
  }

  /// Numeric accessors convert between numeric classes; non-numeric storage
  /// throws CodecError.
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_f64() const;
  [[nodiscard]] char as_char() const;

  /// Exact-type accessors; throw CodecError on kind mismatch.
  [[nodiscard]] const std::string& as_string() const;

  // --- arrays -------------------------------------------------------------

  /// Creates an empty array value.
  static Value empty_array();
  static Value array(std::initializer_list<Value> elements);

  [[nodiscard]] std::size_t array_size() const;
  [[nodiscard]] const Value& at(std::size_t i) const;
  void push_back(Value v);
  [[nodiscard]] const std::vector<Value>& elements() const;

  // --- records ------------------------------------------------------------

  struct NamedValue;  // {name, value}; defined after Value is complete

  /// Creates an empty record value.
  static Value empty_record();
  static Value record(std::initializer_list<NamedValue> fields);

  [[nodiscard]] std::size_t field_count() const;
  [[nodiscard]] const std::string& field_name(std::size_t i) const;
  [[nodiscard]] const Value& field_at(std::size_t i) const;

  /// Field access by name. `field` throws when absent; `find_field` returns
  /// nullptr.
  [[nodiscard]] const Value& field(std::string_view name) const;
  [[nodiscard]] const Value* find_field(std::string_view name) const;

  /// Sets (appending) or replaces a record field.
  void set_field(std::string_view name, Value v);

  // --- misc ---------------------------------------------------------------

  bool operator==(const Value& other) const;

  /// Debug rendering, e.g. `{count: 3, data: [1, 2, 3]}`.
  [[nodiscard]] std::string to_debug_string() const;

 private:
  void require(Kind k, const char* what) const;

  Kind kind_ = Kind::kNull;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double float_ = 0.0;
  char char_ = '\0';
  std::string str_;
  std::vector<Value> children_;      // array elements or record field values
  std::vector<std::string> names_;   // record field names (parallel to children_)
};

/// Named field used by the Value::record(...) literal factory.
struct Value::NamedValue {
  std::string name;
  Value value;
};

}  // namespace sbq::pbio
