#include "pbio/value_codec.h"

#include "common/error.h"
#include "pbio/encode.h"
#include "pbio/sink.h"

namespace sbq::pbio {

namespace {

using detail::CountingSink;
using detail::sink_block;

/// View of a std::string's bytes (for borrowed bulk-block segments).
BytesView string_block(const std::string& s) { return as_bytes(s); }

template <typename Sink>
void encode_scalar_value(const Value& v, TypeKind kind, Sink& out,
                         ByteOrder order) {
  switch (kind) {
    case TypeKind::kInt32:
      out.append_u32(static_cast<std::uint32_t>(static_cast<std::int32_t>(v.as_i64())),
                     order);
      break;
    case TypeKind::kInt64:
      out.append_u64(static_cast<std::uint64_t>(v.as_i64()), order);
      break;
    case TypeKind::kUInt32:
      out.append_u32(static_cast<std::uint32_t>(v.as_u64()), order);
      break;
    case TypeKind::kUInt64:
      out.append_u64(v.as_u64(), order);
      break;
    case TypeKind::kFloat32:
      out.append_f32(static_cast<float>(v.as_f64()), order);
      break;
    case TypeKind::kFloat64:
      out.append_f64(v.as_f64(), order);
      break;
    case TypeKind::kChar:
      out.append_u8(static_cast<std::uint8_t>(v.as_char()));
      break;
    default:
      throw CodecError("encode_scalar_value: not a scalar kind");
  }
}

template <typename Sink>
void encode_record_value(const Value& value, const FormatDesc& format, Sink& out,
                         ByteOrder order, const BufferChain::Anchor& anchor);

template <typename Sink>
void encode_field_elements(const Value& array, const FieldDesc& field, Sink& out,
                           ByteOrder order, const BufferChain::Anchor& anchor) {
  for (const Value& elem : array.elements()) {
    if (field.kind == TypeKind::kStruct) {
      encode_record_value(elem, *field.struct_format, out, order, anchor);
    } else {
      encode_scalar_value(elem, field.kind, out, order);
    }
  }
}

template <typename Sink>
void encode_record_value(const Value& value, const FormatDesc& format, Sink& out,
                         ByteOrder order, const BufferChain::Anchor& anchor) {
  if (!value.is_record()) {
    throw CodecError("format '" + format.name + "' needs a record value");
  }
  for (const FieldDesc& field : format.fields) {
    const Value* v = value.find_field(field.name);
    if (v == nullptr) {
      throw CodecError("record missing field '" + field.name + "' of format '" +
                       format.name + "'");
    }
    switch (field.arity) {
      case Arity::kScalar:
        if (field.kind == TypeKind::kString) {
          const std::string& s = v->as_string();
          out.append_u32(static_cast<std::uint32_t>(s.size()), order);
          sink_block(out, string_block(s), anchor);
        } else if (field.kind == TypeKind::kStruct) {
          encode_record_value(*v, *field.struct_format, out, order, anchor);
        } else {
          encode_scalar_value(*v, field.kind, out, order);
        }
        break;
      case Arity::kFixedArray:
        // Char arrays may be held as one bulk string (the efficient
        // representation for pixel buffers and similar blobs).
        if (field.kind == TypeKind::kChar && v->is_string()) {
          const std::string& s = v->as_string();
          if (s.size() != field.fixed_count) {
            throw CodecError("field '" + field.name + "': fixed char array expects " +
                             std::to_string(field.fixed_count) + " bytes, got " +
                             std::to_string(s.size()));
          }
          sink_block(out, string_block(s), anchor);
          break;
        }
        if (v->array_size() != field.fixed_count) {
          throw CodecError("field '" + field.name + "': fixed array expects " +
                           std::to_string(field.fixed_count) + " elements, got " +
                           std::to_string(v->array_size()));
        }
        encode_field_elements(*v, field, out, order, anchor);
        break;
      case Arity::kVarArray:
        if (field.kind == TypeKind::kChar && v->is_string()) {
          const std::string& s = v->as_string();
          out.append_u32(static_cast<std::uint32_t>(s.size()), order);
          sink_block(out, string_block(s), anchor);
          break;
        }
        out.append_u32(static_cast<std::uint32_t>(v->array_size()), order);
        encode_field_elements(*v, field, out, order, anchor);
        break;
    }
  }
}

template <typename Reader>
Value decode_scalar_value(Reader& reader, TypeKind kind, ByteOrder order) {
  switch (kind) {
    case TypeKind::kInt32:
      return Value{static_cast<std::int64_t>(
          static_cast<std::int32_t>(reader.read_u32(order)))};
    case TypeKind::kInt64:
      return Value{static_cast<std::int64_t>(reader.read_u64(order))};
    case TypeKind::kUInt32:
      return Value{static_cast<std::uint64_t>(reader.read_u32(order))};
    case TypeKind::kUInt64:
      return Value{reader.read_u64(order)};
    case TypeKind::kFloat32:
      return Value{static_cast<double>(reader.read_f32(order))};
    case TypeKind::kFloat64:
      return Value{reader.read_f64(order)};
    case TypeKind::kChar:
      return Value{static_cast<char>(reader.read_u8())};
    default:
      throw CodecError("decode_scalar_value: not a scalar kind");
  }
}

template <typename Reader>
Value decode_record_value(Reader& reader, const FormatDesc& format,
                          ByteOrder order) {
  Value record = Value::empty_record();
  for (const FieldDesc& field : format.fields) {
    switch (field.arity) {
      case Arity::kScalar:
        if (field.kind == TypeKind::kString) {
          const std::uint32_t len = reader.read_u32(order);
          record.set_field(field.name, Value{reader.read_string(len)});
        } else if (field.kind == TypeKind::kStruct) {
          record.set_field(field.name,
                           decode_record_value(reader, *field.struct_format, order));
        } else {
          record.set_field(field.name, decode_scalar_value(reader, field.kind, order));
        }
        break;
      case Arity::kFixedArray:
      case Arity::kVarArray: {
        const std::uint32_t count = field.arity == Arity::kFixedArray
                                        ? field.fixed_count
                                        : reader.read_u32(order);
        if (field.kind == TypeKind::kChar) {
          // Bulk decode char arrays into a string Value (see encode side).
          record.set_field(field.name, Value{reader.read_string(count)});
          break;
        }
        Value array = Value::empty_array();
        for (std::uint32_t i = 0; i < count; ++i) {
          if (field.kind == TypeKind::kStruct) {
            array.push_back(decode_record_value(reader, *field.struct_format, order));
          } else {
            array.push_back(decode_scalar_value(reader, field.kind, order));
          }
        }
        record.set_field(field.name, std::move(array));
        break;
      }
    }
  }
  return record;
}

}  // namespace

void encode_value(const Value& value, const FormatDesc& format, ByteBuffer& out,
                  ByteOrder wire_order) {
  encode_record_value(value, format, out, wire_order, nullptr);
}

void encode_value(const Value& value, const FormatDesc& format, ChainWriter& out,
                  ByteOrder wire_order, BufferChain::Anchor anchor) {
  encode_record_value(value, format, out, wire_order, anchor);
}

std::size_t value_wire_size(const Value& value, const FormatDesc& format) {
  CountingSink counter;
  encode_record_value(value, format, counter, host_byte_order(), nullptr);
  return counter.size();
}

Bytes encode_value_message(const Value& value, const FormatDesc& format,
                           ByteOrder wire_order) {
  ByteBuffer out;
  out.append_u64(format.format_id(), ByteOrder::kLittle);
  out.append_u8(static_cast<std::uint8_t>(wire_order));
  const std::size_t len_pos = out.size();
  out.append_u32(0, ByteOrder::kLittle);
  const std::size_t payload_start = out.size();
  encode_record_value(value, format, out, wire_order, nullptr);
  out.patch_u32(len_pos, static_cast<std::uint32_t>(out.size() - payload_start),
                ByteOrder::kLittle);
  return out.take();
}

BufferChain encode_value_message_chain(const Value& value, const FormatDesc& format,
                                       ByteOrder wire_order,
                                       BufferChain::Anchor anchor) {
  // The payload length is measured with a dry run so the header can be
  // emitted complete — a chain cannot be patched after bulk segments have
  // been spliced in.
  const std::size_t payload_size = value_wire_size(value, format);
  BufferChain chain;
  ChainWriter writer(chain);
  writer.append_u64(format.format_id(), ByteOrder::kLittle);
  writer.append_u8(static_cast<std::uint8_t>(wire_order));
  writer.append_u32(static_cast<std::uint32_t>(payload_size), ByteOrder::kLittle);
  encode_record_value(value, format, writer, wire_order, anchor);
  writer.flush();
  return chain;
}

Value decode_value_payload(BytesView payload, ByteOrder sender_order,
                           const FormatDesc& format) {
  ByteReader reader(payload);
  Value v = decode_record_value(reader, format, sender_order);
  if (!reader.exhausted()) {
    throw CodecError("PBIO payload has trailing bytes after value");
  }
  return v;
}

Value decode_value_payload(ChainReader& reader, std::size_t payload_length,
                           ByteOrder sender_order, const FormatDesc& format) {
  const std::size_t start = reader.position();
  Value v = decode_record_value(reader, format, sender_order);
  if (reader.position() - start != payload_length) {
    throw CodecError("PBIO payload length mismatch while decoding value");
  }
  return v;
}

Value decode_value_message(BytesView message, const FormatDesc& format) {
  ByteReader reader(message);
  const WireHeader header = read_header(reader);
  if (header.format_id != format.format_id()) {
    throw CodecError("value message format id mismatch");
  }
  return decode_value_payload(reader.read_view(header.payload_length),
                              header.sender_order, format);
}

namespace {
/// Zero of the Value kind the decoder produces for `kind`, so zero_value()
/// output compares equal to decoded zeros.
Value zero_scalar(TypeKind kind) {
  switch (kind) {
    case TypeKind::kUInt32:
    case TypeKind::kUInt64:
      return Value{std::uint64_t{0}};
    case TypeKind::kFloat32:
    case TypeKind::kFloat64:
      return Value{0.0};
    case TypeKind::kChar:
      return Value{'\0'};
    default:
      return Value{std::int64_t{0}};
  }
}
}  // namespace

Value zero_value(const FormatDesc& format) {
  Value record = Value::empty_record();
  for (const FieldDesc& field : format.fields) {
    if (field.arity == Arity::kFixedArray) {
      if (field.kind == TypeKind::kChar) {
        record.set_field(field.name, Value{std::string(field.fixed_count, '\0')});
        continue;
      }
      Value array = Value::empty_array();
      for (std::uint32_t i = 0; i < field.fixed_count; ++i) {
        array.push_back(field.kind == TypeKind::kStruct
                            ? zero_value(*field.struct_format)
                            : zero_scalar(field.kind));
      }
      record.set_field(field.name, std::move(array));
    } else if (field.arity == Arity::kVarArray) {
      record.set_field(field.name, field.kind == TypeKind::kChar
                                       ? Value{std::string{}}
                                       : Value::empty_array());
    } else if (field.kind == TypeKind::kString) {
      record.set_field(field.name, Value{std::string{}});
    } else if (field.kind == TypeKind::kStruct) {
      record.set_field(field.name, zero_value(*field.struct_format));
    } else {
      record.set_field(field.name, zero_scalar(field.kind));
    }
  }
  return record;
}

Value project_value(const Value& value, const FormatDesc& target) {
  Value out = zero_value(target);
  if (!value.is_record()) return out;
  for (const FieldDesc& field : target.fields) {
    const Value* src = value.find_field(field.name);
    if (src == nullptr) continue;  // stays zero-padded
    if (field.kind == TypeKind::kStruct && field.arity == Arity::kScalar &&
        src->is_record()) {
      out.set_field(field.name, project_value(*src, *field.struct_format));
    } else if (field.kind == TypeKind::kStruct && src->is_array()) {
      Value array = Value::empty_array();
      for (const Value& elem : src->elements()) {
        array.push_back(project_value(elem, *field.struct_format));
      }
      out.set_field(field.name, std::move(array));
    } else {
      out.set_field(field.name, *src);
    }
  }
  return out;
}

}  // namespace sbq::pbio
