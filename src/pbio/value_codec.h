// Encoding dynamic Values to / from the PBIO wire format.
//
// The bytes produced here are identical to those the native-record encoder
// produces for a struct with the same content, so a native sender can talk
// to a dynamic receiver and vice versa — that is what lets the SOAP runtime
// (dynamic, WSDL-driven) interoperate with application code holding plain
// C++ structs.
#pragma once

#include "common/buffer_chain.h"
#include "common/bytes.h"
#include "pbio/format.h"
#include "pbio/value.h"

namespace sbq::pbio {

/// Encodes `value` (a record matching `format`) as a payload appended to
/// `out`. Missing record fields throw CodecError — use `project_value` to
/// build reduced messages deliberately.
void encode_value(const Value& value, const FormatDesc& format, ByteBuffer& out,
                  ByteOrder wire_order = host_byte_order());

/// Chain-emitting encode: small fields accumulate in the writer's staging
/// buffer, bulk blocks (strings, char arrays) are appended as borrowed
/// segments pinned by `anchor` (or by the caller's guarantee that `value`
/// outlives the chain when no anchor is given). Coalesced output is
/// byte-identical to the ByteBuffer overload.
void encode_value(const Value& value, const FormatDesc& format, ChainWriter& out,
                  ByteOrder wire_order = host_byte_order(),
                  BufferChain::Anchor anchor = nullptr);

/// Header + payload in one buffer (same framing as encode_message).
Bytes encode_value_message(const Value& value, const FormatDesc& format,
                           ByteOrder wire_order = host_byte_order());

/// Header + payload as a BufferChain without a final concatenation: the
/// payload length is pre-computed (value_wire_size) so the header needs no
/// patching, and bulk payload blocks borrow from `value`'s storage. Pass an
/// `anchor` owning `value` when the chain must outlive the caller's frame
/// (e.g. server responses); request paths where `value` outlives the round
/// trip may leave it null.
BufferChain encode_value_message_chain(const Value& value, const FormatDesc& format,
                                       ByteOrder wire_order = host_byte_order(),
                                       BufferChain::Anchor anchor = nullptr);

/// Exact payload size `value` will occupy on the wire (no encoding).
std::size_t value_wire_size(const Value& value, const FormatDesc& format);

/// Decodes a payload known to use `format` into a Value record.
Value decode_value_payload(BytesView payload, ByteOrder sender_order,
                           const FormatDesc& format);

/// Chain-aware decode: consumes exactly `payload_length` bytes from the
/// reader. Bulk blocks that lie inside one segment are read without
/// flattening the message.
Value decode_value_payload(ChainReader& reader, std::size_t payload_length,
                           ByteOrder sender_order, const FormatDesc& format);

/// Decodes a full message (header + payload).
Value decode_value_message(BytesView message, const FormatDesc& format);

/// Projects `value` onto `target` format: fields present in both are copied,
/// fields only in `target` are zero/empty-filled. This is the quality layer's
/// "copy the relevant fields and pad the rest with zeroes" primitive.
Value project_value(const Value& value, const FormatDesc& target);

/// A zero/empty Value skeleton for `format` (all scalars 0, arrays empty,
/// strings "").
Value zero_value(const FormatDesc& format);

}  // namespace sbq::pbio
