#include "qos/handler_repository.h"

#include "common/error.h"
#include "common/strings.h"
#include "pbio/value_codec.h"

namespace sbq::qos {

using pbio::Value;

namespace {

std::size_t parse_positive(const std::string& token, const char* what) {
  const std::uint64_t v = parse_u64(token);
  if (v == 0) throw QosError(std::string(what) + " must be positive");
  return static_cast<std::size_t>(v);
}

/// Shrinks array or bulk-string field `field_name` keeping the first 1/n.
QualityHandler make_truncate(const std::string& field_name, std::size_t n) {
  return [field_name, n](const Value& full, const pbio::FormatDesc& target,
                         const AttributeMap&) {
    Value out = pbio::project_value(full, target);
    const Value* src = full.find_field(field_name);
    if (src == nullptr) {
      throw QosError("truncate: message has no field '" + field_name + "'");
    }
    if (src->is_string()) {
      const std::string& s = src->as_string();
      out.set_field(field_name, Value{s.substr(0, s.size() / n)});
    } else {
      const auto& elements = src->elements();
      Value trimmed = Value::empty_array();
      for (std::size_t i = 0; i < elements.size() / n; ++i) {
        trimmed.push_back(elements[i]);
      }
      out.set_field(field_name, std::move(trimmed));
    }
    return out;
  };
}

/// Keeps every nth element of array field `field_name` (down-sampling).
QualityHandler make_stride(const std::string& field_name, std::size_t n) {
  return [field_name, n](const Value& full, const pbio::FormatDesc& target,
                         const AttributeMap&) {
    Value out = pbio::project_value(full, target);
    const Value* src = full.find_field(field_name);
    if (src == nullptr) {
      throw QosError("stride: message has no field '" + field_name + "'");
    }
    Value sampled = Value::empty_array();
    const auto& elements = src->elements();
    for (std::size_t i = 0; i < elements.size(); i += n) {
      sampled.push_back(elements[i]);
    }
    out.set_field(field_name, std::move(sampled));
    return out;
  };
}

}  // namespace

HandlerRepository::HandlerRepository() {
  register_factory("project", [](const std::vector<std::string>& args) {
    if (!args.empty()) throw QosError("project takes no arguments");
    return [](const Value& full, const pbio::FormatDesc& target,
              const AttributeMap&) { return pbio::project_value(full, target); };
  });
  register_factory("truncate", [](const std::vector<std::string>& args) {
    if (args.size() != 2) throw QosError("truncate needs field:divisor");
    return make_truncate(args[0], parse_positive(args[1], "truncate divisor"));
  });
  register_factory("stride", [](const std::vector<std::string>& args) {
    if (args.size() != 2) throw QosError("stride needs field:step");
    return make_stride(args[0], parse_positive(args[1], "stride step"));
  });
}

void HandlerRepository::register_factory(std::string name, HandlerFactory factory) {
  if (!factory) throw QosError("null handler factory for '" + name + "'");
  factories_[std::move(name)] = std::move(factory);
}

QualityHandler HandlerRepository::instantiate(std::string_view spec) const {
  const auto parts = split(spec, ':');
  const std::string_view name = parts.empty() ? spec : parts[0];
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw QosError("unknown quality handler '" + std::string(name) + "'");
  }
  std::vector<std::string> args;
  for (std::size_t i = 1; i < parts.size(); ++i) args.emplace_back(parts[i]);
  return it->second(args);
}

bool HandlerRepository::contains(std::string_view name) const {
  return factories_.contains(name);
}

std::vector<std::string> HandlerRepository::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace sbq::qos
