// Quality-handler repository — runtime handler installation.
//
// The paper installs quality handlers statically, at stub-compile time, and
// names runtime installation "using dynamic binary code generation
// techniques and/or using code repositories" as future work. This module is
// the code-repository half: handlers are registered under names, optionally
// parameterized, and looked up by textual spec at runtime — so a quality
// file (or a remote client) can reference behavior by name instead of
// linking code.
//
// Spec grammar:   name[:arg[:arg...]]
//   "project"            field projection (the default conversion handler)
//   "truncate:f:N"       keep the first 1/N of array-or-string field `f`
//   "stride:f:N"         keep every Nth element of array field `f`
//   <custom>             anything registered via register_factory
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "qos/manager.h"

namespace sbq::qos {

/// Builds a handler from its argument list (already split on ':').
using HandlerFactory =
    std::function<QualityHandler(const std::vector<std::string>& args)>;

class HandlerRepository {
 public:
  /// Constructs a repository pre-loaded with the built-in handlers listed
  /// in the header comment.
  HandlerRepository();

  /// Registers (or replaces) a named factory.
  void register_factory(std::string name, HandlerFactory factory);

  /// Instantiates a handler from a spec string; throws QosError for unknown
  /// names or malformed arguments.
  [[nodiscard]] QualityHandler instantiate(std::string_view spec) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, HandlerFactory, std::less<>> factories_;
};

}  // namespace sbq::qos
