#include "qos/load.h"

#include <algorithm>

#include "common/error.h"

namespace sbq::qos {

LoadMonitor::LoadMonitor(double alpha, double shed_threshold,
                         std::uint64_t retry_after_s)
    : alpha_(alpha),
      shed_threshold_(shed_threshold),
      retry_after_s_(retry_after_s) {
  if (alpha < 0.0 || alpha >= 1.0) {
    throw QosError("LoadMonitor alpha must be in [0, 1)");
  }
  if (shed_threshold <= 0.0) {
    throw QosError("LoadMonitor shed threshold must be positive");
  }
}

void LoadMonitor::set_source(Source source) {
  std::lock_guard lock(mu_);
  source_ = std::move(source);
}

double LoadMonitor::observe(const LoadSample& sample) {
  const double workers =
      static_cast<double>(std::max<std::size_t>(1, sample.workers));
  const double capacity =
      static_cast<double>(std::max<std::size_t>(1, sample.queue_capacity));
  const double occupancy =
      std::min(1.0, static_cast<double>(sample.in_flight) / workers);
  const double queue_fill =
      std::min(1.0, static_cast<double>(sample.queue_depth) / capacity);
  // Event-front sample: readiness backlog relative to the connection count.
  // Zero for threaded-front samples (pending_events defaults to 0), so the
  // classic formula is unchanged there.
  const double event_pressure =
      sample.pending_events == 0
          ? 0.0
          : std::min(1.0, static_cast<double>(sample.pending_events) /
                              static_cast<double>(std::max<std::size_t>(
                                  1, sample.connections)));
  const double backlog = std::max(queue_fill, event_pressure);
  const double instantaneous = 0.5 * (occupancy + backlog);

  std::lock_guard lock(mu_);
  // Deliberately NOT first-sample-initialized (unlike EwmaEstimator): the
  // ramp from zero is what gives quality management a head start — the
  // degrade boundary is crossed several observations before the shed
  // threshold under sustained saturation.
  smoothed_ = alpha_ * smoothed_ + (1.0 - alpha_) * instantaneous;
  ++samples_;
  queue_high_water_ =
      std::max<std::uint64_t>(queue_high_water_, sample.queue_depth);
  return smoothed_;
}

double LoadMonitor::poll() {
  Source source;
  {
    std::lock_guard lock(mu_);
    if (!source_) return smoothed_;
    source = source_;
  }
  return observe(source());
}

double LoadMonitor::load() const {
  std::lock_guard lock(mu_);
  return smoothed_;
}

bool LoadMonitor::should_shed() const {
  std::lock_guard lock(mu_);
  return smoothed_ >= shed_threshold_;
}

std::uint64_t LoadMonitor::queue_high_water() const {
  std::lock_guard lock(mu_);
  return queue_high_water_;
}

std::uint64_t LoadMonitor::sample_count() const {
  std::lock_guard lock(mu_);
  return samples_;
}

}  // namespace sbq::qos
