// Server-side load monitoring — the paper's continuous quality management
// turned inward.
//
// The quality loop's existing signals are all client-observed (RTT, fault
// penalties); they notice an overloaded server only after queueing has
// already inflated round trips. A LoadMonitor watches the serving side
// itself — accepted-connection queue depth, in-flight count, and worker
// utilization — and smooths them into one `server_load` attribute in [0, 1]
// that a quality file can select message types on, exactly like `rtt_us`:
//
//     attribute server_load
//     0    0.5 - full_image
//     0.5  inf - half_image
//
// Above that sits the shed threshold: once the smoothed load crosses it the
// degradation ladder is exhausted and admission control answers further
// requests with 503 + Retry-After (core::ServiceRuntime). The EWMA starts
// from zero and ramps toward the observed utilization, so a load spike
// degrades quality several requests before it sheds — degrade, then shed,
// then (on shutdown) drain.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

namespace sbq::qos {

/// One observation of the serving side (http::ServerLoad maps onto this).
/// The event-front fields default to 0 and contribute nothing then — a
/// threaded-front sample scores exactly as it always has.
struct LoadSample {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 1;
  std::size_t in_flight = 0;
  std::size_t workers = 1;
  // Event front only: per-runtime occupancy and readiness backlog.
  std::size_t runtimes = 0;        // event runtimes (0 = threaded front)
  std::size_t connections = 0;     // live connections across all runtimes
  std::size_t pending_events = 0;  // readiness events in the last loop turns
};

class LoadMonitor {
 public:
  /// Attribute name quality files monitor for load-driven selection.
  static constexpr std::string_view kAttribute = "server_load";

  /// `alpha` is the history weight of the EWMA (estimate = α·estimate +
  /// (1-α)·sample); `shed_threshold` the smoothed load at which admission
  /// control sheds; `retry_after_s` the delay advertised with each 503.
  explicit LoadMonitor(double alpha = 0.7, double shed_threshold = 0.9,
                       std::uint64_t retry_after_s = 1);

  /// Pull source for samples (e.g. `[&server] { ... server.load() ... }`).
  using Source = std::function<LoadSample()>;
  void set_source(Source source);

  /// Feeds one sample; returns the new smoothed load. The instantaneous
  /// utilization is the mean of worker occupancy (in_flight / workers) and
  /// backlog pressure: workers alone saturate it to 0.5, a filling backlog
  /// pushes it toward 1. Backlog pressure is queue fullness
  /// (queue_depth / queue_capacity); under the event front it is the max of
  /// that and event pressure (pending_events / connections) — runtimes whose
  /// poll batches approach their connection counts are saturated even while
  /// the dispatch queue still has room.
  double observe(const LoadSample& sample);

  /// Samples the source (if any) and feeds it; without a source, returns
  /// the current smoothed load unchanged.
  double poll();

  /// Smoothed load in [0, 1]; 0 before any sample.
  [[nodiscard]] double load() const;

  /// True once the smoothed load has reached the shed threshold.
  [[nodiscard]] bool should_shed() const;

  [[nodiscard]] double shed_threshold() const { return shed_threshold_; }
  [[nodiscard]] std::uint64_t retry_after_s() const { return retry_after_s_; }

  /// Deepest queue seen across all observations.
  [[nodiscard]] std::uint64_t queue_high_water() const;

  [[nodiscard]] std::uint64_t sample_count() const;

 private:
  const double alpha_;
  const double shed_threshold_;
  const std::uint64_t retry_after_s_;

  mutable std::mutex mu_;
  Source source_;                      // sbqlint:guarded_by(mu_)
  double smoothed_ = 0.0;              // sbqlint:guarded_by(mu_)
  std::uint64_t samples_ = 0;          // sbqlint:guarded_by(mu_)
  std::uint64_t queue_high_water_ = 0; // sbqlint:guarded_by(mu_)
};

}  // namespace sbq::qos
