#include "qos/manager.h"

#include <algorithm>

#include "common/error.h"

namespace sbq::qos {

QualityManager::QualityManager(QualityFile file, int switch_threshold)
    : policy_(std::move(file), switch_threshold) {
  attributes_[policy_.file().attribute()] = 0.0;
}

void QualityManager::register_message_type(std::string name, pbio::FormatPtr format,
                                           QualityHandler handler) {
  if (!format) throw QosError("message type '" + name + "' without format");
  // Every registered name should be reachable from the quality file, or be
  // the application's full type; unreachable names are tolerated (they may
  // be selected via required_type on the receive path).
  MessageType type{name, std::move(format), std::move(handler)};
  std::lock_guard lock(mu_);
  types_[name] = std::move(type);
}

void QualityManager::update_attribute(std::string_view name, double value) {
  std::lock_guard lock(mu_);
  attributes_[std::string(name)] = value;
}

void QualityManager::replace_policy(QualityFile file, int switch_threshold) {
  SelectionPolicy fresh(std::move(file), switch_threshold);
  std::lock_guard lock(mu_);
  policy_ = std::move(fresh);
  // Ensure the (possibly new) monitored attribute has an entry.
  attributes_.try_emplace(policy_.file().attribute(), 0.0);
}

void QualityManager::install_handler(std::string_view type_name,
                                     QualityHandler handler) {
  std::lock_guard lock(mu_);
  const auto it = types_.find(type_name);
  if (it == types_.end()) {
    throw QosError("install_handler: unknown message type '" +
                   std::string(type_name) + "'");
  }
  it->second.handler = std::move(handler);
}

std::string QualityManager::attribute_name() const {
  std::lock_guard lock(mu_);
  return policy_.file().attribute();
}

double QualityManager::attribute(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    throw QosError("unknown quality attribute '" + std::string(name) + "'");
  }
  return it->second;
}

AttributeMap QualityManager::attributes() const {
  std::lock_guard lock(mu_);
  return attributes_;
}

void QualityManager::observe_rtt(double sample_us) {
  std::lock_guard lock(mu_);
  rtt_.update(sample_us);
  attributes_[policy_.file().attribute()] = rtt_.value_us();
}

void QualityManager::observe_fault(double deadline_us) {
  std::lock_guard lock(mu_);
  ++faults_;
  const double penalty = 2.0 * std::max(deadline_us, rtt_.value_us());
  if (penalty <= 0.0) return;
  rtt_.update(penalty);
  attributes_[policy_.file().attribute()] = rtt_.value_us();
}

std::uint64_t QualityManager::fault_count() const {
  std::lock_guard lock(mu_);
  return faults_;
}

void QualityManager::observe_probe(double rtt_us) {
  std::lock_guard lock(mu_);
  ++probes_;
  if (rtt_us <= 0.0) return;  // a clockless probe carries no signal
  rtt_.update(rtt_us);
  attributes_[policy_.file().attribute()] = rtt_.value_us();
}

std::uint64_t QualityManager::probe_count() const {
  std::lock_guard lock(mu_);
  return probes_;
}

EwmaEstimator QualityManager::rtt() const {
  std::lock_guard lock(mu_);
  return rtt_;
}

SelectionPolicy QualityManager::policy() const {
  std::lock_guard lock(mu_);
  return policy_;
}

const MessageType& QualityManager::select() {
  std::string name;
  {
    std::lock_guard lock(mu_);
    const auto it = attributes_.find(policy_.file().attribute());
    if (it == attributes_.end()) {
      throw QosError("quality attribute '" + policy_.file().attribute() +
                     "' has no value");
    }
    name = policy_.select(it->second);
  }
  return required_type(name);
}

const MessageType* QualityManager::find_type(std::string_view name) const {
  // The lock covers the lookup against concurrent registration; the
  // returned pointer stays valid because types_ never erases.
  std::lock_guard lock(mu_);
  const auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

const MessageType& QualityManager::required_type(std::string_view name) const {
  const MessageType* t = find_type(name);
  if (t == nullptr) {
    throw QosError("message type '" + std::string(name) +
                   "' named in quality policy is not registered");
  }
  return *t;
}

pbio::Value QualityManager::apply(const pbio::Value& full,
                                  const MessageType& type) const {
  if (type.handler) {
    // Hand the handler a stable snapshot of the attributes.
    return type.handler(full, *type.format, attributes());
  }
  // Default conversion handler: copy common fields, drop the rest.
  return pbio::project_value(full, *type.format);
}

}  // namespace sbq::qos
