// The quality manager: attributes, message types, quality handlers.
//
// One QualityManager lives inside each SOAP-binQ endpoint (client and server
// share the quality file, per the paper: "the quality file is used both by
// the server side and client side stubs"). It owns
//   * the monitored attribute values — applications update them with
//     update_attribute(), the paper's API for dynamic quality changes,
//   * the registered message types (format + optional quality handler),
//   * a SelectionPolicy deciding which type an outgoing message uses.
//
// A quality handler transforms the full application message into the chosen
// reduced type; when none is registered the default handler performs the
// paper's field projection: copy the fields the two types share, ignore the
// rest (the receiver pads them back with zeroes).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "pbio/format.h"
#include "pbio/value.h"
#include "pbio/value_codec.h"
#include "qos/policy.h"
#include "qos/rtt.h"

namespace sbq::qos {

using AttributeMap = std::map<std::string, double, std::less<>>;

/// Transforms the full message into `target`-typed content. Receives the
/// live attribute values so handlers can be parameterized per invocation.
using QualityHandler = std::function<pbio::Value(
    const pbio::Value& full, const pbio::FormatDesc& target, const AttributeMap&)>;

/// A message type a quality file may select.
struct MessageType {
  std::string name;
  pbio::FormatPtr format;
  QualityHandler handler;  // empty → default projection handler
};

class QualityManager {
 public:
  QualityManager(QualityFile file, int switch_threshold = 3);

  /// Registers a message type named in the quality file. The largest /
  /// default type must be registered too.
  void register_message_type(std::string name, pbio::FormatPtr format,
                             QualityHandler handler = nullptr);

  /// The paper's dynamic-quality API: update a monitored attribute value.
  void update_attribute(std::string_view name, double value);

  /// Replaces the quality policy at runtime (paper §V future work:
  /// "dynamically define and re-define quality management"). Selection
  /// history restarts; registered message types and attribute values are
  /// kept. The new file may monitor a different attribute.
  void replace_policy(QualityFile file, int switch_threshold = 3);

  /// Swaps the quality handler of an already-registered message type at
  /// runtime (the paper installed handlers statically at compile time and
  /// lists runtime installation as future work). Throws QosError for an
  /// unknown type.
  void install_handler(std::string_view type_name, QualityHandler handler);

  /// Name of the attribute the current policy monitors.
  [[nodiscard]] std::string attribute_name() const;

  [[nodiscard]] double attribute(std::string_view name) const;

  /// Snapshot of all attribute values (copied under the lock).
  [[nodiscard]] AttributeMap attributes() const;

  /// Feeds an RTT sample into the built-in estimator and mirrors the
  /// smoothed value into the monitored attribute map under the quality
  /// file's attribute name.
  void observe_rtt(double sample_us);

  /// Loss-like penalty for a failed round trip (timeout, reset, retry). A
  /// fault carries no genuine RTT, but pretending it never happened would
  /// keep the policy at full quality while the link burns; instead a
  /// synthetic sample of 2 × max(deadline, current estimate) is fed to the
  /// estimator, stepping the selected message type down under sustained
  /// faults and letting the EWMA recover with hysteresis when the link
  /// heals. No-op when both the deadline and the estimate are zero (there
  /// is no scale to penalize against).
  void observe_fault(double deadline_us);

  /// Number of fault penalties observed so far.
  [[nodiscard]] std::uint64_t fault_count() const;

  /// Health-probe feed (core's resilience layer, docs/resilience.md). A
  /// successful probe of a recovering replica carries a genuine RTT sample
  /// but no user payload: the sample flows into the same estimator and
  /// monitored attribute as observe_rtt, so quality re-projects upward as
  /// the endpoint set heals — the recovery mirror of the observe_fault
  /// penalty path — while a separate counter keeps probes auditable.
  void observe_probe(double rtt_us);

  /// Number of probe samples observed so far.
  [[nodiscard]] std::uint64_t probe_count() const;

  /// Copy of the RTT estimator state (safe across threads).
  [[nodiscard]] EwmaEstimator rtt() const;

  /// Selects the message type for the next outgoing message (with
  /// hysteresis) based on the current attribute value.
  const MessageType& select();

  /// Looks up a registered type by name (for the receive path).
  [[nodiscard]] const MessageType* find_type(std::string_view name) const;
  [[nodiscard]] const MessageType& required_type(std::string_view name) const;

  /// Applies `type`'s handler (or the default projection) to `full`.
  [[nodiscard]] pbio::Value apply(const pbio::Value& full,
                                  const MessageType& type) const;

  /// Copy of the current policy (it is replaceable at runtime, so a
  /// reference could be invalidated mid-read by replace_policy).
  [[nodiscard]] SelectionPolicy policy() const;

 private:
  // Guards every field below: the policy is replaceable at runtime, the
  // attribute/estimator state is fed from transport threads, and
  // install_handler swaps handlers inside types_ after registration.
  mutable std::mutex mu_;
  SelectionPolicy policy_;     // sbqlint:guarded_by(mu_)
  AttributeMap attributes_;    // sbqlint:guarded_by(mu_)
  EwmaEstimator rtt_;          // sbqlint:guarded_by(mu_)
  std::uint64_t faults_ = 0;   // sbqlint:guarded_by(mu_)
  std::uint64_t probes_ = 0;   // sbqlint:guarded_by(mu_)
  std::map<std::string, MessageType, std::less<>> types_;  // sbqlint:guarded_by(mu_)
};

}  // namespace sbq::qos
