#include "qos/monitors.h"

#include "common/error.h"

namespace sbq::qos {

MarshalCostMonitor::MarshalCostMonitor(
    std::function<EndpointStats()> stats_source, double alpha)
    : stats_source_(std::move(stats_source)), estimate_(alpha) {
  if (!stats_source_) throw QosError("MarshalCostMonitor needs a stats source");
}

double MarshalCostMonitor::sample() {
  const EndpointStats stats = stats_source_();
  const double total = stats.marshal_us + stats.unmarshal_us;
  const std::uint64_t calls = stats.calls;
  if (calls > last_calls_) {
    const double per_call = (total - last_total_us_) /
                            static_cast<double>(calls - last_calls_);
    estimate_.update(per_call < 0.0 ? 0.0 : per_call);
    last_total_us_ = total;
    last_calls_ = calls;
  }
  return estimate_.value_us();
}

void MonitorSet::add(std::unique_ptr<AttributeMonitor> monitor) {
  if (!monitor) throw QosError("null monitor");
  monitors_.push_back(std::move(monitor));
}

void MonitorSet::poll(QualityManager& manager) {
  for (const auto& monitor : monitors_) {
    manager.update_attribute(monitor->attribute(), monitor->sample());
  }
}

}  // namespace sbq::qos
