// Attribute monitors — quality attributes beyond RTT.
//
// The paper (§III-B.c): "a monitored attribute can use any value that is
// suitable for triggering changes in data quality ... Other attributes ...
// may capture CPU load, by measuring marshalling or unmarshalling costs,
// memory consumption, or similar factors."
//
// A monitor derives one named attribute from some observable source and
// pushes it into a QualityManager when polled. Endpoints call poll() at
// whatever cadence suits them (the SOAP-binQ runtime polls per request).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "qos/manager.h"

namespace sbq::qos {

/// Derives one attribute value per poll.
class AttributeMonitor {
 public:
  virtual ~AttributeMonitor() = default;
  [[nodiscard]] virtual std::string attribute() const = 0;
  [[nodiscard]] virtual double sample() = 0;
};

/// Marshalling-cost monitor: EWMA of per-call marshal+unmarshal CPU µs read
/// from an endpoint's cost counters — the paper's "capture CPU load, by
/// measuring marshalling or unmarshalling costs".
class MarshalCostMonitor final : public AttributeMonitor {
 public:
  /// `stats_source` returns the current counter snapshot of the endpoint.
  MarshalCostMonitor(std::function<EndpointStats()> stats_source,
                     double alpha = 0.7);

  [[nodiscard]] std::string attribute() const override { return "marshal_cost_us"; }
  [[nodiscard]] double sample() override;

 private:
  std::function<EndpointStats()> stats_source_;
  EwmaEstimator estimate_;
  double last_total_us_ = 0.0;
  std::uint64_t last_calls_ = 0;
};

/// Free-function monitor: wraps any `double()` callable under a name.
class CallableMonitor final : public AttributeMonitor {
 public:
  CallableMonitor(std::string attribute, std::function<double()> fn)
      : attribute_(std::move(attribute)), fn_(std::move(fn)) {}

  [[nodiscard]] std::string attribute() const override { return attribute_; }
  [[nodiscard]] double sample() override { return fn_(); }

 private:
  std::string attribute_;
  std::function<double()> fn_;
};

/// A set of monitors feeding one QualityManager.
class MonitorSet {
 public:
  void add(std::unique_ptr<AttributeMonitor> monitor);

  /// Samples every monitor and updates the manager's attributes.
  void poll(QualityManager& manager);

  [[nodiscard]] std::size_t size() const { return monitors_.size(); }

 private:
  std::vector<std::unique_ptr<AttributeMonitor>> monitors_;
};

}  // namespace sbq::qos
