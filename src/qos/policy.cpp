#include "qos/policy.h"

#include "common/error.h"

namespace sbq::qos {

SelectionPolicy::SelectionPolicy(QualityFile file, int switch_threshold)
    : file_(std::move(file)), threshold_(switch_threshold) {
  if (threshold_ < 1) throw QosError("switch_threshold must be >= 1");
}

const std::string& SelectionPolicy::select(double attribute_value) {
  const std::string& raw = file_.select(attribute_value);
  if (active_.empty()) {
    // First selection establishes the active type immediately.
    active_ = raw;
    candidate_.clear();
    candidate_streak_ = 0;
    return active_;
  }
  if (raw == active_) {
    candidate_.clear();
    candidate_streak_ = 0;
    return active_;
  }
  if (raw == candidate_) {
    ++candidate_streak_;
  } else {
    candidate_ = raw;
    candidate_streak_ = 1;
  }
  if (candidate_streak_ >= threshold_) {
    active_ = candidate_;
    candidate_.clear();
    candidate_streak_ = 0;
    ++switches_;
  }
  return active_;
}

}  // namespace sbq::qos
