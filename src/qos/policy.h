// Message-type selection with history-based anti-oscillation.
//
// Selecting strictly by the latest RTT interval makes the system flap: a
// large message inflates RTT, the policy drops to the small message, RTT
// recovers, the policy jumps back — the oscillation the paper observes and
// damps with "a simple history-based mechanism". SelectionPolicy requires a
// candidate type to win `switch_threshold` consecutive selections before the
// active type actually changes.
#pragma once

#include <cstdint>
#include <string>

#include "qos/quality_file.h"

namespace sbq::qos {

class SelectionPolicy {
 public:
  /// `switch_threshold` = consecutive selections of the same new type
  /// required to switch; 1 disables hysteresis (pure interval lookup).
  explicit SelectionPolicy(QualityFile file, int switch_threshold = 3);

  /// Feeds the current attribute value, returns the active message type.
  const std::string& select(double attribute_value);

  /// Currently active type without updating history (empty before first
  /// select()).
  [[nodiscard]] const std::string& active() const { return active_; }

  /// Number of type switches performed so far (ablation metric).
  [[nodiscard]] std::uint64_t switch_count() const { return switches_; }

  [[nodiscard]] const QualityFile& file() const { return file_; }
  [[nodiscard]] int switch_threshold() const { return threshold_; }

 private:
  QualityFile file_;
  int threshold_;
  std::string active_;
  std::string candidate_;
  int candidate_streak_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace sbq::qos
