#include "qos/quality_file.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/strings.h"

namespace sbq::qos {

namespace {
double parse_bound(std::string_view token) {
  if (token == "inf" || token == "INF" || token == "+inf") {
    return std::numeric_limits<double>::infinity();
  }
  return parse_f64(token);
}
}  // namespace

QualityFile::QualityFile(std::string attribute, std::vector<QualityRule> rules)
    : attribute_(std::move(attribute)), rules_(std::move(rules)) {
  validate();
}

void QualityFile::validate() const {
  if (rules_.empty()) throw QosError("quality file has no rules");
  for (const auto& r : rules_) {
    if (!(r.lo < r.hi)) {
      throw QosError("quality rule for '" + r.message_type +
                     "' has empty interval [" + std::to_string(r.lo) + ", " +
                     std::to_string(r.hi) + ")");
    }
    if (r.message_type.empty()) throw QosError("quality rule without message type");
  }
  // Overlap check over the sorted copy.
  std::vector<QualityRule> sorted = rules_;
  std::sort(sorted.begin(), sorted.end(),
            [](const QualityRule& a, const QualityRule& b) { return a.lo < b.lo; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].lo < sorted[i - 1].hi) {
      throw QosError("quality rules overlap at attribute value " +
                     std::to_string(sorted[i].lo));
    }
  }
}

QualityFile QualityFile::parse(std::string_view text) {
  std::string attribute = "rtt_us";
  std::vector<QualityRule> rules;

  for (std::string_view raw_line : split(text, '\n')) {
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto tokens = split_whitespace(line);
    if (tokens.size() == 2 && tokens[0] == "attribute") {
      attribute = std::string(tokens[1]);
      continue;
    }
    if (tokens.size() != 4 || tokens[2] != "-") {
      throw QosError("bad quality rule line: '" + std::string(raw_line) +
                     "' (expected 'lo hi - message_type')");
    }
    QualityRule rule;
    rule.lo = parse_bound(tokens[0]);
    rule.hi = parse_bound(tokens[1]);
    rule.message_type = std::string(tokens[3]);
    rules.push_back(std::move(rule));
  }
  return QualityFile(std::move(attribute), std::move(rules));
}

std::string QualityFile::serialize() const {
  std::string out = "attribute " + attribute_ + "\n";
  for (const auto& r : rules_) {
    const auto fmt = [](double v) {
      if (std::isinf(v)) return std::string("inf");
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", v);
      return std::string(buf);
    };
    out += fmt(r.lo) + " " + fmt(r.hi) + " - " + r.message_type + "\n";
  }
  return out;
}

const std::string& QualityFile::select(double attribute_value) const {
  for (const auto& r : rules_) {
    if (attribute_value >= r.lo && attribute_value < r.hi) return r.message_type;
  }
  throw QosError("no quality rule covers attribute value " +
                 std::to_string(attribute_value));
}

}  // namespace sbq::qos
