// Quality files.
//
// A quality file maps intervals of a monitored quality attribute to message
// types, exactly the template in the paper (§III-B.b):
//
//     quality_attribute_1 quality_attribute_2 - message_type_0
//     quality_attribute_2 quality_attribute_3 - message_type_1
//
// Concrete syntax accepted here:
//
//     # comment
//     attribute rtt_us          (optional; default "rtt_us")
//     0     5000  - full_image
//     5000  20000 - half_image
//     20000 inf   - quarter_image
//
// Intervals are [lo, hi), must not overlap, and must cover the attribute
// value at selection time (a gap is a configuration error reported at parse
// time if detectable, or at selection otherwise).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sbq::qos {

struct QualityRule {
  double lo = 0.0;
  double hi = 0.0;  // exclusive; +inf allowed
  std::string message_type;
};

class QualityFile {
 public:
  QualityFile() = default;
  QualityFile(std::string attribute, std::vector<QualityRule> rules);

  /// Parses the textual format above; throws QosError / ParseError.
  static QualityFile parse(std::string_view text);

  /// Serializes back to the textual format (round-trips through parse).
  [[nodiscard]] std::string serialize() const;

  /// Message type for an attribute value; throws QosError when no interval
  /// covers the value.
  [[nodiscard]] const std::string& select(double attribute_value) const;

  [[nodiscard]] const std::string& attribute() const { return attribute_; }
  [[nodiscard]] const std::vector<QualityRule>& rules() const { return rules_; }

 private:
  void validate() const;

  std::string attribute_ = "rtt_us";
  std::vector<QualityRule> rules_;
};

}  // namespace sbq::qos
