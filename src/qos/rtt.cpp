#include "qos/rtt.h"

#include "common/error.h"

namespace sbq::qos {

EwmaEstimator::EwmaEstimator(double alpha) : alpha_(alpha) {
  if (alpha < 0.0 || alpha >= 1.0) {
    throw QosError("EWMA alpha must be in [0, 1)");
  }
}

void EwmaEstimator::update(double sample_us) {
  if (sample_us < 0.0) throw QosError("negative RTT sample");
  if (samples_ == 0) {
    estimate_us_ = sample_us;
  } else {
    estimate_us_ = alpha_ * estimate_us_ + (1.0 - alpha_) * sample_us;
  }
  ++samples_;
}

void EwmaEstimator::reset() {
  estimate_us_ = 0.0;
  samples_ = 0;
}

double rtt_sample_us(std::uint64_t sent_at_us, std::uint64_t received_at_us,
                     std::uint64_t server_prep_us) {
  if (received_at_us < sent_at_us) throw QosError("RTT sample: reply before request");
  const std::uint64_t raw = received_at_us - sent_at_us;
  return raw > server_prep_us ? static_cast<double>(raw - server_prep_us) : 0.0;
}

}  // namespace sbq::qos
