// Round-trip-time estimation.
//
// SOAP-binQ measures RTT the way the paper describes (§IV-C.h): the client
// sends a timestamp with each request, the server echoes it (optionally set
// back by its own data-preparation time), and the client smooths samples
// with the classic exponential average R = α·R + (1-α)·M, α = 0.875 — the
// RFC 793 / Jacobson-Karels estimator the paper cites.
#pragma once

#include <cstdint>

namespace sbq::qos {

/// Exponentially weighted moving average over RTT samples (microseconds).
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.875);

  /// Feeds one measured RTT; the first sample initializes the estimate.
  void update(double sample_us);

  /// Current smoothed estimate; 0 before any sample.
  [[nodiscard]] double value_us() const { return estimate_us_; }

  [[nodiscard]] bool has_sample() const { return samples_ > 0; }
  [[nodiscard]] std::uint64_t sample_count() const { return samples_; }

  void reset();

 private:
  double alpha_;
  double estimate_us_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Computes an RTT sample from echoed timestamps, subtracting the server's
/// self-reported preparation time (the paper's suggested rectification).
double rtt_sample_us(std::uint64_t sent_at_us, std::uint64_t received_at_us,
                     std::uint64_t server_prep_us = 0);

}  // namespace sbq::qos
