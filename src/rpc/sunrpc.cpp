#include "rpc/sunrpc.h"

#include "common/error.h"

namespace sbq::rpc {

namespace {
constexpr std::uint32_t kRpcVersion = 2;
constexpr std::uint32_t kMsgCall = 0;
constexpr std::uint32_t kMsgReply = 1;
constexpr std::uint32_t kReplyAccepted = 0;
constexpr std::uint32_t kReplyDenied = 1;
constexpr std::uint32_t kAuthNone = 0;

void put_auth_none(XdrEncoder& enc) {
  enc.put_u32(kAuthNone);  // flavor
  enc.put_u32(0);          // body length
}

void skip_auth(XdrDecoder& dec) {
  dec.get_u32();  // flavor
  const std::uint32_t len = dec.get_u32();
  if (len > 400) throw RpcError("auth body too large");
  (void)dec.get_opaque_fixed(len);
}
}  // namespace

void write_record(net::Stream& stream, BytesView payload) {
  // Single fragment with the last-fragment bit set.
  if (payload.size() > 0x7FFFFFFF) throw RpcError("record too large");
  ByteBuffer header;
  header.append_u32(0x80000000u | static_cast<std::uint32_t>(payload.size()),
                    ByteOrder::kBig);
  stream.write_all(header.view());
  stream.write_all(payload);
}

Bytes read_record(net::Stream& stream) {
  Bytes record;
  for (;;) {
    std::uint8_t hdr[4];
    stream.read_exact(hdr, 4);
    ByteReader r(hdr, 4);
    const std::uint32_t word = r.read_u32(ByteOrder::kBig);
    const bool last = (word & 0x80000000u) != 0;
    const std::uint32_t len = word & 0x7FFFFFFFu;
    const std::size_t old = record.size();
    record.resize(old + len);
    stream.read_exact(record.data() + old, len);
    if (last) return record;
  }
}

Bytes RpcClient::call(std::uint32_t procedure, BytesView args) {
  const std::uint32_t xid = next_xid_++;
  XdrEncoder enc;
  enc.put_u32(xid);
  enc.put_u32(kMsgCall);
  enc.put_u32(kRpcVersion);
  enc.put_u32(program_);
  enc.put_u32(version_);
  enc.put_u32(procedure);
  put_auth_none(enc);  // cred
  put_auth_none(enc);  // verf
  enc.put_opaque_fixed(args);

  const Bytes request = enc.take();
  write_record(stream_, BytesView{request});
  bytes_sent_ += request.size() + 4;

  const Bytes reply = read_record(stream_);
  bytes_received_ += reply.size() + 4;

  XdrDecoder dec(BytesView{reply});
  const std::uint32_t reply_xid = dec.get_u32();
  if (reply_xid != xid) throw RpcError("xid mismatch");
  if (dec.get_u32() != kMsgReply) throw RpcError("expected REPLY message");
  const std::uint32_t stat = dec.get_u32();
  if (stat == kReplyDenied) throw RpcError("call denied by server");
  if (stat != kReplyAccepted) throw RpcError("bad reply_stat");
  skip_auth(dec);  // verf
  const auto accept = static_cast<AcceptStat>(dec.get_u32());
  switch (accept) {
    case AcceptStat::kSuccess:
      break;
    case AcceptStat::kProgUnavail:
      throw RpcError("program unavailable");
    case AcceptStat::kProgMismatch:
      throw RpcError("program version mismatch");
    case AcceptStat::kProcUnavail:
      throw RpcError("procedure unavailable");
    case AcceptStat::kGarbageArgs:
      throw RpcError("garbage args");
    case AcceptStat::kSystemErr:
      throw RpcError("server system error");
  }
  return Bytes(reply.begin() + static_cast<long>(reply.size() - dec.remaining()),
               reply.end());
}

void RpcServer::register_procedure(std::uint32_t procedure, Procedure fn) {
  procedures_[procedure] = std::move(fn);
}

Bytes RpcServer::handle_call(BytesView call_message) {
  XdrDecoder dec(call_message);
  const std::uint32_t xid = dec.get_u32();
  if (dec.get_u32() != kMsgCall) throw RpcError("expected CALL message");

  XdrEncoder reply;
  reply.put_u32(xid);
  reply.put_u32(kMsgReply);

  const std::uint32_t rpcvers = dec.get_u32();
  if (rpcvers != kRpcVersion) {
    reply.put_u32(kReplyDenied);
    reply.put_u32(0);            // RPC_MISMATCH
    reply.put_u32(kRpcVersion);  // low
    reply.put_u32(kRpcVersion);  // high
    return reply.take();
  }

  const std::uint32_t program = dec.get_u32();
  const std::uint32_t version = dec.get_u32();
  const std::uint32_t procedure = dec.get_u32();
  skip_auth(dec);  // cred
  skip_auth(dec);  // verf

  reply.put_u32(kReplyAccepted);
  put_auth_none(reply);  // verf

  if (program != program_) {
    reply.put_u32(static_cast<std::uint32_t>(AcceptStat::kProgUnavail));
    return reply.take();
  }
  if (version != version_) {
    reply.put_u32(static_cast<std::uint32_t>(AcceptStat::kProgMismatch));
    reply.put_u32(version_);
    reply.put_u32(version_);
    return reply.take();
  }
  const auto it = procedures_.find(procedure);
  if (it == procedures_.end()) {
    reply.put_u32(static_cast<std::uint32_t>(AcceptStat::kProcUnavail));
    return reply.take();
  }

  // Argument bytes are the remainder of the call body.
  const std::size_t arg_offset = call_message.size() - dec.remaining();
  const BytesView args = call_message.subspan(arg_offset);
  try {
    const Bytes result = it->second(args);
    reply.put_u32(static_cast<std::uint32_t>(AcceptStat::kSuccess));
    reply.put_opaque_fixed(BytesView{result});
  } catch (const std::exception&) {
    reply.put_u32(static_cast<std::uint32_t>(AcceptStat::kSystemErr));
  }
  return reply.take();
}

void RpcServer::serve(net::Stream& stream) {
  for (;;) {
    Bytes call_message;
    try {
      call_message = read_record(stream);
    } catch (const TransportError&) {
      return;  // EOF or peer reset
    }
    const Bytes reply = handle_call(BytesView{call_message});
    write_record(stream, BytesView{reply});
  }
}

}  // namespace sbq::rpc
