// Sun RPC (ONC RPC, RFC 1057) over TCP with record marking (RFC 1057 §10).
//
// Implements the protocol subset the Figure 4 baseline needs: version-2
// CALL/REPLY messages with AUTH_NONE, procedure dispatch, and MSG_ACCEPTED /
// MSG_DENIED handling. Arguments and results are opaque XDR-encoded bodies
// produced by the caller with XdrEncoder/XdrDecoder.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/stream.h"
#include "rpc/xdr.h"

namespace sbq::rpc {

/// accept_stat values (RFC 1057 §8).
enum class AcceptStat : std::uint32_t {
  kSuccess = 0,
  kProgUnavail = 1,
  kProgMismatch = 2,
  kProcUnavail = 3,
  kGarbageArgs = 4,
  kSystemErr = 5,
};

/// Record-marking framing: writes one record (fragment header + payload).
void write_record(net::Stream& stream, BytesView payload);

/// Reads one complete record (possibly multiple fragments).
Bytes read_record(net::Stream& stream);

/// Client for one program/version on an established stream.
class RpcClient {
 public:
  RpcClient(net::Stream& stream, std::uint32_t program, std::uint32_t version)
      : stream_(stream), program_(program), version_(version) {}

  /// Calls `procedure` with XDR-encoded `args`; returns XDR-encoded results.
  /// Throws RpcError when the server rejects or reports non-success.
  Bytes call(std::uint32_t procedure, BytesView args);

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  net::Stream& stream_;
  std::uint32_t program_;
  std::uint32_t version_;
  std::uint32_t next_xid_ = 1;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// Procedure table + connection-serving loop for one program/version.
class RpcServer {
 public:
  using Procedure = std::function<Bytes(BytesView args)>;

  RpcServer(std::uint32_t program, std::uint32_t version)
      : program_(program), version_(version) {}

  void register_procedure(std::uint32_t procedure, Procedure fn);

  /// Serves calls on `stream` until EOF. Procedure exceptions map to
  /// SYSTEM_ERR; unknown procedures to PROC_UNAVAIL; wrong program to
  /// PROG_UNAVAIL.
  void serve(net::Stream& stream);

  /// Handles a single already-framed call message; returns the reply
  /// payload (before record marking). Exposed for tests and simulators.
  Bytes handle_call(BytesView call_message);

 private:
  std::uint32_t program_;
  std::uint32_t version_;
  std::map<std::uint32_t, Procedure> procedures_;
};

}  // namespace sbq::rpc
