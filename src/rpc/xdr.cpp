#include "rpc/xdr.h"

#include <bit>

namespace sbq::rpc {

void XdrEncoder::pad() {
  while (out_.size() % 4 != 0) out_.append_u8(0);
}

void XdrEncoder::put_u32(std::uint32_t v) {
  out_.append_u32(v, ByteOrder::kBig);
}
void XdrEncoder::put_i32(std::int32_t v) {
  put_u32(static_cast<std::uint32_t>(v));
}
void XdrEncoder::put_u64(std::uint64_t v) {
  out_.append_u64(v, ByteOrder::kBig);
}
void XdrEncoder::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}
void XdrEncoder::put_f32(float v) {
  put_u32(std::bit_cast<std::uint32_t>(v));
}
void XdrEncoder::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}
void XdrEncoder::put_bool(bool v) {
  put_u32(v ? 1 : 0);
}

void XdrEncoder::put_opaque(BytesView data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  out_.append(data);
  pad();
}

void XdrEncoder::put_opaque_fixed(BytesView data) {
  out_.append(data);
  pad();
}

void XdrEncoder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
  pad();
}

void XdrDecoder::skip_pad(std::size_t data_len) {
  const std::size_t rem = data_len % 4;
  if (rem != 0) reader_.skip(4 - rem);
}

std::uint32_t XdrDecoder::get_u32() {
  return reader_.read_u32(ByteOrder::kBig);
}
std::int32_t XdrDecoder::get_i32() {
  return static_cast<std::int32_t>(get_u32());
}
std::uint64_t XdrDecoder::get_u64() {
  return reader_.read_u64(ByteOrder::kBig);
}
std::int64_t XdrDecoder::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}
float XdrDecoder::get_f32() {
  return std::bit_cast<float>(get_u32());
}
double XdrDecoder::get_f64() {
  return std::bit_cast<double>(get_u64());
}
bool XdrDecoder::get_bool() {
  return get_u32() != 0;
}

Bytes XdrDecoder::get_opaque() {
  const std::uint32_t len = get_u32();
  const BytesView v = reader_.read_view(len);
  Bytes out(v.begin(), v.end());
  skip_pad(len);
  return out;
}

Bytes XdrDecoder::get_opaque_fixed(std::size_t n) {
  const BytesView v = reader_.read_view(n);
  Bytes out(v.begin(), v.end());
  skip_pad(n);
  return out;
}

std::string XdrDecoder::get_string() {
  const std::uint32_t len = get_u32();
  std::string s = reader_.read_string(len);
  skip_pad(len);
  return s;
}

}  // namespace sbq::rpc
