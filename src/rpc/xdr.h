// XDR — External Data Representation (RFC 4506 rules, as used by Sun RPC).
//
// The paper's Figure 4 baseline is TCP-based Sun RPC "which uses the XDR
// data representation". XDR is the conceptual opposite of PBIO: every datum
// is converted to a canonical big-endian, 4-byte-aligned form on the way
// out and back to native form on the way in, regardless of whether the
// peers actually differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace sbq::rpc {

/// Canonical-form encoder. All quantities big-endian, padded to 4 bytes.
class XdrEncoder {
 public:
  void put_u32(std::uint32_t v);
  void put_i32(std::int32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f32(float v);
  void put_f64(double v);
  void put_bool(bool v);
  /// Variable-length opaque: length + bytes + zero padding to 4.
  void put_opaque(BytesView data);
  /// Fixed-length opaque: bytes + padding, no length prefix.
  void put_opaque_fixed(BytesView data);
  void put_string(std::string_view s);

  /// Variable-length array: count prefix, then caller emits elements.
  void put_array_header(std::uint32_t count) { put_u32(count); }

  [[nodiscard]] const ByteBuffer& buffer() const { return out_; }
  [[nodiscard]] Bytes take() { return out_.take(); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  void pad();
  ByteBuffer out_;
};

/// Canonical-form decoder; throws CodecError on truncation.
class XdrDecoder {
 public:
  explicit XdrDecoder(BytesView view) : reader_(view) {}

  std::uint32_t get_u32();
  std::int32_t get_i32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  float get_f32();
  double get_f64();
  bool get_bool();
  Bytes get_opaque();
  Bytes get_opaque_fixed(std::size_t n);
  std::string get_string();
  std::uint32_t get_array_header() { return get_u32(); }

  [[nodiscard]] bool exhausted() const { return reader_.exhausted(); }
  [[nodiscard]] std::size_t remaining() const { return reader_.remaining(); }

 private:
  void skip_pad(std::size_t data_len);
  ByteReader reader_;
};

}  // namespace sbq::rpc
