#include "soap/codec.h"

#include "common/base64.h"
#include "common/error.h"
#include "common/strings.h"

namespace sbq::soap {

using pbio::Arity;
using pbio::FieldDesc;
using pbio::FormatDesc;
using pbio::TypeKind;
using pbio::Value;

namespace {

std::string_view xsi_type_name(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32: return "xsd:int";
    case TypeKind::kInt64: return "xsd:long";
    case TypeKind::kUInt32: return "xsd:unsignedInt";
    case TypeKind::kUInt64: return "xsd:unsignedLong";
    case TypeKind::kFloat32: return "xsd:float";
    case TypeKind::kFloat64: return "xsd:double";
    case TypeKind::kChar: return "xsd:byte";
    case TypeKind::kString: return "xsd:string";
    case TypeKind::kStruct: return "tns:struct";
  }
  return "xsd:anyType";
}

void write_scalar(xml::XmlWriter& writer, const Value& v, TypeKind kind,
                  std::string_view name, const XmlStyle& style) {
  writer.start_element(name);
  if (style.typed) writer.attribute("xsi:type", xsi_type_name(kind));
  switch (kind) {
    case TypeKind::kInt32:
    case TypeKind::kInt64:
      writer.text(std::to_string(v.as_i64()));
      break;
    case TypeKind::kUInt32:
    case TypeKind::kUInt64:
      writer.text(std::to_string(v.as_u64()));
      break;
    case TypeKind::kFloat32:
    case TypeKind::kFloat64:
      writer.text(xml::format_double(v.as_f64()));
      break;
    case TypeKind::kChar:
      // Chars travel as their numeric value: whitespace and control
      // characters are not representable as XML character data (and would
      // be destroyed by whitespace trimming on the read side).
      writer.text(std::to_string(static_cast<int>(
          static_cast<unsigned char>(v.as_char()))));
      break;
    case TypeKind::kString:
      writer.text(std::string_view{v.as_string()});
      break;
    default:
      throw CodecError("write_scalar: unexpected kind");
  }
  writer.end_element();
}

void write_record(xml::XmlWriter& writer, const Value& value,
                  const FormatDesc& format, std::string_view name,
                  const XmlStyle& style);

void write_field(xml::XmlWriter& writer, const Value& v, const FieldDesc& field,
                 const XmlStyle& style) {
  switch (field.arity) {
    case Arity::kScalar:
      if (field.kind == TypeKind::kStruct) {
        write_record(writer, v, *field.struct_format, field.name, style);
      } else {
        write_scalar(writer, v, field.kind, field.name, style);
      }
      break;
    case Arity::kFixedArray:
    case Arity::kVarArray: {
      // Bulk char arrays (string-backed) travel as xsd:base64Binary text.
      if (field.kind == TypeKind::kChar && v.is_string()) {
        writer.start_element(field.name);
        if (style.typed) writer.attribute("xsi:type", "xsd:base64Binary");
        writer.text(base64_encode(std::string_view{v.as_string()}));
        writer.end_element();
        break;
      }
      // SOAP array encoding: a container element with one <item> per value —
      // the per-element tagging that makes XML arrays several times the
      // size of the equivalent PBIO message.
      writer.start_element(field.name);
      if (style.typed) {
        writer.attribute("soapenc:arrayType",
                         std::string(xsi_type_name(field.kind)) + "[" +
                             std::to_string(v.array_size()) + "]");
      }
      for (const Value& elem : v.elements()) {
        if (field.kind == TypeKind::kStruct) {
          write_record(writer, elem, *field.struct_format, "item", style);
        } else {
          write_scalar(writer, elem, field.kind, "item", style);
        }
      }
      writer.end_element();
      break;
    }
  }
}

void write_record(xml::XmlWriter& writer, const Value& value,
                  const FormatDesc& format, std::string_view name,
                  const XmlStyle& style) {
  if (!value.is_record()) {
    throw CodecError("XML encoding of format '" + format.name + "' needs a record");
  }
  writer.start_element(name);
  if (style.typed) writer.attribute("xsi:type", "tns:" + format.name);
  for (const FieldDesc& field : format.fields) {
    const Value* v = value.find_field(field.name);
    if (v == nullptr) {
      throw CodecError("record missing field '" + field.name + "'");
    }
    write_field(writer, *v, field, style);
  }
  writer.end_element();
}

Value read_scalar(const xml::Element& element, TypeKind kind) {
  const std::string_view text = element.trimmed_text();
  switch (kind) {
    case TypeKind::kInt32:
    case TypeKind::kInt64:
      return Value{parse_i64(text)};
    case TypeKind::kUInt32:
    case TypeKind::kUInt64:
      return Value{static_cast<std::uint64_t>(parse_u64(text))};
    case TypeKind::kFloat32:
    case TypeKind::kFloat64:
      return Value{parse_f64(text)};
    case TypeKind::kChar: {
      if (text.empty()) return Value{'\0'};
      // Numeric form (written by this codec); single-character form is
      // accepted for hand-written documents.
      if (text.size() > 1 || (text[0] >= '0' && text[0] <= '9')) {
        try {
          return Value{static_cast<char>(parse_i64(text))};
        } catch (const ParseError&) {
          // fall through to first-character semantics
        }
      }
      return Value{text[0]};
    }
    case TypeKind::kString:
      // Strings keep untrimmed text (whitespace may be significant).
      return Value{std::string(element.text)};
    default:
      throw CodecError("read_scalar: unexpected kind");
  }
}

Value read_record(const xml::Element& element, const FormatDesc& format);

Value read_field(const xml::Element& element, const FieldDesc& field) {
  switch (field.arity) {
    case Arity::kScalar:
      if (field.kind == TypeKind::kStruct) {
        return read_record(element, *field.struct_format);
      }
      return read_scalar(element, field.kind);
    case Arity::kFixedArray:
    case Arity::kVarArray: {
      // Char arrays without <item> children are base64-encoded bulk bytes.
      if (field.kind == TypeKind::kChar && element.child("item") == nullptr) {
        Value text{base64_decode_string(element.trimmed_text())};
        if (field.arity == Arity::kFixedArray &&
            text.as_string().size() != field.fixed_count) {
          throw ParseError("fixed char array '" + field.name + "' expects " +
                           std::to_string(field.fixed_count) + " bytes");
        }
        return text;
      }
      Value array = Value::empty_array();
      for (const xml::Element* item : element.children_named("item")) {
        if (field.kind == TypeKind::kStruct) {
          array.push_back(read_record(*item, *field.struct_format));
        } else {
          array.push_back(read_scalar(*item, field.kind));
        }
      }
      if (field.arity == Arity::kFixedArray &&
          array.array_size() != field.fixed_count) {
        throw ParseError("fixed array '" + field.name + "' expects " +
                         std::to_string(field.fixed_count) + " items, got " +
                         std::to_string(array.array_size()));
      }
      return array;
    }
  }
  throw CodecError("read_field: unreachable");
}

Value read_record(const xml::Element& element, const FormatDesc& format) {
  Value record = Value::empty_record();
  for (const FieldDesc& field : format.fields) {
    const xml::Element* child = element.child(field.name);
    if (child == nullptr) {
      throw ParseError("element <" + element.name + "> missing <" + field.name +
                       "> required by format '" + format.name + "'");
    }
    record.set_field(field.name, read_field(*child, field));
  }
  return record;
}

}  // namespace

void write_value_xml(xml::XmlWriter& writer, const Value& value,
                     const FormatDesc& format, std::string_view name,
                     XmlStyle style) {
  write_record(writer, value, format, name, style);
}

std::string value_to_xml(const Value& value, const FormatDesc& format,
                         std::string_view name, XmlStyle style) {
  xml::XmlWriter writer;
  write_record(writer, value, format, name, style);
  return writer.take();
}

Value value_from_xml(const xml::Element& element, const FormatDesc& format) {
  return read_record(element, format);
}

}  // namespace sbq::soap
