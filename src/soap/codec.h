// XML ↔ Value parameter codec (standard SOAP encoding of PBIO-typed data).
//
// This is the textual representation SOAP-bin avoids: every scalar becomes
// ASCII digits, every array element gets its own enclosing tag, every
// struct level adds a tag pair. The codec is shared by the plain-SOAP
// baseline and by SOAP-bin's conversion handlers (XML → binary at the edge).
#pragma once

#include <string>
#include <string_view>

#include "pbio/format.h"
#include "pbio/value.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace sbq::soap {

/// XML rendering style. `typed` adds SOAP Section-5 `xsi:type` annotations
/// to every element — what 2004-era stacks (including Soup) put on the wire,
/// and what makes standard SOAP messages so much larger than their binary
/// equivalents. The compact style is used for internal conversions.
struct XmlStyle {
  bool typed = false;
};

/// Writes `value` (a record of `format`) as `<name>...</name>`.
void write_value_xml(xml::XmlWriter& writer, const pbio::Value& value,
                     const pbio::FormatDesc& format, std::string_view name,
                     XmlStyle style = {});

/// Convenience: standalone document-free rendering of one record.
std::string value_to_xml(const pbio::Value& value, const pbio::FormatDesc& format,
                         std::string_view name, XmlStyle style = {});

/// Parses `<name>...</name>` produced by write_value_xml back into a Value.
/// Missing elements throw ParseError; the parse is driven by `format`, so
/// unknown extra elements are ignored (lenient read, strict write).
pbio::Value value_from_xml(const xml::Element& element,
                           const pbio::FormatDesc& format);

}  // namespace sbq::soap
