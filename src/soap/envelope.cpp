#include "soap/envelope.h"

#include "common/error.h"
#include "soap/codec.h"
#include "xml/writer.h"

namespace sbq::soap {

namespace {

std::string build_envelope(std::string_view body_name, const pbio::Value& params,
                           const pbio::FormatDesc& format) {
  xml::XmlWriter writer;
  writer.declaration();
  writer.start_element("soap:Envelope");
  writer.attribute("xmlns:soap", kEnvelopeNs);
  writer.attribute("xmlns:xsd", "http://www.w3.org/2001/XMLSchema");
  writer.attribute("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance");
  writer.attribute("xmlns:soapenc", "http://schemas.xmlsoap.org/soap/encoding/");
  writer.start_element("soap:Body");
  // Standard SOAP puts Section-5 xsi:type annotations on every parameter —
  // the verbosity SOAP-bin eliminates.
  write_value_xml(writer, params, format, body_name, XmlStyle{.typed = true});
  writer.end_element();
  writer.end_element();
  return writer.take();
}

}  // namespace

std::string build_request(std::string_view operation, const pbio::Value& params,
                          const pbio::FormatDesc& format) {
  return build_envelope(operation, params, format);
}

std::string build_response(std::string_view operation, const pbio::Value& result,
                           const pbio::FormatDesc& format) {
  return build_envelope(std::string(operation) + "Response", result, format);
}

std::string build_fault(std::string_view faultcode, std::string_view faultstring) {
  xml::XmlWriter writer;
  writer.declaration();
  writer.start_element("soap:Envelope");
  writer.attribute("xmlns:soap", kEnvelopeNs);
  writer.start_element("soap:Body");
  writer.start_element("soap:Fault");
  writer.text_element("faultcode", faultcode);
  writer.text_element("faultstring", faultstring);
  writer.end_element();
  writer.end_element();
  writer.end_element();
  return writer.take();
}

ParsedEnvelope parse_envelope(std::string_view xml_text) {
  ParsedEnvelope parsed;
  parsed.document = xml::parse_document(xml_text);
  if (parsed.document->local_name() != "Envelope") {
    throw ParseError("root element is <" + parsed.document->name +
                     ">, expected Envelope");
  }
  const xml::Element& body = parsed.document->required_child("Body");
  // The body must contain exactly one operation element.
  if (body.children.size() != 1) {
    throw ParseError("SOAP Body must contain exactly one element, has " +
                     std::to_string(body.children.size()));
  }
  parsed.body_element = body.children.front().get();
  return parsed;
}

Fault parse_fault(const ParsedEnvelope& envelope) {
  if (!envelope.is_fault()) throw ParseError("envelope is not a fault");
  const xml::Element& fault = *envelope.body_element;
  Fault out;
  if (const xml::Element* code = fault.child("faultcode")) {
    out.code = std::string(code->trimmed_text());
  }
  if (const xml::Element* message = fault.child("faultstring")) {
    out.message = std::string(message->trimmed_text());
  }
  return out;
}

pbio::Value decode_body(const ParsedEnvelope& envelope,
                        const pbio::FormatDesc& format) {
  return value_from_xml(*envelope.body_element, format);
}

}  // namespace sbq::soap
