// SOAP 1.1 envelopes: construction, parsing, faults.
//
// An invocation is `<Envelope><Body><op>...params...</op></Body></Envelope>`;
// a response wraps `<opResponse>`; errors travel as `<Fault>` inside the
// body with faultcode/faultstring.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "pbio/format.h"
#include "pbio/value.h"
#include "xml/dom.h"

namespace sbq::soap {

inline constexpr std::string_view kEnvelopeNs =
    "http://schemas.xmlsoap.org/soap/envelope/";

/// Builds a request envelope: body element named `operation`.
std::string build_request(std::string_view operation, const pbio::Value& params,
                          const pbio::FormatDesc& format);

/// Builds a response envelope: body element named `<operation>Response`.
std::string build_response(std::string_view operation, const pbio::Value& result,
                           const pbio::FormatDesc& format);

/// Builds a fault envelope.
std::string build_fault(std::string_view faultcode, std::string_view faultstring);

/// A parsed envelope retains ownership of the DOM; `body_element` points at
/// the single operation (or Fault) element inside <Body>.
struct ParsedEnvelope {
  std::unique_ptr<xml::Element> document;
  const xml::Element* body_element = nullptr;

  /// Local name of the body element ("getImage", "getImageResponse", "Fault").
  [[nodiscard]] std::string_view operation() const {
    return body_element->local_name();
  }
  [[nodiscard]] bool is_fault() const { return operation() == "Fault"; }
};

/// Fault details extracted from a fault envelope.
struct Fault {
  std::string code;
  std::string message;
};

/// Parses and validates Envelope/Body structure.
ParsedEnvelope parse_envelope(std::string_view xml_text);

/// Extracts fault details; throws ParseError if not a fault.
Fault parse_fault(const ParsedEnvelope& envelope);

/// Decodes the body element's parameters per `format`.
pbio::Value decode_body(const ParsedEnvelope& envelope,
                        const pbio::FormatDesc& format);

}  // namespace sbq::soap
