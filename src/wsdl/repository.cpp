#include "wsdl/repository.h"

#include <algorithm>

#include "common/error.h"

namespace sbq::wsdl {

void ServiceRepository::publish(const std::string& name, const std::string& wsdl_xml,
                                const std::string& quality_text) {
  if (name.empty()) throw ParseError("cannot publish a service without a name");
  // Validate both documents before accepting them.
  (void)parse_wsdl(wsdl_xml);
  if (!quality_text.empty()) (void)qos::QualityFile::parse(quality_text);

  std::lock_guard lock(mu_);
  services_[name] = PublishedService{name, wsdl_xml, quality_text};
}

std::optional<PublishedService> ServiceRepository::lookup(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = services_.find(name);
  if (it == services_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ServiceRepository::list() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, service] : services_) names.push_back(name);
  return names;
}

std::size_t ServiceRepository::size() const {
  std::lock_guard lock(mu_);
  return services_.size();
}

Discovery compile_published(const PublishedService& published) {
  Discovery d;
  d.service = parse_wsdl(published.wsdl_xml);
  if (!published.quality_text.empty()) {
    d.quality = qos::QualityFile::parse(published.quality_text);
  }
  return d;
}

pbio::FormatPtr registry_record_format() {
  static const pbio::FormatPtr format = pbio::FormatBuilder("registry_record")
                                            .add_string("name")
                                            .add_string("wsdl")
                                            .add_string("quality")
                                            .build();
  return format;
}

pbio::FormatPtr registry_name_format() {
  static const pbio::FormatPtr format =
      pbio::FormatBuilder("registry_name").add_string("name").build();
  return format;
}

pbio::FormatPtr registry_listing_format() {
  static const pbio::FormatPtr format =
      pbio::FormatBuilder("registry_listing")
          .add_struct_var_array("names", registry_name_format())
          .build();
  return format;
}

pbio::FormatPtr registry_ack_format() {
  static const pbio::FormatPtr format =
      pbio::FormatBuilder("registry_ack")
          .add_scalar("ok", pbio::TypeKind::kInt32)
          .build();
  return format;
}

ServiceDesc registry_service_desc() {
  ServiceDesc svc;
  svc.name = "ServiceRegistry";
  svc.target_namespace = "urn:sbq:registry";
  svc.operations.push_back(
      OperationDesc{"publish", registry_record_format(), registry_ack_format()});
  svc.operations.push_back(
      OperationDesc{"lookup", registry_name_format(), registry_record_format()});
  svc.operations.push_back(
      OperationDesc{"list", registry_ack_format(), registry_listing_format()});
  return svc;
}

}  // namespace sbq::wsdl
