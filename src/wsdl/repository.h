// Service repository — the paper's UDDI-style registry.
//
// §III-B.b: "we foresee the designer providing a quality file along with
// the WSDL file, through UDDI or a similar WSDL repository. This would let
// the user directly access the service, without knowledge of the actual
// message types used in data transmission."
//
// ServiceRepository stores (WSDL document, optional quality file) pairs by
// service name. It can be used directly in-process, or hosted as a SOAP
// service itself via register_repository_service() — the registry's own
// operations (publish / lookup / list) ride the same SOAP-bin stack, so a
// client can bootstrap everything about a service, message types included,
// from one lookup.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pbio/format.h"
#include "qos/quality_file.h"
#include "wsdl/wsdl.h"

namespace sbq::wsdl {

/// One published service: its interface plus its quality policy.
struct PublishedService {
  std::string name;
  std::string wsdl_xml;
  std::string quality_text;  // empty when the service has no quality file
};

/// In-memory registry. Thread-safe.
class ServiceRepository {
 public:
  /// Publishes (or republishes) a service. The WSDL is validated by
  /// compiling it; a non-empty quality file is validated by parsing it.
  /// Throws ParseError/QosError on invalid documents.
  void publish(const std::string& name, const std::string& wsdl_xml,
               const std::string& quality_text = {});

  /// Looks up a published service; empty optional when absent.
  [[nodiscard]] std::optional<PublishedService> lookup(const std::string& name) const;

  /// All published service names, sorted.
  [[nodiscard]] std::vector<std::string> list() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, PublishedService> services_;
};

/// Compiled result of discovering a service through a repository.
struct Discovery {
  ServiceDesc service;
  std::optional<qos::QualityFile> quality;
};

/// Compiles a published entry (lookup + parse_wsdl + quality parse).
Discovery compile_published(const PublishedService& published);

// --- hosting the repository as a SOAP service -------------------------------

/// `registry_record{name,wsdl,quality:string}` — the repository's own
/// message type.
pbio::FormatPtr registry_record_format();
/// `registry_name{name:string}`
pbio::FormatPtr registry_name_format();
/// `registry_listing{names:registry_name[]}`
pbio::FormatPtr registry_listing_format();
/// `registry_ack{ok:i32}`
pbio::FormatPtr registry_ack_format();

/// The registry service's own interface description (for ClientStub).
ServiceDesc registry_service_desc();

// Implemented in terms of the core runtime; declared here, defined in
// repository_service.cpp to keep wsdl free of a core dependency at the
// library-structure level (the function lives in sbq_core's link set).

}  // namespace sbq::wsdl
