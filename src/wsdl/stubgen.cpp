#include "wsdl/stubgen.h"

#include <cctype>
#include <functional>
#include <set>

#include "common/error.h"

namespace sbq::wsdl {

using pbio::Arity;
using pbio::FieldDesc;
using pbio::FormatDesc;
using pbio::TypeKind;

std::string sanitize_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "f_");
  return out;
}

namespace {

std::string cpp_scalar_type(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32: return "std::int32_t";
    case TypeKind::kInt64: return "std::int64_t";
    case TypeKind::kUInt32: return "std::uint32_t";
    case TypeKind::kUInt64: return "std::uint64_t";
    case TypeKind::kFloat32: return "float";
    case TypeKind::kFloat64: return "double";
    case TypeKind::kChar: return "char";
    case TypeKind::kString: return "const char*";
    case TypeKind::kStruct: break;
  }
  throw CodecError("no C++ scalar type for struct");
}

void emit_struct(const FormatDesc& format, std::set<std::string>& done,
                 std::string& out) {
  if (done.contains(format.name)) return;
  // Dependencies first.
  for (const FieldDesc& f : format.fields) {
    if (f.kind == TypeKind::kStruct) emit_struct(*f.struct_format, done, out);
  }
  done.insert(format.name);

  out += "/// Native record for PBIO format `" + format.canonical() + "`.\n";
  out += "struct " + sanitize_identifier(format.name) + " {\n";
  for (const FieldDesc& f : format.fields) {
    const std::string id = sanitize_identifier(f.name);
    switch (f.arity) {
      case Arity::kScalar:
        if (f.kind == TypeKind::kStruct) {
          out += "  " + sanitize_identifier(f.struct_format->name) + " " + id + ";\n";
        } else {
          out += "  " + cpp_scalar_type(f.kind) + " " + id + ";\n";
        }
        break;
      case Arity::kFixedArray:
        if (f.kind == TypeKind::kStruct) {
          out += "  " + sanitize_identifier(f.struct_format->name) + " " + id + "[" +
                 std::to_string(f.fixed_count) + "];\n";
        } else {
          out += "  " + cpp_scalar_type(f.kind) + " " + id + "[" +
                 std::to_string(f.fixed_count) + "];\n";
        }
        break;
      case Arity::kVarArray:
        if (f.kind == TypeKind::kStruct) {
          out += "  sbq::pbio::VarArray<" + sanitize_identifier(f.struct_format->name) +
                 "> " + id + ";\n";
        } else {
          out += "  sbq::pbio::VarArray<" + cpp_scalar_type(f.kind) + "> " + id + ";\n";
        }
        break;
    }
  }
  out += "};\n\n";
}

void emit_format_builder(const FormatDesc& format, std::set<std::string>& done,
                         std::string& out) {
  if (done.contains(format.name)) return;
  for (const FieldDesc& f : format.fields) {
    if (f.kind == TypeKind::kStruct) emit_format_builder(*f.struct_format, done, out);
  }
  done.insert(format.name);

  const std::string fn = "format_" + sanitize_identifier(format.name);
  out += "sbq::pbio::FormatPtr " + fn + "() {\n";
  out += "  static const sbq::pbio::FormatPtr format = [] {\n";
  out += "    sbq::pbio::FormatBuilder b(\"" + format.name + "\");\n";
  for (const FieldDesc& f : format.fields) {
    const std::string name_arg = "\"" + f.name + "\"";
    const std::string kind_arg =
        "sbq::pbio::TypeKind::k" +
        std::string{f.kind == TypeKind::kInt32     ? "Int32"
                    : f.kind == TypeKind::kInt64   ? "Int64"
                    : f.kind == TypeKind::kUInt32  ? "UInt32"
                    : f.kind == TypeKind::kUInt64  ? "UInt64"
                    : f.kind == TypeKind::kFloat32 ? "Float32"
                    : f.kind == TypeKind::kFloat64 ? "Float64"
                    : f.kind == TypeKind::kChar    ? "Char"
                    : f.kind == TypeKind::kString  ? "String"
                                                   : "Struct"};
    switch (f.arity) {
      case Arity::kScalar:
        if (f.kind == TypeKind::kStruct) {
          out += "    b.add_struct(" + name_arg + ", format_" +
                 sanitize_identifier(f.struct_format->name) + "());\n";
        } else if (f.kind == TypeKind::kString) {
          out += "    b.add_string(" + name_arg + ");\n";
        } else {
          out += "    b.add_scalar(" + name_arg + ", " + kind_arg + ");\n";
        }
        break;
      case Arity::kFixedArray:
        if (f.kind == TypeKind::kStruct) {
          out += "    b.add_struct_fixed_array(" + name_arg + ", format_" +
                 sanitize_identifier(f.struct_format->name) + "(), " +
                 std::to_string(f.fixed_count) + ");\n";
        } else {
          out += "    b.add_fixed_array(" + name_arg + ", " + kind_arg + ", " +
                 std::to_string(f.fixed_count) + ");\n";
        }
        break;
      case Arity::kVarArray:
        if (f.kind == TypeKind::kStruct) {
          out += "    b.add_struct_var_array(" + name_arg + ", format_" +
                 sanitize_identifier(f.struct_format->name) + "());\n";
        } else {
          out += "    b.add_var_array(" + name_arg + ", " + kind_arg + ");\n";
        }
        break;
    }
  }
  out += "    return b.build();\n";
  out += "  }();\n";
  out += "  return format;\n";
  out += "}\n\n";
}

}  // namespace

StubFiles generate_stubs(const ServiceDesc& service) {
  const std::string svc = sanitize_identifier(service.name);
  const std::string guard_ns = "stubs_" + svc;

  std::string h;
  h += "// Generated by wsdlc from service '" + service.name + "'. Do not edit.\n";
  h += "#pragma once\n\n";
  h += "#include <cstdint>\n";
  h += "#include \"core/client.h\"\n";
  h += "#include \"core/service.h\"\n";
  h += "#include \"pbio/format.h\"\n";
  h += "#include \"pbio/value.h\"\n\n";
  h += "namespace " + guard_ns + " {\n\n";

  std::set<std::string> structs_done;
  for (const auto& op : service.operations) {
    emit_struct(*op.input, structs_done, h);
    emit_struct(*op.output, structs_done, h);
  }

  // Format accessors — one per reachable format, nested structs included
  // (their builders are emitted in the support file and may be used
  // directly by application code).
  std::set<std::string> fmt_decls;
  const std::function<void(const FormatDesc&)> declare = [&](const FormatDesc& fmt) {
    for (const FieldDesc& f : fmt.fields) {
      if (f.kind == TypeKind::kStruct) declare(*f.struct_format);
    }
    if (fmt_decls.insert(fmt.name).second) {
      h += "sbq::pbio::FormatPtr format_" + sanitize_identifier(fmt.name) + "();\n";
    }
  };
  for (const auto& op : service.operations) {
    declare(*op.input);
    declare(*op.output);
  }
  h += "\n";

  // Client stub: one typed method per operation over the dynamic runtime.
  h += "/// Typed client-side stub (one method per WSDL operation).\n";
  h += "class " + svc + "Client {\n";
  h += " public:\n";
  h += "  explicit " + svc + "Client(sbq::core::ClientStub& stub) : stub_(stub) {}\n\n";
  for (const auto& op : service.operations) {
    h += "  sbq::pbio::Value " + sanitize_identifier(op.name) +
         "(const sbq::pbio::Value& params) {\n";
    h += "    return stub_.call(\"" + op.name + "\", params);\n";
    h += "  }\n";
  }
  h += "\n private:\n  sbq::core::ClientStub& stub_;\n};\n\n";

  // Server skeleton.
  h += "/// Server skeleton: implement one method per operation, then call\n";
  h += "/// register_with() on a ServiceRuntime.\n";
  h += "class " + svc + "Skeleton {\n";
  h += " public:\n";
  h += "  virtual ~" + svc + "Skeleton() = default;\n";
  for (const auto& op : service.operations) {
    h += "  virtual sbq::pbio::Value " + sanitize_identifier(op.name) +
         "(const sbq::pbio::Value& params) = 0;\n";
  }
  h += "\n  void register_with(sbq::core::ServiceRuntime& runtime) {\n";
  for (const auto& op : service.operations) {
    h += "    runtime.register_operation(\"" + op.name + "\", format_" +
         sanitize_identifier(op.input->name) + "(), format_" +
         sanitize_identifier(op.output->name) + "(),\n";
    h += "        [this](const sbq::pbio::Value& v) { return " +
         sanitize_identifier(op.name) + "(v); });\n";
  }
  h += "  }\n};\n\n";
  h += "}  // namespace " + guard_ns + "\n";

  std::string cpp;
  cpp += "// Generated by wsdlc from service '" + service.name + "'. Do not edit.\n";
  cpp += "#include \"" + svc + "_stubs.h\"\n\n";
  cpp += "namespace " + guard_ns + " {\n\n";
  std::set<std::string> fmts_done;
  for (const auto& op : service.operations) {
    emit_format_builder(*op.input, fmts_done, cpp);
    emit_format_builder(*op.output, fmts_done, cpp);
  }
  cpp += "}  // namespace " + guard_ns + "\n";

  return StubFiles{std::move(h), std::move(cpp)};
}

}  // namespace sbq::wsdl
