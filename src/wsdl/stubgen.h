// C++ stub generation — the back half of the WSDL compiler.
//
// The paper's prototype "generates the client-side and server-side stubs as
// well as a file with support functions and a header". This generator emits
// the same artifacts for C++: a header declaring native structs matching the
// compiled PBIO formats, typed client-stub wrappers over the dynamic
// runtime, and a server skeleton with one virtual method per operation.
// The `wsdlc` tool (tools/wsdlc.cpp) is the command-line front end.
#pragma once

#include <string>

#include "wsdl/wsdl.h"

namespace sbq::wsdl {

/// Generated compilation artifacts.
struct StubFiles {
  std::string header;       // <service>_stubs.h
  std::string support;      // <service>_stubs.cpp (format construction)
};

/// Emits C++ stub code for `service`. Deterministic output (stable field
/// and operation order), suitable for golden-file tests.
StubFiles generate_stubs(const ServiceDesc& service);

/// C++ identifier sanitation: anything outside [A-Za-z0-9_] becomes '_',
/// leading digits are prefixed.
std::string sanitize_identifier(std::string_view name);

}  // namespace sbq::wsdl
