#include "wsdl/wsdl.h"

#include <algorithm>
#include <functional>

#include "common/error.h"
#include "common/strings.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace sbq::wsdl {

using pbio::Arity;
using pbio::FieldDesc;
using pbio::FormatBuilder;
using pbio::FormatDesc;
using pbio::FormatPtr;
using pbio::TypeKind;

const OperationDesc* ServiceDesc::operation(std::string_view op_name) const {
  for (const auto& op : operations) {
    if (op.name == op_name) return &op;
  }
  return nullptr;
}

const OperationDesc& ServiceDesc::required_operation(std::string_view op_name) const {
  const OperationDesc* op = operation(op_name);
  if (op == nullptr) {
    throw ParseError("service '" + name + "' has no operation '" +
                     std::string(op_name) + "'");
  }
  return *op;
}

FormatPtr ServiceDesc::type(std::string_view type_name) const {
  auto it = types.find(std::string(type_name));
  return it == types.end() ? nullptr : it->second;
}

TypeKind xsd_scalar_kind(std::string_view type_name) {
  const std::string_view local = xml::local_part(type_name);
  if (local == "int" || local == "integer") return TypeKind::kInt32;
  if (local == "long") return TypeKind::kInt64;
  if (local == "unsignedInt") return TypeKind::kUInt32;
  if (local == "unsignedLong") return TypeKind::kUInt64;
  if (local == "float") return TypeKind::kFloat32;
  if (local == "double") return TypeKind::kFloat64;
  if (local == "byte" || local == "char" || local == "unsignedByte") {
    return TypeKind::kChar;
  }
  if (local == "string") return TypeKind::kString;
  throw ParseError("unsupported XSD type: '" + std::string(type_name) + "'");
}

namespace {

std::string_view xsd_name_for(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32: return "xsd:int";
    case TypeKind::kInt64: return "xsd:long";
    case TypeKind::kUInt32: return "xsd:unsignedInt";
    case TypeKind::kUInt64: return "xsd:unsignedLong";
    case TypeKind::kFloat32: return "xsd:float";
    case TypeKind::kFloat64: return "xsd:double";
    case TypeKind::kChar: return "xsd:byte";
    case TypeKind::kString: return "xsd:string";
    case TypeKind::kStruct: break;
  }
  throw ParseError("no XSD name for struct kind");
}

bool is_scalar_xsd(std::string_view type_name) {
  const std::string_view local = xml::local_part(type_name);
  return local == "int" || local == "integer" || local == "long" ||
         local == "unsignedInt" || local == "unsignedLong" || local == "float" ||
         local == "double" || local == "byte" || local == "char" ||
         local == "unsignedByte" || local == "string";
}

/// Compiles one <complexType> into a FormatDesc; `types` holds the types
/// compiled so far (forward references are not supported, matching the
/// single-pass WSDL compiler in the paper's prototype).
FormatPtr compile_complex_type(const xml::Element& complex_type,
                               const std::map<std::string, FormatPtr>& types) {
  const std::string type_name(complex_type.required_attribute("name"));
  const xml::Element& sequence = complex_type.required_child("sequence");

  FormatBuilder builder(type_name);
  for (const xml::Element* element : sequence.children_named("element")) {
    const std::string field_name(element->required_attribute("name"));
    const std::string field_type(element->required_attribute("type"));
    const std::string max_occurs(element->attribute("maxOccurs").value_or("1"));

    std::uint32_t fixed = 1;
    bool unbounded = false;
    if (max_occurs == "unbounded") {
      unbounded = true;
    } else {
      fixed = static_cast<std::uint32_t>(parse_u64(max_occurs));
      if (fixed == 0) {
        throw ParseError("element '" + field_name + "': maxOccurs must be >= 1");
      }
    }

    if (is_scalar_xsd(field_type)) {
      const TypeKind kind = xsd_scalar_kind(field_type);
      if (unbounded) {
        builder.add_var_array(field_name, kind);
      } else if (fixed > 1) {
        builder.add_fixed_array(field_name, kind, fixed);
      } else if (kind == TypeKind::kString) {
        builder.add_string(field_name);
      } else {
        builder.add_scalar(field_name, kind);
      }
    } else {
      // Reference to another complexType (possibly "tns:"-prefixed).
      const std::string referenced(xml::local_part(field_type));
      auto it = types.find(referenced);
      if (it == types.end()) {
        throw ParseError("element '" + field_name + "' references unknown type '" +
                         referenced + "' (forward references are not supported)");
      }
      if (unbounded) {
        builder.add_struct_var_array(field_name, it->second);
      } else if (fixed > 1) {
        builder.add_struct_fixed_array(field_name, it->second, fixed);
      } else {
        builder.add_struct(field_name, it->second);
      }
    }
  }
  return builder.build();
}

}  // namespace

ServiceDesc parse_wsdl(std::string_view wsdl_xml) {
  const auto root = xml::parse_document(wsdl_xml);
  if (root->local_name() != "definitions") {
    throw ParseError("WSDL root must be <definitions>, got <" + root->name + ">");
  }

  ServiceDesc service;
  service.name = std::string(root->attribute("name").value_or(""));
  service.target_namespace =
      std::string(root->attribute("targetNamespace").value_or(""));

  // 1. types/schema/complexType* → formats
  if (const xml::Element* types_el = root->child("types")) {
    if (const xml::Element* schema = types_el->child("schema")) {
      for (const xml::Element* ct : schema->children_named("complexType")) {
        FormatPtr format = compile_complex_type(*ct, service.types);
        service.types.emplace(format->name, format);
      }
    }
  }

  // 2. message name → part type (single-part messages, like Soup's schema)
  std::map<std::string, FormatPtr> messages;
  for (const xml::Element* message : root->children_named("message")) {
    const std::string message_name(message->required_attribute("name"));
    const auto parts = message->children_named("part");
    if (parts.size() != 1) {
      throw ParseError("message '" + message_name +
                       "' must have exactly one part, has " +
                       std::to_string(parts.size()));
    }
    const std::string part_type(xml::local_part(parts[0]->required_attribute("type")));
    auto it = service.types.find(part_type);
    if (it == service.types.end()) {
      throw ParseError("message '" + message_name + "' part references unknown type '" +
                       part_type + "'");
    }
    messages.emplace(message_name, it->second);
  }

  // 3. portType/operation → OperationDesc
  auto resolve_message = [&](const xml::Element& op, std::string_view tag) {
    const xml::Element& ref = op.required_child(std::string(tag));
    const std::string message_name(xml::local_part(ref.required_attribute("message")));
    auto it = messages.find(message_name);
    if (it == messages.end()) {
      throw ParseError("operation references unknown message '" + message_name + "'");
    }
    return it->second;
  };
  for (const xml::Element* port_type : root->children_named("portType")) {
    for (const xml::Element* op : port_type->children_named("operation")) {
      OperationDesc desc;
      desc.name = std::string(op->required_attribute("name"));
      desc.input = resolve_message(*op, "input");
      desc.output = resolve_message(*op, "output");
      const std::string idem(op->attribute("idempotent").value_or("false"));
      desc.idempotent = (idem == "true" || idem == "yes" || idem == "1");
      service.operations.push_back(std::move(desc));
    }
  }
  if (service.operations.empty()) {
    throw ParseError("WSDL defines no operations");
  }

  // 4. service/port/address → endpoint location
  if (const xml::Element* service_el = root->child("service")) {
    if (service.name.empty()) {
      service.name = std::string(service_el->attribute("name").value_or(""));
    }
    if (const xml::Element* port = service_el->child("port")) {
      if (const xml::Element* address = port->child("address")) {
        service.location = std::string(address->attribute("location").value_or(""));
      }
    }
  }

  return service;
}

namespace {

void write_schema_element(xml::XmlWriter& w, const FieldDesc& field) {
  w.start_element("xsd:element");
  w.attribute("name", field.name);
  if (field.kind == TypeKind::kStruct) {
    w.attribute("type", "tns:" + field.struct_format->name);
  } else {
    w.attribute("type", xsd_name_for(field.kind));
  }
  if (field.arity == Arity::kVarArray) {
    w.attribute("minOccurs", "0");
    w.attribute("maxOccurs", "unbounded");
  } else if (field.arity == Arity::kFixedArray) {
    w.attribute("minOccurs", std::int64_t{field.fixed_count});
    w.attribute("maxOccurs", std::int64_t{field.fixed_count});
  }
  w.end_element();
}

}  // namespace

std::string generate_wsdl(const ServiceDesc& service) {
  xml::XmlWriter w(/*pretty=*/true);
  w.declaration();
  w.start_element("definitions");
  w.attribute("name", service.name);
  if (!service.target_namespace.empty()) {
    w.attribute("targetNamespace", service.target_namespace);
  }
  w.attribute("xmlns:tns", service.target_namespace.empty()
                               ? "urn:" + service.name
                               : service.target_namespace);
  w.attribute("xmlns:xsd", "http://www.w3.org/2001/XMLSchema");

  // Emit types in dependency order: a struct's nested formats first.
  w.start_element("types");
  w.start_element("xsd:schema");
  std::vector<std::string> emitted;
  auto already_emitted = [&](const std::string& n) {
    return std::find(emitted.begin(), emitted.end(), n) != emitted.end();
  };
  // The types map may hold entries the operations never reference; emit all.
  std::function<void(const FormatDesc&)> emit = [&](const FormatDesc& format) {
    if (already_emitted(format.name)) return;
    for (const FieldDesc& field : format.fields) {
      if (field.kind == TypeKind::kStruct) emit(*field.struct_format);
    }
    emitted.push_back(format.name);
    w.start_element("xsd:complexType");
    w.attribute("name", format.name);
    w.start_element("xsd:sequence");
    for (const FieldDesc& field : format.fields) write_schema_element(w, field);
    w.end_element();
    w.end_element();
  };
  for (const auto& [type_name, format] : service.types) emit(*format);
  for (const auto& op : service.operations) {
    emit(*op.input);
    emit(*op.output);
  }
  w.end_element();  // schema
  w.end_element();  // types

  for (const auto& op : service.operations) {
    w.start_element("message");
    w.attribute("name", op.name + "Input");
    w.start_element("part");
    w.attribute("name", "params");
    w.attribute("type", "tns:" + op.input->name);
    w.end_element();
    w.end_element();
    w.start_element("message");
    w.attribute("name", op.name + "Output");
    w.start_element("part");
    w.attribute("name", "result");
    w.attribute("type", "tns:" + op.output->name);
    w.end_element();
    w.end_element();
  }

  w.start_element("portType");
  w.attribute("name", service.name + "Port");
  for (const auto& op : service.operations) {
    w.start_element("operation");
    w.attribute("name", op.name);
    if (op.idempotent) w.attribute("idempotent", "true");
    w.start_element("input");
    w.attribute("message", "tns:" + op.name + "Input");
    w.end_element();
    w.start_element("output");
    w.attribute("message", "tns:" + op.name + "Output");
    w.end_element();
    w.end_element();
  }
  w.end_element();  // portType

  w.start_element("service");
  w.attribute("name", service.name);
  w.start_element("port");
  w.attribute("name", service.name + "Port");
  w.attribute("binding", "tns:" + service.name + "Binding");
  w.start_element("address");
  w.attribute("location",
              service.location.empty() ? "http://localhost/" : service.location);
  w.end_element();
  w.end_element();
  w.end_element();  // service

  w.end_element();  // definitions
  return w.take();
}

}  // namespace sbq::wsdl
