// WSDL parsing and generation — the front half of the paper's "WSDL
// compiler", which "reads XML typecodes from the WSDL file" and emits PBIO
// formats plus stubs.
//
// Supported WSDL 1.1 subset (everything the paper's services need):
//   <definitions name= targetNamespace=>
//     <types><schema>
//       <complexType name=><sequence>
//         <element name= type= [minOccurs=] [maxOccurs=]/> ...
//     <message name=><part name= type=/></message>
//     <portType name=><operation name=><input message=/><output message=/>
//     <service name=><port><address location=/></port></service>
//
// Type mapping: xsd scalars → PBIO kinds; an element whose maxOccurs > 1 or
// "unbounded" becomes a fixed/variable array; an element whose type names
// another complexType becomes a nested struct (or array of structs).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pbio/format.h"

namespace sbq::wsdl {

/// One operation: request format + response format.
struct OperationDesc {
  std::string name;
  pbio::FormatPtr input;
  pbio::FormatPtr output;
  /// Declared safe to re-invoke: the client stub's retry policy only resends
  /// idempotent operations after a transport fault (a lost response to a
  /// non-idempotent call may already have taken effect server-side).
  /// Declared in WSDL as <operation name=... idempotent="true">; defaults
  /// to false, matching SOAP's at-most-once expectations.
  bool idempotent = false;
};

/// A compiled service description.
struct ServiceDesc {
  std::string name;
  std::string target_namespace;
  std::string location;  // service endpoint URL (may be empty)
  std::vector<OperationDesc> operations;
  std::map<std::string, pbio::FormatPtr> types;  // complexType name → format

  [[nodiscard]] const OperationDesc* operation(std::string_view name) const;
  [[nodiscard]] const OperationDesc& required_operation(std::string_view name) const;
  [[nodiscard]] pbio::FormatPtr type(std::string_view name) const;
};

/// Parses a WSDL document. Throws ParseError with a helpful message on any
/// construct outside the supported subset.
ServiceDesc parse_wsdl(std::string_view wsdl_xml);

/// Maps an XSD scalar type name ("int", "xsd:double", ...) to a PBIO kind.
/// Throws ParseError for non-scalar/unknown names.
pbio::TypeKind xsd_scalar_kind(std::string_view type_name);

/// Generates a WSDL document for `service` (used by the service portal to
/// advertise itself; round-trips through parse_wsdl).
std::string generate_wsdl(const ServiceDesc& service);

}  // namespace sbq::wsdl
