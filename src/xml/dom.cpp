#include "xml/dom.h"

#include "common/error.h"
#include "common/strings.h"
#include "xml/escape.h"
#include "xml/sax.h"

namespace sbq::xml {

std::string_view local_part(std::string_view qname) {
  std::size_t colon = qname.rfind(':');
  return colon == std::string_view::npos ? qname : qname.substr(colon + 1);
}

std::optional<std::string_view> Element::attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name || local_part(k) == name) return std::string_view{v};
  }
  return std::nullopt;
}

std::string_view Element::required_attribute(std::string_view name) const {
  auto v = attribute(name);
  if (!v) {
    throw ParseError("element <" + this->name + "> missing attribute '" +
                     std::string(name) + "'");
  }
  return *v;
}

const Element* Element::child(std::string_view local_name) const {
  for (const auto& c : children) {
    if (local_part(c->name) == local_name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view local_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (local_part(c->name) == local_name) out.push_back(c.get());
  }
  return out;
}

const Element& Element::required_child(std::string_view local_name) const {
  const Element* c = child(local_name);
  if (c == nullptr) {
    throw ParseError("element <" + name + "> missing child <" +
                     std::string(local_name) + ">");
  }
  return *c;
}

std::string_view Element::local_name() const {
  return local_part(name);
}

std::string_view Element::trimmed_text() const {
  return trim(text);
}

std::string Element::to_string(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name;
  for (const auto& [k, v] : attributes) {
    out += " " + k + "=\"" + escape(v) + "\"";
  }
  if (children.empty() && trimmed_text().empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!trimmed_text().empty()) out += escape(std::string(trimmed_text()));
  if (!children.empty()) {
    out += "\n";
    for (const auto& c : children) out += c->to_string(indent + 1);
    out += pad;
  }
  out += "</" + name + ">\n";
  return out;
}

std::unique_ptr<Element> parse_document(std::string_view document) {
  std::unique_ptr<Element> root;
  std::vector<Element*> stack;

  SaxHandlers handlers;
  handlers.start_element = [&](std::string_view name,
                               const std::vector<Attribute>& attrs) {
    auto node = std::make_unique<Element>();
    node->name = std::string(name);
    for (const auto& a : attrs) node->attributes.emplace_back(a.name, a.value);
    Element* raw = node.get();
    if (stack.empty()) {
      root = std::move(node);
    } else {
      stack.back()->children.push_back(std::move(node));
    }
    stack.push_back(raw);
  };
  handlers.end_element = [&](std::string_view) { stack.pop_back(); };
  handlers.characters = [&](std::string_view text) {
    if (!stack.empty()) stack.back()->text += text;
  };
  handlers.cdata = [&](std::string_view text) {
    if (!stack.empty()) stack.back()->text += text;
  };

  SaxParser parser(std::move(handlers));
  parser.parse(document);
  return root;
}

}  // namespace sbq::xml
