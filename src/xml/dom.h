// Small DOM built on top of the SAX parser.
//
// WSDL compilation and SOAP envelope processing need random access to a
// parsed document; this tree keeps exactly what those layers use: elements,
// attributes, and (merged) text. Comments and processing instructions are
// dropped during tree construction — SOAP semantics never depend on them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbq::xml {

/// An element node. Children are owned; text interleaved between child
/// elements is concatenated into `text` (sufficient for SOAP/WSDL payloads,
/// which never rely on mixed-content ordering).
class Element {
 public:
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;

  /// Attribute lookup; empty optional when absent.
  [[nodiscard]] std::optional<std::string_view> attribute(std::string_view name) const;

  /// Attribute lookup with a required value; throws ParseError when absent.
  [[nodiscard]] std::string_view required_attribute(std::string_view name) const;

  /// First child element with the given local name (namespace prefixes are
  /// ignored: `child("schema")` matches `<xsd:schema>`).
  [[nodiscard]] const Element* child(std::string_view local_name) const;

  /// All child elements with the given local name.
  [[nodiscard]] std::vector<const Element*> children_named(std::string_view local_name) const;

  /// Child element that must exist; throws ParseError when absent.
  [[nodiscard]] const Element& required_child(std::string_view local_name) const;

  /// Local part of this element's name (strips any `prefix:`).
  [[nodiscard]] std::string_view local_name() const;

  /// Trimmed text content.
  [[nodiscard]] std::string_view trimmed_text() const;

  /// Serializes the subtree (canonical form used by tests and debugging).
  [[nodiscard]] std::string to_string(int indent = 0) const;
};

/// Strips a `prefix:` from a qualified name.
std::string_view local_part(std::string_view qname);

/// Parses a complete document into a DOM tree. Throws XmlError on bad input.
std::unique_ptr<Element> parse_document(std::string_view document);

}  // namespace sbq::xml
