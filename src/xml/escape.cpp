#include "xml/escape.h"

#include <cstdint>

#include "common/error.h"

namespace sbq::xml {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp <= 0x7F) {
    out += static_cast<char>(cp);
  } else if (cp <= 0x7FF) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp <= 0xFFFF) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp <= 0x10FFFF) {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    throw ParseError("character reference beyond U+10FFFF");
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    std::size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos) throw ParseError("unterminated entity");
    std::string_view name = s.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out += '&';
    } else if (name == "lt") {
      out += '<';
    } else if (name == "gt") {
      out += '>';
    } else if (name == "quot") {
      out += '"';
    } else if (name == "apos") {
      out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      std::uint32_t cp = 0;
      bool any = false;
      if (name.size() > 1 && (name[1] == 'x' || name[1] == 'X')) {
        for (std::size_t k = 2; k < name.size(); ++k) {
          char h = name[k];
          std::uint32_t digit;
          if (h >= '0' && h <= '9') digit = static_cast<std::uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') digit = static_cast<std::uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') digit = static_cast<std::uint32_t>(h - 'A' + 10);
          else throw ParseError("bad hex character reference");
          cp = cp * 16 + digit;
          any = true;
        }
      } else {
        for (std::size_t k = 1; k < name.size(); ++k) {
          char d = name[k];
          if (d < '0' || d > '9') throw ParseError("bad character reference");
          cp = cp * 10 + static_cast<std::uint32_t>(d - '0');
          any = true;
        }
      }
      if (!any) throw ParseError("empty character reference");
      append_utf8(out, cp);
    } else {
      throw ParseError("unknown entity: &" + std::string(name) + ";");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace sbq::xml
