// XML text escaping/unescaping shared by the SAX parser and the writer.
#pragma once

#include <string>
#include <string_view>

namespace sbq::xml {

/// Escapes `&`, `<`, `>`, `"`, `'` for use in element content or attributes.
std::string escape(std::string_view raw);

/// Resolves the five predefined entities plus `&#NNN;` / `&#xHHH;` numeric
/// character references (emitted as UTF-8). Throws ParseError on malformed
/// or unknown entities.
std::string unescape(std::string_view escaped);

/// Encodes a Unicode code point as UTF-8, appending to `out`.
void append_utf8(std::string& out, std::uint32_t codepoint);

}  // namespace sbq::xml
