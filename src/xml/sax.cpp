#include "xml/sax.h"

#include "xml/escape.h"

namespace sbq::xml {

namespace {
bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}
bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}
bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

char SaxParser::advance() {
  if (eof()) fail("unexpected end of document");
  return doc_[pos_++];
}

bool SaxParser::consume(char expected) {
  if (!eof() && doc_[pos_] == expected) {
    ++pos_;
    return true;
  }
  return false;
}

void SaxParser::expect(char expected, const char* context) {
  if (!consume(expected)) {
    fail(std::string("expected '") + expected + "' " + context);
  }
}

bool SaxParser::consume_literal(std::string_view lit) {
  if (doc_.substr(pos_, lit.size()) == lit) {
    pos_ += lit.size();
    return true;
  }
  return false;
}

void SaxParser::skip_whitespace() {
  while (!eof() && is_ws(doc_[pos_])) ++pos_;
}

void SaxParser::fail(const std::string& message) const {
  int line = 1;
  int col = 1;
  for (std::size_t i = 0; i < pos_ && i < doc_.size(); ++i) {
    if (doc_[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  throw XmlError(message, line, col);
}

std::string SaxParser::read_name() {
  if (eof() || !is_name_start(peek())) fail("expected a name");
  std::size_t start = pos_;
  while (!eof() && is_name_char(peek())) ++pos_;
  return std::string(doc_.substr(start, pos_ - start));
}

std::string SaxParser::read_attribute_value() {
  char quote = advance();
  if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
  std::size_t start = pos_;
  while (!eof() && peek() != quote) {
    if (peek() == '<') fail("'<' not allowed in attribute value");
    ++pos_;
  }
  if (eof()) fail("unterminated attribute value");
  std::string raw(doc_.substr(start, pos_ - start));
  ++pos_;  // closing quote
  return unescape(raw);
}

void SaxParser::parse(std::string_view document) {
  doc_ = document;
  pos_ = 0;
  depth_ = 0;
  seen_root_ = false;

  parse_prolog();
  skip_whitespace();
  if (eof() || peek() != '<') fail("expected root element");
  parse_element();

  // Trailing misc: whitespace, comments, PIs only.
  for (;;) {
    skip_whitespace();
    if (eof()) break;
    if (consume_literal("<!--")) {
      parse_comment();
    } else if (consume_literal("<?")) {
      parse_processing_instruction();
    } else {
      fail("content after root element");
    }
  }
}

void SaxParser::parse_prolog() {
  skip_whitespace();
  if (consume_literal("<?xml")) {
    // XML declaration: tolerate any pseudo-attributes, require '?>'.
    std::size_t end = doc_.find("?>", pos_);
    if (end == std::string_view::npos) fail("unterminated XML declaration");
    pos_ = end + 2;
  }
  for (;;) {
    skip_whitespace();
    if (consume_literal("<!--")) {
      parse_comment();
    } else if (doc_.substr(pos_, 2) == "<?") {
      pos_ += 2;
      parse_processing_instruction();
    } else if (consume_literal("<!DOCTYPE")) {
      fail("DOCTYPE is not supported (external entities disabled)");
    } else {
      break;
    }
  }
}

void SaxParser::parse_element() {
  expect('<', "to open element");
  if (depth_ >= max_depth_) {
    fail("element nesting exceeds " + std::to_string(max_depth_) + " levels");
  }
  std::string name = read_name();

  std::vector<Attribute> attrs;
  for (;;) {
    bool had_ws = !eof() && is_ws(peek());
    skip_whitespace();
    if (eof()) fail("unterminated start tag");
    if (peek() == '>' || peek() == '/') break;
    if (!had_ws) fail("expected whitespace before attribute");
    std::string attr_name = read_name();
    skip_whitespace();
    expect('=', "after attribute name");
    skip_whitespace();
    std::string value = read_attribute_value();
    for (const auto& a : attrs) {
      if (a.name == attr_name) fail("duplicate attribute: " + attr_name);
    }
    attrs.push_back(Attribute{std::move(attr_name), std::move(value)});
  }

  if (depth_ == 0) {
    if (seen_root_) fail("multiple root elements");
    seen_root_ = true;
  }

  if (consume('/')) {
    expect('>', "to close empty-element tag");
    if (handlers_.start_element) handlers_.start_element(name, attrs);
    if (handlers_.end_element) handlers_.end_element(name);
    return;
  }
  expect('>', "to close start tag");

  if (handlers_.start_element) handlers_.start_element(name, attrs);
  ++depth_;
  parse_content(name);
  --depth_;
  if (handlers_.end_element) handlers_.end_element(name);
}

void SaxParser::parse_content(const std::string& element_name) {
  std::size_t text_start = pos_;
  for (;;) {
    if (eof()) fail("unterminated element: " + element_name);
    if (peek() != '<') {
      ++pos_;
      continue;
    }
    // Flush pending character data before any markup.
    if (pos_ > text_start) {
      emit_text(doc_.substr(text_start, pos_ - text_start));
    }
    if (consume_literal("</")) {
      std::string close = read_name();
      if (close != element_name) {
        fail("mismatched end tag: expected </" + element_name + ">, got </" +
             close + ">");
      }
      skip_whitespace();
      expect('>', "to close end tag");
      return;
    }
    if (consume_literal("<!--")) {
      parse_comment();
    } else if (consume_literal("<![CDATA[")) {
      parse_cdata();
    } else if (consume_literal("<?")) {
      parse_processing_instruction();
    } else {
      parse_element();
    }
    text_start = pos_;
  }
}

void SaxParser::emit_text(std::string_view raw) {
  if (!handlers_.characters) return;
  std::string resolved = unescape(raw);
  handlers_.characters(resolved);
}

void SaxParser::parse_comment() {
  std::size_t end = doc_.find("--", pos_);
  for (;;) {
    if (end == std::string_view::npos) fail("unterminated comment");
    if (doc_.substr(end, 3) == "-->") break;
    // "--" inside a comment is illegal XML.
    fail("'--' not allowed inside comment");
  }
  if (handlers_.comment) handlers_.comment(doc_.substr(pos_, end - pos_));
  pos_ = end + 3;
}

void SaxParser::parse_cdata() {
  std::size_t end = doc_.find("]]>", pos_);
  if (end == std::string_view::npos) fail("unterminated CDATA section");
  std::string_view text = doc_.substr(pos_, end - pos_);
  if (handlers_.cdata) {
    handlers_.cdata(text);
  } else if (handlers_.characters) {
    // CDATA is character data; deliver it as such when no CDATA handler is set.
    handlers_.characters(text);
  }
  pos_ = end + 3;
}

void SaxParser::parse_processing_instruction() {
  std::string target = read_name();
  std::size_t end = doc_.find("?>", pos_);
  if (end == std::string_view::npos) fail("unterminated processing instruction");
  std::string_view data = doc_.substr(pos_, end - pos_);
  // Trim single leading space conventionally separating target from data.
  if (!data.empty() && data.front() == ' ') data.remove_prefix(1);
  if (handlers_.processing_instruction) {
    handlers_.processing_instruction(target, data);
  }
  pos_ = end + 2;
}

}  // namespace sbq::xml
