// Streaming, callback-based XML parser — the library's Expat substitute.
//
// The parser handles the XML subset SOAP traffic actually uses: elements,
// attributes, character data (with entity and numeric character references),
// comments, CDATA sections, processing instructions, and the XML declaration.
// It deliberately does NOT implement DTDs or external entities (Expat's
// defaults for SOAP processing also leave these off; external entities are a
// well-known attack surface).
//
// Errors carry 1-based line/column positions so higher layers (WSDL compiler,
// quality files embedded in XML) report actionable diagnostics.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace sbq::xml {

/// A single `name="value"` attribute with entities already resolved.
struct Attribute {
  std::string name;
  std::string value;
};

/// Event callbacks; any handler may be left empty.
///
/// Text is delivered with entities resolved. Contiguous character data may be
/// split across several `characters` calls (e.g. around entity references),
/// exactly as Expat does — consumers must accumulate.
struct SaxHandlers {
  std::function<void(std::string_view name, const std::vector<Attribute>& attrs)>
      start_element;
  std::function<void(std::string_view name)> end_element;
  std::function<void(std::string_view text)> characters;
  std::function<void(std::string_view text)> cdata;
  std::function<void(std::string_view text)> comment;
  std::function<void(std::string_view target, std::string_view data)>
      processing_instruction;
};

/// Parse error with source position.
class XmlError : public ParseError {
 public:
  XmlError(const std::string& what, int line, int column)
      : ParseError("xml:" + std::to_string(line) + ":" + std::to_string(column) +
                   ": " + what),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// One-shot SAX parser. Construct with handlers, call parse() with a full
/// document. Verifies well-formedness: tag balance, single root element,
/// attribute quoting, no text outside the root. Element nesting is limited
/// (default 256 levels) so hostile documents cannot exhaust the stack —
/// SOAP payloads here nest with their PBIO formats, which are shallow.
class SaxParser {
 public:
  explicit SaxParser(SaxHandlers handlers, int max_depth = 256)
      : handlers_(std::move(handlers)), max_depth_(max_depth) {}

  /// Parses a complete document; throws XmlError on malformed input.
  void parse(std::string_view document);

 private:
  // Lexing helpers over the current document.
  [[nodiscard]] bool eof() const { return pos_ >= doc_.size(); }
  [[nodiscard]] char peek() const { return doc_[pos_]; }
  char advance();
  bool consume(char expected);
  void expect(char expected, const char* context);
  bool consume_literal(std::string_view lit);
  void skip_whitespace();
  [[noreturn]] void fail(const std::string& message) const;

  std::string read_name();
  std::string read_attribute_value();

  void parse_prolog();
  void parse_element();
  void parse_content(const std::string& element_name);
  void parse_comment();
  void parse_cdata();
  void parse_processing_instruction();
  void emit_text(std::string_view raw);

  SaxHandlers handlers_;
  int max_depth_;
  std::string_view doc_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool seen_root_ = false;
};

}  // namespace sbq::xml
