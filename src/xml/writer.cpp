#include "xml/writer.h"

#include <charconv>
#include <cstdio>

#include "common/error.h"
#include "xml/escape.h"

namespace sbq::xml {

std::string format_double(double v) {
  char buf[64];
  // %.17g always round-trips; shrink to the shortest form that does.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

void XmlWriter::declaration() {
  if (!out_.empty()) throw ParseError("XML declaration must come first");
  out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (pretty_) out_ += '\n';
}

void XmlWriter::indent() {
  if (!pretty_) return;
  if (!out_.empty() && out_.back() != '\n') out_ += '\n';
  out_.append(open_.size() * 2, ' ');
}

void XmlWriter::close_start_tag() {
  if (tag_open_) {
    out_ += '>';
    tag_open_ = false;
  }
}

void XmlWriter::start_element(std::string_view name) {
  close_start_tag();
  indent();
  out_ += '<';
  out_ += name;
  open_.emplace_back(name);
  tag_open_ = true;
  just_opened_ = true;
  had_child_ = false;
}

void XmlWriter::attribute(std::string_view name, std::string_view value) {
  if (!tag_open_) throw ParseError("attribute after element content: " + std::string(name));
  out_ += ' ';
  out_ += name;
  out_ += "=\"";
  out_ += escape(value);
  out_ += '"';
}

void XmlWriter::attribute(std::string_view name, std::int64_t value) {
  attribute(name, std::string_view{std::to_string(value)});
}

void XmlWriter::text(std::string_view value) {
  if (open_.empty()) throw ParseError("text outside root element");
  close_start_tag();
  out_ += escape(value);
  just_opened_ = false;
}

void XmlWriter::raw(std::string_view markup) {
  close_start_tag();
  out_ += markup;
  just_opened_ = false;
}

void XmlWriter::end_element() {
  if (open_.empty()) throw ParseError("end_element with no open element");
  std::string name = std::move(open_.back());
  open_.pop_back();
  if (tag_open_) {
    out_ += "/>";
    tag_open_ = false;
  } else {
    if (pretty_ && had_child_) {
      if (!out_.empty() && out_.back() != '\n') out_ += '\n';
      out_.append(open_.size() * 2, ' ');
    }
    out_ += "</";
    out_ += name;
    out_ += '>';
  }
  if (pretty_) out_ += '\n';
  just_opened_ = false;
  had_child_ = true;
}

void XmlWriter::text_element(std::string_view name, std::string_view text_value) {
  start_element(name);
  text(text_value);
  end_element();
}

void XmlWriter::text_element(std::string_view name, std::int64_t value) {
  text_element(name, std::string_view{std::to_string(value)});
}

void XmlWriter::text_element(std::string_view name, double value) {
  text_element(name, std::string_view{format_double(value)});
}

std::string XmlWriter::take() {
  if (!open_.empty()) {
    throw ParseError("document finished with <" + open_.back() + "> still open");
  }
  return std::move(out_);
}

}  // namespace sbq::xml
