// Streaming XML writer used to produce SOAP envelopes, WSDL documents, and
// SVG output. Guarantees well-formed output: balanced tags, escaped text and
// attribute values, attributes rejected after child content has begun.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sbq::xml {

class XmlWriter {
 public:
  /// `pretty` inserts newlines + 2-space indentation; wire-facing SOAP uses
  /// compact output, documentation examples use pretty output.
  explicit XmlWriter(bool pretty = false) : pretty_(pretty) {}

  /// Emits `<?xml version="1.0" encoding="UTF-8"?>`. Must be first.
  void declaration();

  /// Opens `<name`. Attributes may be added until text/child content starts.
  void start_element(std::string_view name);

  /// Adds an attribute to the currently open start tag.
  void attribute(std::string_view name, std::string_view value);
  void attribute(std::string_view name, std::int64_t value);

  /// Writes escaped character data inside the current element.
  void text(std::string_view value);

  /// Writes raw, pre-escaped markup (used to embed already-serialized XML).
  void raw(std::string_view markup);

  /// Closes the innermost open element (self-closing when empty).
  void end_element();

  /// Convenience: `<name>text</name>`.
  void text_element(std::string_view name, std::string_view text);
  void text_element(std::string_view name, std::int64_t value);
  void text_element(std::string_view name, double value);

  /// Finished document; throws ParseError if elements remain open.
  [[nodiscard]] std::string take();

  /// Current document size in bytes (without closing open elements).
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  void close_start_tag();
  void indent();

  std::string out_;
  std::vector<std::string> open_;
  bool pretty_;
  bool tag_open_ = false;       // '<name' emitted, '>' not yet
  bool just_opened_ = false;    // element has no content yet
  bool had_child_ = false;      // last content in current element was a child
};

/// Formats a double the way SOAP payloads in this library do: shortest
/// round-trippable representation.
std::string format_double(double v);

}  // namespace sbq::xml
