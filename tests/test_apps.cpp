// Unit tests for the application substrates: imaging, molecular dynamics,
// airline OIS, ECho pub/sub, SVG.
#include <gtest/gtest.h>

#include "apps/airline/ois.h"
#include "apps/echo/echo.h"
#include "apps/image/codec.h"
#include "apps/image/ops.h"
#include "apps/image/ppm.h"
#include "apps/image/synth.h"
#include "apps/image/transforms.h"
#include <cmath>

#include "apps/md/analysis.h"
#include "apps/md/bond.h"
#include "apps/svg/svg.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq {
namespace {

using pbio::Value;

// ---------------------------------------------------------------- image

TEST(Ppm, WriteReadRoundTrip) {
  image::Image img(3, 2);
  img.set(0, 0, {255, 0, 0});
  img.set(2, 1, {1, 2, 3});
  const Bytes ppm = image::write_ppm(img);
  EXPECT_EQ(image::read_ppm(BytesView{ppm}), img);
}

TEST(Ppm, HeaderWithComments) {
  const std::string ppm = "P6\n# a comment\n2 1\n# another\n255\n\x10\x20\x30\x40\x50\x60";
  const image::Image img = image::read_ppm(
      BytesView{reinterpret_cast<const std::uint8_t*>(ppm.data()), ppm.size()});
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.at(1, 0).b, 0x60);
}

TEST(Ppm, MalformedInputsThrow) {
  auto parse = [](std::string_view s) {
    return image::read_ppm(
        BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  };
  EXPECT_THROW(parse("P5\n1 1\n255\nx"), ParseError);       // wrong magic
  EXPECT_THROW(parse("P6\n1 1\n65535\nxx"), ParseError);    // wide maxval
  EXPECT_THROW(parse("P6\n2 2\n255\nxy"), ParseError);      // truncated raster
  EXPECT_THROW(parse("P6\n0 1\n255\n"), ParseError);        // zero dimension
}

TEST(Synth, DeterministicAndSized) {
  image::StarFieldConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.star_count = 10;
  const image::Image a = image::synth_star_field(cfg);
  const image::Image b = image::synth_star_field(cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.byte_size(), 64u * 48u * 3u);

  cfg.seed = 999;
  EXPECT_FALSE(image::synth_star_field(cfg) == a);
}

TEST(Synth, PaperSizeFrameIsRoughlyOneMegabyte) {
  const image::Image frame = image::synth_star_field();
  EXPECT_EQ(frame.byte_size(), 640u * 480u * 3u);  // ≈0.92 MB, "close to 1MB"
}

TEST(Ops, GrayscaleEqualChannels) {
  image::Image img(2, 1);
  img.set(0, 0, {200, 10, 30});
  const image::Image g = image::grayscale(img);
  EXPECT_EQ(g.at(0, 0).r, g.at(0, 0).g);
  EXPECT_EQ(g.at(0, 0).g, g.at(0, 0).b);
}

TEST(Ops, EdgeDetectFindsEdges) {
  // Left half black, right half white: strong vertical edge in the middle.
  image::Image img(16, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 8; x < 16; ++x) img.set(x, y, {255, 255, 255});
  }
  const image::Image edges = image::edge_detect(img);
  EXPECT_GT(edges.at(8, 4).r, 200);   // on the edge
  EXPECT_EQ(edges.at(3, 4).r, 0);     // flat region
  EXPECT_EQ(edges.at(13, 4).r, 0);    // flat region
}

TEST(Ops, DownscaleHalvesPaperResolution) {
  const image::Image full = image::synth_star_field();
  const image::Image half = image::downscale(full, 2);
  EXPECT_EQ(half.width(), 320);
  EXPECT_EQ(half.height(), 240);
  EXPECT_EQ(half.byte_size() * 4, full.byte_size());
}

TEST(Ops, DownscaleRoundsUpOddSizes) {
  image::Image odd(5, 3);
  const image::Image out = image::downscale(odd, 2);
  EXPECT_EQ(out.width(), 3);
  EXPECT_EQ(out.height(), 2);
}

TEST(Ops, ResizeAndCrop) {
  const image::Image src = image::synth_star_field(
      {.width = 32, .height = 32, .star_count = 4, .seed = 5});
  const image::Image big = image::resize(src, 64, 48);
  EXPECT_EQ(big.width(), 64);
  const image::Image cut = image::crop(src, 8, 8, 16, 12);
  EXPECT_EQ(cut.width(), 16);
  EXPECT_EQ(cut.at(0, 0).r, src.at(8, 8).r);
  EXPECT_THROW(image::crop(src, 20, 20, 20, 20), ParseError);
}

TEST(ImageCodec, ValueRoundTrip) {
  const image::Image img = image::synth_star_field(
      {.width = 20, .height = 10, .star_count = 3, .seed = 9});
  const Value v = image::image_to_value(img, *image::image_format());
  EXPECT_EQ(image::image_from_value(v), img);
}

TEST(ImageCodec, PbioWireIsNearRawSize) {
  const image::Image img = image::synth_star_field();
  const Value v = image::image_to_value(img, *image::image_format());
  const Bytes wire = pbio::encode_value_message(v, *image::image_format());
  // Binary wire ≈ raw pixels + small header, nothing like XML inflation.
  EXPECT_LT(wire.size(), img.byte_size() + 64);
}

TEST(ImageCodec, ResizeQualityHandler) {
  const image::Image img = image::synth_star_field(
      {.width = 64, .height = 64, .star_count = 6, .seed = 3});
  const Value full = image::image_to_value(img, *image::image_format());
  const Value reduced = image::resize_quality_handler(
      full, *image::half_image_format(), {});
  const image::Image back = image::image_from_value(reduced);
  EXPECT_EQ(back.width(), 32);
  EXPECT_EQ(back.height(), 32);
}

TEST(ImageCodec, SizeMismatchThrows) {
  Value bad = Value::record({{"width", 10}, {"height", 10}, {"pixels", Value{std::string(5, 'x')}}});
  EXPECT_THROW(image::image_from_value(bad), CodecError);
}

TEST(Transforms, BuiltinsAndSpecs) {
  image::TransformRegistry registry;
  EXPECT_TRUE(registry.contains("edge"));
  EXPECT_TRUE(registry.contains("scale"));
  EXPECT_EQ(registry.names().size(), 6u);

  const image::Image src = image::synth_star_field(
      {.width = 32, .height = 16, .star_count = 3, .seed = 8});
  EXPECT_EQ(registry.apply("none", src), src);
  EXPECT_EQ(registry.apply("scale:2", src).width(), 16);
  EXPECT_EQ(registry.apply("resize:10:5", src).height(), 5);
  EXPECT_EQ(registry.apply("crop:4:4:8:8", src).width(), 8);
  const image::Image gray = registry.apply("gray", src);
  EXPECT_EQ(gray.at(3, 3).r, gray.at(3, 3).b);
  EXPECT_EQ(registry.apply("edge", src).width(), 32);
}

TEST(Transforms, ErrorsAreDiagnosed) {
  image::TransformRegistry registry;
  EXPECT_THROW(registry.compile("sharpen"), ParseError);
  EXPECT_THROW(registry.compile("scale"), ParseError);          // missing arg
  EXPECT_THROW(registry.compile("scale:x"), ParseError);        // bad arg
  EXPECT_THROW(registry.compile("crop:1:2:3"), ParseError);     // arity
  EXPECT_THROW(registry.compile("none:extra"), ParseError);
  EXPECT_THROW(registry.register_factory("bad", nullptr), ParseError);
  // Compile succeeds but the transform itself can still reject at runtime.
  const image::Image tiny = image::synth_star_field(
      {.width = 4, .height = 4, .star_count = 1, .seed = 1});
  EXPECT_THROW(registry.apply("crop:0:0:100:100", tiny), ParseError);
}

TEST(Transforms, CustomRegistration) {
  image::TransformRegistry registry;
  registry.register_factory("invert", [](const std::vector<std::string>&) {
    return [](const image::Image& in) {
      image::Image out = in;
      for (auto& b : out.bytes()) b = static_cast<std::uint8_t>(255 - b);
      return out;
    };
  });
  const image::Image src = image::synth_star_field(
      {.width = 8, .height = 8, .star_count = 1, .seed = 3});
  const image::Image inverted = registry.apply("invert", src);
  EXPECT_EQ(inverted.at(0, 0).r, 255 - src.at(0, 0).r);
}

// ---------------------------------------------------------------- md

TEST(Md, SimulationIsDeterministic) {
  md::BondSimulation a;
  md::BondSimulation b;
  const md::Timestep sa = a.step();
  const md::Timestep sb = b.step();
  EXPECT_EQ(sa.index, 0);
  ASSERT_EQ(sa.atoms.size(), sb.atoms.size());
  EXPECT_DOUBLE_EQ(sa.atoms[10].x, sb.atoms[10].x);
  EXPECT_EQ(sa.bonds.size(), sb.bonds.size());
}

TEST(Md, StepsAdvanceIndex) {
  md::BondSimulation sim;
  const auto batch = sim.steps(4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].index, 0);
  EXPECT_EQ(batch[3].index, 3);
  EXPECT_EQ(sim.step().index, 4);
}

TEST(Md, AtomsStayInBox) {
  md::BondSimulation sim;
  for (int i = 0; i < 20; ++i) {
    const md::Timestep ts = sim.step();
    for (const md::Atom& a : ts.atoms) {
      EXPECT_GE(a.x, 0.0);
      EXPECT_LT(a.x, sim.config().box_size);
      EXPECT_GE(a.y, 0.0);
      EXPECT_LT(a.y, sim.config().box_size);
    }
  }
}

TEST(Md, BondsRespectCutoff) {
  md::BondSimulation sim;
  const md::Timestep ts = sim.step();
  const double cutoff2 = sim.config().bond_cutoff * sim.config().bond_cutoff;
  for (const md::Bond& b : ts.bonds) {
    const md::Atom& a1 = ts.atoms[static_cast<std::size_t>(b.a)];
    const md::Atom& a2 = ts.atoms[static_cast<std::size_t>(b.b)];
    const double dx = a1.x - a2.x, dy = a1.y - a2.y, dz = a1.z - a2.z;
    EXPECT_LE(dx * dx + dy * dy + dz * dz, cutoff2 * 1.0001);
  }
}

TEST(Md, TimestepWireSizeIsAboutFourKilobytes) {
  // The paper: "the size corresponding to each of the timesteps ... is
  // about 4KB".
  md::BondSimulation sim;
  const md::Timestep ts = sim.step();
  const Value v = md::timestep_to_value(ts);
  const Bytes wire = pbio::encode_value_message(v, *md::timestep_format());
  EXPECT_GT(wire.size(), 2500u);
  EXPECT_LT(wire.size(), 6500u);
}

TEST(Md, TimestepValueRoundTrip) {
  md::BondSimulation sim;
  const md::Timestep ts = sim.step();
  const md::Timestep back = md::timestep_from_value(md::timestep_to_value(ts));
  EXPECT_EQ(back.index, ts.index);
  ASSERT_EQ(back.atoms.size(), ts.atoms.size());
  EXPECT_DOUBLE_EQ(back.atoms[5].z, ts.atoms[5].z);
  ASSERT_EQ(back.bonds.size(), ts.bonds.size());
}

TEST(Md, BatchRoundTripThroughWire) {
  md::BondSimulation sim;
  const auto steps = sim.steps(3);
  const Value batch = md::batch_to_value(steps, *md::batch_format(3));
  const Bytes wire = pbio::encode_value_message(batch, *md::batch_format(3));
  const Value decoded = pbio::decode_value_message(BytesView{wire},
                                                   *md::batch_format(3));
  const auto back = md::batch_from_value(decoded);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2].index, steps[2].index);
}

TEST(Md, BatchFormatsAreDistinctTypes) {
  EXPECT_NE(md::batch_format(1)->format_id(), md::batch_format(4)->format_id());
  EXPECT_THROW(md::batch_format(0), CodecError);
  EXPECT_THROW(md::batch_format(5), CodecError);
}

TEST(Md, TrimBatchHandler) {
  md::BondSimulation sim;
  const Value full = md::batch_to_value(sim.steps(4), *md::batch_format(4));
  const Value trimmed = md::trim_batch_handler(full, *md::batch_format(2), {});
  EXPECT_EQ(trimmed.field("count").as_i64(), 2);
  EXPECT_EQ(trimmed.field("steps").array_size(), 2u);
}

// ---------------------------------------------------------------- md analysis

TEST(MdAnalysis, HandBuiltGraph) {
  // 5 atoms: a triangle (0-1-2), a pair (3-4).
  md::Timestep step;
  for (int i = 0; i < 5; ++i) {
    step.atoms.push_back(md::Atom{i, double(i), 0.0, 0.0});
  }
  step.atoms[4].y = 2.0;
  step.bonds = {{0, 1}, {1, 2}, {0, 2}, {3, 4}};

  const md::GraphStats stats = md::analyze(step);
  EXPECT_EQ(stats.atom_count, 5);
  EXPECT_EQ(stats.bond_count, 4);
  EXPECT_EQ(stats.cluster_count, 2);
  EXPECT_EQ(stats.largest_cluster, 3);
  EXPECT_EQ(stats.max_degree, 2);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 8.0 / 5.0);
  // Bonds: |0-1|=1, |1-2|=1, |0-2|=2, |3-4|=sqrt(1+4).
  EXPECT_NEAR(stats.mean_bond_length, (1 + 1 + 2 + std::sqrt(5.0)) / 4.0, 1e-12);
}

TEST(MdAnalysis, DegreesAndComponents) {
  md::Timestep step;
  for (int i = 0; i < 4; ++i) step.atoms.push_back(md::Atom{i, 0, 0, 0});
  step.bonds = {{0, 1}, {1, 2}};
  EXPECT_EQ(md::degrees(step), (std::vector<int>{1, 2, 1, 0}));
  const auto labels = md::components(step);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(MdAnalysis, EmptyAndInvalidInput) {
  md::Timestep empty;
  const md::GraphStats stats = md::analyze(empty);
  EXPECT_EQ(stats.atom_count, 0);
  EXPECT_EQ(stats.cluster_count, 0);

  md::Timestep bad;
  bad.atoms.push_back(md::Atom{5, 0, 0, 0});  // non-dense id
  EXPECT_THROW(md::analyze(bad), CodecError);

  md::Timestep bad_bond;
  bad_bond.atoms.push_back(md::Atom{0, 0, 0, 0});
  bad_bond.bonds.push_back(md::Bond{0, 9});
  EXPECT_THROW(md::analyze(bad_bond), CodecError);
}

TEST(MdAnalysis, SimulationGraphsAreConsistent) {
  md::BondSimulation sim;
  const md::Timestep step = sim.step();
  const md::GraphStats stats = md::analyze(step);
  EXPECT_EQ(stats.atom_count, sim.config().atom_count);
  EXPECT_EQ(stats.bond_count, static_cast<int>(step.bonds.size()));
  // Every bond is at most the cutoff long (no periodic wrap in find_bonds).
  EXPECT_LE(stats.mean_bond_length, sim.config().bond_cutoff);
  EXPECT_GE(stats.cluster_count, 1);
  EXPECT_LE(stats.largest_cluster, stats.atom_count);
}

TEST(MdAnalysis, StatsValueRoundTrip) {
  md::BondSimulation sim;
  const md::GraphStats stats = md::analyze(sim.step());
  const md::GraphStats back =
      md::stats_from_value(md::stats_to_value(stats));
  EXPECT_EQ(back.atom_count, stats.atom_count);
  EXPECT_DOUBLE_EQ(back.mean_bond_length, stats.mean_bond_length);
  EXPECT_EQ(back.largest_cluster, stats.largest_cluster);
  // And it crosses the wire like any other PBIO record.
  const Bytes wire =
      pbio::encode_value_message(md::stats_to_value(stats), *md::graph_stats_format());
  EXPECT_LT(wire.size(), 80u);  // summary ≪ the ~4KB graph it describes
}

// ---------------------------------------------------------------- airline

TEST(Airline, MealRules) {
  airline::Passenger p;
  p.cabin = airline::CabinClass::kFirst;
  EXPECT_EQ(airline::meal_code_for(p), "STD-F");
  p.cabin = airline::CabinClass::kEconomy;
  EXPECT_EQ(airline::meal_code_for(p), "STD-Y");
  p.meal_preference = "VGML";
  EXPECT_EQ(airline::meal_code_for(p), "VGML");  // preference wins
}

TEST(Airline, StorePopulatesDeterministically) {
  airline::OperationalStore a(7);
  airline::OperationalStore b(7);
  a.populate(5, 20);
  b.populate(5, 20);
  ASSERT_EQ(a.flight_numbers(), b.flight_numbers());
  const auto* fa = a.flight(a.flight_numbers()[0]);
  const auto* fb = b.flight(b.flight_numbers()[0]);
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->origin, fb->origin);
  EXPECT_EQ(fa->passengers.size(), 20u);
}

TEST(Airline, EventsMutateStore) {
  airline::OperationalStore store(3);
  store.populate(2, 10);
  for (int i = 0; i < 20; ++i) {
    const std::string desc = store.apply_random_event();
    EXPECT_FALSE(desc.empty());
  }
  EXPECT_EQ(store.event_count(), 20u);
}

TEST(Airline, ExcerptDerivation) {
  airline::OperationalStore store(11);
  store.populate(1, 30);
  const auto* flight = store.flight(store.flight_numbers()[0]);
  const airline::CateringExcerpt excerpt = airline::catering_excerpt(*flight);
  EXPECT_EQ(excerpt.flight, flight->number);
  EXPECT_EQ(excerpt.meals.size(), 30u);
}

TEST(Airline, ExcerptValueRoundTrip) {
  airline::OperationalStore store(11);
  store.populate(1, 25);
  const airline::CateringExcerpt excerpt =
      airline::catering_excerpt(*store.flight(store.flight_numbers()[0]));
  const airline::CateringExcerpt back =
      airline::excerpt_from_value(airline::excerpt_to_value(excerpt));
  EXPECT_EQ(back.flight, excerpt.flight);
  ASSERT_EQ(back.meals.size(), excerpt.meals.size());
  EXPECT_EQ(back.meals[7].code, excerpt.meals[7].code);
}

TEST(Airline, TableOneSizeRatios) {
  // Table I: SOAP 3898 B vs PBIO 860 B — XML ≈ 4.5x binary for the catering
  // excerpt. Validate the shape with a comparable record count.
  airline::OperationalStore store(42);
  store.populate(1, 48);
  const airline::CateringExcerpt excerpt =
      airline::catering_excerpt(*store.flight(store.flight_numbers()[0]));
  const Value v = airline::excerpt_to_value(excerpt);
  const Bytes bin = pbio::encode_value_message(v, *airline::catering_excerpt_format());
  const std::string xml =
      soap::value_to_xml(v, *airline::catering_excerpt_format(), "excerpt");
  const double ratio = static_cast<double>(xml.size()) / static_cast<double>(bin.size());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 7.0);
}

// ---------------------------------------------------------------- echo

TEST(Echo, SinksReceiveEvents) {
  echo::EventChannel channel("bonds", md::timestep_format());
  int received = 0;
  channel.subscribe([&](const echo::Event&) {
    ++received;
    return true;
  });
  md::BondSimulation sim;
  channel.submit({md::timestep_format(), md::timestep_to_value(sim.step())});
  channel.submit({md::timestep_format(), md::timestep_to_value(sim.step())});
  EXPECT_EQ(received, 2);
  EXPECT_EQ(channel.events_submitted(), 2u);
}

TEST(Echo, SinkReturningFalseUnsubscribes) {
  echo::EventChannel channel("c", nullptr);
  int calls = 0;
  channel.subscribe([&](const echo::Event&) {
    ++calls;
    return false;
  });
  channel.submit({nullptr, Value{1}});
  channel.submit({nullptr, Value{2}});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(channel.sink_count(), 0u);
}

TEST(Echo, UnsubscribeByToken) {
  echo::EventChannel channel("c", nullptr);
  int calls = 0;
  const auto token = channel.subscribe([&](const echo::Event&) {
    ++calls;
    return true;
  });
  channel.unsubscribe(token);
  channel.submit({nullptr, Value{1}});
  EXPECT_EQ(calls, 0);
}

TEST(Echo, FormatMismatchRejected) {
  echo::EventChannel channel("typed", md::timestep_format());
  EXPECT_THROW(channel.submit({md::bond_format(), Value::empty_record()}),
               CodecError);
}

TEST(Echo, DerivedChannelFilters) {
  echo::EventChannel parent("all", nullptr);
  auto derived = parent.derive("evens", nullptr, [](const echo::Event& e) {
    if (e.value.as_i64() % 2 != 0) return std::optional<echo::Event>{};
    echo::Event out = e;
    out.value = Value{e.value.as_i64() * 10};
    return std::optional<echo::Event>{out};
  });
  std::vector<std::int64_t> seen;
  derived->subscribe([&](const echo::Event& e) {
    seen.push_back(e.value.as_i64());
    return true;
  });
  for (int i = 0; i < 5; ++i) parent.submit({nullptr, Value{i}});
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 20, 40}));
}

TEST(Echo, DomainRegistry) {
  echo::EventDomain domain;
  auto c = domain.create_channel("bonds", md::timestep_format());
  EXPECT_EQ(domain.find("bonds"), c);
  EXPECT_EQ(domain.find("ghost"), nullptr);
  EXPECT_THROW(domain.create_channel("bonds", nullptr), RpcError);
}

// ---------------------------------------------------------------- svg

TEST(Svg, WriterProducesValidXml) {
  svg::SvgWriter w(100, 50);
  w.rect(0, 0, 100, 50, "black");
  w.circle(10, 10, 2.5, "#fff");
  w.line(0, 0, 99, 49, "red", 0.5);
  w.text(5, 20, "label <escaped>");
  const std::string doc = w.take();
  const auto dom = xml::parse_document(doc);
  EXPECT_EQ(dom->name, "svg");
  EXPECT_EQ(dom->children.size(), 4u);
  EXPECT_EQ(dom->required_child("text").trimmed_text(), "label <escaped>");
}

TEST(Svg, RenderMoleculeContainsAtomsAndBonds) {
  md::BondSimulation sim;
  const md::Timestep ts = sim.step();
  const std::string doc = svg::render_molecule(ts, sim.config().box_size);
  const auto dom = xml::parse_document(doc);
  EXPECT_EQ(dom->children_named("circle").size(), ts.atoms.size());
  EXPECT_EQ(dom->children_named("line").size(), ts.bonds.size());
}

TEST(Svg, RenderRejectsBadBox) {
  md::Timestep ts;
  EXPECT_THROW(svg::render_molecule(ts, 0.0), ParseError);
}

TEST(Svg, SixteenKilobyteVisualizationPayload) {
  // §IV-C.4 reports a ~16 KB SVG response; a ~100-atom frame lands in that
  // ballpark.
  md::BondSimulation sim;
  const std::string doc = svg::render_molecule(sim.step(), sim.config().box_size);
  EXPECT_GT(doc.size(), 6000u);
  EXPECT_LT(doc.size(), 40000u);
}

}  // namespace
}  // namespace sbq
