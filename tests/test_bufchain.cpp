// BufferChain and the zero-copy wire pipeline.
//
// The load-bearing property throughout: a message built as a chain must be
// byte-for-byte identical to the flat encoding, no matter how the input is
// segmented — the pipeline changes where bytes live, never what goes on the
// wire. Randomized segmentation tests enforce that for the chain primitives,
// the PBIO codecs, the LZSS stream compressor, and HTTP serialization.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>

#include "common/buffer_chain.h"
#include "common/error.h"
#include "compress/lzss.h"
#include "core/client.h"
#include "core/message.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/message.h"
#include "http/parser.h"
#include "net/tcp.h"
#include "pbio/encode.h"
#include "pbio/value_codec.h"

namespace sbq {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

Bytes random_bytes(std::mt19937& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xFF);
  return out;
}

/// Splits `data` into a chain at random boundaries, randomly mixing owned
/// and borrowed segments (borrowed ones pinned by a shared copy).
BufferChain random_chain(std::mt19937& rng, BytesView data) {
  BufferChain chain;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t len =
        std::min<std::size_t>(1 + rng() % 1500, data.size() - pos);
    const BytesView piece = data.subspan(pos, len);
    if (rng() % 2 == 0) {
      chain.append(Bytes(piece.begin(), piece.end()));
    } else {
      auto pinned = std::make_shared<Bytes>(piece.begin(), piece.end());
      chain.append_view(BytesView{*pinned}, pinned);
    }
    pos += len;
  }
  return chain;
}

TEST(BufferChain, BasicsAndCoalesce) {
  BufferChain chain;
  EXPECT_TRUE(chain.empty());
  chain.append(Bytes{1, 2, 3});
  chain.append(std::string("abc"));
  const Bytes borrowed{9, 8, 7, 6};
  chain.append_view(BytesView{borrowed});
  EXPECT_EQ(chain.size(), 10u);
  EXPECT_EQ(chain.segment_count(), 3u);
  EXPECT_EQ(chain.bytes_copied(), 0u);

  const Bytes flat = chain.coalesce();
  EXPECT_EQ(flat, (Bytes{1, 2, 3, 'a', 'b', 'c', 9, 8, 7, 6}));
  EXPECT_EQ(chain.bytes_copied(), 10u);  // coalescing is the counted copy
}

TEST(BufferChain, EmptyAppendsAreIgnored) {
  BufferChain chain;
  chain.append(Bytes{});
  chain.append(std::string{});
  chain.append_view(BytesView{});
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.segment_count(), 0u);
}

TEST(BufferChain, SmallStringStorageSurvivesSegmentRelocation) {
  // SSO hazard: views into a moved-in small string must not dangle when the
  // segment vector reallocates (storage lives behind a shared_ptr).
  BufferChain chain;
  chain.append(std::string("tiny"));
  for (int i = 0; i < 100; ++i) chain.append(Bytes{static_cast<std::uint8_t>(i)});
  EXPECT_EQ(chain.segment(0)[0], 't');
  const Bytes flat = chain.coalesce();
  EXPECT_EQ(flat[3], 'y');
}

TEST(BufferChain, SpliceMovesSegmentsWithoutCopying) {
  BufferChain head;
  head.append(Bytes{1, 2});
  BufferChain tail;
  tail.append(Bytes{3, 4});
  tail.append(Bytes{5});
  head.append(std::move(tail));
  EXPECT_EQ(head.size(), 5u);
  EXPECT_EQ(head.segment_count(), 3u);
  EXPECT_EQ(head.bytes_copied(), 0u);
  EXPECT_TRUE(tail.empty());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_EQ(head.coalesce(), (Bytes{1, 2, 3, 4, 5}));
}

TEST(BufferChain, ShareSuffixSplitsMidSegment) {
  BufferChain chain;
  chain.append(Bytes{0, 1, 2, 3});
  chain.append(Bytes{4, 5, 6});
  const BufferChain suffix = chain.share_suffix(2);
  EXPECT_EQ(suffix.size(), 5u);
  EXPECT_EQ(suffix.coalesce(), (Bytes{2, 3, 4, 5, 6}));
  const BufferChain at_boundary = chain.share_suffix(4);
  EXPECT_EQ(at_boundary.coalesce(), (Bytes{4, 5, 6}));
  EXPECT_TRUE(chain.share_suffix(7).empty());
  EXPECT_THROW((void)chain.share_suffix(8), CodecError);
}

TEST(BufferChain, SharedSegmentsOutliveTheSource) {
  BufferChain shared;
  {
    BufferChain source;
    source.append(Bytes{7, 7, 7});
    shared.append_shared(source);
  }  // source destroyed; storage must survive via the shared anchor
  EXPECT_EQ(shared.coalesce(), (Bytes{7, 7, 7}));
}

TEST(ChainWriter, StagesSmallWritesAndBorrowsLargeBlocks) {
  BufferChain chain;
  const Bytes big(2048, 0xAB);
  {
    ChainWriter writer(chain);
    writer.append_u32(0xDEADBEEF, ByteOrder::kLittle);
    writer.append_block(BytesView{big});
    writer.append_u8(0x7F);
  }  // destructor flushes the trailing staged byte
  ASSERT_EQ(chain.segment_count(), 3u);  // staged | borrowed | staged
  EXPECT_EQ(chain.segment(1).data(), big.data());  // truly borrowed, no copy
  EXPECT_EQ(chain.size(), 4u + 2048u + 1u);

  ByteBuffer flat;
  flat.append_u32(0xDEADBEEF, ByteOrder::kLittle);
  flat.append(BytesView{big});
  flat.append_u8(0x7F);
  EXPECT_EQ(chain.coalesce(), flat.take());
}

TEST(ChainWriter, SmallBlocksAreStagedNotScattered) {
  BufferChain chain;
  {
    ChainWriter writer(chain);
    writer.append_u16(7, ByteOrder::kLittle);
    writer.append_block(Bytes{1, 2, 3});  // below threshold
    writer.append_u16(8, ByteOrder::kLittle);
  }
  EXPECT_EQ(chain.segment_count(), 1u);
  EXPECT_EQ(chain.size(), 7u);
}

TEST(ChainReader, ScalarsAcrossSegmentBoundaries) {
  // A u32 split 1|3 across segments must read as if contiguous.
  BufferChain chain;
  chain.append(Bytes{0x78});
  chain.append(Bytes{0x56, 0x34, 0x12, 0xFF});
  ChainReader reader(chain);
  EXPECT_EQ(reader.read_u32(ByteOrder::kLittle), 0x12345678u);
  EXPECT_EQ(reader.read_u8(), 0xFFu);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW(reader.read_u8(), CodecError);
}

TEST(ChainReader, ReadViewIsZeroCopyWithinOneSegment) {
  BufferChain chain;
  const Bytes seg{1, 2, 3, 4, 5, 6};
  chain.append_view(BytesView{seg});
  chain.append(Bytes{7, 8});
  ChainReader reader(chain);
  const BytesView in_segment = reader.read_view(4);
  EXPECT_EQ(in_segment.data(), seg.data());  // no copy
  EXPECT_EQ(reader.bytes_copied(), 0u);
  const BytesView crossing = reader.read_view(4);  // 5,6 | 7,8 → scratch
  EXPECT_EQ(crossing.size(), 4u);
  EXPECT_EQ(crossing[0], 5);
  EXPECT_EQ(crossing[3], 8);
  EXPECT_EQ(reader.bytes_copied(), 4u);
}

TEST(ChainReader, RandomSegmentationRoundTripsByteIdentical) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes data = random_bytes(rng, 1 + rng() % 20000);
    const BufferChain chain = random_chain(rng, BytesView{data});
    ASSERT_EQ(chain.size(), data.size());
    EXPECT_EQ(chain.coalesce(), data);

    ChainReader reader(chain);
    Bytes back(data.size());
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 700,
                                                  data.size() - pos);
      reader.read_raw(back.data() + pos, n);
      pos += n;
    }
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(back, data);
  }
}

// --- PBIO over chains ------------------------------------------------------

FormatPtr rich_format() {
  auto inner = FormatBuilder("inner")
                   .add_scalar("id", TypeKind::kUInt64)
                   .add_string("tag")
                   .build();
  return FormatBuilder("rich")
      .add_scalar("v", TypeKind::kInt32)
      .add_string("name")
      .add_var_array("pixels", TypeKind::kChar)   // bulk block → borrowed
      .add_fixed_array("pad", TypeKind::kChar, 16)
      .add_var_array("samples", TypeKind::kFloat64)
      .add_struct("meta", inner)
      .build();
}

Value rich_value(std::size_t pixel_count) {
  std::string pixels(pixel_count, '\0');
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<char>(i * 31 + 7);
  }
  Value samples = Value::empty_array();
  for (int i = 0; i < 9; ++i) samples.push_back(Value{i * 1.5});
  Value v = Value::empty_record();
  v.set_field("v", Value{-42});
  v.set_field("name", Value{std::string("m31_field")});
  v.set_field("pixels", Value{std::move(pixels)});
  v.set_field("pad", Value{std::string(16, 'p')});
  v.set_field("samples", std::move(samples));
  Value meta = Value::empty_record();
  meta.set_field("id", Value{std::uint64_t{0xFEEDFACE}});
  meta.set_field("tag", Value{std::string("edge")});
  v.set_field("meta", std::move(meta));
  return v;
}

TEST(PbioChain, ValueMessageChainMatchesFlatEncoding) {
  const FormatPtr format = rich_format();
  for (const std::size_t pixels : {std::size_t{0}, std::size_t{64},
                                   std::size_t{100000}}) {
    const Value value = rich_value(pixels);
    const Bytes flat = pbio::encode_value_message(value, *format);
    const BufferChain chain = pbio::encode_value_message_chain(value, *format);
    EXPECT_EQ(chain.coalesce(), flat) << "pixels=" << pixels;
    EXPECT_EQ(chain.size(), flat.size());
  }
}

TEST(PbioChain, ForeignOrderChainMatchesFlatEncoding) {
  const FormatPtr format = rich_format();
  const Value value = rich_value(5000);
  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Bytes flat = pbio::encode_value_message(value, *format, foreign);
  const BufferChain chain =
      pbio::encode_value_message_chain(value, *format, foreign);
  EXPECT_EQ(chain.coalesce(), flat);
}

TEST(PbioChain, BulkBlocksBorrowFromTheValue) {
  const FormatPtr format = rich_format();
  const Value value = rich_value(100000);
  const BufferChain chain = pbio::encode_value_message_chain(value, *format);
  const std::uint8_t* pixel_bytes = reinterpret_cast<const std::uint8_t*>(
      value.field("pixels").as_string().data());
  bool found_borrowed = false;
  for (BytesView segment : chain) {
    if (segment.data() == pixel_bytes) found_borrowed = true;
  }
  EXPECT_TRUE(found_borrowed) << "pixel block was copied, not borrowed";
  EXPECT_EQ(chain.bytes_copied(), 0u);
}

TEST(PbioChain, ChainDecodeEqualsFlatDecodeUnderRandomSegmentation) {
  const FormatPtr format = rich_format();
  const Value value = rich_value(30000);
  const Bytes flat = pbio::encode_value_message(value, *format);
  const Value flat_decoded = pbio::decode_value_message(BytesView{flat}, *format);

  std::mt19937 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const BufferChain chain = random_chain(rng, BytesView{flat});
    ChainReader reader(chain);
    const pbio::WireHeader header = pbio::read_header(reader);
    const Value decoded = pbio::decode_value_payload(
        reader, header.payload_length, header.sender_order, *format);
    EXPECT_TRUE(decoded == flat_decoded);
  }
}

TEST(PbioChain, NativeMessageChainMatchesFlatEncoding) {
  struct Record {
    std::int32_t id;
    double xs[4];
    pbio::VarArray<std::uint32_t> counts;
  };
  const auto format = FormatBuilder("native_rec")
                          .add_scalar("id", TypeKind::kInt32)
                          .add_fixed_array("xs", TypeKind::kFloat64, 4)
                          .add_var_array("counts", TypeKind::kUInt32)
                          .build();
  std::vector<std::uint32_t> counts(5000);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(i * i);
  }
  Record rec{};
  rec.id = 11;
  for (int i = 0; i < 4; ++i) rec.xs[i] = i * 0.25;
  rec.counts = {static_cast<std::uint32_t>(counts.size()), counts.data()};

  const Bytes flat = pbio::encode_message(&rec, *format);
  const BufferChain chain = pbio::encode_message_chain(&rec, *format);
  EXPECT_EQ(chain.coalesce(), flat);
  // The bulk array rides as a borrowed view into the record's own storage.
  bool borrowed = false;
  for (BytesView segment : chain) {
    if (segment.data() == reinterpret_cast<const std::uint8_t*>(counts.data())) {
      borrowed = true;
    }
  }
  EXPECT_TRUE(borrowed);
}

// --- envelope over chains --------------------------------------------------

TEST(CoreChain, BinMessageChainMatchesFlatAndDecodesBack) {
  core::BinEnvelope envelope;
  envelope.operation = "getImage";
  envelope.message_type = "half_image";
  envelope.timestamp_us = 123456;
  envelope.echoed_timestamp_us = 111;
  envelope.server_prep_us = 222;
  envelope.reported_rtt_us = 875.5;

  const FormatPtr format = rich_format();
  const Value value = rich_value(40000);
  const Bytes flat_pbio = pbio::encode_value_message(value, *format);
  const Bytes flat = core::encode_bin_message(envelope, BytesView{flat_pbio});

  BufferChain pbio_chain = pbio::encode_value_message_chain(value, *format);
  const BufferChain chain =
      core::encode_bin_message(envelope, std::move(pbio_chain));
  EXPECT_EQ(chain.coalesce(), flat);

  const core::DecodedBinChain decoded = core::decode_bin_message(chain);
  EXPECT_EQ(decoded.envelope.operation, "getImage");
  EXPECT_EQ(decoded.envelope.message_type, "half_image");
  EXPECT_EQ(decoded.envelope.timestamp_us, 123456u);
  EXPECT_EQ(decoded.envelope.reported_rtt_us, 875.5);
  EXPECT_EQ(decoded.pbio_message.coalesce(), flat_pbio);
}

// --- LZSS streaming --------------------------------------------------------

Bytes compressible_bytes(std::mt19937& rng, std::size_t n) {
  // Repetitive-ish data so matches actually occur across chunk boundaries.
  static constexpr const char* kWords[] = {"<sample>", "</sample>", "value=",
                                           "0.125", "telescope", "  "};
  std::string s;
  while (s.size() < n) s += kWords[rng() % 6];
  s.resize(n);
  return to_bytes(s);
}

TEST(LzssStream, ChunkedOutputIsByteIdenticalToFlat) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const bool repetitive = trial % 2 == 0;
    const std::size_t n = 1 + rng() % 60000;
    const Bytes data =
        repetitive ? compressible_bytes(rng, n) : random_bytes(rng, n);
    const Bytes flat = lz::compress(BytesView{data});

    lz::StreamCompressor sc;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 4096, data.size() - pos);
      sc.feed(BytesView{data}.subspan(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(sc.finish(), flat) << "trial=" << trial << " n=" << n;
    EXPECT_EQ(lz::decompress(BytesView{flat}), data);
  }
}

TEST(LzssStream, ChainCompressMatchesFlatCompress) {
  std::mt19937 rng(5);
  const Bytes data = compressible_bytes(rng, 80000);
  const BufferChain chain = random_chain(rng, BytesView{data});
  EXPECT_EQ(lz::compress(chain), lz::compress(BytesView{data}));
}

TEST(LzssStream, EmptyAndTinyInputs) {
  lz::StreamCompressor empty;
  EXPECT_EQ(empty.finish(), lz::compress(BytesView{}));
  lz::StreamCompressor tiny;
  tiny.feed(std::string_view{"x"});
  EXPECT_EQ(tiny.finish(), lz::compress_string("x"));
}

// --- HTTP over chains ------------------------------------------------------

/// In-memory Stream capturing everything written (and serving reads).
class MemoryStream final : public net::Stream {
 public:
  std::size_t read_some(void* buf, std::size_t n) override {
    const std::size_t take = std::min(n, incoming.size() - read_pos_);
    std::memcpy(buf, incoming.data() + read_pos_, take);
    read_pos_ += take;
    return take;
  }
  void write_all(const void* buf, std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    written.insert(written.end(), p, p + n);
  }
  void close() override {}

  Bytes incoming;
  Bytes written;

 private:
  std::size_t read_pos_ = 0;
};

TEST(HttpChain, WriteChainEqualsSerializeForRandomMessages) {
  std::mt19937 rng(31);
  for (int trial = 0; trial < 16; ++trial) {
    http::Request request;
    request.target = "/svc" + std::to_string(rng() % 10);
    request.headers.set("X-Trial", std::to_string(trial));
    const Bytes payload = random_bytes(rng, rng() % 5000);
    if (rng() % 2 == 0) {
      request.body = payload;
    } else {
      request.set_body_chain(random_chain(rng, BytesView{payload}));
    }
    const Bytes flat = request.serialize();
    EXPECT_EQ(request.serialized_size(), flat.size());

    MemoryStream stream;
    BufferChain wire;
    request.serialize_to(wire);
    stream.write_chain(wire);
    EXPECT_EQ(stream.written, flat);
  }
}

TEST(HttpChain, ChainBodiedResponseParsesBack) {
  std::mt19937 rng(17);
  const Bytes payload = random_bytes(rng, 20000);
  http::Response response;
  response.headers.set("Content-Type", "application/octet-stream");
  response.set_body_chain(random_chain(rng, BytesView{payload}));
  EXPECT_EQ(response.body_size(), payload.size());

  MemoryStream stream;
  BufferChain wire;
  response.serialize_to(wire);
  stream.write_chain(wire);
  stream.incoming = stream.written;

  http::MessageReader reader(stream);
  const auto parsed = reader.read_response();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, payload);
  EXPECT_EQ(reader.bytes_consumed(), stream.written.size());
}

TEST(HttpChain, TcpWriteChainDeliversAllSegments) {
  std::mt19937 rng(23);
  const Bytes payload = random_bytes(rng, 300000);
  BufferChain chain = random_chain(rng, BytesView{payload});

  net::TcpListener listener(0);
  Bytes received;
  std::thread server([&] {
    auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    std::uint8_t buf[8192];
    for (;;) {
      const std::size_t n = conn->read_some(buf, sizeof buf);
      if (n == 0) break;
      received.insert(received.end(), buf, buf + n);
    }
  });
  auto client = net::TcpStream::connect("127.0.0.1", listener.port());
  client->write_chain(chain);
  client->close();
  server.join();
  EXPECT_EQ(received, payload);
}

// --- end-to-end A/B --------------------------------------------------------

FormatPtr blob_format() {
  return FormatBuilder("blob")
      .add_scalar("v", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

struct PipelineEnv {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  core::ServiceRuntime runtime{format_server, clock};
  net::LinkModel link{net::lan_100mbps()};
  core::SimLinkTransport transport{runtime, link, clock};
  wsdl::ServiceDesc svc;

  PipelineEnv() {
    runtime.register_operation("echo", blob_format(), blob_format(),
                               [](const Value& v) { return v; });
    transport.set_charge_server_cpu(false);
    svc.name = "Echo";
    svc.operations.push_back(
        wsdl::OperationDesc{"echo", blob_format(), blob_format()});
  }
};

TEST(PipelineAB, ZeroCopyAndFlatAgreeAndCopiesDrop) {
  const Value params =
      Value::record({{"v", 3}, {"data", std::string(200000, 'z')}});

  PipelineEnv flat_env;
  flat_env.runtime.set_zero_copy(false);
  core::ClientStub flat_client(flat_env.transport, core::WireFormat::kBinary,
                               flat_env.svc, flat_env.format_server,
                               flat_env.clock);
  flat_client.set_zero_copy(false);
  const Value flat_result = flat_client.call("echo", params);

  PipelineEnv zc_env;
  core::ClientStub zc_client(zc_env.transport, core::WireFormat::kBinary,
                             zc_env.svc, zc_env.format_server, zc_env.clock);
  const Value zc_result = zc_client.call("echo", params);

  // Same wire sizes, same decoded values, same simulated link time.
  EXPECT_TRUE(flat_result == zc_result);
  EXPECT_TRUE(zc_result == params);
  EXPECT_EQ(flat_client.stats().bytes_sent, zc_client.stats().bytes_sent);
  EXPECT_EQ(flat_client.stats().bytes_received,
            zc_client.stats().bytes_received);
  EXPECT_EQ(flat_env.clock->now_us(), zc_env.clock->now_us());

  // The flat path splices the ~200 KB payload at least once per endpoint;
  // the chain path's counted copies stay under a kilobyte of scratch.
  const std::uint64_t flat_copied = flat_client.stats().bytes_copied +
                                    flat_env.runtime.stats().bytes_copied;
  const std::uint64_t zc_copied =
      zc_client.stats().bytes_copied + zc_env.runtime.stats().bytes_copied;
  EXPECT_GE(flat_copied, 2 * 200000u);
  EXPECT_LT(zc_copied + 200000u, flat_copied);
  EXPECT_GT(zc_client.stats().segments_written, 1u);
}

TEST(PipelineAB, RequestWireBytesIdenticalAcrossModes) {
  // Capture the exact request wire image in both modes; with a simulated
  // clock the request (timestamp, RTT report) is fully deterministic.
  struct Capture final : core::Transport {
    explicit Capture(core::Transport& inner) : inner(inner) {}
    http::Response round_trip(const http::Request& request) override {
      wires.push_back(request.serialize());
      return inner.round_trip(request);
    }
    core::Transport& inner;
    std::vector<Bytes> wires;
  };

  const Value params =
      Value::record({{"v", 9}, {"data", std::string(50000, 'q')}});

  auto run = [&](bool zero_copy) {
    PipelineEnv env;
    env.runtime.set_zero_copy(zero_copy);
    Capture capture(env.transport);
    core::ClientStub client(capture, core::WireFormat::kBinary, env.svc,
                            env.format_server, env.clock);
    client.set_client_id("ab-test");  // ids come from a global counter
    client.set_zero_copy(zero_copy);
    (void)client.call("echo", params);
    return std::move(capture.wires);
  };

  const auto flat_wires = run(false);
  const auto zc_wires = run(true);
  ASSERT_EQ(flat_wires.size(), zc_wires.size());
  for (std::size_t i = 0; i < flat_wires.size(); ++i) {
    EXPECT_TRUE(flat_wires[i] == zc_wires[i]) << "request " << i;
  }
}

}  // namespace
}  // namespace sbq
