// Unit tests for the common substrate: buffers, endian ops, strings, RNG,
// arena, hexdump.
#include <gtest/gtest.h>

#include <set>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/hexdump.h"
#include "common/rng.h"
#include "common/strings.h"

namespace sbq {
namespace {

TEST(Bytes, ByteswapRoundTrips) {
  EXPECT_EQ(byteswap16(0x1234), 0x3412);
  EXPECT_EQ(byteswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(byteswap64(0x0102030405060708ull), 0x0807060504030201ull);
  EXPECT_EQ(byteswap64(byteswap64(0xDEADBEEFCAFEF00Dull)), 0xDEADBEEFCAFEF00Dull);
}

TEST(Bytes, AppendAndReadLittleEndian) {
  ByteBuffer buf;
  buf.append_u8(0xAB);
  buf.append_u16(0x1234, ByteOrder::kLittle);
  buf.append_u32(0xDEADBEEF, ByteOrder::kLittle);
  buf.append_u64(0x0102030405060708ull, ByteOrder::kLittle);
  buf.append_f32(1.5F, ByteOrder::kLittle);
  buf.append_f64(-2.25, ByteOrder::kLittle);

  ByteReader r(buf.view());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(ByteOrder::kLittle), 0x1234);
  EXPECT_EQ(r.read_u32(ByteOrder::kLittle), 0xDEADBEEF);
  EXPECT_EQ(r.read_u64(ByteOrder::kLittle), 0x0102030405060708ull);
  EXPECT_EQ(r.read_f32(ByteOrder::kLittle), 1.5F);
  EXPECT_EQ(r.read_f64(ByteOrder::kLittle), -2.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, AppendAndReadBigEndian) {
  ByteBuffer buf;
  buf.append_u32(0x11223344, ByteOrder::kBig);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.view()[0], 0x11);
  EXPECT_EQ(buf.view()[3], 0x44);
  ByteReader r(buf.view());
  EXPECT_EQ(r.read_u32(ByteOrder::kBig), 0x11223344u);
}

TEST(Bytes, CrossEndianMismatchSwaps) {
  ByteBuffer buf;
  buf.append_u16(0x00FF, ByteOrder::kBig);
  ByteReader r(buf.view());
  EXPECT_EQ(r.read_u16(ByteOrder::kLittle), 0xFF00);
}

TEST(Bytes, ReaderUnderrunThrows) {
  ByteBuffer buf;
  buf.append_u16(7, ByteOrder::kLittle);
  ByteReader r(buf.view());
  EXPECT_THROW(r.read_u32(ByteOrder::kLittle), CodecError);
}

TEST(Bytes, ReadViewAndString) {
  ByteBuffer buf;
  buf.append(std::string_view{"hello world"});
  ByteReader r(buf.view());
  EXPECT_EQ(r.read_string(5), "hello");
  r.skip(1);
  BytesView rest = r.read_view(5);
  EXPECT_EQ(to_string(rest), "world");
}

TEST(Bytes, PatchU32) {
  ByteBuffer buf;
  buf.append_u32(0, ByteOrder::kLittle);
  buf.append_u8(9);
  buf.patch_u32(0, 42, ByteOrder::kLittle);
  ByteReader r(buf.view());
  EXPECT_EQ(r.read_u32(ByteOrder::kLittle), 42u);
  EXPECT_THROW(buf.patch_u32(2, 1, ByteOrder::kLittle), CodecError);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitWhitespace) {
  auto parts = split_whitespace("  10   20\t- type_a ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "10");
  EXPECT_EQ(parts[2], "-");
  EXPECT_EQ(parts[3], "type_a");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("Content-TYPE"), "content-type");
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_u64("123"), 123u);
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_DOUBLE_EQ(parse_f64("2.5e3"), 2500.0);
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_i64(""), ParseError);
  EXPECT_THROW(parse_f64("abc"), ParseError);
}

TEST(Strings, IsBlank) {
  EXPECT_TRUE(is_blank("  \t\n"));
  EXPECT_TRUE(is_blank(""));
  EXPECT_FALSE(is_blank(" x "));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
    const auto n = rng.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
    const auto b = rng.next_below(10);
    EXPECT_LT(b, 10u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMeanApprox) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Arena, AllocatesAlignedDistinct) {
  Arena arena(128);
  void* a = arena.allocate(10, 8);
  void* b = arena.allocate(10, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
}

TEST(Arena, GrowsPastChunkSize) {
  Arena arena(64);
  void* big = arena.allocate(1024);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAA, 1024);  // must be writable
  void* after = arena.allocate(16);
  EXPECT_NE(after, nullptr);
}

TEST(Arena, CopyPreservesBytes) {
  Arena arena;
  const char src[] = "payload";
  auto* copy = static_cast<char*>(arena.copy(src, sizeof src));
  EXPECT_STREQ(copy, "payload");
  EXPECT_NE(static_cast<const void*>(copy), static_cast<const void*>(src));
}

TEST(Arena, ZeroSizeAllocationsAreValid) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

TEST(Hexdump, FormatsAsciiGutter) {
  Bytes data = to_bytes("ABC\x01xyz");
  const std::string dump = hexdump(BytesView{data});
  EXPECT_NE(dump.find("41 42 43"), std::string::npos);
  EXPECT_NE(dump.find("|ABC.xyz|"), std::string::npos);
}

TEST(Hexdump, MultipleLines) {
  Bytes data(40, 0x41);
  const std::string dump = hexdump(BytesView{data});
  EXPECT_NE(dump.find("000010"), std::string::npos);
  EXPECT_NE(dump.find("000020"), std::string::npos);
}

}  // namespace
}  // namespace sbq
