// Unit + property tests for the LZSS compressor.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lzss.h"

namespace sbq::lz {
namespace {

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

TEST(Lzss, EmptyInput) {
  const Bytes c = compress(BytesView{});
  EXPECT_EQ(decompress(BytesView{c}).size(), 0u);
}

TEST(Lzss, SingleByte) {
  const Bytes in = bytes_of("x");
  const Bytes c = compress(BytesView{in});
  EXPECT_EQ(decompress(BytesView{c}), in);
}

TEST(Lzss, ShortLiteralOnly) {
  const Bytes in = bytes_of("abcdefg");
  EXPECT_EQ(decompress(BytesView{compress(BytesView{in})}), in);
}

TEST(Lzss, HighlyRepetitiveCompressesWell) {
  Bytes in(100000, 'A');
  const Bytes c = compress(BytesView{in});
  EXPECT_EQ(decompress(BytesView{c}), in);
  // 18-byte max match per 2.125-byte token bounds the format at ~8.5x.
  EXPECT_LT(c.size(), in.size() / 8);
}

TEST(Lzss, XmlLikeInputBeatsHalfSize) {
  // Tag-heavy payload shaped like the paper's SOAP messages.
  std::string xml = "<?xml version=\"1.0\"?><env><body>";
  for (int i = 0; i < 500; ++i) {
    xml += "<item><value>" + std::to_string(i % 97) + "</value></item>";
  }
  xml += "</body></env>";
  const Bytes in = bytes_of(xml);
  const Bytes c = compress(BytesView{in});
  EXPECT_EQ(decompress(BytesView{c}), in);
  EXPECT_LT(c.size(), in.size() / 2);
}

TEST(Lzss, IncompressibleRandomSurvives) {
  Rng rng(99);
  Bytes in(5000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes c = compress(BytesView{in});
  EXPECT_EQ(decompress(BytesView{c}), in);
  // Worst case adds 1 flag byte per 8 literals plus the 4-byte size header.
  EXPECT_LE(c.size(), in.size() + in.size() / 8 + 8);
}

TEST(Lzss, MatchAtWindowBoundary) {
  // Pattern repeats at exactly the window distance (4096).
  Bytes in;
  for (int i = 0; i < 4096; ++i) in.push_back(static_cast<std::uint8_t>(i % 251));
  for (int i = 0; i < 64; ++i) in.push_back(static_cast<std::uint8_t>(i % 251));
  EXPECT_EQ(decompress(BytesView{compress(BytesView{in})}), in);
}

TEST(Lzss, OverlappingMatchRuns) {
  // "abcabcabc..." forces overlapping copies (dist < len).
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "abc";
  const Bytes in = bytes_of(s);
  EXPECT_EQ(decompress(BytesView{compress(BytesView{in})}), in);
}

TEST(Lzss, CompressStringHelpers) {
  const std::string s = "hello hello hello hello";
  EXPECT_EQ(decompress_string(BytesView{compress_string(s)}), s);
}

TEST(Lzss, CorruptInputThrows) {
  const Bytes in = bytes_of("some test data some test data");
  Bytes c = compress(BytesView{in});
  // Truncate: decoder must hit a clean error, never UB.
  Bytes truncated(c.begin(), c.begin() + static_cast<long>(c.size()) / 2);
  EXPECT_THROW(decompress(BytesView{truncated}), CodecError);
}

TEST(Lzss, CorruptDistanceThrows) {
  // Hand-build: size=4, one match token with distance 100 at output pos 0.
  Bytes evil = {4, 0, 0, 0, /*flags=*/0x00, /*token lo*/ 0x30, /*token hi*/ 0x06};
  EXPECT_THROW(decompress(BytesView{evil}), CodecError);
}

TEST(Lzss, ChainEffortImprovesOrEqualsRatio) {
  std::string s;
  for (int i = 0; i < 2000; ++i) s += "<x a=\"" + std::to_string(i % 13) + "\"/>";
  const Bytes in = bytes_of(s);
  const Bytes weak = compress(BytesView{in}, CompressOptions{.max_chain = 1});
  const Bytes strong = compress(BytesView{in}, CompressOptions{.max_chain = 256});
  EXPECT_EQ(decompress(BytesView{weak}), in);
  EXPECT_EQ(decompress(BytesView{strong}), in);
  EXPECT_LE(strong.size(), weak.size());
}

// Property sweep: random structured buffers of varying size and alphabet
// round-trip exactly.
class LzssRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzssRoundTrip, RoundTrips) {
  const auto [size, alphabet] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 31 + static_cast<std::uint64_t>(alphabet));
  Bytes in(static_cast<std::size_t>(size));
  for (auto& b : in) {
    // Mix of runs and random bytes exercises both token kinds.
    if (rng.chance(0.3) && !in.empty()) {
      b = static_cast<std::uint8_t>('r');
    } else {
      b = static_cast<std::uint8_t>(rng.next_below(static_cast<std::uint64_t>(alphabet)));
    }
  }
  const Bytes c = compress(BytesView{in});
  EXPECT_EQ(decompress(BytesView{c}), in);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzssRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 17, 256, 4095, 4096, 4097, 20000),
                       ::testing::Values(2, 16, 250)));

}  // namespace
}  // namespace sbq::lz
