// Integration tests for the SOAP-bin / SOAP-binQ runtime: client stub +
// service runtime over loopback and simulated links, in all three wire
// formats, with and without quality management.
#include <gtest/gtest.h>

#include <thread>

#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/server.h"
#include "net/pipe.h"
#include "net/tcp.h"
#include "pbio/value_codec.h"
#include "qos/manager.h"
#include "soap/codec.h"
#include "soap/envelope.h"

namespace sbq::core {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

FormatPtr vec_format() {
  return FormatBuilder("vec")
      .add_scalar("scale", TypeKind::kFloat64)
      .add_var_array("values", TypeKind::kInt32)
      .build();
}

FormatPtr sum_format() {
  return FormatBuilder("sum")
      .add_scalar("total", TypeKind::kInt64)
      .add_scalar("count", TypeKind::kInt32)
      .build();
}

wsdl::ServiceDesc calc_service() {
  wsdl::ServiceDesc svc;
  svc.name = "Calc";
  svc.operations.push_back(wsdl::OperationDesc{"sum", vec_format(), sum_format()});
  return svc;
}

Value sum_handler_impl(const Value& params) {
  std::int64_t total = 0;
  std::int64_t count = 0;
  for (const Value& v : params.field("values").elements()) {
    total += v.as_i64();
    ++count;
  }
  total = static_cast<std::int64_t>(
      static_cast<double>(total) * params.field("scale").as_f64());
  return Value::record({{"total", total}, {"count", count}});
}

struct Endpoints {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SteadyTimeSource> clock =
      std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime{format_server, clock};
  LoopbackTransport transport{runtime};

  Endpoints() {
    runtime.register_operation("sum", vec_format(), sum_format(), sum_handler_impl);
  }

  ClientStub make_client(WireFormat wire) {
    return ClientStub(transport, wire, calc_service(), format_server, clock);
  }
};

Value sample_params() {
  return Value::record({{"scale", 2.0}, {"values", Value::array({1, 2, 3, 4})}});
}

class AllWireFormats : public ::testing::TestWithParam<WireFormat> {};

TEST_P(AllWireFormats, CallRoundTrips) {
  Endpoints env;
  ClientStub client = env.make_client(GetParam());
  const Value result = client.call("sum", sample_params());
  EXPECT_EQ(result.field("total").as_i64(), 20);
  EXPECT_EQ(result.field("count").as_i64(), 4);
  EXPECT_EQ(client.stats().calls, 1u);
  EXPECT_GT(client.stats().bytes_sent, 0u);
  EXPECT_GT(client.stats().bytes_received, 0u);
}

TEST_P(AllWireFormats, UnknownOperationRaisesRpcError) {
  Endpoints env;
  ClientStub client = env.make_client(GetParam());
  wsdl::ServiceDesc svc = calc_service();
  svc.operations.push_back(
      wsdl::OperationDesc{"missing", vec_format(), sum_format()});
  ClientStub bad(env.transport, GetParam(), svc, env.format_server, env.clock);
  EXPECT_THROW(bad.call("missing", sample_params()), RpcError);
}

TEST_P(AllWireFormats, HandlerExceptionRaisesRpcError) {
  Endpoints env;
  env.runtime.register_operation(
      "boom", vec_format(), sum_format(),
      [](const Value&) -> Value { throw std::runtime_error("kaput"); });
  wsdl::ServiceDesc svc = calc_service();
  svc.operations.push_back(wsdl::OperationDesc{"boom", vec_format(), sum_format()});
  ClientStub client(env.transport, GetParam(), svc, env.format_server, env.clock);
  try {
    client.call("boom", sample_params());
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("kaput"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(WireFormats, AllWireFormats,
                         ::testing::Values(WireFormat::kBinary, WireFormat::kXml,
                                           WireFormat::kCompressedXml),
                         [](const auto& info) {
                           switch (info.param) {
                             case WireFormat::kBinary: return "Binary";
                             case WireFormat::kXml: return "Xml";
                             case WireFormat::kCompressedXml: return "CompressedXml";
                           }
                           return "Unknown";
                         });

TEST(BinaryWire, SmallerThanXmlWire) {
  Endpoints env;
  Value big = Value::record({{"scale", 1.0}, {"values", Value::empty_array()}});
  {
    Value values = Value::empty_array();
    for (int i = 0; i < 5000; ++i) values.push_back(i * 3);
    big.set_field("values", std::move(values));
  }
  ClientStub bin_client = env.make_client(WireFormat::kBinary);
  ClientStub xml_client = env.make_client(WireFormat::kXml);
  bin_client.call("sum", big);
  xml_client.call("sum", big);
  EXPECT_LT(bin_client.stats().bytes_sent * 3, xml_client.stats().bytes_sent);
}

TEST(BinaryWire, CompressedXmlIsSmallerThanPlainXml) {
  Endpoints env;
  Value big = sample_params();
  {
    Value values = Value::empty_array();
    for (int i = 0; i < 5000; ++i) values.push_back(i % 100);
    big.set_field("values", std::move(values));
  }
  ClientStub xml_client = env.make_client(WireFormat::kXml);
  ClientStub lz_client = env.make_client(WireFormat::kCompressedXml);
  xml_client.call("sum", big);
  lz_client.call("sum", big);
  EXPECT_LT(lz_client.stats().bytes_sent * 2, xml_client.stats().bytes_sent);
}

TEST(XmlNativeServer, CompatibilityModeConversions) {
  Endpoints env;
  // An XML-native server operation: parses XML by hand, emits XML by hand.
  env.runtime.register_xml_operation(
      "sum", vec_format(), sum_format(), [](const std::string& params_xml) {
        // The legacy app sees genuine XML.
        EXPECT_NE(params_xml.find("<values>"), std::string::npos);
        const auto dom = xml::parse_document(params_xml);
        const Value params = soap::value_from_xml(*dom, *vec_format());
        const Value result = sum_handler_impl(params);
        return soap::value_to_xml(result, *sum_format(), "result");
      });
  ClientStub client = env.make_client(WireFormat::kBinary);
  const Value result = client.call("sum", sample_params());
  EXPECT_EQ(result.field("total").as_i64(), 20);
  EXPECT_GT(env.runtime.stats().convert_us, 0.0);
}

TEST(XmlNativeClient, CallXmlConvertsJustInTime) {
  Endpoints env;
  ClientStub client = env.make_client(WireFormat::kBinary);
  const std::string params_xml = soap::value_to_xml(sample_params(), *vec_format(),
                                                    "params");
  const std::string result_xml = client.call_xml("sum", params_xml);
  EXPECT_NE(result_xml.find("<total>20</total>"), std::string::npos);
  EXPECT_GT(client.stats().convert_us, 0.0);
}

TEST(FormatServerIntegration, SecondCallHitsCache) {
  Endpoints env;
  ClientStub client = env.make_client(WireFormat::kBinary);
  client.call("sum", sample_params());
  const auto lookups_after_first = env.format_server->stats().lookups;
  client.call("sum", sample_params());
  client.call("sum", sample_params());
  EXPECT_EQ(env.format_server->stats().lookups, lookups_after_first);
}

TEST(HttpIntegration, BinaryCallOverRealTcp) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("sum", vec_format(), sum_format(), sum_handler_impl);

  http::Server server(0, [&](const http::Request& req) { return runtime.handle(req); });
  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  HttpTransport transport(*stream);
  ClientStub client(transport, WireFormat::kBinary, calc_service(), format_server,
                    clock);

  for (int i = 0; i < 3; ++i) {
    const Value result = client.call("sum", sample_params());
    EXPECT_EQ(result.field("total").as_i64(), 20);
  }
  EXPECT_GT(client.last_rtt_us(), 0.0);
  stream->close();
  server.shutdown();
}

TEST(HttpIntegration, XmlCallOverPipeServer) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("sum", vec_format(), sum_format(), sum_handler_impl);

  auto [client_end, server_end] = net::make_pipe();
  std::thread server_thread([&runtime, s = std::move(server_end)]() mutable {
    http::serve_connection(*s, [&](const http::Request& req) {
      return runtime.handle(req);
    });
  });
  HttpTransport transport(*client_end);
  ClientStub client(transport, WireFormat::kXml, calc_service(), format_server, clock);
  const Value result = client.call("sum", sample_params());
  EXPECT_EQ(result.field("total").as_i64(), 20);
  client_end->close();
  server_thread.join();
}

TEST(WsdlAdvertisement, GetWithWsdlQueryReturnsDocument) {
  Endpoints env;
  const std::string wsdl = wsdl::generate_wsdl(calc_service());
  env.runtime.set_wsdl_document(wsdl);

  http::Request get;
  get.method = "GET";
  get.target = "/Calc?wsdl";
  const http::Response resp = env.runtime.handle(get);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body_string(), wsdl);
  // The served document compiles back to the same service.
  const wsdl::ServiceDesc parsed = wsdl::parse_wsdl(resp.body_string());
  EXPECT_EQ(parsed.required_operation("sum").input->format_id(),
            vec_format()->format_id());
}

TEST(WsdlAdvertisement, GetWithoutWsdlQueryIs404) {
  Endpoints env;
  env.runtime.set_wsdl_document("<definitions/>");
  http::Request get;
  get.method = "GET";
  get.target = "/Calc";
  EXPECT_EQ(env.runtime.handle(get).status, 404);
}

TEST(WsdlAdvertisement, GetWithoutPublishedDocumentIs404) {
  Endpoints env;
  http::Request get;
  get.method = "GET";
  get.target = "/Calc?wsdl";
  EXPECT_EQ(env.runtime.handle(get).status, 404);
}

TEST(FaultCodes, UnknownOperationIsClientFault) {
  Endpoints env;
  http::Request req;
  req.method = "POST";
  req.headers.set("Content-Type", std::string(kContentTypeXml));
  req.set_body(soap::build_request("nonexistent", sample_params(), *vec_format()));
  const http::Response resp = env.runtime.handle(req);
  EXPECT_EQ(resp.status, 500);
  const soap::Fault fault = soap::parse_fault(soap::parse_envelope(resp.body_string()));
  EXPECT_EQ(fault.code, "soap:Client");
}

TEST(FaultCodes, MalformedEnvelopeIsClientFault) {
  Endpoints env;
  http::Request req;
  req.method = "POST";
  req.headers.set("Content-Type", std::string(kContentTypeXml));
  req.set_body("<not a soap envelope");
  const http::Response resp = env.runtime.handle(req);
  const soap::Fault fault = soap::parse_fault(soap::parse_envelope(resp.body_string()));
  EXPECT_EQ(fault.code, "soap:Client");
}

TEST(FaultCodes, HandlerExceptionIsServerFault) {
  Endpoints env;
  env.runtime.register_operation(
      "explode", vec_format(), sum_format(),
      [](const Value&) -> Value { throw std::runtime_error("boom"); });
  http::Request req;
  req.method = "POST";
  req.headers.set("Content-Type", std::string(kContentTypeXml));
  req.set_body(soap::build_request("explode", sample_params(), *vec_format()));
  const http::Response resp = env.runtime.handle(req);
  const soap::Fault fault = soap::parse_fault(soap::parse_envelope(resp.body_string()));
  EXPECT_EQ(fault.code, "soap:Server");
  EXPECT_NE(fault.message.find("boom"), std::string::npos);
}

// ---------------------------------------------------------------- SOAP-binQ

FormatPtr payload_full_format() {
  return FormatBuilder("payload_full")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

FormatPtr payload_small_format() {
  return FormatBuilder("payload_small")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

// Thresholds sized for a 16 KB payload: clean ADSL moves it in ~160 ms
// (below the 250 ms boundary → full quality), 90% cross-traffic pushes the
// RTT to ~1.3 s (→ reduced quality).
constexpr const char* kPayloadPolicy =
    "attribute rtt_us\n"
    "0 250000 - payload_full\n"
    "250000 inf - payload_small\n";

constexpr std::size_t kPayloadBytes = 16000;

/// Quality handler: truncate the data blob to 1/8.
Value shrink_handler(const Value& full, const pbio::FormatDesc& target,
                     const qos::AttributeMap&) {
  const std::string& data = full.field("data").as_string();
  Value out = pbio::project_value(full, target);
  out.set_field("data", Value{data.substr(0, data.size() / 8)});
  return out;
}

struct QEndpoints {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  ServiceRuntime runtime{format_server, clock};
  std::shared_ptr<qos::QualityManager> server_quality;

  QEndpoints(int threshold = 1) {
    runtime.register_operation(
        "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
        payload_full_format(), [](const Value&) {
          return Value::record(
              {{"id", 7}, {"data", Value{std::string(kPayloadBytes, 'D')}}});
        });
    server_quality =
        std::make_shared<qos::QualityManager>(qos::QualityFile::parse(kPayloadPolicy),
                                              threshold);
    server_quality->register_message_type("payload_full", payload_full_format());
    server_quality->register_message_type("payload_small", payload_small_format(),
                                          shrink_handler);
    runtime.set_quality_manager(server_quality);
  }

  wsdl::ServiceDesc service() {
    wsdl::ServiceDesc svc;
    svc.name = "Payload";
    svc.operations.push_back(wsdl::OperationDesc{
        "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
        payload_full_format()});
    return svc;
  }
};

TEST(SoapBinQ, FullQualityOnFastLink) {
  QEndpoints env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::lan_100mbps()),
                             env.clock);
  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  client.set_quality_manager(std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse("0 inf - req\n"), 1));
  client.quality_manager()->register_message_type(
      "req", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build());

  const Value result = client.call("fetch", Value::record({{"n", 1}}));
  EXPECT_EQ(client.last_response_type(), "payload_full");
  EXPECT_EQ(result.field("data").as_string().size(), kPayloadBytes);
}

TEST(SoapBinQ, DegradesOnCongestedLink) {
  QEndpoints env;
  net::LinkModel link(net::adsl_1mbps());
  net::CrossTrafficSchedule schedule;
  schedule.add_phase(0, 60'000'000'000ull, 0.9);  // congested throughout
  link.set_cross_traffic(schedule);
  SimLinkTransport transport(env.runtime, link, env.clock);
  transport.set_charge_server_cpu(false);  // deterministic simulated time
  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);

  // The first call measures a huge RTT (16 KB at 10% of 1 Mbps is ~1.3 s);
  // the reported estimate drives the server to the small type afterwards.
  client.call("fetch", Value::record({{"n", 1}}));
  client.call("fetch", Value::record({{"n", 2}}));
  const Value result = client.call("fetch", Value::record({{"n", 3}}));
  EXPECT_EQ(client.last_response_type(), "payload_small");
  // Reduced data, padded semantics: the blob is 1/8 of full.
  EXPECT_EQ(result.field("data").as_string().size(), kPayloadBytes / 8);
}

TEST(SoapBinQ, RecoversWhenCongestionClears) {
  QEndpoints env;
  net::LinkModel link(net::adsl_1mbps());
  net::CrossTrafficSchedule schedule;
  schedule.add_phase(0, 2'000'000, 0.9);  // first 2 simulated seconds congested
  link.set_cross_traffic(schedule);
  SimLinkTransport transport(env.runtime, link, env.clock);
  transport.set_charge_server_cpu(false);

  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);

  bool saw_small = false;
  bool saw_full_after_small = false;
  for (int i = 0; i < 40; ++i) {
    client.call("fetch", Value::record({{"n", i}}));
    if (client.last_response_type() == "payload_small") saw_small = true;
    if (saw_small && client.last_response_type() == "payload_full") {
      saw_full_after_small = true;
    }
  }
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_full_after_small);
}

TEST(SoapBinQ, RttEstimateTracksSimulatedLink) {
  QEndpoints env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::lan_100mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  client.call("fetch", Value::record({{"n", 1}}));
  // 16 KB response over 100 Mbps ≈ 1.3 ms + latencies.
  EXPECT_GT(client.last_rtt_us(), 1000.0);
  EXPECT_LT(client.last_rtt_us(), 30000.0);
}

TEST(SoapBinQ, ClientSideRequestReduction) {
  // The client's own quality manager reduces the request parameters.
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SimClock>();
  ServiceRuntime runtime(format_server, clock);

  std::size_t seen_data_size = 999;
  runtime.register_operation(
      "push", payload_full_format(),
      FormatBuilder("ack").add_scalar("ok", TypeKind::kInt32).build(),
      [&](const Value& params) {
        seen_data_size = params.field("data").as_string().size();
        return Value::record({{"ok", 1}});
      });

  LoopbackTransport transport(runtime);
  wsdl::ServiceDesc svc;
  svc.name = "Push";
  svc.operations.push_back(wsdl::OperationDesc{
      "push", payload_full_format(),
      FormatBuilder("ack").add_scalar("ok", TypeKind::kInt32).build()});
  ClientStub client(transport, WireFormat::kBinary, svc, format_server, clock);

  auto qm = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse(kPayloadPolicy), 1);
  qm->register_message_type("payload_full", payload_full_format());
  qm->register_message_type("payload_small", payload_small_format(), shrink_handler);
  client.set_quality_manager(qm);
  client.set_request_quality_enabled(true);

  qm->update_attribute("rtt_us", 500000.0);  // pretend the link is terrible
  client.call("push",
              Value::record({{"id", 1}, {"data", Value{std::string(64000, 'U')}}}));
  // Server saw the reduced request, zero-padded onto the full type.
  EXPECT_EQ(seen_data_size, 8000u);
}

TEST(SimTransportTest, TimingAccounting) {
  QEndpoints env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  client.call("fetch", Value::record({{"n", 1}}));
  EXPECT_EQ(transport.timing().round_trips, 1u);
  EXPECT_GT(transport.timing().response_transfer_us,
            transport.timing().request_transfer_us);
  EXPECT_EQ(env.clock->now_us(), transport.timing().request_transfer_us +
                                     transport.timing().response_transfer_us);
}

}  // namespace
}  // namespace sbq::core
