// Numeric and structural edge cases across all codecs: extreme integer
// values, special floats, empty containers, boundary string content, and
// limit conditions the main suites don't isolate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pbio/encode.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "soap/envelope.h"
#include "xml/dom.h"

namespace sbq {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

FormatPtr extremes_format() {
  return FormatBuilder("extremes")
      .add_scalar("i32", TypeKind::kInt32)
      .add_scalar("i64", TypeKind::kInt64)
      .add_scalar("u32", TypeKind::kUInt32)
      .add_scalar("u64", TypeKind::kUInt64)
      .add_scalar("f32", TypeKind::kFloat32)
      .add_scalar("f64", TypeKind::kFloat64)
      .build();
}

Value extremes_value() {
  return Value::record(
      {{"i32", static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::min())},
       {"i64", std::numeric_limits<std::int64_t>::min()},
       {"u32", static_cast<std::uint64_t>(std::numeric_limits<std::uint32_t>::max())},
       {"u64", std::numeric_limits<std::uint64_t>::max()},
       {"f32", static_cast<double>(std::numeric_limits<float>::denorm_min())},
       {"f64", std::numeric_limits<double>::max()}});
}

TEST(Extremes, BinaryRoundTrip) {
  const Bytes wire = pbio::encode_value_message(extremes_value(), *extremes_format());
  EXPECT_EQ(pbio::decode_value_message(BytesView{wire}, *extremes_format()),
            extremes_value());
}

TEST(Extremes, BinaryRoundTripForeignOrder) {
  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Bytes wire =
      pbio::encode_value_message(extremes_value(), *extremes_format(), foreign);
  EXPECT_EQ(pbio::decode_value_message(BytesView{wire}, *extremes_format()),
            extremes_value());
}

TEST(Extremes, XmlRoundTrip) {
  const std::string xml =
      soap::value_to_xml(extremes_value(), *extremes_format(), "e");
  const auto dom = xml::parse_document(xml);
  EXPECT_EQ(soap::value_from_xml(*dom, *extremes_format()), extremes_value());
}

TEST(Extremes, InfinityThroughXml) {
  auto fmt = FormatBuilder("f").add_scalar("v", TypeKind::kFloat64).build();
  const Value v = Value::record({{"v", std::numeric_limits<double>::infinity()}});
  const std::string xml = soap::value_to_xml(v, *fmt, "f");
  const auto dom = xml::parse_document(xml);
  EXPECT_TRUE(std::isinf(soap::value_from_xml(*dom, *fmt).field("v").as_f64()));
}

TEST(Extremes, NegativeZeroSurvivesBinary) {
  auto fmt = FormatBuilder("f").add_scalar("v", TypeKind::kFloat64).build();
  const Value v = Value::record({{"v", -0.0}});
  const Bytes wire = pbio::encode_value_message(v, *fmt);
  const double back =
      pbio::decode_value_message(BytesView{wire}, *fmt).field("v").as_f64();
  EXPECT_TRUE(std::signbit(back));
}

TEST(EdgeStrings, EmbeddedAndBoundaryContent) {
  auto fmt = FormatBuilder("s").add_string("text").build();
  for (const std::string& content :
       {std::string{}, std::string("   leading and trailing   "),
        std::string("line\nbreaks\tand\ttabs"),
        std::string("<>&\"' all the XML specials"),
        std::string(70000, 'L')}) {
    const Value v = Value::record({{"text", content}});
    // Binary.
    const Bytes wire = pbio::encode_value_message(v, *fmt);
    EXPECT_EQ(pbio::decode_value_message(BytesView{wire}, *fmt), v);
    // XML (whitespace in strings must be preserved verbatim).
    const auto dom = xml::parse_document(soap::value_to_xml(v, *fmt, "s"));
    EXPECT_EQ(soap::value_from_xml(*dom, *fmt).field("text").as_string(), content);
  }
}

TEST(EdgeStrings, NulBytesSurviveBinaryWire) {
  auto fmt = FormatBuilder("s").add_string("text").build();
  const std::string with_nul("a\0b", 3);
  const Value v = Value::record({{"text", with_nul}});
  const Bytes wire = pbio::encode_value_message(v, *fmt);
  EXPECT_EQ(pbio::decode_value_message(BytesView{wire}, *fmt)
                .field("text")
                .as_string()
                .size(),
            3u);
}

TEST(EdgeContainers, EmptyEverything) {
  auto fmt = FormatBuilder("empties")
                 .add_string("s")
                 .add_var_array("ints", TypeKind::kInt32)
                 .add_var_array("blob", TypeKind::kChar)
                 .build();
  const Value v = Value::record(
      {{"s", std::string{}}, {"ints", Value::empty_array()}, {"blob", std::string{}}});
  const Bytes wire = pbio::encode_value_message(v, *fmt);
  EXPECT_EQ(pbio::decode_value_message(BytesView{wire}, *fmt), v);
  const auto dom = xml::parse_document(soap::value_to_xml(v, *fmt, "e"));
  EXPECT_EQ(soap::value_from_xml(*dom, *fmt), v);
}

TEST(EdgeContainers, SingleFieldSingleByte) {
  auto fmt = FormatBuilder("one").add_scalar("c", TypeKind::kChar).build();
  const Value v = Value::record({{"c", 'Z'}});
  const Bytes wire = pbio::encode_value_message(v, *fmt);
  EXPECT_EQ(wire.size(), pbio::WireHeader::kSize + 1);
  EXPECT_EQ(pbio::decode_value_message(BytesView{wire}, *fmt), v);
}

TEST(EdgeContainers, LargeVarArray) {
  auto fmt = FormatBuilder("big").add_var_array("v", TypeKind::kFloat64).build();
  Value array = Value::empty_array();
  for (int i = 0; i < 200000; ++i) array.push_back(i * 0.5);
  const Value v = Value::record({{"v", std::move(array)}});
  const Bytes wire = pbio::encode_value_message(v, *fmt);
  EXPECT_EQ(wire.size(), pbio::WireHeader::kSize + 4 + 200000u * 8);
  const Value back = pbio::decode_value_message(BytesView{wire}, *fmt);
  EXPECT_EQ(back.field("v").array_size(), 200000u);
  EXPECT_DOUBLE_EQ(back.field("v").at(199999).as_f64(), 199999 * 0.5);
}

TEST(EdgeEnvelope, OperationNamesWithNamespacePrefixes) {
  auto fmt = FormatBuilder("p").add_scalar("v", TypeKind::kInt32).build();
  // A peer may qualify the operation element; local-name matching must win.
  const std::string xml =
      "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" "
      "xmlns:m=\"urn:x\"><soap:Body><m:doIt><v>5</v></m:doIt></soap:Body>"
      "</soap:Envelope>";
  const soap::ParsedEnvelope env = soap::parse_envelope(xml);
  EXPECT_EQ(env.operation(), "doIt");
  EXPECT_EQ(soap::decode_body(env, *fmt).field("v").as_i64(), 5);
}

TEST(EdgeEnvelope, UnsignedAboveInt64MaxThroughXml) {
  auto fmt = FormatBuilder("u").add_scalar("v", TypeKind::kUInt64).build();
  const Value v = Value::record({{"v", std::uint64_t{0xFFFFFFFFFFFFFFFFull}}});
  const auto dom = xml::parse_document(soap::value_to_xml(v, *fmt, "u"));
  EXPECT_EQ(soap::value_from_xml(*dom, *fmt).field("v").as_u64(),
            0xFFFFFFFFFFFFFFFFull);
}

TEST(EdgeProjection, ProjectionOfNonRecordYieldsZeros) {
  auto fmt = FormatBuilder("z").add_scalar("v", TypeKind::kInt32).build();
  const Value projected = pbio::project_value(Value{42}, *fmt);
  EXPECT_EQ(projected.field("v").as_i64(), 0);
}

}  // namespace
}  // namespace sbq
