// Tests for the paper's future-work extensions implemented in this repo:
// runtime policy redefinition, runtime handler installation (handler
// repository), attribute monitors, quality management on the XML wire, the
// UDDI-style service repository, and concurrent runtime access.
#include <gtest/gtest.h>

#include <thread>

#include "core/client.h"
#include "core/quality_compiler.h"
#include "core/registry_host.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/server.h"
#include "net/tcp.h"
#include "pbio/value_codec.h"
#include "qos/handler_repository.h"
#include "qos/monitors.h"
#include "wsdl/repository.h"

namespace sbq {
namespace {

using core::ClientStub;
using core::LoopbackTransport;
using core::ServiceRuntime;
using core::WireFormat;
using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

// ---------------------------------------------------------------- policy swap

TEST(RuntimeRedefinition, ReplacePolicySwitchesRulesAndAttribute) {
  qos::QualityManager qm(qos::QualityFile::parse("0 inf - big\n"), 1);
  qm.register_message_type(
      "big", FormatBuilder("big").add_scalar("v", TypeKind::kInt32).build());
  qm.register_message_type(
      "small", FormatBuilder("small").add_scalar("v", TypeKind::kInt32).build());
  qm.update_attribute("rtt_us", 1e9);
  EXPECT_EQ(qm.select().name, "big");

  // Re-define at runtime: now monitor CPU cost, pick small when loaded.
  qm.replace_policy(qos::QualityFile::parse("attribute marshal_cost_us\n"
                                            "0 100 - big\n100 inf - small\n"),
                    1);
  EXPECT_EQ(qm.attribute_name(), "marshal_cost_us");
  qm.update_attribute("marshal_cost_us", 50.0);
  EXPECT_EQ(qm.select().name, "big");
  qm.update_attribute("marshal_cost_us", 500.0);
  EXPECT_EQ(qm.select().name, "small");
}

TEST(RuntimeRedefinition, ReplacePolicyResetsHistory) {
  qos::QualityManager qm(qos::QualityFile::parse("0 10 - a\n10 inf - b\n"), 3);
  qm.register_message_type(
      "a", FormatBuilder("a").add_scalar("v", TypeKind::kInt32).build());
  qm.register_message_type(
      "b", FormatBuilder("b").add_scalar("v", TypeKind::kInt32).build());
  qm.update_attribute("rtt_us", 5.0);
  (void)qm.select();
  qm.update_attribute("rtt_us", 50.0);
  (void)qm.select();  // 1 of 3 toward switching

  qm.replace_policy(qos::QualityFile::parse("0 10 - a\n10 inf - b\n"), 3);
  // Fresh history: the first selection establishes the active type directly.
  EXPECT_EQ(qm.select().name, "b");
}

TEST(RuntimeRedefinition, InstallHandlerSwapsAtRuntime) {
  qos::QualityManager qm(qos::QualityFile::parse("0 inf - t\n"), 1);
  auto fmt = FormatBuilder("t").add_scalar("v", TypeKind::kInt32).build();
  qm.register_message_type("t", fmt);

  const Value full = Value::record({{"v", 21}});
  EXPECT_EQ(qm.apply(full, qm.required_type("t")).field("v").as_i64(), 21);

  qm.install_handler("t", [](const Value& v, const pbio::FormatDesc&,
                             const qos::AttributeMap&) {
    return Value::record({{"v", v.field("v").as_i64() * 2}});
  });
  EXPECT_EQ(qm.apply(full, qm.required_type("t")).field("v").as_i64(), 42);
  EXPECT_THROW(qm.install_handler("ghost", nullptr), QosError);
}

// ---------------------------------------------------------------- repository of handlers

TEST(HandlerRepo, BuiltinsPresent) {
  qos::HandlerRepository repo;
  EXPECT_TRUE(repo.contains("project"));
  EXPECT_TRUE(repo.contains("truncate"));
  EXPECT_TRUE(repo.contains("stride"));
  EXPECT_FALSE(repo.contains("jit"));
  EXPECT_EQ(repo.names().size(), 3u);
}

FormatPtr samples_format() {
  return FormatBuilder("samples_msg")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("samples", TypeKind::kInt32)
      .build();
}

Value samples_value(int n) {
  Value samples = Value::empty_array();
  for (int i = 0; i < n; ++i) samples.push_back(i);
  return Value::record({{"id", 1}, {"samples", std::move(samples)}});
}

TEST(HandlerRepo, ProjectSpec) {
  qos::HandlerRepository repo;
  auto handler = repo.instantiate("project");
  const Value out = handler(samples_value(8), *samples_format(), {});
  EXPECT_EQ(out.field("samples").array_size(), 8u);
}

TEST(HandlerRepo, TruncateArray) {
  qos::HandlerRepository repo;
  auto handler = repo.instantiate("truncate:samples:4");
  const Value out = handler(samples_value(16), *samples_format(), {});
  ASSERT_EQ(out.field("samples").array_size(), 4u);
  EXPECT_EQ(out.field("samples").at(3).as_i64(), 3);
}

TEST(HandlerRepo, TruncateBulkString) {
  auto blob = FormatBuilder("blob").add_var_array("data", TypeKind::kChar).build();
  qos::HandlerRepository repo;
  auto handler = repo.instantiate("truncate:data:2");
  const Value out = handler(Value::record({{"data", std::string(10, 'x')}}), *blob, {});
  EXPECT_EQ(out.field("data").as_string().size(), 5u);
}

TEST(HandlerRepo, StrideDownsamples) {
  qos::HandlerRepository repo;
  auto handler = repo.instantiate("stride:samples:3");
  const Value out = handler(samples_value(10), *samples_format(), {});
  ASSERT_EQ(out.field("samples").array_size(), 4u);  // 0,3,6,9
  EXPECT_EQ(out.field("samples").at(2).as_i64(), 6);
}

TEST(HandlerRepo, CustomFactoryAndErrors) {
  qos::HandlerRepository repo;
  repo.register_factory("zero", [](const std::vector<std::string>&) {
    return [](const Value&, const pbio::FormatDesc& target,
              const qos::AttributeMap&) { return pbio::zero_value(target); };
  });
  auto handler = repo.instantiate("zero");
  EXPECT_EQ(handler(samples_value(5), *samples_format(), {}).field("id").as_i64(), 0);

  EXPECT_THROW(repo.instantiate("unknown"), QosError);
  EXPECT_THROW(repo.instantiate("truncate"), QosError);          // missing args
  EXPECT_THROW(repo.instantiate("truncate:samples:0"), QosError);  // zero divisor
  EXPECT_THROW(repo.instantiate("truncate:samples:x"), ParseError);
  EXPECT_THROW(repo.instantiate("project:extra"), QosError);
  EXPECT_THROW(repo.register_factory("bad", nullptr), QosError);
}

TEST(HandlerRepo, MissingFieldDiagnosed) {
  qos::HandlerRepository repo;
  auto handler = repo.instantiate("truncate:ghost:2");
  EXPECT_THROW(handler(samples_value(4), *samples_format(), {}), QosError);
}

// ---------------------------------------------------------------- monitors

TEST(Monitors, CallableMonitorFeedsManager) {
  qos::QualityManager qm(qos::QualityFile::parse("0 inf - t\n"), 1);
  qos::MonitorSet monitors;
  double load = 0.25;
  monitors.add(std::make_unique<qos::CallableMonitor>("cpu_load",
                                                      [&] { return load; }));
  monitors.poll(qm);
  EXPECT_DOUBLE_EQ(qm.attribute("cpu_load"), 0.25);
  load = 0.75;
  monitors.poll(qm);
  EXPECT_DOUBLE_EQ(qm.attribute("cpu_load"), 0.75);
}

TEST(Monitors, MarshalCostMonitorTracksPerCallCost) {
  core::EndpointStats stats;
  qos::MarshalCostMonitor monitor([&] { return stats; }, /*alpha=*/0.0);

  EXPECT_DOUBLE_EQ(monitor.sample(), 0.0);  // no calls yet
  stats.calls = 2;
  stats.marshal_us = 60.0;
  stats.unmarshal_us = 40.0;
  EXPECT_DOUBLE_EQ(monitor.sample(), 50.0);  // (60+40)/2 per call

  stats.calls = 3;
  stats.marshal_us = 160.0;  // one expensive call: +100 µs marshal
  EXPECT_DOUBLE_EQ(monitor.sample(), 100.0);
}

TEST(Monitors, NullRejected) {
  qos::MonitorSet monitors;
  EXPECT_THROW(monitors.add(nullptr), QosError);
  EXPECT_THROW(qos::MarshalCostMonitor(nullptr), QosError);
}

// ---------------------------------------------------------------- XML-wire quality

FormatPtr xf_full() {
  return FormatBuilder("xfull")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}
FormatPtr xf_small() {
  return FormatBuilder("xsmall")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

std::shared_ptr<qos::QualityManager> xml_quality(int threshold = 1) {
  auto qm = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse("0 100000 - xfull\n100000 inf - xsmall\n"), threshold);
  qm->register_message_type("xfull", xf_full());
  qm->register_message_type(
      "xsmall", xf_small(),
      [](const Value& full, const pbio::FormatDesc& target, const qos::AttributeMap&) {
        Value out = pbio::project_value(full, target);
        out.set_field("data",
                      Value{full.field("data").as_string().substr(0, 4)});
        return out;
      });
  return qm;
}

struct XmlQualityFixture {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  ServiceRuntime runtime{format_server, clock};
  LoopbackTransport transport{runtime};
  std::shared_ptr<qos::QualityManager> server_quality = xml_quality();
  std::vector<std::unique_ptr<ClientStub>> clients;

  XmlQualityFixture() {
    runtime.register_operation(
        "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
        xf_full(), [](const Value&) {
          return Value::record({{"id", 9}, {"data", std::string(64, 'Z')}});
        });
    runtime.set_quality_manager(server_quality);
  }

  std::unique_ptr<ClientStub> make_client() {
    wsdl::ServiceDesc svc;
    svc.name = "XmlQ";
    svc.operations.push_back(wsdl::OperationDesc{
        "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
        xf_full()});
    auto client = std::make_unique<ClientStub>(transport, WireFormat::kXml, svc,
                                               format_server, clock);
    client->set_quality_manager(xml_quality());
    return client;
  }
};

TEST(XmlWireQuality, FullQualityByDefault) {
  XmlQualityFixture fx;
  ClientStub& client = *fx.clients.emplace_back(fx.make_client());
  const Value result = client.call("fetch", Value::record({{"n", 1}}));
  EXPECT_EQ(client.last_response_type(), "xfull");
  EXPECT_EQ(result.field("data").as_string().size(), 64u);
}

TEST(XmlWireQuality, ServerReducesOnReportedRtt) {
  XmlQualityFixture fx;
  ClientStub& client = *fx.clients.emplace_back(fx.make_client());
  // Pretend the client observed terrible RTT; it reports it via header.
  client.quality_manager()->observe_rtt(500000.0);
  const Value result = client.call("fetch", Value::record({{"n", 1}}));
  EXPECT_EQ(client.last_response_type(), "xsmall");
  // Reduced payload, zero-padded semantics preserved by projection.
  EXPECT_EQ(result.field("data").as_string().size(), 4u);
  EXPECT_EQ(result.field("id").as_i64(), 9);
}

TEST(XmlWireQuality, ReducedResponseWithoutClientManagerIsAnError) {
  XmlQualityFixture fx;
  wsdl::ServiceDesc svc;
  svc.name = "XmlQ";
  svc.operations.push_back(wsdl::OperationDesc{
      "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
      xf_full()});
  ClientStub bare(fx.transport, WireFormat::kXml, svc, fx.format_server, fx.clock);
  // Force the server into the reduced type.
  fx.server_quality->update_attribute("rtt_us", 500000.0);
  EXPECT_THROW(bare.call("fetch", Value::record({{"n", 1}})), RpcError);
}

TEST(XmlWireQuality, RttMeasuredOnXmlWire) {
  XmlQualityFixture fx;
  // Advance the sim clock inside the handler to fake a slow exchange: the
  // loopback transport has no link model, so inject time via the clock.
  fx.runtime.register_operation(
      "slow", FormatBuilder("req2").add_scalar("n", TypeKind::kInt32).build(),
      xf_full(), [&](const Value&) {
        fx.clock->advance_us(2500);
        return Value::record({{"id", 1}, {"data", std::string("abcd")}});
      });
  wsdl::ServiceDesc svc;
  svc.name = "XmlQ";
  svc.operations.push_back(wsdl::OperationDesc{
      "slow", FormatBuilder("req2").add_scalar("n", TypeKind::kInt32).build(),
      xf_full()});
  ClientStub slow_client(fx.transport, WireFormat::kXml, svc, fx.format_server,
                         fx.clock);
  (void)slow_client.call("slow", Value::record({{"n", 1}}));
  // The 2.5 ms the handler spent on the sim clock is bounded above by the
  // measured round trip; the real prep time (microseconds) is subtracted,
  // so the sample never exceeds the injected delay.
  EXPECT_LE(slow_client.last_rtt_us(), 2500.0);
  EXPECT_GE(slow_client.last_rtt_us(), 0.0);
}

// ---------------------------------------------------------------- service repository

constexpr const char* kThermoWsdl = R"(<definitions name="Thermo">
  <types><schema>
    <complexType name="treq"><sequence>
      <element name="n" type="int"/>
    </sequence></complexType>
    <complexType name="tresp"><sequence>
      <element name="celsius" type="double" maxOccurs="unbounded"/>
    </sequence></complexType>
  </schema></types>
  <message name="in"><part name="p" type="treq"/></message>
  <message name="out"><part name="p" type="tresp"/></message>
  <portType name="P"><operation name="read">
    <input message="in"/><output message="out"/>
  </operation></portType>
</definitions>)";

constexpr const char* kThermoQuality =
    "attribute rtt_us\n0 1000 - tresp\n1000 inf - tresp_small\n";

TEST(Repository, PublishLookupList) {
  wsdl::ServiceRepository repo;
  EXPECT_EQ(repo.size(), 0u);
  repo.publish("Thermo", kThermoWsdl, kThermoQuality);
  repo.publish("Bare", kThermoWsdl);
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.list(), (std::vector<std::string>{"Bare", "Thermo"}));

  const auto found = repo.lookup("Thermo");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->quality_text, kThermoQuality);
  EXPECT_FALSE(repo.lookup("Ghost").has_value());
}

TEST(Repository, ValidatesOnPublish) {
  wsdl::ServiceRepository repo;
  EXPECT_THROW(repo.publish("", kThermoWsdl), ParseError);
  EXPECT_THROW(repo.publish("Bad", "<notwsdl/>"), ParseError);
  EXPECT_THROW(repo.publish("BadQ", kThermoWsdl, "10 5 - inverted\n"), QosError);
  EXPECT_EQ(repo.size(), 0u);
}

TEST(Repository, RepublishReplaces) {
  wsdl::ServiceRepository repo;
  repo.publish("T", kThermoWsdl, "");
  repo.publish("T", kThermoWsdl, kThermoQuality);
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_EQ(repo.lookup("T")->quality_text, kThermoQuality);
}

TEST(Repository, CompilePublished) {
  const wsdl::Discovery d = wsdl::compile_published(
      wsdl::PublishedService{"Thermo", kThermoWsdl, kThermoQuality});
  EXPECT_EQ(d.service.required_operation("read").output->canonical(),
            "tresp{celsius:f64[]}");
  ASSERT_TRUE(d.quality.has_value());
  EXPECT_EQ(d.quality->select(5000.0), "tresp_small");
}

TEST(Repository, EndToEndDiscoveryOverSoap) {
  // Full bootstrap: host registry + target service; a client that only
  // knows the registry discovers the service (WSDL + quality file) and
  // then calls it.
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();

  ServiceRuntime registry_runtime(format_server, clock);
  auto repo = std::make_shared<wsdl::ServiceRepository>();
  core::host_repository(registry_runtime, repo);
  LoopbackTransport registry_transport(registry_runtime);
  ClientStub registry_client(registry_transport, WireFormat::kBinary,
                             wsdl::registry_service_desc(), format_server, clock);

  // The service owner publishes through SOAP.
  core::publish_service(registry_client, "Thermo", kThermoWsdl, kThermoQuality);
  EXPECT_EQ(core::list_services(registry_client),
            (std::vector<std::string>{"Thermo"}));

  // The service itself runs somewhere.
  const wsdl::ServiceDesc thermo = wsdl::parse_wsdl(kThermoWsdl);
  ServiceRuntime thermo_runtime(format_server, clock);
  thermo_runtime.register_operation(
      "read", thermo.required_operation("read").input,
      thermo.required_operation("read").output, [](const Value& params) {
        Value celsius = Value::empty_array();
        for (std::int64_t i = 0; i < params.field("n").as_i64(); ++i) {
          celsius.push_back(20.0 + static_cast<double>(i));
        }
        return Value::record({{"celsius", std::move(celsius)}});
      });
  LoopbackTransport thermo_transport(thermo_runtime);

  // A stranger discovers and calls it.
  const wsdl::Discovery discovered =
      core::discover_service(registry_client, "Thermo");
  ASSERT_TRUE(discovered.quality.has_value());
  ClientStub thermo_client(thermo_transport, WireFormat::kBinary,
                           discovered.service, format_server, clock);
  const Value reading = thermo_client.call("read", Value::record({{"n", 3}}));
  EXPECT_EQ(reading.field("celsius").array_size(), 3u);
  EXPECT_DOUBLE_EQ(reading.field("celsius").at(2).as_f64(), 22.0);

  EXPECT_THROW(core::discover_service(registry_client, "Ghost"), RpcError);
}

// ---------------------------------------------------------------- quality compiler

constexpr const char* kGridWsdl = R"(<definitions name="Grid">
  <types><schema>
    <complexType name="grid_req"><sequence>
      <element name="n" type="int"/>
    </sequence></complexType>
    <complexType name="grid_full"><sequence>
      <element name="id" type="int"/>
      <element name="samples" type="int" maxOccurs="unbounded"/>
    </sequence></complexType>
    <complexType name="grid_small"><sequence>
      <element name="id" type="int"/>
      <element name="samples" type="int" maxOccurs="unbounded"/>
    </sequence></complexType>
  </schema></types>
  <message name="in"><part name="p" type="grid_req"/></message>
  <message name="out"><part name="p" type="grid_full"/></message>
  <portType name="P"><operation name="sample">
    <input message="in"/><output message="out"/>
  </operation></portType>
</definitions>)";

TEST(QualityCompiler, WiresTypesFromWsdl) {
  const wsdl::ServiceDesc service = wsdl::parse_wsdl(kGridWsdl);
  const qos::QualityFile file = qos::QualityFile::parse(
      "0 1000 - grid_full\n1000 inf - grid_small\n");
  qos::HandlerRepository handlers;
  core::QualityCompileOptions options;
  options.handler_specs["grid_small"] = "truncate:samples:2";
  options.handlers = &handlers;
  options.switch_threshold = 1;

  auto qm = core::compile_quality(file, service, options);
  ASSERT_NE(qm->find_type("grid_full"), nullptr);
  ASSERT_NE(qm->find_type("grid_small"), nullptr);
  EXPECT_EQ(qm->find_type("grid_full")->format->format_id(),
            service.type("grid_full")->format_id());

  // The spec'd handler is live.
  qm->update_attribute("rtt_us", 5000.0);
  const Value full = Value::record(
      {{"id", 1}, {"samples", Value::array({1, 2, 3, 4, 5, 6})}});
  const Value reduced = qm->apply(full, qm->select());
  EXPECT_EQ(reduced.field("samples").array_size(), 3u);
}

TEST(QualityCompiler, DiagnosesConfigurationErrors) {
  const wsdl::ServiceDesc service = wsdl::parse_wsdl(kGridWsdl);
  // Rule names a type the WSDL lacks.
  EXPECT_THROW(core::compile_quality(
                   qos::QualityFile::parse("0 inf - ghost_type\n"), service),
               QosError);
  // Spec without a repository.
  {
    core::QualityCompileOptions options;
    options.handler_specs["grid_full"] = "project";
    EXPECT_THROW(core::compile_quality(
                     qos::QualityFile::parse("0 inf - grid_full\n"), service,
                     options),
                 QosError);
  }
  // Spec for a type the policy never selects.
  {
    qos::HandlerRepository handlers;
    core::QualityCompileOptions options;
    options.handlers = &handlers;
    options.handler_specs["grid_small"] = "project";
    EXPECT_THROW(core::compile_quality(
                     qos::QualityFile::parse("0 inf - grid_full\n"), service,
                     options),
                 QosError);
  }
}

// ---------------------------------------------------------------- per-client quality

TEST(PerClientQuality, ClientsAdaptIndependently) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation(
      "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
      xf_full(), [](const Value&) {
        return Value::record({{"id", 1}, {"data", std::string(64, 'P')}});
      });
  // One fresh quality manager per distinct client id.
  runtime.set_quality_factory([] { return xml_quality(1); });

  LoopbackTransport transport(runtime);
  wsdl::ServiceDesc svc;
  svc.name = "PQ";
  svc.operations.push_back(wsdl::OperationDesc{
      "fetch", FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build(),
      xf_full()});

  ClientStub fast(transport, WireFormat::kBinary, svc, format_server, clock);
  fast.set_quality_manager(xml_quality(1));
  ClientStub slow(transport, WireFormat::kBinary, svc, format_server, clock);
  slow.set_quality_manager(xml_quality(1));
  ASSERT_NE(fast.client_id(), slow.client_id());

  // The slow client reports terrible RTT; the fast one stays quiet.
  slow.quality_manager()->observe_rtt(900000.0);
  fast.quality_manager()->observe_rtt(50.0);

  (void)slow.call("fetch", Value::record({{"n", 1}}));
  (void)fast.call("fetch", Value::record({{"n", 1}}));
  EXPECT_EQ(slow.last_response_type(), "xsmall");
  EXPECT_EQ(fast.last_response_type(), "xfull");

  // Each keeps its own state across further calls.
  (void)slow.call("fetch", Value::record({{"n", 2}}));
  EXPECT_EQ(slow.last_response_type(), "xsmall");
  EXPECT_EQ(runtime.client_quality_count(), 2u);
}

TEST(PerClientQuality, SharedManagerWithoutFactory) {
  XmlQualityFixture fx;  // global manager only
  ClientStub& a = *fx.clients.emplace_back(fx.make_client());
  ClientStub& b = *fx.clients.emplace_back(fx.make_client());
  // Client a reports congestion; with one SHARED manager, b is affected too.
  a.quality_manager()->observe_rtt(500000.0);
  (void)a.call("fetch", Value::record({{"n", 1}}));
  (void)b.call("fetch", Value::record({{"n", 1}}));
  EXPECT_EQ(a.last_response_type(), "xsmall");
  EXPECT_EQ(b.last_response_type(), "xsmall");
  EXPECT_EQ(fx.runtime.client_quality_count(), 0u);
}

// ---------------------------------------------------------------- concurrency

TEST(Concurrency, ParallelClientsOverTcpKeepStatsConsistent) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime(format_server, clock);
  auto echo_format =
      FormatBuilder("msg").add_scalar("v", TypeKind::kInt32).build();
  runtime.register_operation("echo", echo_format, echo_format,
                             [](const Value& v) { return v; });

  http::Server server(0, [&](const http::Request& r) { return runtime.handle(r); });

  constexpr int kThreads = 6;
  constexpr int kCallsPerThread = 25;
  wsdl::ServiceDesc svc;
  svc.name = "Echo";
  svc.operations.push_back(wsdl::OperationDesc{"echo", echo_format, echo_format});

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      try {
        auto stream = net::TcpStream::connect("127.0.0.1", server.port());
        core::HttpTransport transport(*stream);
        ClientStub client(transport, WireFormat::kBinary, svc, format_server, clock);
        for (int i = 0; i < kCallsPerThread; ++i) {
          const Value result = client.call("echo", Value::record({{"v", t * 1000 + i}}));
          if (result.field("v").as_i64() != t * 1000 + i) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(runtime.stats().calls,
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
}

}  // namespace
}  // namespace sbq
