// Robustness tests: scripted fault scenarios over live streams and the
// simulated link, deadline expiry, idempotent-only retries, server hard
// limits, and the QoS loop's reaction to faults (degrade under sustained
// failures, recover on clean traffic). See docs/robustness.md.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/parser.h"
#include "http/server.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/pipe.h"
#include "net/sim_clock.h"
#include "pbio/value_codec.h"
#include "qos/manager.h"
#include "qos/quality_file.h"
#include "wsdl/wsdl.h"

namespace sbq::core {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjectorTest, ScriptedFaultsFireAtTheirOpIndex) {
  net::FaultInjector inj(1);
  net::FaultSpec partial;
  partial.kind = net::FaultKind::kPartialRead;  // kNextOp: next read
  inj.schedule(partial);
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;
  reset.at_op = 3;
  inj.schedule(reset);

  // op 0 is a write: the partial-read spec does not apply, nothing fires.
  EXPECT_FALSE(inj.next_fault(/*is_read=*/false, /*is_write=*/true).has_value());
  // op 1 is a read: the FIFO partial-read spec fires.
  auto f1 = inj.next_fault(/*is_read=*/true, /*is_write=*/false);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->kind, net::FaultKind::kPartialRead);
  // op 2: nothing scheduled.
  EXPECT_FALSE(inj.next_fault(true, false).has_value());
  // op 3: the exact-index reset.
  auto f3 = inj.next_fault(true, false);
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->kind, net::FaultKind::kReset);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_EQ(inj.stats().faults_injected, 2u);
  EXPECT_EQ(inj.op_count(), 4u);
}

TEST(FaultInjectorTest, SeededProbabilisticFaultsAreReproducible) {
  net::FaultInjector a(42);
  net::FaultInjector b(42);
  a.set_partial_read_probability(0.3);
  b.set_partial_read_probability(0.3);
  a.set_corrupt_probability(0.2);
  b.set_corrupt_probability(0.2);
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.next_fault(true, false);
    const auto fb = b.next_fault(true, false);
    ASSERT_EQ(fa.has_value(), fb.has_value());
    if (fa) {
      EXPECT_EQ(fa->kind, fb->kind);
      EXPECT_EQ(fa->offset, fb->offset);
      EXPECT_EQ(fa->xor_mask, fb->xor_mask);
    }
  }
  EXPECT_EQ(a.stats().partial_reads, b.stats().partial_reads);
  EXPECT_EQ(a.stats().corruptions, b.stats().corruptions);
  EXPECT_GT(a.stats().faults_injected, 0u);
}

// ------------------------------------------------------------- FaultyStream

TEST(FaultyStreamTest, PartialReadsStillDeliverEveryByte) {
  auto [writer, reader] = net::make_pipe();
  auto inj = std::make_shared<net::FaultInjector>(7);
  inj->set_partial_read_probability(1.0);  // every read is short
  net::FaultyStream faulty(*reader, inj);

  Bytes sent(1000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i * 13);
  }
  writer->write_all(BytesView{sent});

  Bytes got(sent.size());
  faulty.read_exact(got.data(), got.size());
  EXPECT_EQ(got, sent);
  EXPECT_GT(inj->stats().partial_reads, 1u);
}

TEST(FaultyStreamTest, InjectedResetThrowsAndKillsTheStream) {
  auto [writer, reader] = net::make_pipe();
  auto inj = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;
  inj->schedule(reset);
  net::FaultyStream faulty(*reader, inj);

  writer->write_all(std::string_view("hello"));
  std::uint8_t buf[8];
  EXPECT_THROW(faulty.read_some(buf, sizeof buf), TransportError);
  // Dead for good: later reads see EOF, writes fail.
  EXPECT_EQ(faulty.read_some(buf, sizeof buf), 0u);
  EXPECT_THROW(faulty.write_all(buf, sizeof buf), TransportError);
  EXPECT_EQ(inj->stats().resets, 1u);
}

TEST(FaultyStreamTest, InjectedTruncateLooksLikeMidMessageEof) {
  auto [writer, reader] = net::make_pipe();
  auto inj = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec cut;
  cut.kind = net::FaultKind::kTruncate;
  inj->schedule(cut);
  net::FaultyStream faulty(*reader, inj);

  writer->write_all(std::string_view("data that will never arrive"));
  std::uint8_t buf[16];
  EXPECT_EQ(faulty.read_some(buf, sizeof buf), 0u);  // EOF despite queued bytes
  try {
    faulty.read_exact(buf, sizeof buf);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    // Satellite contract: the EOF error names how much was already read.
    EXPECT_NE(std::string(e.what()).find("got only 0"), std::string::npos);
  }
}

TEST(FaultyStreamTest, ShortWriteSendsPrefixThenFails) {
  auto [writer, reader] = net::make_pipe();
  auto inj = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec cut;
  cut.kind = net::FaultKind::kShortWrite;
  cut.offset = 4;
  inj->schedule(cut);
  net::FaultyStream faulty(*writer, inj);

  try {
    faulty.write_all(std::string_view("0123456789"));
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("4 of 10"), std::string::npos);
  }
  std::uint8_t buf[4];
  reader->read_exact(buf, sizeof buf);  // the prefix did go out
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "0123");
}

TEST(FaultyStreamTest, CorruptionFlipsExactlyTheScriptedByte) {
  auto [writer, reader] = net::make_pipe();
  auto inj = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec corrupt;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.offset = 3;
  corrupt.xor_mask = 0x01;
  inj->schedule(corrupt);
  net::FaultyStream faulty(*reader, inj);

  writer->write_all(std::string_view("abcdefgh"));
  std::uint8_t buf[8];
  faulty.read_exact(buf, sizeof buf);
  EXPECT_EQ(buf[3], static_cast<std::uint8_t>('d' ^ 0x01));
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(buf[7], 'h');
}

// ---------------------------------------------------------- read deadlines

TEST(ReadDeadlineTest, PipeReadTimesOutWhenNoBytesArrive) {
  auto [writer, reader] = net::make_pipe();
  reader->set_read_timeout_us(20'000);
  std::uint8_t buf[4];
  EXPECT_THROW(reader->read_some(buf, sizeof buf), TimeoutError);
  // A TimeoutError is still a TransportError for callers that only
  // distinguish "connection usable" from "connection dead".
  writer->write_all(std::string_view("late"));
  EXPECT_EQ(reader->read_some(buf, sizeof buf), 4u);
}

TEST(ReadDeadlineTest, EofMessageCountsBytesAlreadyRead) {
  auto [writer, reader] = net::make_pipe();
  writer->write_all(std::string_view("0123456789"));
  writer->close();
  std::uint8_t buf[20];
  try {
    reader->read_exact(buf, sizeof buf);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wanted 20"), std::string::npos);
    EXPECT_NE(what.find("got only 10"), std::string::npos);
  }
}

TEST(ReadDeadlineTest, StallBeyondDeadlineSurfacesAsTimeout) {
  auto [writer, reader] = net::make_pipe();
  auto inj = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec stall;
  stall.kind = net::FaultKind::kStall;
  stall.stall_us = 60'000'000;  // a minute of dead air
  inj->schedule(stall);
  net::FaultyStream faulty(*reader, inj);
  faulty.set_read_timeout_us(10'000);
  std::uint64_t stalled_us = 0;
  faulty.set_stall_handler([&](std::uint64_t us) { stalled_us += us; });

  writer->write_all(std::string_view("x"));
  std::uint8_t buf[1];
  EXPECT_THROW(faulty.read_some(buf, 1), TimeoutError);
  // Only the deadline's worth of time passes, not the full stall.
  EXPECT_EQ(stalled_us, 10'000u);
}

// ------------------------------------------------------- server hard limits

http::Response trivial_ok(const http::Request&) {
  http::Response r;
  r.set_body("ok");
  return r;
}

/// Writes `wire` as a client, serves the connection, returns the response.
http::Response exchange_raw(const std::string& wire) {
  auto [client_end, server_end] = net::make_pipe();
  std::thread server([end = server_end.get()] {
    http::serve_connection(*end, trivial_ok);
  });
  client_end->write_all(std::string_view(wire));
  http::MessageReader reader(*client_end);
  const auto response = reader.read_response();
  client_end->close();
  server.join();
  EXPECT_TRUE(response.has_value());
  return response.value_or(http::Response{});
}

TEST(ServerLimitsTest, TooManyHeaderFieldsIsRejectedWith400) {
  std::string wire = "POST / HTTP/1.1\r\n";
  for (int i = 0; i < 150; ++i) {
    wire += "X-Filler-" + std::to_string(i) + ": v\r\n";
  }
  wire += "Content-Length: 0\r\n\r\n";
  EXPECT_EQ(exchange_raw(wire).status, 400);
}

TEST(ServerLimitsTest, OversizedHeaderBlockIsRejectedWith400) {
  std::string wire = "POST / HTTP/1.1\r\nX-Huge: ";
  wire += std::string(70 * 1024, 'h');  // > 64 KiB default cap
  wire += "\r\nContent-Length: 0\r\n\r\n";
  EXPECT_EQ(exchange_raw(wire).status, 400);
}

TEST(ServerLimitsTest, AbsurdContentLengthIsRejectedBeforeAllocation) {
  // 1 TB body claim: must bounce off the limit, not attempt the allocation.
  const std::string wire =
      "POST / HTTP/1.1\r\nContent-Length: 1099511627776\r\n\r\n";
  EXPECT_EQ(exchange_raw(wire).status, 400);
}

TEST(ServerLimitsTest, GarbageRequestGets400AndConnectionSurvivesServerSide) {
  EXPECT_EQ(exchange_raw("complete nonsense\r\n\r\n").status, 400);
}

TEST(ServerLimitsTest, HandlerExceptionBecomes500NotConnectionLoss) {
  auto [client_end, server_end] = net::make_pipe();
  std::thread server([end = server_end.get()] {
    http::serve_connection(*end, [](const http::Request&) -> http::Response {
      throw std::runtime_error("handler exploded");
    });
  });
  http::Request req;
  req.set_body("x");
  client_end->write_all(BytesView{req.serialize()});
  http::MessageReader reader(*client_end);
  const auto response = reader.read_response();
  client_end->close();
  server.join();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 500);
}

// -------------------------------------------------- service + retry fixtures

FormatPtr req_format() {
  return FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build();
}

FormatPtr image_full_format() {
  return FormatBuilder("image_full")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

FormatPtr image_small_format() {
  return FormatBuilder("image_small")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

constexpr std::size_t kImageBytes = 16000;

// Same shape as the paper's imaging experiment: clean ADSL moves the 16 KB
// payload in ~160 ms (full quality); fault penalties push the estimate far
// past 250 ms (reduced quality).
constexpr const char* kImagePolicy =
    "attribute rtt_us\n"
    "0 250000 - image_full\n"
    "250000 inf - image_small\n";

Value shrink_image(const Value& full, const pbio::FormatDesc& target,
                   const qos::AttributeMap&) {
  const std::string& data = full.field("data").as_string();
  Value out = pbio::project_value(full, target);
  out.set_field("data", Value{data.substr(0, data.size() / 8)});
  return out;
}

/// Imaging service behind a quality manager, on a shared simulated clock.
struct ImagingFixture {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  ServiceRuntime runtime{format_server, clock};
  std::shared_ptr<qos::QualityManager> server_quality;

  ImagingFixture() {
    runtime.register_operation("fetch_image", req_format(), image_full_format(),
                               [](const Value&) {
                                 return Value::record(
                                     {{"id", 7},
                                      {"data", Value{std::string(kImageBytes, 'D')}}});
                               });
    server_quality = std::make_shared<qos::QualityManager>(
        qos::QualityFile::parse(kImagePolicy), /*switch_threshold=*/1);
    server_quality->register_message_type("image_full", image_full_format());
    server_quality->register_message_type("image_small", image_small_format(),
                                          shrink_image);
    runtime.set_quality_manager(server_quality);
  }

  /// The client's service view; fetch_image is WSDL-declared idempotent
  /// unless a test says otherwise.
  wsdl::ServiceDesc service(bool idempotent = true) {
    wsdl::ServiceDesc svc;
    svc.name = "Imaging";
    wsdl::OperationDesc op;
    op.name = "fetch_image";
    op.input = req_format();
    op.output = image_full_format();
    op.idempotent = idempotent;
    svc.operations.push_back(std::move(op));
    return svc;
  }
};

// ------------------------------------------------ retries on the sim link

TEST(SimRetryTest, IdempotentCallRetriesThroughAReset) {
  ImagingFixture env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  auto faults = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;
  reset.at_op = 0;
  faults->schedule(reset);
  transport.set_fault_injector(faults);

  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  CallOptions opts;
  opts.deadline_us = 2'000'000;
  opts.retry.max_attempts = 3;

  const Value result = client.call("fetch_image", Value::record({{"n", 1}}), opts);
  EXPECT_EQ(result.field("id").as_i64(), 7);
  EXPECT_EQ(client.stats().calls, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().faults_injected, 1u);
  // On the sim link a reset is a silently lost exchange: it surfaces as the
  // read deadline expiring, so it counts as a timeout too.
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_EQ(faults->stats().resets, 1u);
}

TEST(SimRetryTest, NonIdempotentCallIsNeverRetried) {
  ImagingFixture env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  auto faults = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;
  reset.at_op = 0;
  faults->schedule(reset);
  transport.set_fault_injector(faults);

  ClientStub client(transport, WireFormat::kBinary,
                    env.service(/*idempotent=*/false), env.format_server,
                    env.clock);
  CallOptions opts;
  opts.deadline_us = 2'000'000;
  opts.retry.max_attempts = 5;  // policy allows it; the WSDL forbids it

  EXPECT_THROW(client.call("fetch_image", Value::record({{"n", 1}}), opts),
               TimeoutError);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().timeouts, 1u);
}

TEST(SimRetryTest, CorruptedResponseRetriesOnlyWhenPolicyAllows) {
  net::FaultSpec corrupt;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.at_op = 0;
  corrupt.offset = 0;  // smash the envelope header: guaranteed CodecError

  {
    ImagingFixture env;
    SimLinkTransport transport(env.runtime, net::LinkModel(net::lan_100mbps()),
                               env.clock);
    transport.set_charge_server_cpu(false);
    auto faults = std::make_shared<net::FaultInjector>(1);
    faults->schedule(corrupt);
    transport.set_fault_injector(faults);
    ClientStub client(transport, WireFormat::kBinary, env.service(),
                      env.format_server, env.clock);
    CallOptions opts;
    opts.retry.max_attempts = 2;
    opts.retry.retry_codec_errors = true;
    const Value result =
        client.call("fetch_image", Value::record({{"n", 1}}), opts);
    EXPECT_EQ(result.field("id").as_i64(), 7);
    EXPECT_EQ(client.stats().retries, 1u);
  }
  {
    ImagingFixture env;
    SimLinkTransport transport(env.runtime, net::LinkModel(net::lan_100mbps()),
                               env.clock);
    transport.set_charge_server_cpu(false);
    auto faults = std::make_shared<net::FaultInjector>(1);
    faults->schedule(corrupt);
    transport.set_fault_injector(faults);
    ClientStub client(transport, WireFormat::kBinary, env.service(),
                      env.format_server, env.clock);
    CallOptions opts;
    opts.retry.max_attempts = 2;  // codec retries stay off by default
    EXPECT_THROW(client.call("fetch_image", Value::record({{"n", 1}}), opts),
                 CodecError);
    EXPECT_EQ(client.stats().retries, 0u);
  }
}

TEST(SimRetryTest, StallShorterThanDeadlineJustDelaysTheCall) {
  ImagingFixture env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  auto faults = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec stall;
  stall.kind = net::FaultKind::kStall;
  stall.at_op = 0;
  stall.stall_us = 500'000;
  faults->schedule(stall);
  transport.set_fault_injector(faults);

  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  CallOptions opts;
  opts.deadline_us = 2'000'000;

  const std::uint64_t t0 = env.clock->now_us();
  const Value result = client.call("fetch_image", Value::record({{"n", 1}}), opts);
  EXPECT_EQ(result.field("data").as_string().size(), kImageBytes);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().timeouts, 0u);
  EXPECT_GE(env.clock->now_us() - t0, 500'000u);  // the stall was charged
  EXPECT_LT(env.clock->now_us() - t0, 2'000'000u);
}

TEST(SimRetryTest, StallBeyondDeadlineExpiresExactlyAtTheDeadline) {
  ImagingFixture env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  auto faults = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec stall;
  stall.kind = net::FaultKind::kStall;
  stall.at_op = 0;
  stall.stall_us = 60'000'000;
  faults->schedule(stall);
  transport.set_fault_injector(faults);

  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  CallOptions opts;
  opts.deadline_us = 2'000'000;

  const std::uint64_t t0 = env.clock->now_us();
  EXPECT_THROW(client.call("fetch_image", Value::record({{"n", 1}}), opts),
               TimeoutError);
  // The virtual clock stops at the deadline, not at the end of the stall.
  EXPECT_EQ(env.clock->now_us() - t0, 2'000'000u);
}

// --------------------------------------------- the paper's fault scenario

// Acceptance scenario from the robustness issue: an imaging round trip on
// the ADSL sim link survives two connection resets and a stall, records
// retries, degrades the QoS message type while the link is misbehaving, and
// recovers full quality on clean traffic afterwards.
TEST(FaultScenarioTest, ImagingCallSurvivesResetsAndStallWithQosDegradation) {
  ImagingFixture env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  auto faults = std::make_shared<net::FaultInjector>(42);
  // Round trips are injector ops: op 0 is the clean baseline call; the
  // faulted call's three attempts land on ops 1 (reset), 2 (reset),
  // 3 (stall, then the exchange completes).
  net::FaultSpec reset1;
  reset1.kind = net::FaultKind::kReset;
  reset1.at_op = 1;
  net::FaultSpec reset2;
  reset2.kind = net::FaultKind::kReset;
  reset2.at_op = 2;
  net::FaultSpec stall;
  stall.kind = net::FaultKind::kStall;
  stall.at_op = 3;
  stall.stall_us = 500'000;
  faults->schedule(reset1);
  faults->schedule(reset2);
  faults->schedule(stall);
  transport.set_fault_injector(faults);

  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  CallOptions opts;
  opts.deadline_us = 2'000'000;
  opts.retry.max_attempts = 5;
  client.set_default_call_options(opts);

  // Baseline: clean ADSL, full-quality imaging payload.
  const Value baseline = client.call("fetch_image", Value::record({{"n", 0}}));
  EXPECT_EQ(client.last_response_type(), "image_full");
  const std::string full_payload = baseline.field("data").as_string();
  EXPECT_EQ(full_payload, std::string(kImageBytes, 'D'));

  // The faulted call: two resets (each burning a full deadline), one stall,
  // then success. Each failed attempt feeds a loss-like penalty into the
  // RTT estimate, so the attempt that finally completes reports a huge RTT
  // and the server degrades the response type.
  const Value degraded = client.call("fetch_image", Value::record({{"n", 1}}));
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().faults_injected, 2u);
  EXPECT_EQ(client.stats().timeouts, 2u);
  EXPECT_EQ(client.last_response_type(), "image_small");
  EXPECT_GE(client.stats().degradations, 1u);
  // The degraded payload is the correct reduced imaging result.
  EXPECT_EQ(degraded.field("id").as_i64(), 7);
  EXPECT_EQ(degraded.field("data").as_string(),
            std::string(kImageBytes / 8, 'D'));
  EXPECT_TRUE(faults->exhausted());

  // Recovery: clean calls decay the estimate below the switch boundary and
  // the server returns to the full type; the payload is byte-identical to
  // the pre-fault baseline.
  bool recovered = false;
  for (int i = 0; i < 40 && !recovered; ++i) {
    const Value r = client.call("fetch_image", Value::record({{"n", 2 + i}}));
    if (client.last_response_type() == "image_full") {
      recovered = true;
      EXPECT_EQ(r.field("data").as_string(), full_payload);
      EXPECT_EQ(r.field("id").as_i64(), baseline.field("id").as_i64());
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(client.stats().recoveries, 1u);
}

// With retries disabled the same scenario must fail fast: a TimeoutError
// no later than the deadline plus 10% slack.
TEST(FaultScenarioTest, SameScenarioWithoutRetriesTimesOutWithinSlack) {
  ImagingFixture env;
  SimLinkTransport transport(env.runtime, net::LinkModel(net::adsl_1mbps()),
                             env.clock);
  transport.set_charge_server_cpu(false);
  auto faults = std::make_shared<net::FaultInjector>(42);
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;
  reset.at_op = 1;  // op 0 is the baseline call, as above
  faults->schedule(reset);
  transport.set_fault_injector(faults);

  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);
  CallOptions opts;
  opts.deadline_us = 2'000'000;
  opts.retry.max_attempts = 1;  // retries disabled

  client.call("fetch_image", Value::record({{"n", 0}}));  // clean baseline

  const std::uint64_t t0 = env.clock->now_us();
  EXPECT_THROW(client.call("fetch_image", Value::record({{"n", 1}}), opts),
               TimeoutError);
  const std::uint64_t elapsed = env.clock->now_us() - t0;
  EXPECT_GE(elapsed, opts.deadline_us);
  EXPECT_LE(elapsed, opts.deadline_us + opts.deadline_us / 10);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().timeouts, 1u);
}

// ------------------------------------------------- retries over live HTTP

Value echo_handler(const Value& params) {
  return Value::record({{"n", params.field("n").as_i64()}});
}

wsdl::ServiceDesc echo_service() {
  wsdl::ServiceDesc svc;
  svc.name = "Echo";
  wsdl::OperationDesc op;
  op.name = "echo";
  op.input = req_format();
  op.output = req_format();
  op.idempotent = true;
  svc.operations.push_back(std::move(op));
  return svc;
}

TEST(HttpRetryTest, ReconnectGivesTheRetryAFreshConnection) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("echo", req_format(), req_format(), echo_handler);

  auto faults = std::make_shared<net::FaultInjector>(1);
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;  // kNextOp: kills the first write
  faults->schedule(reset);

  std::vector<std::unique_ptr<net::PipeStream>> client_ends;
  std::vector<std::unique_ptr<net::PipeStream>> server_ends;
  std::vector<std::thread> servers;
  {
    // Every (re)connect builds a fresh pipe pair with its own server thread;
    // the injector scenario spans the reconnect.
    HttpTransport transport([&]() -> std::unique_ptr<net::Stream> {
      auto [client_end, server_end] = net::make_pipe();
      servers.emplace_back([&runtime, end = server_end.get()] {
        http::serve_connection(*end, [&runtime](const http::Request& r) {
          return runtime.handle(r);
        });
      });
      server_ends.push_back(std::move(server_end));
      client_ends.push_back(std::move(client_end));
      return std::make_unique<net::FaultyStream>(*client_ends.back(), faults);
    });

    ClientStub client(transport, WireFormat::kBinary, echo_service(),
                      format_server, clock);
    CallOptions opts;
    opts.retry.max_attempts = 3;
    opts.retry.initial_backoff_us = 1'000;

    const Value result = client.call("echo", Value::record({{"n", 41}}), opts);
    EXPECT_EQ(result.field("n").as_i64(), 41);
    EXPECT_EQ(client.stats().retries, 1u);
    EXPECT_EQ(client.stats().faults_injected, 1u);
    EXPECT_EQ(faults->stats().resets, 1u);
    EXPECT_EQ(client_ends.size(), 2u);  // original connection + reconnect
  }
  for (auto& end : client_ends) end->close();
  for (auto& t : servers) t.join();
}

TEST(HttpRetryTest, UnresponsiveServerHitsTheStreamReadDeadline) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();

  auto [client_end, server_end] = net::make_pipe();
  // Nobody serves server_end: the request goes out, no response ever comes.
  HttpTransport transport(*client_end);
  ClientStub client(transport, WireFormat::kBinary, echo_service(),
                    format_server, clock);
  CallOptions opts;
  opts.deadline_us = 20'000;

  EXPECT_THROW(client.call("echo", Value::record({{"n", 1}}), opts),
               TimeoutError);
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_EQ(client.stats().faults_injected, 1u);
}

// --------------------------------------------------- QoS fault coupling

TEST(QosFaultCouplingTest, ObserveFaultInflatesTheRttEstimate) {
  qos::QualityManager qm(qos::QualityFile::parse(kImagePolicy),
                         /*switch_threshold=*/1);
  qm.register_message_type("image_full", image_full_format());
  qm.register_message_type("image_small", image_small_format(), shrink_image);

  qm.observe_rtt(100'000.0);
  EXPECT_EQ(qm.select().name, "image_full");

  // One fault with a 2 s deadline: penalty sample = 2 × deadline.
  qm.observe_fault(2'000'000.0);
  EXPECT_EQ(qm.fault_count(), 1u);
  EXPECT_NEAR(qm.rtt().value_us(), 0.875 * 100'000.0 + 0.125 * 4'000'000.0,
              1.0);
  // The inflated estimate crosses the 250 ms boundary: degraded selection.
  EXPECT_EQ(qm.select().name, "image_small");

  // Clean samples pull it back under the boundary (hysteresis threshold 1).
  for (int i = 0; i < 30; ++i) qm.observe_rtt(100'000.0);
  EXPECT_EQ(qm.select().name, "image_full");
}

}  // namespace
}  // namespace sbq::core
