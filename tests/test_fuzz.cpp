// Fuzz-smoke tests: every parser in the stack is fed random bytes and
// random mutations of valid inputs. The contract is uniform — parse
// successfully or throw an sbq::Error subclass; never crash, never hang,
// never return partially-initialized garbage that trips later code.
//
// (These are deterministic seeded sweeps, not coverage-guided fuzzing; they
// exist to keep the "malformed input ⇒ clean exception" property locked in.)
#include <gtest/gtest.h>

#include "common/base64.h"
#include "common/rng.h"
#include "compress/lzss.h"
#include "core/message.h"
#include "http/parser.h"
#include "net/pipe.h"
#include "pbio/value_codec.h"
#include "qos/quality_file.h"
#include "soap/envelope.h"
#include "wsdl/wsdl.h"
#include "xml/dom.h"

namespace sbq {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

/// Applies `count` random byte-level mutations (overwrite, insert, delete).
std::string mutate(Rng& rng, std::string input, int count) {
  for (int i = 0; i < count && !input.empty(); ++i) {
    const std::size_t pos = rng.next_below(input.size());
    switch (rng.next_below(3)) {
      case 0:
        input[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:
        input.insert(pos, 1, static_cast<char>(rng.next_below(256)));
        break;
      default:
        input.erase(pos, 1);
        break;
    }
  }
  return input;
}

class FuzzSeeds : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17};
};

TEST_P(FuzzSeeds, XmlParserSurvivesRandomBytes) {
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = random_bytes(rng_, 300);
    try {
      (void)xml::parse_document(to_string(BytesView{junk}));
    } catch (const Error&) {
      // expected for nearly every input
    }
  }
}

TEST_P(FuzzSeeds, XmlParserSurvivesMutatedDocuments) {
  const std::string valid =
      "<?xml version=\"1.0\"?><env a=\"1\"><body><x>12</x>"
      "<!-- c --><![CDATA[raw]]><y z='2'/>&amp;</body></env>";
  for (int i = 0; i < 60; ++i) {
    const std::string doc = mutate(rng_, valid, 1 + static_cast<int>(rng_.next_below(6)));
    try {
      (void)xml::parse_document(doc);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, SoapEnvelopeSurvivesMutation) {
  const std::string valid = soap::build_fault("soap:Server", "x");
  for (int i = 0; i < 40; ++i) {
    try {
      const auto env = soap::parse_envelope(mutate(rng_, valid, 3));
      (void)env.operation();
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, WsdlParserSurvivesMutation) {
  const std::string valid = R"(<definitions name="S">
    <types><schema><complexType name="t"><sequence>
      <element name="a" type="int"/><element name="b" type="string"/>
    </sequence></complexType></schema></types>
    <message name="io"><part name="p" type="t"/></message>
    <portType name="P"><operation name="op">
      <input message="io"/><output message="io"/>
    </operation></portType></definitions>)";
  for (int i = 0; i < 30; ++i) {
    try {
      (void)wsdl::parse_wsdl(mutate(rng_, valid, 4));
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, HttpParserSurvivesRandomBytes) {
  for (int i = 0; i < 25; ++i) {
    auto [a, b] = net::make_pipe();
    Bytes junk = random_bytes(rng_, 400);
    a->write_all(BytesView{junk});
    a->close();
    http::MessageReader reader(*b);
    try {
      while (reader.read_request()) {
      }
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, HttpParserSurvivesMutatedRequests) {
  http::Request valid;
  valid.method = "POST";
  valid.target = "/svc";
  valid.headers.set("Content-Type", "text/xml");
  valid.set_body("<e/>");
  const std::string wire = to_string(BytesView{valid.serialize()});
  for (int i = 0; i < 40; ++i) {
    auto [a, b] = net::make_pipe();
    a->write_all(mutate(rng_, wire, 1 + static_cast<int>(rng_.next_below(4))));
    a->close();
    http::MessageReader reader(*b);
    try {
      while (reader.read_request()) {
      }
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, PbioDecoderSurvivesRandomAndMutatedMessages) {
  const auto format = pbio::FormatBuilder("fz")
                          .add_scalar("a", pbio::TypeKind::kInt32)
                          .add_string("s")
                          .add_var_array("v", pbio::TypeKind::kFloat64)
                          .build();
  const pbio::Value v = pbio::Value::record(
      {{"a", 1}, {"s", "text"}, {"v", pbio::Value::array({1.0, 2.0})}});
  const Bytes valid = pbio::encode_value_message(v, *format);

  for (int i = 0; i < 60; ++i) {
    Bytes wire = valid;
    const int mutations = 1 + static_cast<int>(rng_.next_below(5));
    for (int m = 0; m < mutations && !wire.empty(); ++m) {
      wire[rng_.next_below(wire.size())] =
          static_cast<std::uint8_t>(rng_.next_below(256));
    }
    try {
      (void)pbio::decode_value_message(BytesView{wire}, *format);
    } catch (const Error&) {
    }
  }
  for (int i = 0; i < 30; ++i) {
    const Bytes junk = random_bytes(rng_, 200);
    try {
      (void)pbio::decode_value_message(BytesView{junk}, *format);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, FormatDeserializerSurvivesRandomBytes) {
  for (int i = 0; i < 40; ++i) {
    const Bytes junk = random_bytes(rng_, 160);
    try {
      (void)pbio::deserialize_format(BytesView{junk});
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, BinEnvelopeSurvivesRandomBytes) {
  for (int i = 0; i < 40; ++i) {
    const Bytes junk = random_bytes(rng_, 120);
    try {
      (void)core::decode_bin_message(BytesView{junk});
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, LzssDecoderSurvivesRandomBytes) {
  for (int i = 0; i < 60; ++i) {
    const Bytes junk = random_bytes(rng_, 300);
    try {
      (void)lz::decompress(BytesView{junk});
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, Base64SurvivesRandomText) {
  for (int i = 0; i < 60; ++i) {
    const Bytes junk = random_bytes(rng_, 100);
    try {
      (void)base64_decode(to_string(BytesView{junk}));
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, QualityFileSurvivesRandomLines) {
  static constexpr const char* tokens[] = {"0",   "100", "inf", "-",  "type_a",
                                           "#x",  "1e9", "-5",  "\t", "attribute"};
  for (int i = 0; i < 60; ++i) {
    std::string text;
    const int lines = static_cast<int>(rng_.next_below(5));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng_.next_below(6));
      for (int w = 0; w < words; ++w) {
        text += tokens[rng_.next_below(std::size(tokens))];
        text += ' ';
      }
      text += '\n';
    }
    try {
      (void)qos::QualityFile::parse(text);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(1, 9));

}  // namespace
}  // namespace sbq
