// Fuzz-smoke tests: every parser in the stack is fed random bytes and
// random mutations of valid inputs. The contract is uniform — parse
// successfully or throw an sbq::Error subclass; never crash, never hang,
// never return partially-initialized garbage that trips later code.
//
// (These are deterministic seeded sweeps, not coverage-guided fuzzing; they
// exist to keep the "malformed input ⇒ clean exception" property locked in.)
#include <gtest/gtest.h>

#include "common/base64.h"
#include "common/rng.h"
#include "compress/lzss.h"
#include "core/message.h"
#include "http/parser.h"
#include "net/pipe.h"
#include "pbio/value_codec.h"
#include "qos/quality_file.h"
#include "soap/envelope.h"
#include "wsdl/wsdl.h"
#include "xml/dom.h"

namespace sbq {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

/// Applies `count` random byte-level mutations (overwrite, insert, delete).
std::string mutate(Rng& rng, std::string input, int count) {
  for (int i = 0; i < count && !input.empty(); ++i) {
    const std::size_t pos = rng.next_below(input.size());
    switch (rng.next_below(3)) {
      case 0:
        input[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:
        input.insert(pos, 1, static_cast<char>(rng.next_below(256)));
        break;
      default:
        input.erase(pos, 1);
        break;
    }
  }
  return input;
}

class FuzzSeeds : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17};
};

TEST_P(FuzzSeeds, XmlParserSurvivesRandomBytes) {
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = random_bytes(rng_, 300);
    try {
      (void)xml::parse_document(to_string(BytesView{junk}));
    } catch (const Error&) {
      // expected for nearly every input
    }
  }
}

TEST_P(FuzzSeeds, XmlParserSurvivesMutatedDocuments) {
  const std::string valid =
      "<?xml version=\"1.0\"?><env a=\"1\"><body><x>12</x>"
      "<!-- c --><![CDATA[raw]]><y z='2'/>&amp;</body></env>";
  for (int i = 0; i < 60; ++i) {
    const std::string doc = mutate(rng_, valid, 1 + static_cast<int>(rng_.next_below(6)));
    try {
      (void)xml::parse_document(doc);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, SoapEnvelopeSurvivesMutation) {
  const std::string valid = soap::build_fault("soap:Server", "x");
  for (int i = 0; i < 40; ++i) {
    try {
      const auto env = soap::parse_envelope(mutate(rng_, valid, 3));
      (void)env.operation();
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, WsdlParserSurvivesMutation) {
  const std::string valid = R"(<definitions name="S">
    <types><schema><complexType name="t"><sequence>
      <element name="a" type="int"/><element name="b" type="string"/>
    </sequence></complexType></schema></types>
    <message name="io"><part name="p" type="t"/></message>
    <portType name="P"><operation name="op">
      <input message="io"/><output message="io"/>
    </operation></portType></definitions>)";
  for (int i = 0; i < 30; ++i) {
    try {
      (void)wsdl::parse_wsdl(mutate(rng_, valid, 4));
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, HttpParserSurvivesRandomBytes) {
  for (int i = 0; i < 25; ++i) {
    auto [a, b] = net::make_pipe();
    Bytes junk = random_bytes(rng_, 400);
    a->write_all(BytesView{junk});
    a->close();
    http::MessageReader reader(*b);
    try {
      while (reader.read_request()) {
      }
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, HttpParserSurvivesMutatedRequests) {
  http::Request valid;
  valid.method = "POST";
  valid.target = "/svc";
  valid.headers.set("Content-Type", "text/xml");
  valid.set_body("<e/>");
  const std::string wire = to_string(BytesView{valid.serialize()});
  for (int i = 0; i < 40; ++i) {
    auto [a, b] = net::make_pipe();
    a->write_all(mutate(rng_, wire, 1 + static_cast<int>(rng_.next_below(4))));
    a->close();
    http::MessageReader reader(*b);
    try {
      while (reader.read_request()) {
      }
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, PbioDecoderSurvivesRandomAndMutatedMessages) {
  const auto format = pbio::FormatBuilder("fz")
                          .add_scalar("a", pbio::TypeKind::kInt32)
                          .add_string("s")
                          .add_var_array("v", pbio::TypeKind::kFloat64)
                          .build();
  const pbio::Value v = pbio::Value::record(
      {{"a", 1}, {"s", "text"}, {"v", pbio::Value::array({1.0, 2.0})}});
  const Bytes valid = pbio::encode_value_message(v, *format);

  for (int i = 0; i < 60; ++i) {
    Bytes wire = valid;
    const int mutations = 1 + static_cast<int>(rng_.next_below(5));
    for (int m = 0; m < mutations && !wire.empty(); ++m) {
      wire[rng_.next_below(wire.size())] =
          static_cast<std::uint8_t>(rng_.next_below(256));
    }
    try {
      (void)pbio::decode_value_message(BytesView{wire}, *format);
    } catch (const Error&) {
    }
  }
  for (int i = 0; i < 30; ++i) {
    const Bytes junk = random_bytes(rng_, 200);
    try {
      (void)pbio::decode_value_message(BytesView{junk}, *format);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, FormatDeserializerSurvivesRandomBytes) {
  for (int i = 0; i < 40; ++i) {
    const Bytes junk = random_bytes(rng_, 160);
    try {
      (void)pbio::deserialize_format(BytesView{junk});
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, BinEnvelopeSurvivesRandomBytes) {
  for (int i = 0; i < 40; ++i) {
    const Bytes junk = random_bytes(rng_, 120);
    try {
      (void)core::decode_bin_message(BytesView{junk});
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, LzssDecoderSurvivesRandomBytes) {
  for (int i = 0; i < 60; ++i) {
    const Bytes junk = random_bytes(rng_, 300);
    try {
      (void)lz::decompress(BytesView{junk});
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, Base64SurvivesRandomText) {
  for (int i = 0; i < 60; ++i) {
    const Bytes junk = random_bytes(rng_, 100);
    try {
      (void)base64_decode(to_string(BytesView{junk}));
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, QualityFileSurvivesRandomLines) {
  static constexpr const char* tokens[] = {"0",   "100", "inf", "-",  "type_a",
                                           "#x",  "1e9", "-5",  "\t", "attribute"};
  for (int i = 0; i < 60; ++i) {
    std::string text;
    const int lines = static_cast<int>(rng_.next_below(5));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng_.next_below(6));
      for (int w = 0; w < words; ++w) {
        text += tokens[rng_.next_below(std::size(tokens))];
        text += ' ';
      }
      text += '\n';
    }
    try {
      (void)qos::QualityFile::parse(text);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeds, HeaderFieldCountLimitEnforced) {
  // Random header counts straddling the 100-field cap: at or under parses,
  // over throws ParseError (never an allocation blow-up or a hang).
  for (int i = 0; i < 6; ++i) {
    const int extra = 80 + static_cast<int>(rng_.next_below(40));  // 80..119
    std::string wire = "POST / HTTP/1.1\r\n";
    for (int h = 0; h < extra; ++h) {
      wire += "X-F" + std::to_string(h) + ": v\r\n";
    }
    wire += "Content-Length: 0\r\n\r\n";
    const int total_fields = extra + 1;

    auto [a, b] = net::make_pipe();
    a->write_all(std::string_view(wire));
    a->close();
    http::MessageReader reader(*b);
    try {
      const auto request = reader.read_request();
      EXPECT_TRUE(request.has_value());
      EXPECT_LE(total_fields, 100);
    } catch (const ParseError&) {
      EXPECT_GT(total_fields, 100);
    }
  }
}

// ------------------------------------------------------- truncation sweeps
//
// Robustness contract: every strict prefix of a valid wire image must fail
// with a typed sbq::Error — never parse "successfully", never crash, never
// hang waiting for bytes that will not come.

pbio::FormatPtr trunc_format() {
  return pbio::FormatBuilder("tr")
      .add_scalar("a", pbio::TypeKind::kInt32)
      .add_string("s")
      .build();
}

Bytes valid_bin_wire() {
  const pbio::Value v = pbio::Value::record({{"a", 9}, {"s", "payload"}});
  const Bytes pbio_message = pbio::encode_value_message(v, *trunc_format());

  core::BinEnvelope envelope;
  envelope.operation = "fetch";
  envelope.message_type = "tr";
  envelope.timestamp_us = 1234;
  envelope.reported_rtt_us = 5678.0;
  return core::encode_bin_message(envelope, BytesView{pbio_message});
}

/// Full receive path of a binary body: envelope split + PBIO value decode.
pbio::Value decode_full_bin(BytesView body) {
  const core::DecodedBinMessage decoded = core::decode_bin_message(body);
  return pbio::decode_value_message(decoded.pbio_message, *trunc_format());
}

TEST(TruncationSweep, EveryBinEnvelopePrefixThrowsTypedError) {
  const Bytes wire = valid_bin_wire();
  ASSERT_NO_THROW((void)decode_full_bin(BytesView{wire}));
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const BytesView prefix(wire.data(), n);
    try {
      (void)decode_full_bin(prefix);
      ADD_FAILURE() << "prefix of " << n << "/" << wire.size()
                    << " bytes decoded as a complete message";
    } catch (const Error&) {
      // required: typed error, not a crash or silent partial decode
    }
  }
}

TEST(TruncationSweep, EveryBitFlipInBinEnvelopeFailsCleanly) {
  const Bytes wire = valid_bin_wire();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      Bytes flipped = wire;
      flipped[i] ^= mask;
      try {
        (void)decode_full_bin(BytesView{flipped});
      } catch (const Error&) {
      }
    }
  }
}

TEST(TruncationSweep, EveryHttpRequestPrefixFailsCleanly) {
  http::Request valid;
  valid.method = "POST";
  valid.target = "/svc";
  valid.headers.set("Content-Type", "text/xml");
  valid.set_body("<envelope/>");
  const Bytes wire = valid.serialize();

  for (std::size_t n = 0; n < wire.size(); ++n) {
    auto [a, b] = net::make_pipe();
    a->write_all(BytesView{wire.data(), n});
    a->close();  // the rest of the message never arrives
    http::MessageReader reader(*b);
    try {
      const auto request = reader.read_request();
      // EOF before any byte of a message is a clean end of stream; a parsed
      // request from a strict prefix would be a framing bug.
      EXPECT_FALSE(request.has_value())
          << "prefix of " << n << "/" << wire.size() << " bytes parsed";
    } catch (const Error&) {
    }
  }

  // The untruncated wire still parses.
  auto [a, b] = net::make_pipe();
  a->write_all(BytesView{wire});
  a->close();
  http::MessageReader reader(*b);
  const auto request = reader.read_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body_string(), "<envelope/>");
}

TEST(TruncationSweep, EveryHttpResponsePrefixFailsCleanly) {
  http::Response valid;
  valid.status = 200;
  valid.headers.set("Content-Type", "application/octet-stream");
  valid.set_body("binary-ish body");
  const Bytes wire = valid.serialize();

  for (std::size_t n = 0; n < wire.size(); ++n) {
    auto [a, b] = net::make_pipe();
    a->write_all(BytesView{wire.data(), n});
    a->close();
    http::MessageReader reader(*b);
    try {
      const auto response = reader.read_response();
      EXPECT_FALSE(response.has_value())
          << "prefix of " << n << "/" << wire.size() << " bytes parsed";
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(1, 9));

}  // namespace
}  // namespace sbq
