// End-to-end WSDL-compiler validation: the build runs `wsdlc` on
// tests/data/imaging.wsdl, compiles the generated stubs, and this test
// exercises them — native structs with the layout the formats promise,
// format accessors, the typed client wrapper, and the server skeleton —
// against the real runtime.
#include <gtest/gtest.h>

#include <cstddef>

#include "ImagingService_stubs.h"
#include "core/transports.h"
#include "pbio/decode.h"
#include "pbio/value_codec.h"

namespace {

using sbq::pbio::Value;
using namespace stubs_ImagingService;

TEST(GeneratedStubs, NativeStructsMatchFormats) {
  // The generated structs and the generated format builders must agree.
  EXPECT_EQ(format_roi()->native_size, sizeof(roi));
  EXPECT_EQ(format_frame_request()->native_size, sizeof(frame_request));
  EXPECT_EQ(format_frame()->native_size, sizeof(frame));
  EXPECT_EQ(format_frame_request()->field("region")->offset,
            offsetof(frame_request, region));
  EXPECT_EQ(format_frame()->field("pixels")->offset, offsetof(frame, pixels));
  EXPECT_EQ(format_frame()->field("histogram")->offset, offsetof(frame, histogram));
}

TEST(GeneratedStubs, FormatCanonicals) {
  EXPECT_EQ(format_roi()->canonical(), "roi{x:i32,y:i32,w:i32,h:i32}");
  EXPECT_EQ(format_frame()->canonical(),
            "frame{camera:string,width:i32,height:i32,pixels:char[],"
            "histogram:u32[8]}");
}

TEST(GeneratedStubs, NativeRecordRoundTrip) {
  frame_request request;
  request.camera = "east-dome";
  request.region = roi{10, 20, 320, 240};
  request.exposure_ms = 12.5;

  const sbq::Bytes wire = sbq::pbio::encode_message(&request, *format_frame_request());
  sbq::Arena arena;
  const auto* back = sbq::pbio::decode_message_as<frame_request>(
      sbq::BytesView{wire}, *format_frame_request(), *format_frame_request(), arena);
  EXPECT_STREQ(back->camera, "east-dome");
  EXPECT_EQ(back->region.w, 320);
  EXPECT_DOUBLE_EQ(back->exposure_ms, 12.5);
}

/// The application's implementation of the generated skeleton.
class ImagingImpl final : public ImagingServiceSkeleton {
 public:
  Value capture(const Value& params) override {
    const Value& region = params.field("region");
    const auto w = region.field("w").as_i64();
    const auto h = region.field("h").as_i64();
    Value histogram = Value::empty_array();
    for (int bin = 0; bin < 8; ++bin) {
      histogram.push_back(static_cast<std::uint64_t>(bin * 10));
    }
    return Value::record(
        {{"camera", params.field("camera").as_string()},
         {"width", w},
         {"height", h},
         {"pixels", std::string(static_cast<std::size_t>(w * h), '\x42')},
         {"histogram", std::move(histogram)}});
  }
};

TEST(GeneratedStubs, SkeletonAndClientEndToEnd) {
  auto format_server = std::make_shared<sbq::pbio::FormatServer>();
  auto clock = std::make_shared<sbq::net::SteadyTimeSource>();
  sbq::core::ServiceRuntime runtime(format_server, clock);

  ImagingImpl impl;
  impl.register_with(runtime);

  sbq::core::LoopbackTransport transport(runtime);
  sbq::wsdl::ServiceDesc svc;
  svc.name = "ImagingService";
  svc.operations.push_back(sbq::wsdl::OperationDesc{"capture", format_frame_request(),
                                                    format_frame()});
  sbq::core::ClientStub stub(transport, sbq::core::WireFormat::kBinary, svc,
                             format_server, clock);
  ImagingServiceClient client(stub);

  const Value result = client.capture(Value::record(
      {{"camera", "east-dome"},
       {"region", Value::record({{"x", 0}, {"y", 0}, {"w", 16}, {"h", 8}})},
       {"exposure_ms", 5.0}}));
  EXPECT_EQ(result.field("camera").as_string(), "east-dome");
  EXPECT_EQ(result.field("pixels").as_string().size(), 128u);
  EXPECT_EQ(result.field("histogram").array_size(), 8u);
}

}  // namespace
