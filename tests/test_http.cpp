// Unit + integration tests for the HTTP layer: headers, serialization,
// parsing, keep-alive client/server over pipes and real TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "http/message.h"
#include "http/parser.h"
#include "http/server.h"
#include "net/fault.h"
#include "net/pipe.h"
#include "net/tcp.h"

namespace sbq::http {
namespace {

TEST(HeadersTest, CaseInsensitiveLookup) {
  Headers h;
  h.set("Content-Type", "text/xml");
  EXPECT_EQ(h.get("content-type").value_or(""), "text/xml");
  EXPECT_EQ(h.get("CONTENT-TYPE").value_or(""), "text/xml");
  EXPECT_FALSE(h.has("content-length"));
}

TEST(HeadersTest, SetReplacesAddAppends) {
  Headers h;
  h.set("X-A", "1");
  h.set("x-a", "2");
  EXPECT_EQ(h.items().size(), 1u);
  EXPECT_EQ(h.get("X-A").value_or(""), "2");
  h.add("X-A", "3");
  EXPECT_EQ(h.items().size(), 2u);
}

TEST(MessageTest, RequestSerializationHasContentLength) {
  Request req;
  req.method = "POST";
  req.target = "/svc";
  req.headers.set("Content-Type", "text/xml");
  req.set_body("<x/>");
  const std::string wire = to_string(BytesView{req.serialize()});
  EXPECT_TRUE(wire.starts_with("POST /svc HTTP/1.1\r\n"));
  EXPECT_NE(wire.find("Content-Length: 4\r\n\r\n<x/>"), std::string::npos);
}

TEST(MessageTest, StaleContentLengthIsRecomputed) {
  Response resp;
  resp.headers.set("Content-Length", "9999");
  resp.set_body("ok");
  const std::string wire = to_string(BytesView{resp.serialize()});
  EXPECT_NE(wire.find("Content-Length: 2"), std::string::npos);
  EXPECT_EQ(wire.find("9999"), std::string::npos);
}

TEST(ParseHeaderLines, BasicAndWhitespace) {
  Headers h = parse_header_lines("A: 1\r\nLong-Name:   spaced value  \r\n\r\n");
  EXPECT_EQ(h.get("a").value_or(""), "1");
  EXPECT_EQ(h.get("long-name").value_or(""), "spaced value");
}

TEST(ParseHeaderLines, MalformedThrows) {
  EXPECT_THROW(parse_header_lines("no colon here\r\n\r\n"), ParseError);
  EXPECT_THROW(parse_header_lines(": empty name\r\n\r\n"), ParseError);
}

class PipeHttp : public ::testing::Test {
 protected:
  PipeHttp() {
    auto [client_end, server_end] = net::make_pipe();
    client_ = std::move(client_end);
    server_ = std::move(server_end);
  }

  std::unique_ptr<net::PipeStream> client_;
  std::unique_ptr<net::PipeStream> server_;
};

TEST_F(PipeHttp, RequestRoundTrip) {
  Request req;
  req.method = "POST";
  req.target = "/a/b";
  req.headers.set("Content-Type", "text/plain");
  req.set_body("payload");
  client_->write_all(BytesView{req.serialize()});
  client_->close();

  MessageReader reader(*server_);
  auto got = reader.read_request();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->method, "POST");
  EXPECT_EQ(got->target, "/a/b");
  EXPECT_EQ(got->body_string(), "payload");
  EXPECT_FALSE(reader.read_request().has_value());  // clean EOF
}

TEST_F(PipeHttp, MultipleKeepAliveRequests) {
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.set_body("r" + std::to_string(i));
    client_->write_all(BytesView{req.serialize()});
  }
  client_->close();
  MessageReader reader(*server_);
  for (int i = 0; i < 3; ++i) {
    auto got = reader.read_request();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->body_string(), "r" + std::to_string(i));
  }
  EXPECT_FALSE(reader.read_request().has_value());
}

TEST_F(PipeHttp, ResponseRoundTrip) {
  Response resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.set_body("missing");
  server_->write_all(BytesView{resp.serialize()});
  server_->close();

  MessageReader reader(*client_);
  auto got = reader.read_response();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 404);
  EXPECT_EQ(got->reason, "Not Found");
  EXPECT_EQ(got->body_string(), "missing");
}

TEST_F(PipeHttp, TruncatedBodyThrows) {
  client_->write_all(std::string_view{
      "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"});
  client_->close();
  MessageReader reader(*server_);
  EXPECT_THROW(reader.read_request(), TransportError);
}

TEST_F(PipeHttp, BadRequestLineThrows) {
  client_->write_all(std::string_view{"NONSENSE\r\n\r\n"});
  client_->close();
  MessageReader reader(*server_);
  EXPECT_THROW(reader.read_request(), ParseError);
}

TEST_F(PipeHttp, UnsupportedTransferEncodingThrows) {
  client_->write_all(std::string_view{
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"});
  client_->close();
  MessageReader reader(*server_);
  EXPECT_THROW(reader.read_request(), ParseError);
}

TEST_F(PipeHttp, ServeConnectionDispatchesAndKeepsAlive) {
  std::thread server_thread([&] {
    serve_connection(*server_, [](const Request& req) {
      Response resp;
      resp.set_body("echo:" + req.body_string());
      return resp;
    });
  });

  Client http(*client_);
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.set_body("m" + std::to_string(i));
    const Response resp = http.round_trip(req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body_string(), "echo:m" + std::to_string(i));
  }
  client_->close();
  server_thread.join();
  EXPECT_GT(http.bytes_sent(), 0u);
  EXPECT_GT(http.bytes_received(), 0u);
}

TEST_F(PipeHttp, HandlerExceptionBecomes500) {
  std::thread server_thread([&] {
    serve_connection(*server_, [](const Request&) -> Response {
      throw std::runtime_error("handler exploded");
    });
  });
  Client http(*client_);
  Request req;
  const Response resp = http.round_trip(req);
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body_string().find("handler exploded"), std::string::npos);
  client_->close();
  server_thread.join();
}

TEST_F(PipeHttp, ConnectionCloseHeaderEndsLoop) {
  std::thread server_thread([&] {
    serve_connection(*server_, [](const Request&) { return Response{}; });
  });
  Client http(*client_);
  Request req;
  req.headers.set("Connection", "close");
  EXPECT_EQ(http.round_trip(req).status, 200);
  server_thread.join();  // loop must have exited on its own
  client_->close();
}

TEST(TcpServerTest, ConcurrentClients) {
  Server server(0, [](const Request& req) {
    Response resp;
    resp.set_body("got " + std::to_string(req.body.size()) + " bytes");
    return resp;
  });

  auto one_client = [&](int i) {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    Client http(*stream);
    Request req;
    req.set_body(std::string(static_cast<std::size_t>(i) + 1, 'x'));
    const Response resp = http.round_trip(req);
    EXPECT_EQ(resp.body_string(), "got " + std::to_string(i + 1) + " bytes");
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) clients.emplace_back(one_client, i);
  for (auto& t : clients) t.join();
  server.shutdown();
}

TEST(TcpServerTest, ShutdownIsIdempotent) {
  Server server(0, [](const Request&) { return Response{}; });
  server.shutdown();
  server.shutdown();
}

// A failure that escapes serve_connection (a non-std exception dodges its
// catch of std::exception) must not be swallowed: the worker answers a
// canned 500 and counts it in ServerStats::worker_errors.
TEST(TcpServerTest, WorkerLevelFailureBecomes500AndIsCounted) {
  Server server(0, [](const Request&) -> Response {
    throw 42;  // deliberately not a std::exception
  });

  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  Client http(*stream);
  Request req;
  req.set_body("boom");
  const Response resp = http.round_trip(req);
  EXPECT_EQ(resp.status, 500);
  EXPECT_EQ(resp.headers.get("Connection").value_or(""), "close");

  server.shutdown();
  EXPECT_EQ(server.stats().worker_errors, 1u);
}

// One misbehaving connection — malformed bytes or a silent stall — must
// never disturb sibling keep-alive clients, and every thread must join.
TEST(TcpServerTest, MixedClientsDoNotDisturbSiblings) {
  ServerOptions options;
  options.workers = 4;
  options.queue_depth = 8;
  // The stalled client would otherwise park a worker forever.
  options.idle_timeout_us = 200'000;
  Server server(0,
                [](const Request& req) {
                  Response resp;
                  resp.set_body("echo:" + req.body_string());
                  return resp;
                },
                options);

  std::atomic<int> good_responses{0};
  auto keep_alive_client = [&](int id) {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    Client conn(*stream);
    for (int i = 0; i < 5; ++i) {
      Request req;
      req.method = "POST";
      req.set_body(std::to_string(id) + "." + std::to_string(i));
      const Response resp = conn.round_trip(req);
      EXPECT_EQ(resp.status, 200);
      EXPECT_EQ(resp.body_string(),
                "echo:" + std::to_string(id) + "." + std::to_string(i));
      ++good_responses;
    }
  };
  auto malformed_client = [&] {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    stream->write_all(std::string_view("THIS IS NOT HTTP\r\n\r\n"));
    // The server answers 400 and closes; tolerate a reset instead of a
    // clean close (the 400 may race our next read).
    try {
      MessageReader reader(*stream);
      const auto resp = reader.read_response();
      if (resp) {
        EXPECT_EQ(resp->status, 400);
      }
    } catch (const Error&) {
    }
  };
  auto stalled_client = [&] {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    // Say nothing; the server's idle deadline reclaims the worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) clients.emplace_back(keep_alive_client, i);
  clients.emplace_back(malformed_client);
  clients.emplace_back(stalled_client);
  for (auto& t : clients) t.join();

  EXPECT_EQ(good_responses.load(), 15);
  server.shutdown();
}

// Shutdown racing the acceptor (and fresh connections) must neither hang
// nor double-join: every worker is created in the constructor and joined
// exactly once, whatever the interleaving.
TEST(TcpServerTest, ShutdownVsAcceptRaceIsSafe) {
  for (int round = 0; round < 20; ++round) {
    ServerOptions options;
    options.workers = 2;
    options.queue_depth = 2;
    Server server(0, [](const Request&) { return Response{}; }, options);

    std::thread connector([port = server.port()] {
      try {
        auto stream = net::TcpStream::connect("127.0.0.1", port);
        Client conn(*stream);
        Request req;
        req.set_body("race");
        (void)conn.round_trip(req);
      } catch (const Error&) {
        // Shutdown may beat the connect or the exchange; both are fine.
      }
    });
    server.shutdown();
    connector.join();
  }
}

// ----------------------------------------------------- resumable parsing

std::string wire_string(const Request& req) {
  const Bytes bytes = req.serialize();
  return to_string(BytesView{bytes});
}

TEST(ResumableParserTest, ByteAtATimeFeedsParkAsStateNotThreads) {
  auto [unused, feed_end] = net::make_pipe();
  MessageReader reader(*feed_end);

  Request req;
  req.method = "POST";
  req.target = "/svc";
  req.set_body("hello");
  const std::string wire = wire_string(req);

  EXPECT_EQ(reader.phase(), MessageReader::Phase::kIdle);
  std::optional<Request> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const std::uint8_t byte = static_cast<std::uint8_t>(wire[i]);
    reader.feed(BytesView{&byte, 1});
    got = reader.try_next_request();
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(got.has_value()) << "complete request after byte " << i;
    }
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->method, "POST");
  EXPECT_EQ(got->target, "/svc");
  EXPECT_EQ(got->body_string(), "hello");
  EXPECT_EQ(reader.phase(), MessageReader::Phase::kIdle);
  EXPECT_TRUE(reader.buffer_empty());
}

TEST(ResumableParserTest, PhaseTracksHeadThenBody) {
  auto [unused, feed_end] = net::make_pipe();
  MessageReader reader(*feed_end);

  reader.feed(as_bytes("POST / HTTP/1.1\r\nContent-"));
  EXPECT_FALSE(reader.try_next_request().has_value());
  EXPECT_EQ(reader.phase(), MessageReader::Phase::kHead);

  reader.feed(as_bytes("Length: 4\r\n\r\nab"));
  EXPECT_FALSE(reader.try_next_request().has_value());
  EXPECT_EQ(reader.phase(), MessageReader::Phase::kBody);

  reader.feed(as_bytes("cd"));
  const auto got = reader.try_next_request();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body_string(), "abcd");
  EXPECT_EQ(reader.phase(), MessageReader::Phase::kIdle);
}

TEST(ResumableParserTest, PipelinedRequestsParseOneAtATime) {
  auto [unused, feed_end] = net::make_pipe();
  MessageReader reader(*feed_end);

  std::string burst;
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.set_body("r" + std::to_string(i));
    burst += wire_string(req);
  }
  reader.feed(as_bytes(burst));  // one readiness event, three requests

  for (int i = 0; i < 3; ++i) {
    const auto got = reader.try_next_request();
    ASSERT_TRUE(got.has_value()) << "request " << i;
    EXPECT_EQ(got->body_string(), "r" + std::to_string(i));
  }
  EXPECT_FALSE(reader.try_next_request().has_value());
  EXPECT_TRUE(reader.buffer_empty());
}

TEST(ResumableParserTest, BodyLimitRejectsAtHeadParseTime) {
  auto [unused, feed_end] = net::make_pipe();
  ParserLimits limits;
  limits.max_body_bytes = 10;
  MessageReader reader(*feed_end, limits);
  // The head announces a body far past the limit; not one body byte has
  // been fed, yet the parse must already refuse.
  reader.feed(as_bytes("POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n"));
  EXPECT_THROW(reader.try_next_request(), ParseError);
}

TEST(ResumableParserTest, MalformedHeadThrowsFromTryNext) {
  auto [unused, feed_end] = net::make_pipe();
  MessageReader reader(*feed_end);
  reader.feed(as_bytes("NONSENSE\r\n\r\n"));
  EXPECT_THROW(reader.try_next_request(), ParseError);
}

// ------------------------------------------------------- the event front

ServerOptions event_options(std::size_t workers = 2, std::size_t runtimes = 2) {
  ServerOptions options;
  options.front = FrontMode::kEvent;
  options.workers = workers;
  options.runtimes = runtimes;
  return options;
}

Handler echo_handler() {
  return [](const Request& req) {
    Response resp;
    resp.set_body("echo:" + req.body_string());
    return resp;
  };
}

TEST(EventFrontTest, RoundTripAndKeepAlive) {
  Server server(0, echo_handler(), event_options());
  EXPECT_EQ(server.front(), FrontMode::kEvent);
  ASSERT_GT(server.port(), 0);

  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  Client http(*stream);
  for (int i = 0; i < 5; ++i) {
    Request req;
    req.set_body("m" + std::to_string(i));
    const Response resp = http.round_trip(req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body_string(), "echo:m" + std::to_string(i));
  }
  server.shutdown();
  EXPECT_GE(server.stats().accepted, 1u);
  EXPECT_GE(server.stats().peak_connections, 1u);
}

TEST(EventFrontTest, PipelinedRequestsAreAnsweredInOrder) {
  Server server(0, echo_handler(), event_options());

  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  std::string burst;
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.set_body("p" + std::to_string(i));
    burst += wire_string(req);
  }
  stream->write_all(std::string_view{burst});  // all four in one segment

  MessageReader reader(*stream);
  for (int i = 0; i < 4; ++i) {
    const auto resp = reader.read_response();
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body_string(), "echo:p" + std::to_string(i));
  }
  server.shutdown();
}

// A request head trickling in byte-at-a-time (a slow client, injected
// stalls) must park as parser state between readiness events — it may not
// occupy a worker, and it must still be served once complete.
TEST(EventFrontTest, SlowTrickledRequestHeadIsServed) {
  Server server(0, echo_handler(), event_options(/*workers=*/1, /*runtimes=*/1));

  auto tcp = net::TcpStream::connect("127.0.0.1", server.port());
  auto faults = std::make_shared<net::FaultInjector>();
  net::FaultyStream trickle(*tcp, faults);

  Request req;
  req.set_body("slow");
  const std::string wire = wire_string(req);
  for (const char c : wire) {
    net::FaultSpec stall;
    stall.kind = net::FaultKind::kStall;
    stall.stall_us = 1'000;
    faults->schedule(stall);
    trickle.write_all(&c, 1);  // one stalled byte per write op
  }
  EXPECT_EQ(faults->stats().stalls, wire.size());

  MessageReader reader(*tcp);
  const auto resp = reader.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body_string(), "echo:slow");
  server.shutdown();
}

// The decoupling claim itself: many live connections on a tiny pool. All
// sixteen connect (and stay connected) before any request is sent — under
// the threaded front two workers would park in blocking reads on the first
// two connections and starve the rest.
TEST(EventFrontTest, ConnectionsBeyondWorkerCountAreAllServed) {
  Server server(0, echo_handler(), event_options(/*workers=*/2, /*runtimes=*/2));

  constexpr int kConnections = 16;
  std::vector<std::unique_ptr<net::TcpStream>> streams;
  streams.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    streams.push_back(net::TcpStream::connect("127.0.0.1", server.port()));
  }

  for (int i = 0; i < kConnections; ++i) {
    Client http(*streams[static_cast<std::size_t>(i)]);
    Request req;
    req.set_body("c" + std::to_string(i));
    const Response resp = http.round_trip(req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body_string(), "echo:c" + std::to_string(i));
  }
  EXPECT_GE(server.stats().peak_connections,
            static_cast<std::uint64_t>(kConnections));
  EXPECT_EQ(server.tracked_connections(), static_cast<std::size_t>(kConnections));
  server.shutdown();
}

TEST(EventFrontTest, MalformedRequestGets400AndClose) {
  Server server(0, echo_handler(), event_options());
  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  stream->write_all(std::string_view{"THIS IS NOT HTTP\r\n\r\n"});
  MessageReader reader(*stream);
  const auto resp = reader.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(resp->headers.get("Connection").value_or(""), "close");
  // The server hangs up after the 400.
  char byte;
  EXPECT_EQ(stream->read_some(&byte, 1), 0u);
  server.shutdown();
}

TEST(EventFrontTest, HandlerFailuresBecome500s) {
  Server server(0,
                [](const Request& req) -> Response {
                  if (req.body_string() == "std") {
                    throw std::runtime_error("handler exploded");
                  }
                  throw 42;  // non-std exception: counted as a worker error
                },
                event_options());

  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  Client http(*stream);
  Request req;
  req.set_body("std");
  Response resp = http.round_trip(req);
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body_string().find("handler exploded"), std::string::npos);

  auto second = net::TcpStream::connect("127.0.0.1", server.port());
  Client http2(*second);
  Request odd;
  odd.set_body("odd");
  resp = http2.round_trip(odd);
  EXPECT_EQ(resp.status, 500);

  server.shutdown();
  EXPECT_EQ(server.stats().worker_errors, 1u);
}

TEST(EventFrontTest, IdleConnectionsAreReclaimedByTheDeadline) {
  ServerOptions options = event_options(/*workers=*/1, /*runtimes=*/1);
  options.idle_timeout_us = 100'000;
  Server server(0, echo_handler(), options);

  auto silent = net::TcpStream::connect("127.0.0.1", server.port());
  // Say nothing: the idle deadline must drop the connection (EOF here).
  silent->set_read_timeout_us(2'000'000);
  char byte;
  EXPECT_EQ(silent->read_some(&byte, 1), 0u);

  // A well-behaved client on the same server is unaffected.
  auto live = net::TcpStream::connect("127.0.0.1", server.port());
  Client http(*live);
  Request req;
  req.set_body("still here");
  EXPECT_EQ(http.round_trip(req).status, 200);
  server.shutdown();
}

TEST(EventFrontTest, ShutdownIsIdempotentAndDestructorIsClean) {
  Server server(0, echo_handler(), event_options());
  server.shutdown();
  server.shutdown();
  // ~Server runs another shutdown; must be a no-op.
}

// The connection registry must not grow for the life of the server:
// expired entries are pruned as new connections register.
TEST(TcpServerTest, ConnectionRegistryIsPruned) {
  ServerOptions options;
  options.workers = 2;
  Server server(0, [](const Request&) { return Response{}; }, options);

  for (int i = 0; i < 10; ++i) {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    Client conn(*stream);
    Request req;
    req.set_body("x");
    req.headers.set("Connection", "close");  // server drops it after the reply
    (void)conn.round_trip(req);
  }
  // Registration prunes expired entries, so after one more connection the
  // registry must have shrunk to the few still genuinely alive. The workers
  // need a beat to observe the closes, so poll briefly.
  std::size_t tracked = 100;
  for (int spin = 0; spin < 100 && tracked > 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto probe = net::TcpStream::connect("127.0.0.1", server.port());
    Client conn(*probe);
    Request req;
    req.set_body("probe");
    req.headers.set("Connection", "close");
    (void)conn.round_trip(req);
    tracked = server.tracked_connections();
  }
  EXPECT_LE(tracked, 2u);
  server.shutdown();
}

}  // namespace
}  // namespace sbq::http
